"""Quickstart: optimize a black-box function with EasyBO in ~20 lines.

EasyBO treats your function as an expensive simulator: it keeps ``batch_size``
workers busy, refits a Gaussian-process surrogate whenever a result lands,
and asynchronously dispatches the next most promising design.

Run::

    python examples/quickstart.py
"""

import numpy as np

from repro import EasyBO
from repro.core.problem import FunctionProblem


def expensive_function(x: np.ndarray) -> float:
    """A bumpy 3-D surface to maximize (peak value 3.0 at the origin)."""
    return float(3.0 * np.exp(-np.sum(x**2)) + 0.3 * np.cos(4.0 * x[0]))


def simulation_seconds(x: np.ndarray) -> float:
    """Pretend designs near the edge of the box simulate slower."""
    return 10.0 + 20.0 * float(np.max(np.abs(x)))


def main() -> None:
    problem = FunctionProblem(
        expensive_function,
        bounds=[[-2.0, 2.0]] * 3,
        cost_model=simulation_seconds,
        name="quickstart",
    )

    result = EasyBO(
        problem,
        batch_size=4,       # four parallel workers
        n_init=10,          # random designs before the GP takes over
        max_evals=60,       # total simulation budget
        rng=0,              # full determinism
    ).optimize()

    print(f"best value  : {result.best_fom:.4f}   (true optimum 3.3)")
    print(f"best design : {np.round(result.best_x, 3)}")
    print(f"evaluations : {result.n_evaluations}")
    print(f"sim time    : {result.wall_clock:.0f} s on 4 workers "
          f"({result.trace.utilization():.0%} busy)")

    times, best = result.best_curve
    print("\nconvergence (best value vs simulated time):")
    for k in range(0, len(times), len(times) // 6):
        print(f"  t={times[k]:7.0f} s   best={best[k]:.4f}")


if __name__ == "__main__":
    main()
