"""Why asynchronous batching wins: a scheduling walkthrough (paper Fig. 1).

Uses the deterministic worker-pool simulator to show, for growing batch
sizes, how much wall-clock a synchronous barrier wastes when simulation
times vary — and how the gap matches the paper's measured 9-40% reductions.

Run::

    python examples/async_vs_sync.py
"""

import numpy as np

from repro.core.problem import FunctionProblem
from repro.sched.durations import LognormalCostModel
from repro.sched.workers import VirtualWorkerPool


def run_discipline(problem, points, batch, asynchronous: bool):
    pool = VirtualWorkerPool(problem, batch)
    if asynchronous:
        for x in points[:batch]:
            pool.submit(x)
        for x in points[batch:]:
            pool.wait_next()
            pool.submit(x)
        pool.wait_all()
    else:
        for start in range(0, len(points), batch):
            for x in points[start:start + batch]:
                pool.submit(x)
            pool.wait_all()
    return pool.trace


def main() -> None:
    rng = np.random.default_rng(0)
    n_evals = 300

    for name, sigma, paper_gap in (
        ("op-amp-like (sigma=0.10)", 0.10, "9.2-13.7%"),
        ("class-E-like (sigma=0.35)", 0.35, "26.7-40.0%"),
    ):
        cost = LognormalCostModel(mean_seconds=40.0, sigma=sigma, seed=1)
        problem = FunctionProblem(lambda x: 0.0, [[0.0, 1.0]], cost_model=cost)
        points = rng.uniform(size=(n_evals, 1))
        print(f"\n{name} — {n_evals} simulations "
              f"(paper's measured reduction: {paper_gap})")
        print(f"  {'B':>3} {'sync':>10} {'async':>10} {'saved':>7} "
              f"{'sync util':>10} {'async util':>10}")
        for batch in (5, 10, 15):
            sync = run_discipline(problem, points, batch, asynchronous=False)
            async_ = run_discipline(problem, points, batch, asynchronous=True)
            saved = 1.0 - async_.makespan / sync.makespan
            print(f"  {batch:>3} {sync.makespan:>9.0f}s {async_.makespan:>9.0f}s "
                  f"{saved:>6.1%} {sync.utilization():>10.1%} "
                  f"{async_.utilization():>10.1%}")

    print(
        "\nThe saving grows with the batch size and with the spread of the\n"
        "simulation times — exactly the paper's argument for issuing new\n"
        "query points the moment a worker goes idle."
    )


if __name__ == "__main__":
    main()
