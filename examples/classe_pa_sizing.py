"""Size the class-E power amplifier (paper §IV-B).

Maximizes ``FOM = 3 * PAE + Pout`` (Pout in units of 100 mW) over 12 design
parameters: the switch geometry, the choke / shunt / resonator / matching
network reactances, the drive duty cycle and edges, and the supply.  Every
evaluation is a full switching transient of the MNA simulator followed by
Fourier power extraction.

Run::

    python examples/classe_pa_sizing.py [--budget 60] [--batch 5] [--seed 0]
"""

import argparse

from repro import EasyBO
from repro.circuits import ClassEProblem
from repro.spice import format_eng
from repro.utils.tables import format_duration


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=60,
                        help="total simulations (paper: 450)")
    parser.add_argument("--batch", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fast", action="store_true",
                        help="shorter transients (quick demo)")
    args = parser.parse_args()

    if args.fast:
        problem = ClassEProblem(settle_periods=10, measure_periods=3,
                                steps_per_period=48)
    else:
        problem = ClassEProblem()

    print(f"Sizing the class-E PA: {problem.dim} variables, "
          f"{args.budget} simulations, batch size {args.batch}")
    print("(each evaluation is a full switching transient — expect a few "
          "minutes of real compute)\n")

    result = EasyBO(
        problem,
        batch_size=args.batch,
        n_init=15,
        max_evals=args.budget,
        rng=args.seed,
    ).optimize()

    check = problem.evaluate(result.best_x)
    values = problem.space.to_values(result.best_x)

    print(f"best FOM {result.best_fom:.3f} after {result.n_evaluations} "
          f"simulations ({format_duration(result.wall_clock)} of simulated "
          f"HSPICE time)\n")
    print("Best design found:")
    units = {"w": "m", "l": "m", "l_choke": "H", "c_shunt": "F", "l0": "H",
             "c0": "F", "l_match": "H", "c_match": "F"}
    for name, value in values.items():
        if name in units:
            print(f"  {name:<8} = {format_eng(value, units[name])}")
        else:
            print(f"  {name:<8} = {value:.3f}")
    print("\nMeasured performance:")
    print(f"  PAE    {check.metrics['pae']:.1%}")
    print(f"  Pout   {1e3 * check.metrics['p_out_w']:.1f} mW")
    print(f"  Pdc    {1e3 * check.metrics['p_dc_w']:.1f} mW")


if __name__ == "__main__":
    main()
