"""Plug your own simulator into EasyBO — with real thread parallelism.

A user problem only needs ``bounds`` and ``evaluate``.  This example wraps a
"simulator" that really takes wall-clock time (here ``time.sleep``), runs it
on the :class:`ThreadWorkerPool` backend so evaluations genuinely overlap,
and also demonstrates building and measuring a custom circuit directly with
the :mod:`repro.spice` engine.

Run::

    python examples/custom_simulator.py
"""

import time

import numpy as np

from repro import EasyBO
from repro.core.problem import EvaluationResult, Problem
from repro.sched.executor import ThreadWorkerPool
from repro.spice import Circuit, ac_analysis, logspace_frequencies


class FilterDesign(Problem):
    """Tune an RLC band-pass so its peak sits at 1 MHz with high Q.

    Design variables: log10(L), log10(C), log10(R).  The "simulator" builds
    the circuit, sweeps it with the AC engine, and sleeps briefly to emulate
    an external tool's latency.
    """

    name = "rlc-bandpass"

    TARGET_HZ = 1e6

    @property
    def bounds(self):
        return np.array([[-6.0, -3.0], [-11.0, -8.0], [1.0, 4.0]])

    def evaluate(self, x):
        t0 = time.monotonic()
        inductance, capacitance, resistance = (10.0 ** v for v in x)
        circuit = Circuit("bandpass")
        circuit.V("vin", "in", "0", ac=1.0)
        circuit.R("r", "in", "out", resistance)
        circuit.L("l", "out", "0", inductance)
        circuit.C("c", "out", "0", capacitance)
        freqs = logspace_frequencies(1e4, 1e8, 15)
        time.sleep(0.02)  # stand-in for external-tool latency
        response = np.abs(ac_analysis(circuit, freqs).v("out"))
        peak = freqs[int(np.argmax(response))]
        # Score: log-distance of the resonance from the target, plus peak
        # sharpness (Q) as a bonus.
        distance = abs(np.log10(peak) - np.log10(self.TARGET_HZ))
        sharpness = float(response.max() / np.median(response))
        fom = -5.0 * distance + 0.1 * min(sharpness, 30.0)
        return EvaluationResult(
            fom=fom,
            metrics={"peak_hz": float(peak), "q_proxy": sharpness},
            cost=time.monotonic() - t0,
        )


def main() -> None:
    problem = FilterDesign()
    started = time.monotonic()
    result = EasyBO(
        problem,
        batch_size=4,
        n_init=8,
        max_evals=40,
        rng=0,
        pool_factory=ThreadWorkerPool,  # real threads, real overlap
    ).optimize()
    elapsed = time.monotonic() - started

    check = problem.evaluate(result.best_x)
    inductance, capacitance, resistance = (10.0 ** v for v in result.best_x)
    f0 = 1.0 / (2 * np.pi * np.sqrt(inductance * capacitance))
    print(f"best FOM    : {result.best_fom:.3f}")
    print(f"L, C, R     : {inductance:.3e} H, {capacitance:.3e} F, {resistance:.1f} Ohm")
    print(f"resonance   : {check.metrics['peak_hz']:.3e} Hz "
          f"(analytic {f0:.3e}, target {problem.TARGET_HZ:.0e})")
    print(f"real time   : {elapsed:.1f} s for 40 evaluations on 4 threads")


if __name__ == "__main__":
    main()
