"""Spec-driven sizing: maximize bandwidth subject to hard specifications.

The paper formulates sizing as a weighted sum (Eq. 10) and defers constrained
optimization to future work; this repository implements that extension.  Here
the two-stage op-amp is sized as an industrial spec sheet would ask:

    maximize  UGF
    s.t.      GAIN >= 60 dB,  PM >= 60 deg

using :class:`ConstrainedEasyBO` — EasyBO's asynchronous loop with one GP per
constraint and a probability-of-feasibility weighted acquisition.

Run::

    python examples/constrained_sizing.py [--budget 80] [--batch 5]
"""

import argparse

from repro.circuits import ConstrainedOpAmpProblem
from repro.core.constrained import ConstrainedEasyBO
from repro.spice import format_eng


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=80)
    parser.add_argument("--batch", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    problem = ConstrainedOpAmpProblem()
    print("Constrained op-amp sizing: maximize UGF s.t. "
          f"gain >= {problem.GAIN_SPEC_DB:.0f} dB, "
          f"PM >= {problem.PM_SPEC_DEG:.0f} deg\n")

    driver = ConstrainedEasyBO(
        problem,
        batch_size=args.batch,
        n_init=20,
        max_evals=args.budget,
        rng=args.seed,
    )
    result = driver.run()
    best = driver.best_feasible()

    if best is None:
        print("no feasible design found within the budget — raise --budget")
        return

    x_best, ugf = best
    check = problem.evaluate(x_best)
    values = problem.space.to_values(x_best)
    n_feasible = sum(1 for r in result.trace.records if r.feasible)

    print(f"feasible designs found : {n_feasible}/{result.n_evaluations}")
    print(f"best feasible UGF      : {ugf:.1f} MHz")
    print(f"  gain  {check.metrics['gain_db']:.1f} dB  "
          f"(slack {check.metrics['slack_gain']:+.1f})")
    print(f"  PM    {check.metrics['pm_deg']:.1f} deg "
          f"(slack {check.metrics['slack_pm']:+.1f})")
    print("\nBest sizing:")
    for name, value in values.items():
        unit = {"rz": "Ohm", "cc": "F"}.get(name, "m")
        print(f"  {name:<4} = {format_eng(value, unit)}")


if __name__ == "__main__":
    main()
