"""Size the two-stage Miller op-amp with asynchronous batch BO (paper §IV-A).

This is the paper's first benchmark at a laptop-friendly budget: maximize

    FOM = 1.2 * GAIN(dB) + 10 * UGF(10 MHz) + 1.6 * PM(deg)

over 10 design variables (transistor geometry, nulling resistor, Miller
capacitor).  The script prints the best sizing in physical units, its
measured AC performance, and the async-vs-sync wall-clock comparison.

Run::

    python examples/opamp_sizing.py [--budget 100] [--batch 5] [--seed 0]
"""

import argparse

from repro import EasyBO
from repro.circuits import OpAmpProblem
from repro.spice import format_eng
from repro.utils.tables import format_duration


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=100,
                        help="total simulations (paper: 150)")
    parser.add_argument("--batch", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    problem = OpAmpProblem()
    print(f"Sizing the op-amp: {problem.dim} variables, "
          f"{args.budget} simulations, batch size {args.batch}\n")

    runs = {}
    for mode in ("async", "sync"):
        result = EasyBO(
            problem,
            batch_size=args.batch,
            mode=mode,
            n_init=20,
            max_evals=args.budget,
            rng=args.seed,
        ).optimize()
        runs[mode] = result
        print(f"{mode:<6} best FOM {result.best_fom:8.2f}   "
              f"simulation time {format_duration(result.wall_clock)}   "
              f"worker utilization {result.trace.utilization():.0%}")

    best = max(runs.values(), key=lambda r: r.best_fom)
    check = problem.evaluate(best.best_x)
    values = problem.space.to_values(best.best_x)

    print("\nBest design found:")
    for name, value in values.items():
        unit = {"rz": "Ohm", "cc": "F"}.get(name, "m")
        print(f"  {name:<4} = {format_eng(value, unit)}")
    print("\nMeasured performance:")
    print(f"  DC gain       {check.metrics['gain_db']:.1f} dB")
    print(f"  UGF           {check.metrics['ugf_mhz']:.1f} MHz")
    print(f"  phase margin  {check.metrics['pm_deg']:.1f} deg")
    print(f"  FOM           {check.fom:.2f}")

    saving = 1.0 - runs["async"].wall_clock / runs["sync"].wall_clock
    print(f"\nAsynchronous issue saved {saving:.1%} of simulation time at the "
          f"same budget (paper reports 9-14% on this circuit).")


if __name__ == "__main__":
    main()
