"""Process corners, Monte Carlo, and robust (worst-corner) sizing.

A sizing that shines at the typical corner can collapse at FF/SS.  This
example takes one op-amp design, sweeps the five process corners, estimates
its Monte-Carlo FOM spread — and then shows how to hand EasyBO the
*worst-corner* objective so it optimizes for robustness directly.

Run::

    python examples/process_variation.py [--mc 20] [--budget 40]
"""

import argparse

import numpy as np

from repro import EasyBO
from repro.circuits import OpAmpProblem, RobustOpAmpProblem, monte_carlo_foms
from repro.circuits.variation import CORNERS, evaluate_opamp_at_corner, shift_params
from repro.spice import nmos_180, pmos_180

NOMINAL_SIZING = {
    "w12": 20e-6, "l12": 0.5e-6, "w34": 10e-6, "l34": 0.5e-6, "w5": 8e-6,
    "w6": 50e-6, "l6": 0.35e-6, "w7": 30e-6, "rz": 2e3, "cc": 2e-12,
}


def corner_table(values: dict) -> None:
    print(f"  {'corner':<6} {'FOM':>8} {'gain dB':>8} {'UGF MHz':>8} {'PM deg':>7}")
    for corner in CORNERS:
        nmos = shift_params(nmos_180(), corner.nmos_dvt, corner.nmos_kp_scale)
        pmos = shift_params(pmos_180(), corner.pmos_dvt, corner.pmos_kp_scale)
        fom, metrics = evaluate_opamp_at_corner(values, nmos, pmos)
        if metrics:
            print(f"  {corner.name:<6} {fom:>8.1f} {metrics['gain_db']:>8.1f} "
                  f"{metrics['ugf_mhz']:>8.1f} {metrics['pm_deg']:>7.1f}")
        else:
            print(f"  {corner.name:<6} {'failed':>8}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mc", type=int, default=20, help="Monte-Carlo runs")
    parser.add_argument("--budget", type=int, default=40,
                        help="robust-optimization simulations")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("Hand sizing across process corners:")
    corner_table(NOMINAL_SIZING)

    foms = monte_carlo_foms(NOMINAL_SIZING, n_runs=args.mc, rng=args.seed)
    print(f"\nMonte Carlo ({args.mc} runs): mean {foms.mean():.1f}, "
          f"std {foms.std():.1f}, worst {foms.min():.1f}")

    print(f"\nRobust sizing: EasyBO on the worst-corner FOM "
          f"({args.budget} design points x {len(CORNERS)} corners)...")
    robust_problem = RobustOpAmpProblem()
    result = EasyBO(
        robust_problem, batch_size=4, n_init=12, max_evals=args.budget,
        rng=args.seed,
    ).optimize()
    values = robust_problem.space.to_values(result.best_x)
    print(f"best worst-corner FOM: {result.best_fom:.1f}")
    corner_table(values)

    nominal_problem = OpAmpProblem()
    x_hand = nominal_problem.space.to_vector(NOMINAL_SIZING)
    hand_worst = RobustOpAmpProblem().evaluate(x_hand).fom
    print(f"\nworst-corner FOM: hand sizing {hand_worst:.1f} vs "
          f"robust-optimized {result.best_fom:.1f}")


if __name__ == "__main__":
    main()
