"""Micro-benchmarks of the substrates: simulator throughput and GP costs.

These are classic pytest-benchmark timings (multiple rounds), useful for
tracking performance regressions of the pieces every experiment leans on:

* op-amp evaluation (DC + AC sweep + Bode extraction),
* class-E evaluation (switching transient + Fourier power),
* GP fit (ML-II, 150 points, 10-D) and prediction,
* one asynchronous proposal (hallucinate pending + maximize acquisition).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import ClassEProblem, OpAmpProblem
from repro.core.acquisition import WeightedAcquisition
from repro.core.optimizers import maximize_acquisition
from repro.core.surrogate import SurrogateSession
from repro.gp import GaussianProcess, fit_hyperparameters


@pytest.fixture(scope="module")
def opamp():
    return OpAmpProblem()


@pytest.fixture(scope="module")
def classe():
    return ClassEProblem(settle_periods=8, measure_periods=2, steps_per_period=40)


def test_opamp_evaluation(benchmark, opamp):
    x = opamp.space.sample(1, np.random.default_rng(0))[0]
    result = benchmark(opamp.evaluate, x)
    assert np.isfinite(result.fom)


def test_classe_evaluation(benchmark, classe):
    x = classe.space.sample(1, np.random.default_rng(1))[0]
    result = benchmark.pedantic(classe.evaluate, args=(x,), rounds=3, iterations=1)
    assert np.isfinite(result.fom)


def test_gp_fit_150x10(benchmark):
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(150, 10))
    y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2 + 0.1 * rng.standard_normal(150)

    def fit():
        gp = GaussianProcess(10).fit(X, y)
        fit_hyperparameters(gp, n_restarts=1, rng=0)
        return gp

    gp = benchmark.pedantic(fit, rounds=3, iterations=1)
    assert gp.n_train == 150


def test_gp_predict_2048(benchmark):
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(150, 10))
    y = rng.standard_normal(150)
    gp = GaussianProcess(10).fit(X, y)
    candidates = rng.uniform(size=(2048, 10))
    mu, sigma = benchmark(gp.predict, candidates)
    assert mu.shape == (2048,)


def test_async_proposal(benchmark):
    """One Alg. 1 step: hallucinate 14 pending points, maximize Eq. 9."""
    rng = np.random.default_rng(0)
    bounds = np.array([[0.0, 1.0]] * 10)
    session = SurrogateSession(bounds, rng=rng)
    X = rng.uniform(size=(120, 10))
    session.add_batch(X, np.sin(4 * X[:, 0]) + X[:, 1])
    session.refit()
    pending = rng.uniform(size=(14, 10))

    def propose():
        model = session.model_with_pending(pending)
        scorer = session.acquisition_on_unit(WeightedAcquisition(0.8), model=model)
        return maximize_acquisition(
            scorer, session.unit_bounds(), rng=rng, n_candidates=1024, n_restarts=2
        )

    x = benchmark.pedantic(propose, rounds=3, iterations=1)
    assert x.shape == (10,)
