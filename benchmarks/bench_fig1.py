"""Figure 1 — asynchronous vs synchronous schedule illustration (B = 3).

The paper's Fig. 1 shows three workers under both disciplines: synchronous
batches leave workers idle until the slowest member finishes; the
asynchronous scheme refills immediately.  This bench reproduces the figure as
ASCII Gantt charts from the deterministic worker-pool simulator and reports
the makespan/utilization gap.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.problem import FunctionProblem
from repro.sched.workers import VirtualWorkerPool

#: Evaluation durations in Fig. 1 style: heterogeneous, batch of 3.
DURATIONS = [4.0, 7.0, 3.0, 5.0, 2.0, 6.0, 3.0, 4.0, 5.0]
BATCH = 3


def make_problem():
    table = {float(i): d for i, d in enumerate(DURATIONS)}
    return FunctionProblem(
        lambda x: 0.0,
        [[0.0, len(DURATIONS)]],
        cost_model=lambda x: table[float(round(x[0]))],
        name="fig1",
    )


def run_sync() -> VirtualWorkerPool:
    pool = VirtualWorkerPool(make_problem(), BATCH)
    for start in range(0, len(DURATIONS), BATCH):
        for i in range(start, min(start + BATCH, len(DURATIONS))):
            pool.submit(np.array([float(i)]), batch=start // BATCH)
        pool.wait_all()
    return pool


def run_async() -> VirtualWorkerPool:
    pool = VirtualWorkerPool(make_problem(), BATCH)
    for i in range(BATCH):
        pool.submit(np.array([float(i)]))
    for i in range(BATCH, len(DURATIONS)):
        pool.wait_next()
        pool.submit(np.array([float(i)]))
    pool.wait_all()
    return pool


def ascii_gantt(pool: VirtualWorkerPool, title: str, unit: float = 1.0) -> str:
    """Render per-worker busy intervals as text bars."""
    lines = [title]
    span = pool.trace.makespan
    for w, intervals in enumerate(pool.trace.gantt_rows()):
        cells = [" "] * int(round(span / unit))
        for k, (start, stop) in enumerate(intervals):
            for t in range(int(round(start / unit)), int(round(stop / unit))):
                cells[t] = chr(ord("A") + (k % 26))
        lines.append(f"  worker {w} |{''.join(cells)}|")
    lines.append(
        f"  makespan {span:.0f} s, utilization {pool.trace.utilization():.1%}"
    )
    return "\n".join(lines)


def run_fig1(verbose: bool = True):
    sync = run_sync()
    async_ = run_async()
    text = "\n".join(
        [
            ascii_gantt(sync, "Synchronous batch (B=3):"),
            "",
            ascii_gantt(async_, "Asynchronous batch (B=3):"),
            "",
            f"Async completes the same {len(DURATIONS)} evaluations "
            f"{sync.trace.makespan - async_.trace.makespan:.0f} s sooner "
            f"({100 * (1 - async_.trace.makespan / sync.trace.makespan):.1f}% less).",
        ]
    )
    if verbose:
        print("\n" + text)
    return sync, async_, text


def test_fig1_schedule(benchmark):
    sync, async_, text = benchmark.pedantic(
        lambda: run_fig1(verbose=False), rounds=1, iterations=1
    )
    print("\n" + text)
    assert async_.trace.makespan < sync.trace.makespan
    assert async_.trace.utilization() > sync.trace.utilization()
    # Both disciplines perform exactly the same work.
    assert sync.trace.total_busy_time == async_.trace.total_busy_time


if __name__ == "__main__":
    argparse.ArgumentParser(description=__doc__).parse_args()
    run_fig1()
