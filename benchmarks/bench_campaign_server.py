"""Campaign-server bench — ask/tell throughput under many concurrent tenants.

Hosts N campaigns on one in-process :class:`CampaignServer` and drives them
to completion from several client connections (one thread per connection,
campaigns sharded across them), the way a farm of simulator front-ends
would.  Reports aggregate ask/tell throughput and per-op round-trip latency
percentiles per scale:

======== ========== ======== =============
scale    campaigns  clients  max_evals
======== ========== ======== =============
smoke    20         4        6
reduced  60         6        8
paper    150        8        10
======== ========== ======== =============

The smoke scale is the acceptance floor: >= 20 concurrent campaigns must
finish with every op accounted for.  Run standalone::

    python benchmarks/bench_campaign_server.py --smoke --check

Under pytest-benchmark the smoke scale runs once and asserts the floor.

``--chaos`` runs the robustness sweep instead: campaigns driven through
the fault-injecting :class:`~repro.distributed.chaos.ChaosProxy` (drop /
delay / truncate / corrupt / disconnect) by a retrying client, with the
server kill -9'd and restarted from its ``--journal-dir`` at seed-derived
points mid-run.  Every ask is compared byte-for-byte against an
uninterrupted local golden twin, and ``--check`` asserts the acceptance
criterion: identical trajectories, every campaign finished with exactly
``max_evals`` issued — retried asks/tells never double-issue or
double-count.  ``--seed`` (default: ``$REPRO_CHAOS_SEED`` or 0) picks the
fault schedule.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import random
import shutil
import tempfile
import threading
import time

import numpy as np

from repro.circuits.benchmarks import sphere
from repro.core import make_campaign
from repro.distributed import CampaignClient, ChaosConfig, ChaosProxy, serve
from repro.obs import MetricsRegistry, Observability
from repro.utils.tables import format_table


@dataclasses.dataclass(frozen=True)
class Scale:
    name: str
    n_campaigns: int
    n_clients: int
    max_evals: int


SCALES = {
    "smoke": Scale("smoke", 20, 4, 6),
    "reduced": Scale("reduced", 60, 6, 8),
    "paper": Scale("paper", 150, 8, 10),
}

#: Cheap-but-real campaign config: a GP fit per ask, tiny acquisition search.
CONFIG = dict(n_init=3, acq_candidates=32, acq_restarts=1)


def _drive_shard(port: int, cids: list[str], latencies: dict, lock: threading.Lock,
                 errors: list) -> None:
    """One client connection driving its shard of campaigns round-robin."""
    problem = sphere(2)
    local: dict[str, list] = {"ask": [], "tell": []}
    try:
        with CampaignClient(port=port) as client:
            done: set[str] = set()
            while len(done) < len(cids):
                for cid in cids:
                    if cid in done:
                        continue
                    t0 = time.perf_counter()
                    x = client.ask(cid)[0]
                    local["ask"].append(time.perf_counter() - t0)
                    result = problem.evaluate(x)
                    t0 = time.perf_counter()
                    reply = client.tell(cid, x, result)
                    local["tell"].append(time.perf_counter() - t0)
                    if reply["done"]:
                        done.add(cid)
    except Exception as exc:  # noqa: BLE001 — surface in the main thread
        errors.append(exc)
    with lock:
        latencies["ask"].extend(local["ask"])
        latencies["tell"].extend(local["tell"])


def run_bench(scale_name: str, *, verbose: bool = True):
    scale = SCALES[scale_name]
    obs = Observability(metrics=MetricsRegistry())
    server = serve(max_workers=None, obs=obs, background=True)
    latencies: dict[str, list] = {"ask": [], "tell": []}
    lock = threading.Lock()
    errors: list = []
    try:
        with CampaignClient(port=server.port) as admin:
            cids = [
                admin.create(
                    "EasyBO-2", "sphere2",
                    config=dict(rng=seed, max_evals=scale.max_evals, **CONFIG),
                )
                for seed in range(scale.n_campaigns)
            ]
            shards = [cids[i::scale.n_clients] for i in range(scale.n_clients)]
            start = time.perf_counter()
            threads = [
                threading.Thread(target=_drive_shard,
                                 args=(server.port, shard, latencies, lock, errors))
                for shard in shards if shard
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
            metrics = admin.metrics()
    finally:
        server.stop()
    if errors:
        raise errors[0]

    n_ops = len(latencies["ask"]) + len(latencies["tell"])
    rows = []
    for op in ("ask", "tell"):
        lat = np.asarray(latencies[op]) * 1e3  # ms
        rows.append([
            op, len(lat),
            f"{np.percentile(lat, 50):.2f}",
            f"{np.percentile(lat, 95):.2f}",
            f"{np.percentile(lat, 99):.2f}",
        ])
    rendered = format_table(
        ["op", "count", "p50 ms", "p95 ms", "p99 ms"], rows,
        title=(f"campaign server: {scale.n_campaigns} concurrent campaigns, "
               f"{scale.n_clients} clients — {n_ops / elapsed:.0f} ops/s "
               f"({elapsed:.1f} s total)"),
    )
    stats = {
        "scale": scale, "elapsed": elapsed, "n_ops": n_ops,
        "ops_per_sec": n_ops / elapsed, "metrics": metrics,
    }
    if verbose:
        print("\n" + rendered)
    return stats, rendered


def check(stats) -> None:
    scale: Scale = stats["scale"]
    metrics = stats["metrics"]
    assert scale.n_campaigns >= 20, "acceptance floor is 20 concurrent campaigns"
    assert metrics["finished"] == scale.n_campaigns, (
        f"only {metrics['finished']}/{scale.n_campaigns} campaigns finished"
    )
    assert metrics["failed"] == 0 and metrics["suspended"] == 0
    # Every issued evaluation went through one ask and one tell round-trip.
    expected = scale.n_campaigns * scale.max_evals
    assert stats["n_ops"] == 2 * expected, (
        f"expected {2 * expected} ops, measured {stats['n_ops']}"
    )


def run_chaos(seed: int = 0, *, n_campaigns: int = 4, max_evals: int = 6,
              n_kills: int = 4, verbose: bool = True):
    """Drive campaigns through the chaos proxy with kill -9s mid-run.

    Single-threaded on purpose: the op counter is the clock the seeded kill
    schedule fires on, so a given ``seed`` reproduces the exact interleaving
    of faults, kills, and recoveries.  Asks are checked byte-for-byte
    against uninterrupted local twins *as they happen* — a divergence fails
    at the first drifted point, not at a fuzzy end-of-run comparison.
    """
    journal_dir = tempfile.mkdtemp(prefix="bench-chaos-")
    obs = Observability(metrics=MetricsRegistry())
    server = serve(journal_dir=journal_dir, obs=obs, background=True)
    config = ChaosConfig(drop=0.06, delay=0.04, truncate=0.03, corrupt=0.03,
                         disconnect=0.03, delay_s=0.01)
    proxy = ChaosProxy(server.port, config=config, seed=seed)
    problem = sphere(2)
    total_ops = n_campaigns * max_evals * 2
    kill_at = sorted(random.Random(seed).sample(
        range(2, total_ops), min(n_kills, total_ops - 2)))
    restarts = 0
    op = 0

    def maybe_kill():
        nonlocal server, restarts, op
        op += 1
        if kill_at and op >= kill_at[0]:
            kill_at.pop(0)
            server.abort()  # kill -9: no suspends, no journal bookkeeping
            server._thread.join(timeout=5.0)
            server = serve(journal_dir=journal_dir, obs=obs, background=True)
            proxy.set_upstream(server.port)
            restarts += 1

    start = time.perf_counter()
    try:
        client = CampaignClient(port=proxy.port, timeout=0.35, retries=12,
                                backoff=0.01)
        cids, twins = [], {}
        for i in range(n_campaigns):
            cfg = dict(rng=100 + i, max_evals=max_evals, **CONFIG)
            cid = client.create("EasyBO-2", "sphere2", config=cfg)
            cids.append(cid)
            twins[cid] = make_campaign("EasyBO-2", sphere(2), **cfg)
        done: set[str] = set()
        while len(done) < len(cids):
            for cid in cids:
                if cid in done:
                    continue
                x = client.ask(cid)[0]
                maybe_kill()
                golden = twins[cid].ask()
                if not np.array_equal(x, golden):
                    raise AssertionError(
                        f"trajectory diverged on {cid}: server asked {x!r}, "
                        f"golden twin asked {golden!r}"
                    )
                result = problem.evaluate(x)
                reply = client.tell(cid, x, result)
                maybe_kill()
                twins[cid].tell(x, result)
                if reply["done"]:
                    done.add(cid)
        statuses = {cid: client.status(cid) for cid in cids}
        metrics = client.metrics()
        elapsed = time.perf_counter() - start
        client.close()
    finally:
        proxy.stop()
        server.stop()
        shutil.rmtree(journal_dir, ignore_errors=True)

    faults = {k: proxy.stats[k] for k in
              ("dropped", "delayed", "truncated", "corrupted", "disconnects")}
    rows = [
        ["campaigns finished",
         f"{sum(s['state'] == 'finished' for s in statuses.values())}"
         f"/{n_campaigns}"],
        ["server kills survived", str(restarts)],
        ["client retries", str(client.n_retries)],
        ["client reconnects", str(client.n_reconnects)],
        ["server-side replayed replies", str(metrics["rpc_replayed_replies"])],
        ["proxy faults injected", str(sum(faults.values()))],
        *[[f"  {k}", str(v)] for k, v in faults.items()],
        ["frames through proxy", str(proxy.stats["frames"])],
    ]
    rendered = format_table(
        ["metric", "value"], rows,
        title=(f"chaos sweep (seed {seed}): {n_campaigns} campaigns x "
               f"{max_evals} evals, bit-exact vs golden — {elapsed:.1f} s"),
    )
    stats = {
        "seed": seed, "n_campaigns": n_campaigns, "max_evals": max_evals,
        "restarts": restarts, "retries": client.n_retries,
        "reconnects": client.n_reconnects, "statuses": statuses,
        "metrics": metrics, "proxy": dict(proxy.stats), "elapsed": elapsed,
    }
    if verbose:
        print("\n" + rendered)
    return stats, rendered


def check_chaos(stats) -> None:
    """Acceptance criterion: chaos changed nothing observable."""
    statuses = stats["statuses"]
    for cid, status in statuses.items():
        assert status["state"] == "finished", f"{cid} ended {status['state']}"
        assert status["issued"] == stats["max_evals"], (
            f"{cid} issued {status['issued']} != {stats['max_evals']}: "
            "a retry double-issued or a recovery lost points"
        )
        assert status["n_observations"] == stats["max_evals"]
    assert stats["restarts"] >= 1, "kill schedule never fired"
    assert stats["reconnects"] >= stats["restarts"], (
        "every server kill must force at least one client reconnect"
    )
    injected = sum(stats["proxy"][k] for k in
                   ("dropped", "delayed", "truncated", "corrupted",
                    "disconnects"))
    assert injected > 0, "chaos proxy injected nothing; the sweep is vacuous"


def test_campaign_server_smoke(benchmark):
    stats, rendered = benchmark.pedantic(
        lambda: run_bench("smoke", verbose=False),
        rounds=1,
        iterations=1,
    )
    print("\n" + rendered)
    check(stats)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="reduced")
    parser.add_argument("--smoke", action="store_true",
                        help="shorthand for --scale smoke")
    parser.add_argument("--check", action="store_true",
                        help="assert the >= 20-concurrent-campaigns floor "
                             "(or, with --chaos, the bit-exact-survival "
                             "criterion)")
    parser.add_argument("--chaos", action="store_true",
                        help="run the chaos sweep: faults + server kills, "
                             "bit-exact vs golden twins")
    parser.add_argument("--seed", type=int,
                        default=int(os.environ.get("REPRO_CHAOS_SEED", "0")),
                        help="chaos fault-schedule seed "
                             "(default: $REPRO_CHAOS_SEED or 0)")
    args = parser.parse_args()
    if args.chaos:
        stats, _ = run_chaos(args.seed)
        if args.check:
            check_chaos(stats)
            print("chaos checks passed (bit-exact through kills and faults)")
    else:
        stats, _ = run_bench("smoke" if args.smoke else args.scale)
        if args.check:
            check(stats)
            print("checks passed")
