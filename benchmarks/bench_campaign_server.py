"""Campaign-server bench — ask/tell throughput under many concurrent tenants.

Hosts N campaigns on one in-process :class:`CampaignServer` and drives them
to completion from several client connections (one thread per connection,
campaigns sharded across them), the way a farm of simulator front-ends
would.  Reports aggregate ask/tell throughput and per-op round-trip latency
percentiles per scale:

======== ========== ======== =============
scale    campaigns  clients  max_evals
======== ========== ======== =============
smoke    20         4        6
reduced  60         6        8
paper    150        8        10
======== ========== ======== =============

The smoke scale is the acceptance floor: >= 20 concurrent campaigns must
finish with every op accounted for.  Run standalone::

    python benchmarks/bench_campaign_server.py --smoke --check

Under pytest-benchmark the smoke scale runs once and asserts the floor.
"""

from __future__ import annotations

import argparse
import dataclasses
import threading
import time

import numpy as np

from repro.circuits.benchmarks import sphere
from repro.distributed import CampaignClient, serve
from repro.obs import MetricsRegistry, Observability
from repro.utils.tables import format_table


@dataclasses.dataclass(frozen=True)
class Scale:
    name: str
    n_campaigns: int
    n_clients: int
    max_evals: int


SCALES = {
    "smoke": Scale("smoke", 20, 4, 6),
    "reduced": Scale("reduced", 60, 6, 8),
    "paper": Scale("paper", 150, 8, 10),
}

#: Cheap-but-real campaign config: a GP fit per ask, tiny acquisition search.
CONFIG = dict(n_init=3, acq_candidates=32, acq_restarts=1)


def _drive_shard(port: int, cids: list[str], latencies: dict, lock: threading.Lock,
                 errors: list) -> None:
    """One client connection driving its shard of campaigns round-robin."""
    problem = sphere(2)
    local: dict[str, list] = {"ask": [], "tell": []}
    try:
        with CampaignClient(port=port) as client:
            done: set[str] = set()
            while len(done) < len(cids):
                for cid in cids:
                    if cid in done:
                        continue
                    t0 = time.perf_counter()
                    x = client.ask(cid)[0]
                    local["ask"].append(time.perf_counter() - t0)
                    result = problem.evaluate(x)
                    t0 = time.perf_counter()
                    reply = client.tell(cid, x, result)
                    local["tell"].append(time.perf_counter() - t0)
                    if reply["done"]:
                        done.add(cid)
    except Exception as exc:  # noqa: BLE001 — surface in the main thread
        errors.append(exc)
    with lock:
        latencies["ask"].extend(local["ask"])
        latencies["tell"].extend(local["tell"])


def run_bench(scale_name: str, *, verbose: bool = True):
    scale = SCALES[scale_name]
    obs = Observability(metrics=MetricsRegistry())
    server = serve(max_workers=None, obs=obs, background=True)
    latencies: dict[str, list] = {"ask": [], "tell": []}
    lock = threading.Lock()
    errors: list = []
    try:
        with CampaignClient(port=server.port) as admin:
            cids = [
                admin.create(
                    "EasyBO-2", "sphere2",
                    config=dict(rng=seed, max_evals=scale.max_evals, **CONFIG),
                )
                for seed in range(scale.n_campaigns)
            ]
            shards = [cids[i::scale.n_clients] for i in range(scale.n_clients)]
            start = time.perf_counter()
            threads = [
                threading.Thread(target=_drive_shard,
                                 args=(server.port, shard, latencies, lock, errors))
                for shard in shards if shard
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
            metrics = admin.metrics()
    finally:
        server.stop()
    if errors:
        raise errors[0]

    n_ops = len(latencies["ask"]) + len(latencies["tell"])
    rows = []
    for op in ("ask", "tell"):
        lat = np.asarray(latencies[op]) * 1e3  # ms
        rows.append([
            op, len(lat),
            f"{np.percentile(lat, 50):.2f}",
            f"{np.percentile(lat, 95):.2f}",
            f"{np.percentile(lat, 99):.2f}",
        ])
    rendered = format_table(
        ["op", "count", "p50 ms", "p95 ms", "p99 ms"], rows,
        title=(f"campaign server: {scale.n_campaigns} concurrent campaigns, "
               f"{scale.n_clients} clients — {n_ops / elapsed:.0f} ops/s "
               f"({elapsed:.1f} s total)"),
    )
    stats = {
        "scale": scale, "elapsed": elapsed, "n_ops": n_ops,
        "ops_per_sec": n_ops / elapsed, "metrics": metrics,
    }
    if verbose:
        print("\n" + rendered)
    return stats, rendered


def check(stats) -> None:
    scale: Scale = stats["scale"]
    metrics = stats["metrics"]
    assert scale.n_campaigns >= 20, "acceptance floor is 20 concurrent campaigns"
    assert metrics["finished"] == scale.n_campaigns, (
        f"only {metrics['finished']}/{scale.n_campaigns} campaigns finished"
    )
    assert metrics["failed"] == 0 and metrics["suspended"] == 0
    # Every issued evaluation went through one ask and one tell round-trip.
    expected = scale.n_campaigns * scale.max_evals
    assert stats["n_ops"] == 2 * expected, (
        f"expected {2 * expected} ops, measured {stats['n_ops']}"
    )


def test_campaign_server_smoke(benchmark):
    stats, rendered = benchmark.pedantic(
        lambda: run_bench("smoke", verbose=False),
        rounds=1,
        iterations=1,
    )
    print("\n" + rendered)
    check(stats)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="reduced")
    parser.add_argument("--smoke", action="store_true",
                        help="shorthand for --scale smoke")
    parser.add_argument("--check", action="store_true",
                        help="assert the >= 20-concurrent-campaigns floor")
    args = parser.parse_args()
    stats, _ = run_bench("smoke" if args.smoke else args.scale)
    if args.check:
        check(stats)
        print("checks passed")
