"""Table II — class-E power-amplifier optimization grid.

Reproduces the paper's Table II layout on our class-E testbench.  The
transient simulation is the expensive part, so the smoke/reduced scales
shorten the settling run (the FOM surface keeps its shape; absolute PAE drops
a little when not fully settled, identically for every algorithm).

Run standalone::

    python benchmarks/bench_table2.py --scale reduced --seed 0
"""

from __future__ import annotations

import argparse

from harness import SCALES, grid_labels, grid_table, run_grid, speedup_report, summaries

from repro.circuits import ClassEProblem

#: Transient sizing per scale: (settle_periods, measure_periods, steps/period).
TRANSIENT = {
    "smoke": (8, 2, 40),
    "reduced": (12, 3, 48),
    "paper": (20, 5, 64),
}


def make_factory(scale_name: str):
    settle, measure, steps = TRANSIENT[scale_name]

    def factory():
        return ClassEProblem(
            settle_periods=settle, measure_periods=measure, steps_per_period=steps
        )

    return factory


def run_table2(scale_name: str = "smoke", seed: int = 0, verbose: bool = True):
    """Run the Table II grid; returns (grid, rendered report)."""
    scale = SCALES["table2"][scale_name]
    labels = grid_labels(scale)
    if verbose:
        print(f"Table II grid at scale {scale.name!r}: {len(labels)} algorithms x "
              f"{scale.repetitions} repetitions, {scale.max_evals} sims each "
              f"(DE: {scale.de_evals})")
    grid = run_grid(labels, make_factory(scale_name), scale, seed=seed, verbose=verbose)
    table = grid_table(grid, "TABLE II: class-E power amplifier (reproduction)")
    report = speedup_report(grid, scale.batch_sizes)
    return grid, table + "\n\n" + report


def check_shape(grid) -> None:
    stats = summaries(grid)
    for b in (5, 15):
        sync = stats.get(f"EasyBO-SP-{b}")
        async_ = stats.get(f"EasyBO-{b}")
        if sync and async_:
            assert async_.mean_time < sync.mean_time
    assert stats["DE"].mean_time > 2 * stats["EasyBO"].mean_time


def test_table2_smoke(benchmark):
    grid, rendered = benchmark.pedantic(
        lambda: run_table2("smoke", seed=0, verbose=False),
        rounds=1,
        iterations=1,
    )
    print("\n" + rendered)
    check_shape(grid)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("smoke", "reduced", "paper"),
                        default="reduced")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    grid, rendered = run_table2(args.scale, args.seed)
    print("\n" + rendered)
    check_shape(grid)
