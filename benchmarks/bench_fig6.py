"""Figure 6 — class-E best-FOM versus wall-clock time at B = 15.

The class-E analogue of Fig. 4: the paper reads off 80.0% / 86.4% time
reductions (up to 7.35x speed-up) for EasyBO-15 against pBO-15 / pHCBO-15.
The gap is much larger than on the op-amp because the class-E simulation
times are far more heterogeneous (sigma ~ 0.35 vs 0.10 in our calibrated
cost models), so synchronous batches waste more worker time.
"""

from __future__ import annotations

import argparse

import numpy as np

from bench_fig4 import mean_curve
from bench_table2 import TRANSIENT, make_factory
from harness import SCALES, run_grid, time_to_target_report

LABELS = ("pBO-15", "pHCBO-15", "EasyBO-15")


def run_fig6(scale_name: str = "smoke", seed: int = 0, verbose: bool = True):
    scale = SCALES["table2"][scale_name]
    grid = run_grid(LABELS, make_factory(scale_name), scale, seed=seed,
                    verbose=verbose)
    lines = ["Fig. 6 — best FOM vs simulation time (mean over repetitions):"]
    for label in LABELS:
        t, curve = mean_curve(grid[label])
        series = "  ".join(f"({ti:6.0f}s, {vi:5.2f})" for ti, vi in
                           zip(t[:: len(t) // 8], curve[:: len(t) // 8]))
        lines.append(f"  {label:<10} {series}")
    lines.append("")
    lines.append(time_to_target_report(grid, LABELS, reference="EasyBO-15"))
    text = "\n".join(lines)
    if verbose:
        print("\n" + text)
    return grid, text


def check_shape(grid) -> None:
    easybo = np.mean([r.wall_clock for r in grid["EasyBO-15"]])
    pbo = np.mean([r.wall_clock for r in grid["pBO-15"]])
    phcbo = np.mean([r.wall_clock for r in grid["pHCBO-15"]])
    assert easybo < pbo
    assert easybo < phcbo
    # The heterogeneous class-E costs should give a large async advantage.
    assert easybo < 0.85 * min(pbo, phcbo)


def test_fig6_smoke(benchmark):
    grid, text = benchmark.pedantic(
        lambda: run_fig6("smoke", seed=0, verbose=False), rounds=1, iterations=1
    )
    print("\n" + text)
    check_shape(grid)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("smoke", "reduced", "paper"),
                        default="reduced")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    grid, _ = run_fig6(args.scale, args.seed)
    check_shape(grid)
