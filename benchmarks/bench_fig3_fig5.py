"""Figures 3 and 5 — benchmark-circuit schematics.

The paper's Figs. 3/5 are transistor-level schematics of the two testbenches.
A text bench cannot draw them, so this reproduces their content: the full
netlist of each circuit (every device, connection, and nominal value), the
element inventory, and the design-variable table — everything the schematic
communicates.
"""

from __future__ import annotations

import argparse

from repro.circuits.classe import build_classe, classe_design_space
from repro.circuits.opamp import build_opamp, opamp_design_space


def nominal_opamp_values() -> dict:
    space = opamp_design_space()
    # Geometric mid-point of every (log-scaled) range.
    mid = space.bounds.mean(axis=1)
    return space.to_values(mid)


def nominal_classe_values() -> dict:
    space = classe_design_space()
    mid = space.bounds.mean(axis=1)
    return space.to_values(mid)


def run_fig3_fig5(verbose: bool = True) -> str:
    opamp = build_opamp(nominal_opamp_values())
    classe = build_classe(nominal_classe_values())
    opamp.validate()
    classe.validate()
    parts = [
        "Fig. 3 — operational amplifier (netlist at mid-range sizing):",
        opamp.summary(),
        "",
        "Design variables:",
        opamp_design_space().describe(),
        "",
        "Fig. 5 — class-E power amplifier (netlist at mid-range sizing):",
        classe.summary(),
        "",
        "Design variables:",
        classe_design_space().describe(),
    ]
    text = "\n".join(parts)
    if verbose:
        print("\n" + text)
    return text


def test_fig3_fig5_netlists(benchmark):
    text = benchmark.pedantic(lambda: run_fig3_fig5(verbose=False), rounds=1, iterations=1)
    print("\n" + text)
    # The schematic content the paper shows: 8 transistors + Rz/Cc for the
    # op-amp, a single switch with choke/resonator/match for the class-E.
    assert "8 Mosfet" in text
    assert "1 Mosfet" in text
    assert "rz" in text and "cc" in text
    assert "lchoke" in text and "c0" in text and "rl" in text
    # 10 + 12 design variables, as in the paper.
    assert text.count("log10") + text.count("linear") == 22


if __name__ == "__main__":
    argparse.ArgumentParser(description=__doc__).parse_args()
    run_fig3_fig5()
