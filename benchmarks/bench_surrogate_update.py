"""Surrogate update-path bench — incremental rank-k vs full refactorization.

Measures the tentpole claim of the incremental surrogate path: at frozen
hyperparameters (``refit_every`` large), folding one new observation into
the GP and hallucinating a batch of pending points costs O(n^2) with the
rank-k Cholesky append + factor-sharing view, versus O(n^3) for the
from-scratch rebuild.  Datasets are real op-amp FOMs (and class-E at larger
scales) sampled by the same random design the drivers use, at the paper's
dataset sizes (n = 150 is one full op-amp run).

Three checks gate the result:

* **speedup** — the incremental path must be >= 2x faster per event than the
  full path at n = 150 (the CI perf-smoke job fails otherwise);
* **trajectory equality** — a seeded sequential EasyBO run on the op-amp
  queries *exactly* the same points in both modes (no pending points, so
  the two modes execute bit-identical arithmetic; batch drivers are instead
  covered per-event by ``tests/test_incremental_equivalence.py``);
* **disabled-observability overhead** — the ``NULL_OBS`` profiling hooks
  the surrogate session now carries (one ``fit`` span + one ``hallucinate``
  span per event) must cost <= 5% of the cheapest measured per-event time,
  so observability is free when nobody asked for it.

A second, scaling-focused half of the bench covers the budgeted sparse
posterior (:mod:`repro.gp.sparse`): an n-sweep to 10k observations on a
synthetic surface timing the per-event cost (tell + hallucinate + predict)
of the exact and sparse paths, a regret-parity smoke on branin/hartmann6
paired seeds, and a long synthetic ask/tell campaign asserting bounded
per-ask latency under ``surrogate="auto"``.  ``--check`` runs those three
gates (the CI surrogate-scaling job fails when any trips):

* **sparse speedup** — the sparse per-event path must be >=
  ``MIN_SPARSE_SPEEDUP``x faster than the exact one at n = 2000;
* **regret parity** — on paired seeds, the sparse driver's mean final
  regret must stay within ``REGRET_PARITY_FACTOR``x of the exact driver's
  (plus a small absolute floor for the noise-dominated regime);
* **bounded ask latency** — a 5000-evaluation campaign's late-window ask
  latency must stay within ``MAX_LATE_ASK_GROWTH``x of its mid-window
  latency (an O(n^3) exact path blows this up by orders of magnitude).

Run standalone for larger scales or to export the timing JSON consumed by
CI::

    python benchmarks/bench_surrogate_update.py --scale reduced --json timings.json
    python benchmarks/bench_surrogate_update.py --check --evals 5000
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time

import numpy as np

from repro.circuits import ClassEProblem, OpAmpProblem, branin, hartmann6
from repro.core.campaign import make_campaign
from repro.core.doe import random_design
from repro.core.easybo import make_algorithm
from repro.core.surrogate import HallucinatedView, SurrogateSession
from repro.gp import (
    GaussianProcess,
    SparseGaussianProcess,
    SparseHallucinatedView,
    SquaredExponential,
)
from repro.utils.tables import format_table


@dataclasses.dataclass(frozen=True)
class Scale:
    name: str
    sizes: tuple  # dataset sizes n at which per-event cost is measured
    events: int  # timed events (add + refit + hallucinate) per measurement
    repetitions: int  # best-of repetitions per (problem, n, mode) cell
    problems: tuple  # dataset sources
    trajectory_evals: int  # budget of the seeded equality run


SCALES = {
    "smoke": Scale("smoke", (150,), 30, 3, ("opamp",), 14),
    "reduced": Scale("reduced", (150, 300), 40, 3, ("opamp", "classe"), 20),
    "paper": Scale("paper", (150, 300, 600), 50, 5, ("opamp", "classe"), 30),
}

#: Pending points hallucinated per event (the paper's B-1 at B=5).
N_PENDING = 4

#: CI gate: minimum per-event speedup of incremental over full at n=150.
MIN_SPEEDUP_AT_150 = 2.0

#: CI gate: maximum fraction of the cheapest per-event time the disabled
#: observability hooks may cost (tracing off must be essentially free).
MAX_OBS_OVERHEAD_FRACTION = 0.05

#: Disabled profiling hooks fired per surrogate event (fit + hallucinate).
OBS_HOOKS_PER_EVENT = 2


def make_problem(name: str):
    if name == "opamp":
        return OpAmpProblem()
    if name == "classe":
        # Reduced transient fidelity: the bench times linear algebra, not
        # the simulator; the FOM landscape just has to be the real one.
        return ClassEProblem(settle_periods=10, measure_periods=2,
                            steps_per_period=48)
    raise ValueError(f"unknown bench problem {name!r}")


def build_dataset(problem, n: int, rng) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate a random design: the same data a real run would collect."""
    X = random_design(problem.bounds, n, rng)
    y = np.asarray([problem.evaluate(x).fom for x in X])
    # Failed corners produce NaN FOMs on some problems; the session rejects
    # them (as the drivers' failure policies would), so impute the minimum.
    bad = ~np.isfinite(y)
    if bad.any():
        y[bad] = np.nanmin(y[~bad]) if (~bad).any() else 0.0
    return X, y


def time_mode(problem, X, y, mode: str, n: int, events: int) -> float:
    """Mean per-event seconds (refit + hallucination) at frozen theta."""
    session = SurrogateSession(
        problem.bounds, rng=0, surrogate_update=mode, refit_every=10**9
    )
    session.add_batch(X[:n], y[:n])
    session.refit()  # the one ML-II fit; the timed window starts after it
    from repro.sched.trace import SurrogateStats

    session.stats = SurrogateStats()  # count and time only the event loop
    for i in range(events):
        session.add(X[n + i], y[n + i])
        session.refit()
        session.model_with_pending(X[n + i + 1 : n + i + 1 + N_PENDING])
    stats = session.stats
    assert stats.n_refits == events and stats.n_fallbacks == 0
    if mode == "incremental":
        assert stats.n_incremental_updates == events
        assert stats.n_hallucinated_views == events
    else:
        assert stats.n_refactorizations == events
        assert stats.n_hallucinated_rebuilds == events
    return stats.mean_event_seconds


def check_trajectory_equality(scale: Scale, seed: int) -> int:
    """Seeded sequential EasyBO on the op-amp: both modes, same queries.

    Returns the number of compared evaluations.  Sequential EasyBO has no
    pending points, so the incremental mode must reproduce the full mode's
    queried points *exactly* — any difference means the fast path changed
    the algorithm, not just its cost.
    """
    queried = {}
    for mode in ("full", "incremental"):
        driver = make_algorithm(
            "EasyBO", OpAmpProblem(), rng=seed, n_init=6,
            max_evals=scale.trajectory_evals, acq_candidates=256,
            acq_restarts=1, surrogate_update=mode,
        )
        result = driver.run()
        queried[mode] = np.vstack([r.x for r in result.trace.records])
    if not np.array_equal(queried["full"], queried["incremental"]):
        delta = np.abs(queried["full"] - queried["incremental"]).max()
        raise AssertionError(
            f"incremental mode changed the queried points (max |dx|={delta:.3e})"
        )
    return scale.trajectory_evals


def measure_obs_overhead(timings: dict) -> dict:
    """Cost of the disabled observability hooks, relative to a real event.

    The surrogate session enters one ``NULL_OBS.profile`` span for the refit
    and one for the hallucination of every event; both are shared-singleton
    no-ops.  Timing the hook pair directly (best of several tight loops) and
    dividing by the cheapest measured per-event cost in the grid gives the
    worst-case fractional overhead of leaving the hooks compiled in.
    """
    import time

    from repro.obs import NULL_OBS

    loops = 50_000
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(loops):
            with NULL_OBS.profile("fit", n=0):
                pass
            with NULL_OBS.profile("hallucinate", k=0):
                pass
        best = min(best, (time.perf_counter() - start) / loops)
    cheapest = min(
        cell[mode]
        for cell in timings["cells"]
        for mode in ("full", "incremental")
    )
    return {
        "hooks_per_event": OBS_HOOKS_PER_EVENT,
        "hook_pair_seconds": best,
        "cheapest_event_seconds": cheapest,
        "fraction_of_event": best / cheapest,
    }


def run_bench(scale_name: str = "smoke", seed: int = 0, verbose: bool = True):
    """Run the timing grid; returns (timings dict, rendered table)."""
    scale = SCALES[scale_name]
    max_n = max(scale.sizes)
    timings = {"scale": scale.name, "seed": seed, "cells": []}
    rows = []
    for problem_name in scale.problems:
        problem = make_problem(problem_name)
        rng = np.random.default_rng(seed)
        X, y = build_dataset(problem, max_n + scale.events + N_PENDING, rng)
        if verbose:
            print(f"{problem_name}: dataset of {len(y)} evaluations ready")
        for n in scale.sizes:
            cell = {"problem": problem_name, "n": n}
            for mode in ("full", "incremental"):
                per_event = min(
                    time_mode(problem, X, y, mode, n, scale.events)
                    for _ in range(scale.repetitions)
                )
                cell[mode] = per_event
            cell["speedup"] = cell["full"] / cell["incremental"]
            timings["cells"].append(cell)
            rows.append([
                problem_name,
                str(n),
                f"{1e6 * cell['full']:.0f}",
                f"{1e6 * cell['incremental']:.0f}",
                f"{cell['speedup']:.2f}x",
            ])
            if verbose:
                print(
                    f"  n={n:>4}  full {1e6 * cell['full']:7.0f} us/event  "
                    f"incremental {1e6 * cell['incremental']:7.0f} us/event  "
                    f"({cell['speedup']:.2f}x)"
                )
    timings["trajectory_evals_compared"] = check_trajectory_equality(scale, seed)
    if verbose:
        print(
            f"trajectory equality: {timings['trajectory_evals_compared']} "
            "sequential op-amp queries identical in both modes"
        )
    timings["obs_overhead"] = measure_obs_overhead(timings)
    if verbose:
        overhead = timings["obs_overhead"]
        print(
            f"disabled-observability overhead: "
            f"{1e9 * overhead['hook_pair_seconds']:.0f} ns/event "
            f"({100 * overhead['fraction_of_event']:.3f}% of the cheapest "
            "measured event)"
        )
    table = format_table(
        ["Problem", "n", "Full (us/event)", "Incremental (us/event)", "Speedup"],
        rows,
        title="Surrogate per-event cost at frozen hyperparameters "
        f"({N_PENDING} pending points hallucinated per event)",
    )
    return timings, table


def check_shape(timings: dict) -> None:
    """Assert the claims the CI perf-smoke job gates on."""
    at_150 = [c for c in timings["cells"] if c["n"] == 150]
    assert at_150, "bench must measure n=150 (the paper's full-run size)"
    for cell in at_150:
        assert cell["speedup"] >= MIN_SPEEDUP_AT_150, (
            f"incremental path only {cell['speedup']:.2f}x faster than full "
            f"at n=150 on {cell['problem']} (required: {MIN_SPEEDUP_AT_150}x)"
        )
    # Larger systems must not erode the advantage (O(n^3) vs O(n^2)).
    for cell in timings["cells"]:
        if cell["n"] > 150:
            assert cell["speedup"] >= MIN_SPEEDUP_AT_150
    assert timings["trajectory_evals_compared"] > 0
    overhead = timings["obs_overhead"]
    assert overhead["fraction_of_event"] <= MAX_OBS_OVERHEAD_FRACTION, (
        f"disabled observability hooks cost "
        f"{100 * overhead['fraction_of_event']:.2f}% of a surrogate event "
        f"(budget: {100 * MAX_OBS_OVERHEAD_FRACTION:.0f}%)"
    )


# --------------------------------------------------------------------------
# Sparse-posterior scaling half (``--check``, the CI surrogate-scaling job)
# --------------------------------------------------------------------------

#: n-sweep of the sparse-vs-exact per-event comparison.  Exact cells are
#: only measured up to ``MAX_EXACT_SWEEP_N`` — an exact fit at n = 10k is
#: exactly the O(n^3) wall the sparse path exists to avoid.
SPARSE_SWEEP_SIZES = (500, 1000, 2000, 5000, 10_000)
MAX_EXACT_SWEEP_N = 2000

#: Synthetic-surface dimensionality and inducing budget for the sweep.
SWEEP_DIM = 8
SWEEP_N_INDUCING = 256

#: Timed events and acquisition-sized predict batch per event.
SWEEP_EVENTS = 20
SWEEP_PREDICT_BATCH = 64

#: CI gate: minimum sparse-over-exact per-event speedup at n = 2000.
MIN_SPARSE_SPEEDUP = 5.0

#: CI gate: the sparse per-event cost is O(m^2), independent of n — the
#: largest sweep cell may not exceed this multiple of the smallest.
MAX_SPARSE_EVENT_GROWTH = 10.0

#: CI gates for the paired-seed regret-parity smoke.
REGRET_PARITY_FACTOR = 2.0
REGRET_PARITY_EPS = 0.3
REGRET_SEEDS = (0, 1, 2)

#: CI gate for the long-campaign ask-latency check: median ask latency in
#: the final window may not exceed this multiple of the mid-run window.
#: An exact O(n^3) path at n = 5000 overshoots this by orders of magnitude;
#: the sparse path's per-ask cost is O(m^2) plus small O(n m) terms.
MAX_LATE_ASK_GROWTH = 5.0
LATENCY_EVALS = 5000


def synthetic_surface(X: np.ndarray) -> np.ndarray:
    """Cheap smooth multi-scale test surface on the unit cube."""
    y = np.sin(3.0 * X).sum(axis=1)
    y += 0.5 * np.cos(2.0 * np.pi * X[:, 0] * X[:, -1])
    y += 0.25 * (X**2).sum(axis=1)
    return y


def synthetic_dataset(n: int, rng, dim: int = SWEEP_DIM):
    X = rng.random((n, dim))
    y = synthetic_surface(X) + 1e-3 * rng.standard_normal(n)
    return X, y


def time_posterior_events(kind: str, X, y, n: int, events: int) -> float:
    """Mean per-event seconds of the raw posterior hot loop at fixed theta.

    One event = fold one new observation in (rank-1 tell), hallucinate
    ``N_PENDING`` pending points, and serve an acquisition-sized predict
    batch through the hallucinated view — the ask-path work a driver pays
    between ML-II refits.
    """
    kernel = SquaredExponential(X.shape[1], lengthscales=0.4)
    if kind == "exact":
        model = GaussianProcess(kernel=kernel, noise_variance=1e-4)
    else:
        model = SparseGaussianProcess(
            kernel=kernel, noise_variance=1e-4, n_inducing=SWEEP_N_INDUCING
        )
    model.fit(X[:n], y[:n])
    lo = n + events + N_PENDING
    Xq = X[lo : lo + SWEEP_PREDICT_BATCH]
    started = time.perf_counter()
    for i in range(events):
        model.update(X[n + i : n + i + 1], y[n + i : n + i + 1])
        pending = X[n + i + 1 : n + i + 1 + N_PENDING]
        if kind == "exact":
            view = HallucinatedView(model, pending)
        else:
            view = SparseHallucinatedView(model, pending)
        view.predict(Xq)
    return (time.perf_counter() - started) / events


def run_scaling_sweep(seed: int = 0, sizes=SPARSE_SWEEP_SIZES,
                      events: int = SWEEP_EVENTS, repetitions: int = 3,
                      verbose: bool = True) -> dict:
    """Time the exact and sparse per-event paths across the n-sweep."""
    rng = np.random.default_rng(seed)
    max_n = max(sizes)
    X, y = synthetic_dataset(
        max_n + events + N_PENDING + SWEEP_PREDICT_BATCH, rng
    )
    sweep = {"seed": seed, "n_inducing": SWEEP_N_INDUCING, "cells": []}
    for n in sizes:
        cell = {"n": n}
        cell["sparse"] = min(
            time_posterior_events("sparse", X, y, n, events)
            for _ in range(repetitions)
        )
        if n <= MAX_EXACT_SWEEP_N:
            cell["exact"] = min(
                time_posterior_events("exact", X, y, n, events)
                for _ in range(repetitions)
            )
            cell["speedup"] = cell["exact"] / cell["sparse"]
        else:
            cell["exact"] = None
            cell["speedup"] = None
        sweep["cells"].append(cell)
        if verbose:
            exact = (
                f"{1e6 * cell['exact']:9.0f}" if cell["exact"] is not None
                else "        —"
            )
            ratio = (
                f"({cell['speedup']:.1f}x)" if cell["speedup"] is not None
                else ""
            )
            print(
                f"  n={n:>6}  exact {exact} us/event  "
                f"sparse {1e6 * cell['sparse']:7.0f} us/event  {ratio}"
            )
    return sweep


def check_scaling(sweep: dict) -> None:
    """Gate the sparse speedup and the flat sparse per-event cost."""
    by_n = {c["n"]: c for c in sweep["cells"]}
    assert 2000 in by_n, "sweep must measure n=2000 (the speedup gate point)"
    cell = by_n[2000]
    assert cell["speedup"] >= MIN_SPARSE_SPEEDUP, (
        f"sparse path only {cell['speedup']:.2f}x faster than exact at "
        f"n=2000 (required: {MIN_SPARSE_SPEEDUP}x)"
    )
    times = [c["sparse"] for c in sweep["cells"]]
    growth = max(times) / min(times)
    assert growth <= MAX_SPARSE_EVENT_GROWTH, (
        f"sparse per-event cost grew {growth:.1f}x across the n-sweep "
        f"(budget: {MAX_SPARSE_EVENT_GROWTH}x) — the O(m^2) claim is broken"
    )


def run_regret_parity(seeds=REGRET_SEEDS, verbose: bool = True) -> dict:
    """Paired-seed sparse-vs-exact final regret on branin / hartmann6.

    The sparse runs use inducing budgets below the evaluation count so the
    approximation is genuinely exercised; parity here means the budgeted
    posterior still drives the optimization to a comparable optimum, not
    that it is numerically identical.
    """
    cases = [
        ("branin", branin, dict(n_init=8, max_evals=36), 24),
        ("hartmann6", hartmann6, dict(n_init=10, max_evals=50), 32),
    ]
    parity = {"seeds": list(seeds), "problems": []}
    for name, factory, budget, n_inducing in cases:
        regrets = {"exact": [], "sparse": []}
        for seed in seeds:
            for kind in ("exact", "sparse"):
                problem = factory()
                driver = make_algorithm(
                    "EasyBO", problem, rng=seed, acq_candidates=128,
                    acq_restarts=1, surrogate=kind, n_inducing=n_inducing,
                    **budget,
                )
                result = driver.run()
                # Problems are maximized; regret is distance to the optimum.
                regrets[kind].append(
                    max(float(problem.optimum - result.best_fom), 0.0)
                )
        entry = {
            "problem": name,
            "exact": regrets["exact"],
            "sparse": regrets["sparse"],
            "mean_exact": float(np.mean(regrets["exact"])),
            "mean_sparse": float(np.mean(regrets["sparse"])),
        }
        parity["problems"].append(entry)
        if verbose:
            print(
                f"  {name:>9}: mean regret exact {entry['mean_exact']:.4f}  "
                f"sparse {entry['mean_sparse']:.4f} "
                f"(seeds {list(seeds)})"
            )
    return parity


def check_regret_parity(parity: dict) -> None:
    for entry in parity["problems"]:
        bound = REGRET_PARITY_FACTOR * entry["mean_exact"] + REGRET_PARITY_EPS
        assert entry["mean_sparse"] <= bound, (
            f"sparse mean regret {entry['mean_sparse']:.4f} on "
            f"{entry['problem']} exceeds {REGRET_PARITY_FACTOR}x the exact "
            f"mean {entry['mean_exact']:.4f} (+{REGRET_PARITY_EPS} floor)"
        )


def run_ask_latency(n_evals: int = LATENCY_EVALS, seed: int = 0,
                    verbose: bool = True) -> dict:
    """Long synthetic ask/tell campaign under ``surrogate="auto"``.

    The campaign crosses the auto threshold mid-run, so the late windows
    run on the sparse posterior; per-ask latency must stay bounded instead
    of growing O(n^2)-per-event / O(n^3)-per-refit the exact path would.
    ``refit_every=50`` matches how a real long campaign amortizes ML-II.
    """
    problem = hartmann6()
    campaign = make_campaign(
        "EasyBO", problem, rng=seed, n_init=32, max_evals=n_evals,
        surrogate="auto", max_exact_n=500, n_inducing=128, refit_every=50,
        acq_candidates=64, acq_restarts=1,
    )
    latencies = np.empty(n_evals)
    for i in range(n_evals):
        started = time.perf_counter()
        x = campaign.ask()
        latencies[i] = time.perf_counter() - started
        campaign.tell(x, problem.evaluate(x))
        if verbose and (i + 1) % 1000 == 0:
            print(
                f"  {i + 1}/{n_evals} evals, "
                f"ask p50 last 500: "
                f"{1e3 * float(np.median(latencies[max(0, i - 499) : i + 1])):.1f} ms"
            )
    campaign.finish()
    # Mid window: past the DoE and the first refits, before the auto
    # switch dominates; late window: the final stretch at full n.
    mid_lo, mid_hi = n_evals // 5, n_evals // 5 + max(n_evals // 10, 100)
    mid = float(np.median(latencies[mid_lo:mid_hi]))
    late = float(np.median(latencies[-max(n_evals // 10, 100):]))
    session = campaign.session
    return {
        "n_evals": n_evals,
        "mid_ask_seconds": mid,
        "late_ask_seconds": late,
        "growth": late / mid,
        "active_surrogate": session.active_surrogate,
        "n_mode_switches": session.stats.n_mode_switches,
        "best_fom": float(campaign.best()[1]),
    }


def check_ask_latency(latency: dict) -> None:
    assert latency["active_surrogate"] == "sparse", (
        "the long campaign must end on the sparse posterior "
        f"(got {latency['active_surrogate']!r})"
    )
    assert latency["n_mode_switches"] >= 1, "auto never switched modes"
    assert latency["growth"] <= MAX_LATE_ASK_GROWTH, (
        f"late-window ask latency grew {latency['growth']:.1f}x over the "
        f"mid-window ({1e3 * latency['mid_ask_seconds']:.1f} ms -> "
        f"{1e3 * latency['late_ask_seconds']:.1f} ms; budget: "
        f"{MAX_LATE_ASK_GROWTH}x) — per-ask cost is not bounded"
    )


def run_check(n_evals: int = LATENCY_EVALS, seed: int = 0,
              verbose: bool = True) -> dict:
    """The three ``--check`` gates; returns their raw measurements."""
    if verbose:
        print("sparse-vs-exact n-sweep (per event):")
    sweep = run_scaling_sweep(seed=seed, verbose=verbose)
    check_scaling(sweep)
    if verbose:
        print("regret parity (paired seeds):")
    parity = run_regret_parity(verbose=verbose)
    check_regret_parity(parity)
    if verbose:
        print(f"ask-latency campaign ({n_evals} evals, surrogate='auto'):")
    latency = run_ask_latency(n_evals=n_evals, seed=seed, verbose=verbose)
    check_ask_latency(latency)
    if verbose:
        print(
            f"  ask p50 mid {1e3 * latency['mid_ask_seconds']:.1f} ms -> "
            f"late {1e3 * latency['late_ask_seconds']:.1f} ms "
            f"({latency['growth']:.2f}x, budget {MAX_LATE_ASK_GROWTH}x); "
            f"ended on {latency['active_surrogate']} after "
            f"{latency['n_mode_switches']} mode switch(es)"
        )
    return {"sweep": sweep, "regret_parity": parity, "ask_latency": latency}


def test_surrogate_update_smoke(benchmark):
    timings, rendered = benchmark.pedantic(
        lambda: run_bench("smoke", seed=0, verbose=False),
        rounds=1,
        iterations=1,
    )
    print("\n" + rendered)
    check_shape(timings)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", type=str, default=None,
                        help="write the timing cells to this JSON file")
    parser.add_argument("--check", action="store_true",
                        help="run the sparse-posterior scaling gates "
                        "(n-sweep speedup, regret parity, ask latency) "
                        "instead of the incremental-vs-full grid")
    parser.add_argument("--evals", type=int, default=LATENCY_EVALS,
                        help="ask-latency campaign budget for --check "
                        f"(default: {LATENCY_EVALS})")
    args = parser.parse_args()
    if args.check:
        payload = run_check(n_evals=args.evals, seed=args.seed)
        print("all surrogate-scaling gates passed")
    else:
        payload, rendered = run_bench(args.scale, args.seed)
        print("\n" + rendered)
        check_shape(payload)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"timings written to {args.json}")
