"""Surrogate update-path bench — incremental rank-k vs full refactorization.

Measures the tentpole claim of the incremental surrogate path: at frozen
hyperparameters (``refit_every`` large), folding one new observation into
the GP and hallucinating a batch of pending points costs O(n^2) with the
rank-k Cholesky append + factor-sharing view, versus O(n^3) for the
from-scratch rebuild.  Datasets are real op-amp FOMs (and class-E at larger
scales) sampled by the same random design the drivers use, at the paper's
dataset sizes (n = 150 is one full op-amp run).

Three checks gate the result:

* **speedup** — the incremental path must be >= 2x faster per event than the
  full path at n = 150 (the CI perf-smoke job fails otherwise);
* **trajectory equality** — a seeded sequential EasyBO run on the op-amp
  queries *exactly* the same points in both modes (no pending points, so
  the two modes execute bit-identical arithmetic; batch drivers are instead
  covered per-event by ``tests/test_incremental_equivalence.py``);
* **disabled-observability overhead** — the ``NULL_OBS`` profiling hooks
  the surrogate session now carries (one ``fit`` span + one ``hallucinate``
  span per event) must cost <= 5% of the cheapest measured per-event time,
  so observability is free when nobody asked for it.

Run standalone for larger scales or to export the timing JSON consumed by
CI::

    python benchmarks/bench_surrogate_update.py --scale reduced --json timings.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json

import numpy as np

from repro.circuits import ClassEProblem, OpAmpProblem
from repro.core.doe import random_design
from repro.core.easybo import make_algorithm
from repro.core.surrogate import SurrogateSession
from repro.utils.tables import format_table


@dataclasses.dataclass(frozen=True)
class Scale:
    name: str
    sizes: tuple  # dataset sizes n at which per-event cost is measured
    events: int  # timed events (add + refit + hallucinate) per measurement
    repetitions: int  # best-of repetitions per (problem, n, mode) cell
    problems: tuple  # dataset sources
    trajectory_evals: int  # budget of the seeded equality run


SCALES = {
    "smoke": Scale("smoke", (150,), 30, 3, ("opamp",), 14),
    "reduced": Scale("reduced", (150, 300), 40, 3, ("opamp", "classe"), 20),
    "paper": Scale("paper", (150, 300, 600), 50, 5, ("opamp", "classe"), 30),
}

#: Pending points hallucinated per event (the paper's B-1 at B=5).
N_PENDING = 4

#: CI gate: minimum per-event speedup of incremental over full at n=150.
MIN_SPEEDUP_AT_150 = 2.0

#: CI gate: maximum fraction of the cheapest per-event time the disabled
#: observability hooks may cost (tracing off must be essentially free).
MAX_OBS_OVERHEAD_FRACTION = 0.05

#: Disabled profiling hooks fired per surrogate event (fit + hallucinate).
OBS_HOOKS_PER_EVENT = 2


def make_problem(name: str):
    if name == "opamp":
        return OpAmpProblem()
    if name == "classe":
        # Reduced transient fidelity: the bench times linear algebra, not
        # the simulator; the FOM landscape just has to be the real one.
        return ClassEProblem(settle_periods=10, measure_periods=2,
                            steps_per_period=48)
    raise ValueError(f"unknown bench problem {name!r}")


def build_dataset(problem, n: int, rng) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate a random design: the same data a real run would collect."""
    X = random_design(problem.bounds, n, rng)
    y = np.asarray([problem.evaluate(x).fom for x in X])
    # Failed corners produce NaN FOMs on some problems; the session rejects
    # them (as the drivers' failure policies would), so impute the minimum.
    bad = ~np.isfinite(y)
    if bad.any():
        y[bad] = np.nanmin(y[~bad]) if (~bad).any() else 0.0
    return X, y


def time_mode(problem, X, y, mode: str, n: int, events: int) -> float:
    """Mean per-event seconds (refit + hallucination) at frozen theta."""
    session = SurrogateSession(
        problem.bounds, rng=0, surrogate_update=mode, refit_every=10**9
    )
    session.add_batch(X[:n], y[:n])
    session.refit()  # the one ML-II fit; the timed window starts after it
    from repro.sched.trace import SurrogateStats

    session.stats = SurrogateStats()  # count and time only the event loop
    for i in range(events):
        session.add(X[n + i], y[n + i])
        session.refit()
        session.model_with_pending(X[n + i + 1 : n + i + 1 + N_PENDING])
    stats = session.stats
    assert stats.n_refits == events and stats.n_fallbacks == 0
    if mode == "incremental":
        assert stats.n_incremental_updates == events
        assert stats.n_hallucinated_views == events
    else:
        assert stats.n_refactorizations == events
        assert stats.n_hallucinated_rebuilds == events
    return stats.mean_event_seconds


def check_trajectory_equality(scale: Scale, seed: int) -> int:
    """Seeded sequential EasyBO on the op-amp: both modes, same queries.

    Returns the number of compared evaluations.  Sequential EasyBO has no
    pending points, so the incremental mode must reproduce the full mode's
    queried points *exactly* — any difference means the fast path changed
    the algorithm, not just its cost.
    """
    queried = {}
    for mode in ("full", "incremental"):
        driver = make_algorithm(
            "EasyBO", OpAmpProblem(), rng=seed, n_init=6,
            max_evals=scale.trajectory_evals, acq_candidates=256,
            acq_restarts=1, surrogate_update=mode,
        )
        result = driver.run()
        queried[mode] = np.vstack([r.x for r in result.trace.records])
    if not np.array_equal(queried["full"], queried["incremental"]):
        delta = np.abs(queried["full"] - queried["incremental"]).max()
        raise AssertionError(
            f"incremental mode changed the queried points (max |dx|={delta:.3e})"
        )
    return scale.trajectory_evals


def measure_obs_overhead(timings: dict) -> dict:
    """Cost of the disabled observability hooks, relative to a real event.

    The surrogate session enters one ``NULL_OBS.profile`` span for the refit
    and one for the hallucination of every event; both are shared-singleton
    no-ops.  Timing the hook pair directly (best of several tight loops) and
    dividing by the cheapest measured per-event cost in the grid gives the
    worst-case fractional overhead of leaving the hooks compiled in.
    """
    import time

    from repro.obs import NULL_OBS

    loops = 50_000
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(loops):
            with NULL_OBS.profile("fit", n=0):
                pass
            with NULL_OBS.profile("hallucinate", k=0):
                pass
        best = min(best, (time.perf_counter() - start) / loops)
    cheapest = min(
        cell[mode]
        for cell in timings["cells"]
        for mode in ("full", "incremental")
    )
    return {
        "hooks_per_event": OBS_HOOKS_PER_EVENT,
        "hook_pair_seconds": best,
        "cheapest_event_seconds": cheapest,
        "fraction_of_event": best / cheapest,
    }


def run_bench(scale_name: str = "smoke", seed: int = 0, verbose: bool = True):
    """Run the timing grid; returns (timings dict, rendered table)."""
    scale = SCALES[scale_name]
    max_n = max(scale.sizes)
    timings = {"scale": scale.name, "seed": seed, "cells": []}
    rows = []
    for problem_name in scale.problems:
        problem = make_problem(problem_name)
        rng = np.random.default_rng(seed)
        X, y = build_dataset(problem, max_n + scale.events + N_PENDING, rng)
        if verbose:
            print(f"{problem_name}: dataset of {len(y)} evaluations ready")
        for n in scale.sizes:
            cell = {"problem": problem_name, "n": n}
            for mode in ("full", "incremental"):
                per_event = min(
                    time_mode(problem, X, y, mode, n, scale.events)
                    for _ in range(scale.repetitions)
                )
                cell[mode] = per_event
            cell["speedup"] = cell["full"] / cell["incremental"]
            timings["cells"].append(cell)
            rows.append([
                problem_name,
                str(n),
                f"{1e6 * cell['full']:.0f}",
                f"{1e6 * cell['incremental']:.0f}",
                f"{cell['speedup']:.2f}x",
            ])
            if verbose:
                print(
                    f"  n={n:>4}  full {1e6 * cell['full']:7.0f} us/event  "
                    f"incremental {1e6 * cell['incremental']:7.0f} us/event  "
                    f"({cell['speedup']:.2f}x)"
                )
    timings["trajectory_evals_compared"] = check_trajectory_equality(scale, seed)
    if verbose:
        print(
            f"trajectory equality: {timings['trajectory_evals_compared']} "
            "sequential op-amp queries identical in both modes"
        )
    timings["obs_overhead"] = measure_obs_overhead(timings)
    if verbose:
        overhead = timings["obs_overhead"]
        print(
            f"disabled-observability overhead: "
            f"{1e9 * overhead['hook_pair_seconds']:.0f} ns/event "
            f"({100 * overhead['fraction_of_event']:.3f}% of the cheapest "
            "measured event)"
        )
    table = format_table(
        ["Problem", "n", "Full (us/event)", "Incremental (us/event)", "Speedup"],
        rows,
        title="Surrogate per-event cost at frozen hyperparameters "
        f"({N_PENDING} pending points hallucinated per event)",
    )
    return timings, table


def check_shape(timings: dict) -> None:
    """Assert the claims the CI perf-smoke job gates on."""
    at_150 = [c for c in timings["cells"] if c["n"] == 150]
    assert at_150, "bench must measure n=150 (the paper's full-run size)"
    for cell in at_150:
        assert cell["speedup"] >= MIN_SPEEDUP_AT_150, (
            f"incremental path only {cell['speedup']:.2f}x faster than full "
            f"at n=150 on {cell['problem']} (required: {MIN_SPEEDUP_AT_150}x)"
        )
    # Larger systems must not erode the advantage (O(n^3) vs O(n^2)).
    for cell in timings["cells"]:
        if cell["n"] > 150:
            assert cell["speedup"] >= MIN_SPEEDUP_AT_150
    assert timings["trajectory_evals_compared"] > 0
    overhead = timings["obs_overhead"]
    assert overhead["fraction_of_event"] <= MAX_OBS_OVERHEAD_FRACTION, (
        f"disabled observability hooks cost "
        f"{100 * overhead['fraction_of_event']:.2f}% of a surrogate event "
        f"(budget: {100 * MAX_OBS_OVERHEAD_FRACTION:.0f}%)"
    )


def test_surrogate_update_smoke(benchmark):
    timings, rendered = benchmark.pedantic(
        lambda: run_bench("smoke", seed=0, verbose=False),
        rounds=1,
        iterations=1,
    )
    print("\n" + rendered)
    check_shape(timings)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", type=str, default=None,
                        help="write the timing cells to this JSON file")
    args = parser.parse_args()
    timings, rendered = run_bench(args.scale, args.seed)
    print("\n" + rendered)
    check_shape(timings)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(timings, fh, indent=2, sort_keys=True)
        print(f"timings written to {args.json}")
