"""Distributed-pool bench — wall-clock speedup of process workers.

Evaluates a fixed stream of op-amp FOM points sequentially (single
in-process worker) and through :class:`ProcessWorkerPool` at several worker
counts, and reports the wall-clock speedup per count.  Two load shapes:

``cpu``
    The op-amp evaluation repeated until one call is genuinely CPU-bound
    (~100 ms of linear algebra).  Speedup here needs real cores — the whole
    point of escaping the GIL onto processes.
``latency``
    The op-amp evaluation plus a real ``sleep``, modelling waiting on a
    remote simulator licence/farm.  Sleeps overlap across workers, so the
    speedup is core-count independent.
``auto`` (default)
    ``cpu`` when the machine exposes >= 4 usable cores, else ``latency`` —
    so ``--check`` (assert >= 2x speedup at 4 workers) is meaningful on
    both build machines and single-core CI runners.

Run standalone::

    python benchmarks/bench_distributed.py --scale smoke --check

Under pytest-benchmark the smoke scale runs once, prints the speedup table,
and asserts the >= 2x claim plus a chaos case: a worker killed mid-run must
not cost the run its budget, hang it, or leave a zombie process behind.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import time

import numpy as np

from repro.circuits import OpAmpProblem
from repro.circuits.benchmarks import RepeatedProblem
from repro.core.easybo import EasyBO
from repro.core.faults import FailurePolicy
from repro.distributed import ProcessWorkerPool
from repro.utils.tables import format_table

#: Supervision knobs tightened for bench turnaround (not contention-safe
#: defaults — the library defaults stay conservative).
FAST = dict(heartbeat_interval=0.25, poll_interval=0.05, respawn_backoff=0.25)


@dataclasses.dataclass(frozen=True)
class Scale:
    name: str
    n_points: int  #: evaluations per timing leg
    cpu_repeat: int  #: op-amp repeats per evaluation in cpu mode
    latency: float  #: per-evaluation sleep in latency mode (seconds)
    worker_counts: tuple  #: process-pool sizes timed against sequential


SCALES = {
    "smoke": Scale("smoke", 8, 8, 0.25, (1, 2, 4)),
    "reduced": Scale("reduced", 24, 16, 0.25, (1, 2, 4)),
    "paper": Scale("paper", 64, 32, 0.25, (1, 2, 4, 8)),
}


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_mode(mode: str) -> str:
    if mode != "auto":
        return mode
    return "cpu" if usable_cores() >= 4 else "latency"


def make_problem(mode: str, scale: Scale) -> RepeatedProblem:
    if mode == "cpu":
        return RepeatedProblem(OpAmpProblem(), repeat=scale.cpu_repeat)
    return RepeatedProblem(OpAmpProblem(), repeat=1, latency=scale.latency)


def bench_points(problem, n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(problem.bounds[:, 0], problem.bounds[:, 1],
                       size=(n, problem.dim))


def time_sequential(problem, X) -> float:
    problem.evaluate(X[0])  # warm caches outside the timed region
    start = time.perf_counter()
    for x in X:
        problem.evaluate(x)
    return time.perf_counter() - start


def time_pool(problem, X, n_workers: int) -> float:
    """Wall-clock for the point stream through a warmed-up process pool."""
    with ProcessWorkerPool(problem, n_workers, **FAST) as pool:
        # Warm-up: wait out process spawn + handshake + one evaluation per
        # worker, so the timing measures steady-state dispatch, not Python
        # startup.
        for x in X[:n_workers]:
            pool.submit(x)
        pool.wait_all()
        start = time.perf_counter()
        submitted = 0
        done = 0
        while done < len(X):
            while submitted < len(X) and pool.idle_count > 0:
                pool.submit(X[submitted])
                submitted += 1
            pool.wait_next()
            done += 1
        return time.perf_counter() - start


def run_bench(scale_name: str = "smoke", mode: str = "auto",
              verbose: bool = True):
    """Time the grid; returns (speedups dict, rendered table)."""
    scale = SCALES[scale_name]
    mode = resolve_mode(mode)
    problem = make_problem(mode, scale)
    X = bench_points(problem, scale.n_points)
    if verbose:
        print(f"Distributed bench at scale {scale.name!r}, mode {mode!r} "
              f"({usable_cores()} usable cores), {scale.n_points} op-amp "
              f"evaluations per leg")
    baseline = time_sequential(problem, X)
    if verbose:
        print(f"  sequential          {baseline:8.2f} s")
    rows = [["sequential", f"{baseline:.2f}", "1.00x"]]
    speedups = {}
    for n_workers in scale.worker_counts:
        elapsed = time_pool(problem, X, n_workers)
        speedups[n_workers] = baseline / elapsed
        rows.append([f"process x{n_workers}", f"{elapsed:.2f}",
                     f"{speedups[n_workers]:.2f}x"])
        if verbose:
            print(f"  process x{n_workers:<10} {elapsed:8.2f} s "
                  f"({speedups[n_workers]:.2f}x)")
    table = format_table(
        ["Backend", "Wall-clock", "Speedup"], rows,
        title=f"ProcessWorkerPool speedup, {mode}-bound op-amp FOM",
    )
    return speedups, table


def check_speedup(speedups: dict) -> None:
    """The subsystem's headline claim: >= 2x with 4 process workers."""
    assert 4 in speedups, "bench did not time the 4-worker leg"
    assert speedups[4] >= 2.0, (
        f"expected >= 2x speedup with 4 process workers, got "
        f"{speedups[4]:.2f}x"
    )


def run_chaos(verbose: bool = True) -> None:
    """Kill a worker mid-run; the run must still spend its whole budget.

    The evaluation is latency-padded so the kill reliably lands while the
    point is in flight (a bare op-amp call is ~15 ms — fast enough that
    the victim often finishes before the signal, which is survival too,
    but not the path this case exists to exercise).
    """
    problem = RepeatedProblem(OpAmpProblem(), latency=0.3)
    policy = FailurePolicy(on_orphan="reissue")
    pools = []
    killed = {}

    def factory(p, n, policy=policy):
        pool = ProcessWorkerPool(p, n, policy=policy, **FAST)
        pools.append(pool)
        original = pool.wait_next

        def wait_next():
            completion = original()
            if len(pool.trace.records) >= 3 and not killed:
                busy = next(
                    (s for s in pool._slots
                     if s.task is not None and s.proc is not None
                     and s.proc.poll() is None),
                    None,
                )
                if busy is not None:
                    busy.proc.kill()
                    killed["worker"] = busy.worker_id
            return completion

        pool.wait_next = wait_next
        return pool

    start = time.monotonic()
    result = EasyBO(
        problem, batch_size=2, n_init=4, max_evals=10, rng=0,
        pool_factory=factory, failure_policy=policy,
        acq_candidates=64, acq_restarts=1,
    ).optimize()
    elapsed = time.monotonic() - start
    assert killed, "chaos hook never found a busy worker to kill"
    assert elapsed < 300, "run did not complete promptly after the kill"
    statuses = [r.status for r in result.trace.records]
    assert statuses.count("orphaned") >= 1, "kill left no orphan record"
    assert statuses.count("ok") >= 10, "orphaned point was not re-evaluated"
    for pool in pools:
        assert all(p.poll() is not None for p in pool._all_procs), "zombie!"
    if verbose:
        print(f"  chaos: killed worker {killed['worker']} mid-run; run "
              f"finished with {statuses.count('orphaned')} orphan(s) "
              f"re-issued, no zombies ({elapsed:.1f} s)")


def test_distributed_smoke(benchmark):
    speedups, rendered = benchmark.pedantic(
        lambda: run_bench("smoke", verbose=False),
        rounds=1,
        iterations=1,
    )
    print("\n" + rendered)
    check_speedup(speedups)
    run_chaos(verbose=False)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--mode", choices=("auto", "cpu", "latency"),
                        default="auto")
    parser.add_argument("--check", action="store_true",
                        help="assert the >= 2x @ 4 workers claim and run "
                             "the kill-a-worker chaos case")
    args = parser.parse_args()
    speedups, rendered = run_bench(args.scale, args.mode)
    print("\n" + rendered)
    if args.check:
        check_speedup(speedups)
        run_chaos()
        print("checks passed")
