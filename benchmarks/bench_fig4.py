"""Figure 4 — op-amp best-FOM versus wall-clock time at B = 15.

The paper's Fig. 4 plots the optimization trajectory (best FOM so far
against simulation wall-clock) for pBO-15, pHCBO-15, and EasyBO-15, and reads
off that EasyBO reaches the same final FOM 47.3% / 37.4% sooner.  This bench
regenerates the three mean trajectories from the execution traces and prints
the time-to-target comparison.
"""

from __future__ import annotations

import argparse

import numpy as np

from harness import SCALES, run_grid, time_to_target_report

from repro.circuits import OpAmpProblem

LABELS = ("pBO-15", "pHCBO-15", "EasyBO-15")


def mean_curve(results, n_points: int = 40):
    """Average the per-run step curves onto a common time grid."""
    t_end = max(r.wall_clock for r in results)
    grid = np.linspace(0.0, t_end, n_points)
    curves = []
    for run in results:
        times, best = run.trace.best_fom_curve()
        curves.append(np.interp(grid, times, best, left=best[0]))
    return grid, np.mean(curves, axis=0)


def run_fig4(scale_name: str = "smoke", seed: int = 0, verbose: bool = True):
    scale = SCALES["table1"][scale_name]
    grid = run_grid(LABELS, OpAmpProblem, scale, seed=seed, verbose=verbose)
    lines = ["Fig. 4 — best FOM vs simulation time (mean over repetitions):"]
    for label in LABELS:
        t, curve = mean_curve(grid[label])
        series = "  ".join(f"({ti:5.0f}s, {vi:7.2f})" for ti, vi in
                           zip(t[:: len(t) // 8], curve[:: len(t) // 8]))
        lines.append(f"  {label:<10} {series}")
    lines.append("")
    lines.append(time_to_target_report(grid, LABELS, reference="EasyBO-15"))
    text = "\n".join(lines)
    if verbose:
        print("\n" + text)
    return grid, text


def check_shape(grid) -> None:
    """EasyBO-15 must finish its budget in less wall-clock than the sync
    algorithms (the asynchronous advantage underlying Fig. 4)."""
    easybo = np.mean([r.wall_clock for r in grid["EasyBO-15"]])
    pbo = np.mean([r.wall_clock for r in grid["pBO-15"]])
    phcbo = np.mean([r.wall_clock for r in grid["pHCBO-15"]])
    assert easybo < pbo
    assert easybo < phcbo


def test_fig4_smoke(benchmark):
    grid, text = benchmark.pedantic(
        lambda: run_fig4("smoke", seed=0, verbose=False), rounds=1, iterations=1
    )
    print("\n" + text)
    check_shape(grid)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("smoke", "reduced", "paper"),
                        default="reduced")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    grid, _ = run_fig4(args.scale, args.seed)
    check_shape(grid)
