"""Ablation — penalization schemes at a fixed batch size (paper §III-C).

The paper argues its hallucination-based penalty beats both no penalization
(redundant batch members) and pHCBO's distance penalty (which also repels the
final exploitation cluster and hurts convergence).  This bench compares, at
B = 10 on the op-amp:

* ``none``          — EasyBO acquisition, no penalty (EasyBO-S);
* ``distance``      — EasyBO acquisition + pHCBO's Eq. 6 penalty;
* ``hallucination`` — the paper's scheme (EasyBO-SP).

It also reports the mean pairwise distance of batch members, the mechanism
the penalties act on.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.circuits import OpAmpProblem
from repro.core.acquisition import HighCoveragePenalty, WeightedAcquisition, sample_easybo_weight
from repro.core.sync_batch import SynchronousBatchBO
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_table


class _DistancePenalized(SynchronousBatchBO):
    """EasyBO's randomized-weight acquisition with pHCBO's distance penalty."""

    def __init__(self, problem, **kwargs):
        super().__init__(problem, strategy="easybo-s", **kwargs)
        self.algorithm_name = f"EasyBO-HC-{self.batch_size}"
        self._distance_penalty = HighCoveragePenalty(self.session.dim)

    def _select_batch(self, n_points):
        from repro.core.optimizers import maximize_acquisition

        model = self.session.refit()
        points = []
        for slot in range(n_points):
            w = sample_easybo_weight(self.rng, self.lam)
            base = WeightedAcquisition(w)

            def scorer(U, _base=base, _slot=slot):
                return _base(model, U) - self._distance_penalty(_slot, U)

            u_best = maximize_acquisition(
                scorer,
                self.session.unit_bounds(),
                rng=self.rng,
                n_candidates=self.acq_candidates,
                n_restarts=self.acq_restarts,
            )
            self._distance_penalty.record(slot, u_best)
            points.append(self.session.to_physical(u_best.reshape(1, -1))[0])
        return points


def batch_diversity(result) -> float:
    """Mean pairwise distance between same-batch points (unit-cube scale)."""
    by_batch = {}
    for record in result.trace.records:
        if record.batch is not None:
            by_batch.setdefault(record.batch, []).append(record.x)
    distances = []
    for points in by_batch.values():
        points = np.asarray(points)
        if len(points) < 2:
            continue
        for i in range(len(points)):
            for j in range(i + 1, len(points)):
                distances.append(float(np.linalg.norm(points[i] - points[j])))
    return float(np.mean(distances)) if distances else 0.0


def run_ablation(repetitions: int = 2, max_evals: int = 60, seed: int = 0,
                 verbose: bool = True):
    common = dict(batch_size=10, n_init=10, max_evals=max_evals,
                  acq_candidates=256, acq_restarts=1)
    makers = {
        "none (EasyBO-S)": lambda rng: SynchronousBatchBO(
            OpAmpProblem(), strategy="easybo-s", rng=rng, **common
        ),
        "distance (Eq.6)": lambda rng: _DistancePenalized(
            OpAmpProblem(), rng=rng, **common
        ),
        "hallucination (EasyBO-SP)": lambda rng: SynchronousBatchBO(
            OpAmpProblem(), strategy="easybo-sp", rng=rng, **common
        ),
    }
    rows = []
    means = {}
    for name, make in makers.items():
        foms, diversities = [], []
        for rng in spawn_generators(seed, repetitions):
            result = make(rng).run()
            foms.append(result.best_fom)
            diversities.append(batch_diversity(result))
        means[name] = float(np.mean(foms))
        rows.append([name, f"{np.max(foms):.2f}", f"{np.min(foms):.2f}",
                     f"{np.mean(foms):.2f}", f"{np.mean(diversities):.3f}"])
    text = format_table(
        ["Penalty", "Best", "Worst", "Mean", "BatchDist"], rows,
        title="Ablation: batch penalization scheme at B=10 (op-amp)",
    )
    if verbose:
        print("\n" + text)
    return means, text


def test_ablation_penalty(benchmark):
    means, text = benchmark.pedantic(
        lambda: run_ablation(verbose=False), rounds=1, iterations=1
    )
    print("\n" + text)
    assert all(np.isfinite(v) for v in means.values())
    # The paper's scheme must not lose to running with no penalty at all by
    # a wide margin (at smoke scale we allow noise, hence the slack factor).
    assert means["hallucination (EasyBO-SP)"] >= 0.5 * means["none (EasyBO-S)"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--max-evals", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    run_ablation(args.repetitions, args.max_evals, args.seed)
