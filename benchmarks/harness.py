"""Shared experiment harness for the Table/Figure benches.

Runs a grid of paper-labelled algorithms on a problem for several seeded
repetitions, producing the Best/Worst/Mean/Std/Time rows of Tables I/II and
the best-FOM-versus-time curves behind Figs. 4/6.

Scales
------
Every bench accepts a scale name:

* ``smoke``   — minutes on a laptop; used by the pytest-benchmark suite.
* ``reduced`` — the default standalone scale; half the paper's simulation
  counts, 5 repetitions.
* ``paper``   — the full protocol (20 repetitions, 150/450 simulations,
  20000/15000 DE evaluations).  Hours of compute.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.easybo import make_algorithm
from repro.core.results import RunResult, RunSummary, summarize_runs
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_duration, format_table

__all__ = ["Scale", "SCALES", "run_grid", "grid_table", "speedup_report", "time_to_target_report"]


@dataclasses.dataclass(frozen=True)
class Scale:
    """Experiment sizing knobs."""

    name: str
    repetitions: int
    n_init: int
    max_evals: int  # BO budget including the initial design
    de_evals: int
    batch_sizes: tuple[int, ...]
    acq_candidates: int
    acq_restarts: int


SCALES = {
    "table1": {
        "smoke": Scale("smoke", 2, 10, 60, 300, (5, 15), 256, 1),
        "reduced": Scale("reduced", 4, 20, 75, 1000, (5, 10, 15), 512, 1),
        "paper": Scale("paper", 20, 20, 150, 20000, (5, 10, 15), 2048, 4),
    },
    "table2": {
        "smoke": Scale("smoke", 2, 10, 40, 200, (5, 15), 256, 1),
        "reduced": Scale("reduced", 3, 20, 80, 500, (5, 10, 15), 512, 1),
        "paper": Scale("paper", 20, 20, 450, 15000, (5, 10, 15), 2048, 4),
    },
}

#: Sequential block of the paper's tables.
SEQUENTIAL_LABELS = ("DE", "LCB", "EI", "EasyBO")

#: Batch block families, instantiated per batch size.
BATCH_FAMILIES = ("pBO", "pHCBO", "EasyBO-S", "EasyBO-A", "EasyBO-SP", "EasyBO")


def grid_labels(scale: Scale, include_sequential: bool = True) -> list[str]:
    """The paper's row order: sequential block, then per-B batch blocks."""
    labels = list(SEQUENTIAL_LABELS) if include_sequential else []
    for b in scale.batch_sizes:
        labels.extend(f"{family}-{b}" for family in BATCH_FAMILIES)
    return labels


def run_label(
    label: str, problem_factory, scale: Scale, seed_rng
) -> list[RunResult]:
    """Run all repetitions of one algorithm label."""
    results = []
    for rng in spawn_generators(seed_rng, scale.repetitions):
        problem = problem_factory()
        if label.upper() == "DE":
            algo = make_algorithm(label, problem, max_evals=scale.de_evals, rng=rng)
        elif label.upper() in ("RANDOM",):
            algo = make_algorithm(label, problem, max_evals=scale.max_evals, rng=rng)
        else:
            algo = make_algorithm(
                label,
                problem,
                n_init=scale.n_init,
                max_evals=scale.max_evals,
                rng=rng,
                acq_candidates=scale.acq_candidates,
                acq_restarts=scale.acq_restarts,
            )
        results.append(algo.run())
    return results


def run_grid(
    labels, problem_factory, scale: Scale, seed: int = 0, *, verbose: bool = True
) -> dict[str, list[RunResult]]:
    """Run every label; returns label -> repetition results."""
    grid: dict[str, list[RunResult]] = {}
    for i, label in enumerate(labels):
        grid[label] = run_label(label, problem_factory, scale, seed + 1000 * i)
        if verbose:
            s = summarize_runs(grid[label])
            print(
                f"  {label:<14} mean {s.mean:10.2f}  best {s.best:10.2f}  "
                f"time {format_duration(s.mean_time)}"
            )
    return grid


def grid_table(grid: dict[str, list[RunResult]], title: str) -> str:
    """Render the paper-style table for a completed grid."""
    rows = [summarize_runs(results).as_row() for results in grid.values()]
    return format_table(
        ["Algo", "Best", "Worst", "Mean", "Std", "Time"], rows, title=title
    )


def summaries(grid: dict[str, list[RunResult]]) -> dict[str, RunSummary]:
    return {label: summarize_runs(results) for label, results in grid.items()}


def speedup_report(grid: dict[str, list[RunResult]], batch_sizes) -> str:
    """Async-vs-sync time reduction at fixed simulation count (paper §IV).

    Compares EasyBO-B (async) against EasyBO-SP-B (its synchronous
    counterpart with the same acquisition and penalization).
    """
    lines = ["Async vs sync time reduction (same number of simulations):"]
    stats = summaries(grid)
    for b in batch_sizes:
        sync = stats.get(f"EasyBO-SP-{b}")
        async_ = stats.get(f"EasyBO-{b}")
        if sync is None or async_ is None:
            continue
        reduction = 100.0 * (1.0 - async_.mean_time / sync.mean_time)
        lines.append(
            f"  B={b:<3d} sync {format_duration(sync.mean_time):>10} -> "
            f"async {format_duration(async_.mean_time):>10}  ({reduction:+.1f}%)"
        )
    return "\n".join(lines)


def time_to_target_report(
    grid: dict[str, list[RunResult]],
    labels: tuple[str, ...],
    reference: str,
    quantile: float = 0.9,
) -> str:
    """Figs. 4/6 headline: time for each algorithm to reach a common target.

    The target is ``quantile`` of the way from the worst to the best final
    mean FOM among the compared algorithms' reference; per-algorithm time is
    the mean over repetitions of the first completion reaching it (runs that
    never reach it contribute their full makespan as a lower bound).
    """
    stats = summaries(grid)
    target = quantile * min(stats[label].mean for label in labels if label in stats)
    lines = [f"Time to reach FOM target {target:.2f}:"]
    ref_time = None
    for label in labels:
        runs = grid.get(label)
        if not runs:
            continue
        times = []
        for run in runs:
            t = run.trace.time_to_reach(target)
            times.append(t if np.isfinite(t) else run.wall_clock)
        mean_t = float(np.mean(times))
        if label == reference:
            ref_time = mean_t
        lines.append(f"  {label:<14} {format_duration(mean_t)}")
    if ref_time:
        for label in labels:
            if label == reference or label not in stats:
                continue
            runs = grid[label]
            times = [
                run.trace.time_to_reach(
                    quantile * min(stats[x].mean for x in labels if x in stats)
                )
                for run in runs
            ]
            times = [t if np.isfinite(t) else run.wall_clock for t, run in zip(times, runs)]
            other = float(np.mean(times))
            if other > 0:
                lines.append(
                    f"  {reference} saves {100 * (1 - ref_time / other):.1f}% of "
                    f"simulation time vs {label} "
                    f"({other / max(ref_time, 1e-9):.2f}x speed-up)"
                )
    return "\n".join(lines)
