"""Table I — operational-amplifier optimization grid.

Reproduces the paper's Table I: Best/Worst/Mean/Std of the final FOM and the
total simulation time for DE, LCB, EI, sequential EasyBO, and the six batch
algorithms (pBO, pHCBO, EasyBO-S/A/SP, EasyBO) across batch sizes.

Run standalone for larger scales::

    python benchmarks/bench_table1.py --scale reduced --seed 0

Under pytest-benchmark the smoke scale runs once and the table is printed
into the bench log; the assertions check the *shape* of the paper's claims
(EasyBO's async variants save wall-clock; penalized variants don't lose FOM).
"""

from __future__ import annotations

import argparse

from harness import SCALES, grid_labels, grid_table, run_grid, speedup_report, summaries

from repro.circuits import OpAmpProblem


def problem_factory():
    return OpAmpProblem()


def run_table1(scale_name: str = "smoke", seed: int = 0, verbose: bool = True):
    """Run the Table I grid; returns (grid, rendered table)."""
    scale = SCALES["table1"][scale_name]
    labels = grid_labels(scale)
    if verbose:
        print(f"Table I grid at scale {scale.name!r}: {len(labels)} algorithms x "
              f"{scale.repetitions} repetitions, {scale.max_evals} sims each "
              f"(DE: {scale.de_evals})")
    grid = run_grid(labels, problem_factory, scale, seed=seed, verbose=verbose)
    table = grid_table(grid, "TABLE I: operational amplifier (reproduction)")
    report = speedup_report(grid, scale.batch_sizes)
    return grid, table + "\n\n" + report


def check_shape(grid) -> None:
    """Assert the paper's qualitative claims on the completed grid."""
    stats = summaries(grid)
    for b in (5, 15):
        sync = stats.get(f"EasyBO-SP-{b}")
        async_ = stats.get(f"EasyBO-{b}")
        if sync and async_:
            # Async must finish the same number of simulations faster.
            assert async_.mean_time < sync.mean_time, (
                f"B={b}: async {async_.mean_time} !< sync {sync.mean_time}"
            )
    # DE burns far more simulation time than any BO row.
    de_time = stats["DE"].mean_time
    bo_time = stats["EasyBO"].mean_time
    assert de_time > 2 * bo_time


def test_table1_smoke(benchmark):
    grid, rendered = benchmark.pedantic(
        lambda: run_table1("smoke", seed=0, verbose=False),
        rounds=1,
        iterations=1,
    )
    print("\n" + rendered)
    check_shape(grid)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("smoke", "reduced", "paper"),
                        default="reduced")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    grid, rendered = run_table1(args.scale, args.seed)
    print("\n" + rendered)
    check_shape(grid)
