"""Ablation — uniform weight grid versus EasyBO's randomized weights (§III-B).

pBO assigns batch members the uniform grid ``w_i = (i-1)/(B-1)``; the paper
argues the low-w slots produce near-duplicate queries once the posterior
uncertainty shrinks, and replaces the grid with random draws concentrated
near w = 1.  This bench runs both weighting rules inside the *same*
synchronous driver (no penalization, so the weights are the only difference)
and additionally measures duplicate-query rates.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.circuits import OpAmpProblem
from repro.core.sync_batch import SynchronousBatchBO
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_table


def near_duplicate_rate(result, tol: float = 1e-3) -> float:
    """Fraction of same-batch pairs closer than ``tol`` (unit-cube scale)."""
    by_batch = {}
    for record in result.trace.records:
        if record.batch is not None:
            by_batch.setdefault(record.batch, []).append(record.x)
    pairs = 0
    dupes = 0
    for points in by_batch.values():
        points = np.asarray(points)
        for i in range(len(points)):
            for j in range(i + 1, len(points)):
                pairs += 1
                if np.linalg.norm(points[i] - points[j]) < tol:
                    dupes += 1
    return dupes / pairs if pairs else 0.0


def run_ablation(repetitions: int = 2, max_evals: int = 60, seed: int = 0,
                 verbose: bool = True):
    common = dict(batch_size=10, n_init=10, max_evals=max_evals,
                  acq_candidates=256, acq_restarts=1)
    makers = {
        "uniform grid (pBO)": lambda rng: SynchronousBatchBO(
            OpAmpProblem(), strategy="pbo", rng=rng, **common
        ),
        "random w (EasyBO-S)": lambda rng: SynchronousBatchBO(
            OpAmpProblem(), strategy="easybo-s", rng=rng, **common
        ),
    }
    rows = []
    stats = {}
    for name, make in makers.items():
        foms, dup_rates = [], []
        for rng in spawn_generators(seed, repetitions):
            result = make(rng).run()
            foms.append(result.best_fom)
            dup_rates.append(near_duplicate_rate(result))
        stats[name] = {"mean": float(np.mean(foms)), "dupes": float(np.mean(dup_rates))}
        rows.append([name, f"{np.max(foms):.2f}", f"{np.mean(foms):.2f}",
                     f"{100 * np.mean(dup_rates):.1f}%"])
    text = format_table(
        ["Weighting", "Best", "Mean", "DupPairs"], rows,
        title="Ablation: batch weighting rule at B=10 (op-amp)",
    )
    if verbose:
        print("\n" + text)
    return stats, text


def test_ablation_wdist(benchmark):
    stats, text = benchmark.pedantic(
        lambda: run_ablation(verbose=False), rounds=1, iterations=1
    )
    print("\n" + text)
    # The uniform grid's low-w slots collapse onto the posterior-mean argmax,
    # so it must show at least as many near-duplicate batch pairs.
    assert (
        stats["uniform grid (pBO)"]["dupes"]
        >= stats["random w (EasyBO-S)"]["dupes"] - 1e-9
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--max-evals", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    run_ablation(args.repetitions, args.max_evals, args.seed)
