"""Figure 2 — weighted-UCB argmax versus w, and the EasyBO w density.

The paper's Fig. 2 makes two points on a 1-D example:

1. the argmax of ``(1-w) mu + w sigma`` barely moves for small w
   (exploitation regime) and moves quickly for large w (exploration regime),
   so a uniform w grid wastes its low-w slots on near-duplicate points;
2. EasyBO's ``w = kappa/(kappa+1)``, ``kappa ~ U[0, 6]`` sampling piles
   density near w = 1 to compensate.

This bench regenerates both series: the argmax-location curve over a w sweep
on a fitted 1-D GP, and the histogram of sampled w against the analytic
density ``1/(lambda (1-w)^2)``.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.acquisition import EASYBO_LAMBDA, WeightedAcquisition, sample_easybo_weight
from repro.gp import GaussianProcess

GRID = np.linspace(0.0, 1.0, 2001).reshape(-1, 1)


def fitted_model() -> GaussianProcess:
    """The illustrative 1-D posterior: a bumpy function, few samples."""
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, size=(8, 1))
    y = np.sin(6 * X[:, 0]) + 0.5 * np.cos(14 * X[:, 0])
    gp = GaussianProcess(1, noise_variance=1e-6)
    gp.kernel.lengthscales[:] = 0.08
    return gp.fit(X, y)


def argmax_curve(model, weights) -> np.ndarray:
    """Location of the acquisition argmax for each w."""
    locations = np.empty(len(weights))
    for i, w in enumerate(weights):
        values = WeightedAcquisition(float(w))(model, GRID)
        locations[i] = GRID[np.argmax(values), 0]
    return locations


def weight_histogram(n_samples: int = 50_000, bins: int = 10):
    """Empirical P(w in bin) against the analytic density of Eq. 8."""
    rng = np.random.default_rng(1)
    ws = np.array([sample_easybo_weight(rng) for _ in range(n_samples)])
    w_max = EASYBO_LAMBDA / (EASYBO_LAMBDA + 1.0)
    edges = np.linspace(0.0, w_max, bins + 1)
    empirical, _ = np.histogram(ws, bins=edges)
    empirical = empirical / n_samples
    # Analytic CDF of w: F(t) = (t / (1 - t)) / lambda on [0, w_max].
    cdf = (edges / (1.0 - edges)) / EASYBO_LAMBDA
    analytic = np.diff(cdf)
    return edges, empirical, analytic


def run_fig2(verbose: bool = True):
    model = fitted_model()
    weights = np.linspace(0.0, 1.0, 21)
    locations = argmax_curve(model, weights)
    edges, empirical, analytic = weight_histogram()

    lines = ["Fig. 2a — argmax location of (1-w) mu + w sigma vs w:"]
    for w, loc in zip(weights, locations):
        lines.append(f"  w={w:4.2f}  argmax x = {loc:.3f}")
    lines.append("")
    lines.append("Fig. 2b — sampling probability of w (empirical vs analytic):")
    for k in range(len(empirical)):
        lines.append(
            f"  w in [{edges[k]:.3f}, {edges[k + 1]:.3f})  "
            f"P_emp={empirical[k]:.4f}  P_analytic={analytic[k]:.4f}"
        )
    text = "\n".join(lines)
    if verbose:
        print("\n" + text)
    return weights, locations, empirical, analytic, text


def check_shape(weights, locations, empirical, analytic) -> None:
    # Low-w argmaxes cluster: the spread of argmax over w<0.3 is much smaller
    # than over w>0.6 (paper: "x only has small change when w is small").
    low = locations[weights < 0.3]
    high = locations[weights > 0.6]
    assert np.ptp(low) <= np.ptp(high)
    # Density increases toward w_max and matches the analytic law.
    assert empirical[-1] > empirical[0]
    np.testing.assert_allclose(empirical, analytic, atol=0.01)


def test_fig2_acquisition(benchmark):
    weights, locations, empirical, analytic, text = benchmark.pedantic(
        lambda: run_fig2(verbose=False), rounds=1, iterations=1
    )
    print("\n" + text)
    check_shape(weights, locations, empirical, analytic)


if __name__ == "__main__":
    argparse.ArgumentParser(description=__doc__).parse_args()
    weights, locations, empirical, analytic, _ = run_fig2()
    check_shape(weights, locations, empirical, analytic)
