"""Ablation — the lambda range of the EasyBO weight sampler (paper §III-B).

The paper fixes ``kappa ~ U[0, lambda]`` with lambda = 6 and argues a
"limited value" prevents over-exploration.  This bench sweeps lambda on the
op-amp problem at B = 5 and reports final-FOM statistics, exposing the
exploration/exploitation trade the constant encodes:

* lambda -> 0 collapses every draw to w ~ 0 (pure exploitation);
* large lambda pushes all mass to w ~ 1 (pure exploration).
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.circuits import OpAmpProblem
from repro.core.async_batch import AsynchronousBatchBO
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_table

LAMBDAS = (0.5, 2.0, 6.0, 20.0)


def run_sweep(repetitions: int = 2, max_evals: int = 60, seed: int = 0,
              verbose: bool = True):
    rows = []
    means = {}
    for lam in LAMBDAS:
        foms = []
        for rng in spawn_generators(seed, repetitions):
            driver = AsynchronousBatchBO(
                OpAmpProblem(),
                batch_size=5,
                lam=lam,
                n_init=10,
                max_evals=max_evals,
                rng=rng,
                acq_candidates=256,
                acq_restarts=1,
            )
            foms.append(driver.run().best_fom)
        means[lam] = float(np.mean(foms))
        rows.append([f"lambda={lam:g}", f"{np.max(foms):.2f}",
                     f"{np.min(foms):.2f}", f"{np.mean(foms):.2f}"])
    text = format_table(
        ["Setting", "Best", "Worst", "Mean"], rows,
        title="Ablation: lambda in w = kappa/(kappa+1), kappa ~ U[0, lambda]",
    )
    if verbose:
        print("\n" + text)
    return means, text


def test_ablation_lambda(benchmark):
    means, text = benchmark.pedantic(
        lambda: run_sweep(verbose=False), rounds=1, iterations=1
    )
    print("\n" + text)
    # Every setting must produce a working optimizer (sanity floor), and the
    # paper's lambda=6 must be competitive with the best of the sweep.
    assert all(np.isfinite(v) and v > 0 for v in means.values())
    assert means[6.0] >= 0.6 * max(means.values())


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--max-evals", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    run_sweep(args.repetitions, args.max_evals, args.seed)
