"""Fault-tolerance bench — EasyBO-5 on the op-amp under injected failures.

Measures what the failure layer costs and buys: the same seeded EasyBO-5
runs on the op-amp testbench with 0%, 10%, and 25% of evaluations failing
(two thirds simulator crashes, one third NaN outputs), under each driver
policy — pessimistic imputation, drop-and-re-propose, and retry-with-backoff
on top of imputation.  Every configuration must spend its full evaluation
budget with no exception escaping the driver; the table reports how much
final FOM the faults cost and how much simulated time retries burn.

Run standalone for larger scales::

    python benchmarks/bench_faults.py --scale reduced --seed 0

Under pytest-benchmark the smoke scale runs once and the table is printed
into the bench log; the assertions check the survival claims (budget always
exhausted, failures visible in the counters, fault-free FOM unharmed).
"""

from __future__ import annotations

import argparse
import dataclasses

import numpy as np

from repro.circuits import OpAmpProblem
from repro.core.async_batch import AsynchronousBatchBO
from repro.core.faults import FailurePolicy, FaultInjectionProblem
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_duration, format_table


@dataclasses.dataclass(frozen=True)
class Scale:
    name: str
    repetitions: int
    n_init: int
    max_evals: int
    acq_candidates: int
    acq_restarts: int


SCALES = {
    "smoke": Scale("smoke", 2, 10, 40, 256, 1),
    "reduced": Scale("reduced", 4, 20, 75, 512, 1),
    "paper": Scale("paper", 10, 20, 150, 2048, 4),
}

#: Driver-side policies compared at each fault rate.
POLICIES = {
    "impute": FailurePolicy(on_failure="impute"),
    "drop": FailurePolicy(on_failure="drop"),
    "retry2+impute": FailurePolicy(
        max_retries=2, retry_backoff=5.0, on_failure="impute"
    ),
}

FAULT_RATES = (0.0, 0.10, 0.25)
BATCH_SIZE = 5


def run_cell(rate: float, policy: FailurePolicy, scale: Scale, seed) -> list:
    """All repetitions of one (fault rate, policy) cell; returns RunResults."""
    results = []
    for rng in spawn_generators(seed, scale.repetitions):
        fault_rng, run_rng = spawn_generators(rng, 2)
        problem = FaultInjectionProblem(
            OpAmpProblem(),
            crash_rate=2 * rate / 3,
            nan_rate=rate / 3,
            rng=fault_rng,
        )
        driver = AsynchronousBatchBO(
            problem,
            batch_size=BATCH_SIZE,
            n_init=scale.n_init,
            max_evals=scale.max_evals,
            rng=run_rng,
            acq_candidates=scale.acq_candidates,
            acq_restarts=scale.acq_restarts,
            failure_policy=policy,
        )
        result = driver.run()
        assert result.n_evaluations == scale.max_evals, (
            f"run stopped early under rate={rate}, policy={policy.on_failure}"
        )
        results.append(result)
    return results


def run_bench(scale_name: str = "smoke", seed: int = 0, verbose: bool = True):
    """Run the fault grid; returns (grid, rendered table)."""
    scale = SCALES[scale_name]
    cells = [(rate, name) for rate in FAULT_RATES for name in POLICIES
             if rate > 0 or name == "impute"]  # policies only differ under faults
    if verbose:
        print(
            f"Fault grid at scale {scale.name!r}: {len(cells)} cells x "
            f"{scale.repetitions} repetitions, EasyBO-{BATCH_SIZE}, "
            f"{scale.max_evals} sims each"
        )
    grid = {}
    rows = []
    for i, (rate, name) in enumerate(cells):
        results = run_cell(rate, POLICIES[name], scale, seed + 1000 * i)
        grid[(rate, name)] = results
        foms = [r.best_fom for r in results]
        rows.append([
            f"{100 * rate:.0f}%",
            name,
            f"{np.mean(foms):.2f}",
            f"{np.std(foms):.2f}",
            f"{np.mean([r.n_failures for r in results]):.1f}",
            f"{np.mean([r.n_retries for r in results]):.1f}",
            format_duration(float(np.mean([r.wall_clock for r in results]))),
        ])
        if verbose:
            print(f"  rate {100 * rate:>3.0f}%  {name:<14} mean FOM {np.mean(foms):8.2f}")
    table = format_table(
        ["Faults", "Policy", "Mean FOM", "Std", "Failures", "Retries", "Time"],
        rows,
        title=f"EasyBO-{BATCH_SIZE} on op-amp under injected failures",
    )
    return grid, table


def check_shape(grid) -> None:
    """Assert the fault layer's survival claims on the completed grid."""
    for (rate, name), results in grid.items():
        max_evals = results[0].n_evaluations
        assert all(r.n_evaluations == max_evals for r in results)
        total_failures = sum(r.n_failures for r in results)
        total_faults = total_failures + sum(r.n_retries for r in results)
        if rate == 0.0:
            assert total_faults == 0
        else:
            # Retrying policies may recover every fault (n_failures == 0);
            # the encounters still show up as retries.
            assert total_faults > 0, f"no faults encountered at rate {rate}"
    retried = grid.get((0.25, "retry2+impute"))
    if retried:
        assert sum(r.n_retries for r in retried) > 0


def test_faults_smoke(benchmark):
    grid, rendered = benchmark.pedantic(
        lambda: run_bench("smoke", seed=0, verbose=False),
        rounds=1,
        iterations=1,
    )
    print("\n" + rendered)
    check_shape(grid)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="reduced")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    grid, rendered = run_bench(args.scale, args.seed)
    print("\n" + rendered)
    check_shape(grid)
