"""Pending-policy tournament bench — policies x circuits x batches x faults.

Thin harness over :mod:`repro.core.tournament`: runs the head-to-head of
the four pending-point policies (Eq. 9 hallucination, local penalisation,
pessimistic sampling, standard acquisition) with **paired seeds** — every
policy sees the identical driver seed and fault stream per cell — and
prints a ranked simple-regret table with paired comparisons against the
hallucination baseline.

======== ========= ========= ======== ============ ======= ==========
scale    policies  circuits  batches  fault rates  seeds   runs
======== ========= ========= ======== ============ ======= ==========
smoke    2         1         1        1            2       4
reduced  4         2         2        2            3       96
paper    4         3         3        3            10      1080
======== ========= ========= ======== ============ ======= ==========

The smoke scale is the CI gate: the full grid must run, a rerun cell must
reproduce bit-for-bit, and ``pending_policy="hallucinate"`` must still
match the committed ``easybo-async-branin`` golden.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_policy_tournament.py --smoke --check

Under pytest-benchmark the smoke scale runs once and asserts the gate.
"""

from __future__ import annotations

import argparse

from repro.core.tournament import (
    SCALES,
    check_tournament,
    render_report,
    run_tournament,
)


def run_bench(scale_name: str, *, verbose: bool = True):
    scale = SCALES[scale_name]
    results = run_tournament(scale)
    rendered = render_report(scale, results)
    if verbose:
        print("\n" + rendered)
    return scale, results, rendered


def test_policy_tournament_smoke(benchmark):
    scale, results, rendered = benchmark.pedantic(
        lambda: run_bench("smoke", verbose=False),
        rounds=1,
        iterations=1,
    )
    print("\n" + rendered)
    check_tournament(scale, results)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="reduced")
    parser.add_argument("--smoke", action="store_true",
                        help="shorthand for --scale smoke")
    parser.add_argument("--check", action="store_true",
                        help="assert grid completeness, reproducibility, and "
                             "the hallucinate-matches-golden invariant")
    args = parser.parse_args()
    scale, results, _ = run_bench("smoke" if args.smoke else args.scale)
    if args.check:
        check_tournament(scale, results)
        print("checks passed")
