"""Tests for DE and random search."""

import numpy as np
import pytest

from repro.baselines.de import DifferentialEvolution
from repro.baselines.random_search import RandomSearch
from repro.circuits.benchmarks import rastrigin, sphere
from repro.sched.durations import ConstantCostModel


class TestDE:
    def test_converges_on_sphere(self):
        problem = sphere(3, cost_model=ConstantCostModel(1.0))
        result = DifferentialEvolution(problem, max_evals=600, rng=0).run()
        assert result.best_fom > -0.05  # near the 0 optimum

    def test_beats_random_on_rastrigin(self):
        problem = rastrigin(3, cost_model=ConstantCostModel(1.0))
        de = DifferentialEvolution(problem, max_evals=800, rng=1).run()
        rs = RandomSearch(problem, max_evals=800, rng=1).run()
        assert de.best_fom > rs.best_fom

    def test_budget_respected(self):
        problem = sphere(2, cost_model=ConstantCostModel(1.0))
        result = DifferentialEvolution(problem, max_evals=47, rng=0).run()
        assert result.n_evaluations == 47

    def test_sequential_wall_clock(self):
        problem = sphere(2, cost_model=ConstantCostModel(2.0))
        result = DifferentialEvolution(problem, max_evals=40, rng=0).run()
        assert result.wall_clock == pytest.approx(80.0)

    def test_parallel_workers_reduce_wall_clock(self):
        problem = sphere(2, cost_model=ConstantCostModel(2.0))
        serial = DifferentialEvolution(problem, max_evals=60, rng=0, n_workers=1).run()
        parallel = DifferentialEvolution(problem, max_evals=60, rng=0, n_workers=4).run()
        assert parallel.wall_clock < serial.wall_clock / 2

    def test_deterministic(self):
        problem = sphere(2, cost_model=ConstantCostModel(1.0))
        a = DifferentialEvolution(problem, max_evals=100, rng=5).run()
        b = DifferentialEvolution(problem, max_evals=100, rng=5).run()
        assert a.best_fom == b.best_fom

    def test_trials_stay_in_bounds(self):
        problem = sphere(2, cost_model=ConstantCostModel(1.0))
        result = DifferentialEvolution(problem, max_evals=200, rng=2, f=1.9).run()
        bounds = problem.bounds
        for record in result.trace.records:
            assert np.all(record.x >= bounds[:, 0] - 1e-12)
            assert np.all(record.x <= bounds[:, 1] + 1e-12)

    def test_parameter_validation(self):
        problem = sphere(2)
        with pytest.raises(ValueError):
            DifferentialEvolution(problem, max_evals=100, f=3.0)
        with pytest.raises(ValueError):
            DifferentialEvolution(problem, max_evals=100, cr=1.5)
        with pytest.raises(ValueError):
            DifferentialEvolution(problem, max_evals=100, pop_size=3)
        with pytest.raises(ValueError):
            DifferentialEvolution(problem, max_evals=1)


class TestRandomSearch:
    def test_budget_and_bounds(self):
        problem = sphere(2, cost_model=ConstantCostModel(1.0))
        result = RandomSearch(problem, max_evals=25, rng=0).run()
        assert result.n_evaluations == 25

    def test_parallel_workers(self):
        problem = sphere(2, cost_model=ConstantCostModel(3.0))
        result = RandomSearch(problem, max_evals=30, rng=0, n_workers=5).run()
        assert result.wall_clock == pytest.approx(18.0)  # 30/5 * 3 s

    def test_deterministic(self):
        problem = sphere(2)
        a = RandomSearch(problem, max_evals=20, rng=9).run()
        b = RandomSearch(problem, max_evals=20, rng=9).run()
        assert a.best_fom == b.best_fom

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomSearch(sphere(2), max_evals=0)
