"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import check_bounds, check_finite, check_matrix, check_vector


class TestCheckVector:
    def test_accepts_list(self):
        out = check_vector([1, 2, 3])
        assert out.dtype == float
        assert out.shape == (3,)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="must be 1-D"):
            check_vector(np.zeros((2, 2)))

    def test_enforces_size(self):
        with pytest.raises(ValueError, match="length 4"):
            check_vector([1, 2, 3], size=4)


class TestCheckMatrix:
    def test_promotes_vector_to_row(self):
        out = check_matrix([1.0, 2.0], cols=2)
        assert out.shape == (1, 2)

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="must be 2-D"):
            check_matrix(np.zeros((2, 2, 2)))

    def test_enforces_cols(self):
        with pytest.raises(ValueError, match="3 columns"):
            check_matrix(np.zeros((4, 2)), cols=3)


class TestCheckBounds:
    def test_valid(self):
        b = check_bounds([[0, 1], [-2, 5]])
        assert b.shape == (2, 2)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError, match="lower bound must be <"):
            check_bounds([[1, 0]])

    def test_rejects_equal(self):
        with pytest.raises(ValueError):
            check_bounds([[2, 2]])

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError, match="finite"):
            check_bounds([[0, np.inf]])

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match=r"\(d, 2\)"):
            check_bounds([0, 1])

    def test_enforces_dim(self):
        with pytest.raises(ValueError, match="3 rows"):
            check_bounds([[0, 1]], dim=3)


class TestCheckFinite:
    def test_passes_finite(self):
        arr = np.ones(3)
        assert check_finite(arr) is arr

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_finite(np.array([1.0, np.nan]))

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_finite(np.array([np.inf]))
