"""Property-based tests of the scheduling claims behind the paper.

These verify, over randomized workloads, the structural facts §III-A relies
on: greedy asynchronous refill never loses to synchronous batching on
makespan, both disciplines do identical total work, and utilization behaves.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import FunctionProblem
from repro.sched.workers import VirtualWorkerPool

pytestmark = pytest.mark.property


def pools_for(durations, batch):
    """Run the same job list synchronously and asynchronously."""
    table = {float(i): d for i, d in enumerate(durations)}
    problem = FunctionProblem(
        lambda x: 0.0,
        [[0.0, float(len(durations))]],
        cost_model=lambda x: table[float(round(x[0]))],
    )
    sync = VirtualWorkerPool(problem, batch)
    for start in range(0, len(durations), batch):
        for i in range(start, min(start + batch, len(durations))):
            sync.submit(np.array([float(i)]))
        sync.wait_all()

    async_ = VirtualWorkerPool(problem, batch)
    for i in range(min(batch, len(durations))):
        async_.submit(np.array([float(i)]))
    for i in range(batch, len(durations)):
        async_.wait_next()
        async_.submit(np.array([float(i)]))
    async_.wait_all()
    return sync, async_


durations_strategy = st.lists(
    st.floats(0.1, 100.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(durations=durations_strategy, batch=st.integers(1, 8))
def test_async_never_slower_than_sync(durations, batch):
    sync, async_ = pools_for(durations, batch)
    assert async_.trace.makespan <= sync.trace.makespan + 1e-9


@settings(max_examples=40, deadline=None)
@given(durations=durations_strategy, batch=st.integers(1, 8))
def test_same_total_work_and_counts(durations, batch):
    sync, async_ = pools_for(durations, batch)
    assert len(sync.trace) == len(async_.trace) == len(durations)
    assert sync.trace.total_busy_time == pytest.approx(async_.trace.total_busy_time)


@settings(max_examples=40, deadline=None)
@given(durations=durations_strategy, batch=st.integers(1, 8))
def test_utilization_bounded(durations, batch):
    sync, async_ = pools_for(durations, batch)
    for pool in (sync, async_):
        assert 0.0 < pool.trace.utilization() <= 1.0 + 1e-12


@settings(max_examples=40, deadline=None)
@given(durations=durations_strategy)
def test_batch_one_equals_serial_sum(durations):
    sync, async_ = pools_for(durations, batch=1)
    assert sync.trace.makespan == pytest.approx(sum(durations))
    assert async_.trace.makespan == pytest.approx(sum(durations))


@settings(max_examples=40, deadline=None)
@given(durations=durations_strategy, batch=st.integers(1, 8))
def test_makespan_lower_bound(durations, batch):
    """No discipline can beat total-work / workers or the longest job."""
    sync, async_ = pools_for(durations, batch)
    lower = max(sum(durations) / batch, max(durations))
    assert async_.trace.makespan >= lower - 1e-9
    assert sync.trace.makespan >= lower - 1e-9
