"""Tests for repro.spice.netlist."""

import pytest

from repro.spice import Circuit, Resistor, nmos_180
from repro.spice.exceptions import TopologyError


def simple_divider():
    c = Circuit("divider")
    c.V("vin", "in", "0", dc=1.0)
    c.R("r1", "in", "mid", 1000)
    c.R("r2", "mid", "0", 1000)
    return c


class TestBuilding:
    def test_add_returns_element(self):
        c = Circuit()
        r = c.R("r1", "a", "0", 100)
        assert isinstance(r, Resistor)

    def test_duplicate_name_rejected(self):
        c = Circuit()
        c.R("r1", "a", "0", 100)
        with pytest.raises(TopologyError, match="duplicate"):
            c.R("r1", "b", "0", 100)

    def test_add_rejects_non_element(self):
        with pytest.raises(TypeError):
            Circuit().add("not an element")

    def test_extend(self):
        c = Circuit()
        c.extend([Resistor("r1", "a", "0", 1), Resistor("r2", "a", "0", 2)])
        assert len(c) == 2

    def test_find(self):
        c = simple_divider()
        assert c.find("r1").name == "r1"
        with pytest.raises(KeyError):
            c.find("nope")


class TestIndexing:
    def test_nodes_exclude_ground(self):
        c = simple_divider()
        assert c.nodes == ["in", "mid"]

    def test_ground_aliases(self):
        c = Circuit()
        c.R("r1", "a", "gnd", 100)
        c.R("r2", "a", "GND", 100)
        assert c.nodes == ["a"]

    def test_branch_index_offsets(self):
        c = simple_divider()
        c.L("l1", "mid", "0", 1e-6)
        idx = c.branch_index()
        assert idx["vin"] == 2
        assert idx["l1"] == 3
        assert c.n_unknowns == 4

    def test_mosfets_listing(self):
        c = Circuit()
        c.V("vdd", "vdd", "0", dc=1.8)
        c.M("m1", "vdd", "vdd", "0", "0", nmos_180(), 1e-6, 1e-6)
        assert [m.name for m in c.mosfets()] == ["m1"]


class TestValidation:
    def test_valid_circuit_passes(self):
        simple_divider().validate()

    def test_empty_circuit_rejected(self):
        with pytest.raises(TopologyError, match="no elements"):
            Circuit().validate()

    def test_no_ground_rejected(self):
        c = Circuit()
        c.R("r1", "a", "b", 100)
        with pytest.raises(TopologyError, match="ground"):
            c.validate()

    def test_floating_node_rejected(self):
        c = simple_divider()
        c.R("r3", "x", "y", 100)  # island disconnected from ground
        with pytest.raises(TopologyError, match="no path to ground"):
            c.validate()

    def test_control_pins_not_conductive(self):
        c = Circuit()
        c.V("vin", "in", "0", dc=1.0)
        c.R("r1", "in", "0", 100)
        # VCCS output to ground is fine, but its control pins alone must not
        # count as a conductive path for a floating node.
        c.G("g1", "0", "out", "in", "0", 1e-3)
        c.R("rl", "out", "0", 1000)
        c.validate()


class TestSummary:
    def test_summary_lists_all_elements(self):
        c = simple_divider()
        text = c.summary()
        assert "* divider" in text
        assert "r1" in text and "r2" in text and "vin" in text
        assert "2 Resistor" in text
        assert "2 nodes" in text
