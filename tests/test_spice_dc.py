"""Tests for the DC operating-point solver."""

import numpy as np
import pytest

from repro.spice import Circuit, dc_operating_point, nmos_180, pmos_180
from repro.spice.exceptions import SingularMatrixError


class TestLinearCircuits:
    def test_voltage_divider(self):
        c = Circuit("divider")
        c.V("vin", "in", "0", dc=10.0)
        c.R("r1", "in", "mid", 1000)
        c.R("r2", "mid", "0", 3000)
        op = dc_operating_point(c)
        assert op.v("mid") == pytest.approx(7.5, rel=1e-6)
        assert op.i("vin") == pytest.approx(-10.0 / 4000.0, rel=1e-6)

    def test_ground_voltage_is_zero(self):
        c = Circuit()
        c.V("v1", "a", "0", dc=5.0)
        c.R("r1", "a", "0", 100)
        op = dc_operating_point(c)
        assert op.v("0") == 0.0
        assert op.v("gnd") == 0.0

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.I("i1", "0", "a", dc=1e-3)  # 1 mA into node a
        c.R("r1", "a", "0", 2000)
        op = dc_operating_point(c)
        assert op.v("a") == pytest.approx(2.0, rel=1e-6)

    def test_inductor_is_dc_short(self):
        c = Circuit()
        c.V("v1", "a", "0", dc=3.0)
        c.L("l1", "a", "b", 1e-3)
        c.R("r1", "b", "0", 1000)
        op = dc_operating_point(c)
        assert op.v("b") == pytest.approx(3.0, rel=1e-6)
        assert op.i("l1") == pytest.approx(3e-3, rel=1e-6)

    def test_capacitor_is_dc_open(self):
        c = Circuit()
        c.V("v1", "a", "0", dc=3.0)
        c.R("r1", "a", "b", 1000)
        c.C("c1", "b", "0", 1e-9)
        c.R("r2", "b", "0", 1e6)
        op = dc_operating_point(c)
        # Divider of 1k over 1M: nearly all voltage at b.
        assert op.v("b") == pytest.approx(3.0 * 1e6 / (1e6 + 1e3), rel=1e-6)

    def test_vcvs(self):
        c = Circuit()
        c.V("vin", "in", "0", dc=0.5)
        c.R("ri", "in", "0", 1000)
        c.E("e1", "out", "0", "in", "0", 10.0)
        c.R("rl", "out", "0", 1000)
        op = dc_operating_point(c)
        assert op.v("out") == pytest.approx(5.0, rel=1e-6)

    def test_vccs(self):
        c = Circuit()
        c.V("vin", "in", "0", dc=1.0)
        c.R("ri", "in", "0", 1000)
        c.G("g1", "0", "out", "in", "0", 2e-3)  # current into out
        c.R("rl", "out", "0", 500)
        op = dc_operating_point(c)
        assert op.v("out") == pytest.approx(1.0, rel=1e-6)

    def test_series_voltage_sources(self):
        c = Circuit()
        c.V("v1", "a", "0", dc=1.0)
        c.V("v2", "b", "a", dc=2.0)
        c.R("r", "b", "0", 100)
        op = dc_operating_point(c)
        assert op.v("b") == pytest.approx(3.0, rel=1e-6)


class TestNonlinearCircuits:
    def test_diode_connected_nmos(self):
        c = Circuit("diode load")
        c.V("vdd", "vdd", "0", dc=1.8)
        c.R("r1", "vdd", "d", 10_000)
        c.M("m1", "d", "d", "0", "0", nmos_180(), w=2e-6, l=0.18e-6)
        op = dc_operating_point(c)
        vd = op.v("d")
        assert 0.45 < vd < 1.2  # above vth, below supply
        dev = op.mosfet_ops["m1"]
        assert dev.region == "saturation"
        # KCL: resistor current equals drain current.
        assert (1.8 - vd) / 10_000 == pytest.approx(dev.ids, rel=1e-3)

    def test_nmos_source_follower(self):
        c = Circuit("follower")
        c.V("vdd", "vdd", "0", dc=1.8)
        c.V("vg", "g", "0", dc=1.2)
        c.M("m1", "vdd", "g", "s", "0", nmos_180(), w=20e-6, l=0.36e-6)
        c.R("rs", "s", "0", 10_000)
        op = dc_operating_point(c)
        vs = op.v("s")
        assert 0.2 < vs < 1.2 - 0.4  # roughly vg - vth(with body effect)

    def test_cmos_inverter_high_and_low(self):
        def inverter(vin):
            c = Circuit("inverter")
            c.V("vdd", "vdd", "0", dc=1.8)
            c.V("vin", "in", "0", dc=vin)
            c.M("mn", "out", "in", "0", "0", nmos_180(), w=2e-6, l=0.18e-6)
            c.M("mp", "out", "in", "vdd", "vdd", pmos_180(), w=4e-6, l=0.18e-6)
            return dc_operating_point(c)

        assert inverter(0.0).v("out") == pytest.approx(1.8, abs=1e-3)
        assert inverter(1.8).v("out") == pytest.approx(0.0, abs=1e-3)
        mid = inverter(0.9).v("out")
        assert 0.1 < mid < 1.7

    def test_five_transistor_ota_balances(self):
        """Differential pair with mirror load: equal inputs -> symmetric op."""
        c = Circuit("ota")
        c.V("vdd", "vdd", "0", dc=1.8)
        c.V("vip", "ip", "0", dc=0.9)
        c.V("vim", "im", "0", dc=0.9)
        c.I("ibias", "vdd", "tail_ref", dc=20e-6)
        c.M("mtail_ref", "tail_ref", "tail_ref", "0", "0", nmos_180(), 4e-6, 0.72e-6)
        c.M("mtail", "tail", "tail_ref", "0", "0", nmos_180(), 4e-6, 0.72e-6)
        c.M("m1", "x", "ip", "tail", "0", nmos_180(), 8e-6, 0.36e-6)
        c.M("m2", "out", "im", "tail", "0", nmos_180(), 8e-6, 0.36e-6)
        c.M("m3", "x", "x", "vdd", "vdd", pmos_180(), 16e-6, 0.36e-6)
        c.M("m4", "out", "x", "vdd", "vdd", pmos_180(), 16e-6, 0.36e-6)
        op = dc_operating_point(c)
        # Balanced inputs: output close to mirror node voltage.
        assert op.v("out") == pytest.approx(op.v("x"), abs=0.2)
        assert op.mosfet_ops["m1"].region == "saturation"


class TestRobustness:
    def test_guess_shape_validated(self):
        c = Circuit()
        c.V("v1", "a", "0", dc=1.0)
        c.R("r1", "a", "0", 100)
        with pytest.raises(ValueError):
            dc_operating_point(c, v_guess=np.zeros(5))

    def test_voltage_source_loop_is_singular(self):
        c = Circuit()
        c.V("v1", "a", "0", dc=1.0)
        c.V("v2", "a", "0", dc=2.0)  # conflicting parallel sources
        c.R("r", "a", "0", 100)
        with pytest.raises(SingularMatrixError):
            dc_operating_point(c)

    def test_iterations_reported(self):
        c = Circuit()
        c.V("v1", "a", "0", dc=1.0)
        c.R("r1", "a", "0", 100)
        op = dc_operating_point(c)
        assert op.iterations >= 1
