"""Tests for GP leave-one-out diagnostics."""

import numpy as np
import pytest

from repro.gp import GaussianProcess, fit_hyperparameters
from repro.gp.diagnostics import leave_one_out


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, size=(35, 2))
    y = np.sin(5 * X[:, 0]) + X[:, 1] ** 2 + 0.05 * rng.standard_normal(35)
    gp = GaussianProcess(2).fit(X, y)
    fit_hyperparameters(gp, rng=0)
    return gp


class TestLeaveOneOut:
    def test_matches_brute_force(self, fitted):
        """Closed-form LOO must equal actually refitting without each point."""
        loo = leave_one_out(fitted)
        for i in (0, 7, 20):
            mask = np.ones(fitted.n_train, dtype=bool)
            mask[i] = False
            gp_i = GaussianProcess(
                kernel=fitted.kernel.copy(), noise_variance=fitted.noise_variance
            ).fit(fitted.X[mask], fitted.y[mask])
            mu, sigma = gp_i.predict(fitted.X[i].reshape(1, -1))
            assert loo.mean[i] == pytest.approx(mu[0], abs=1e-6)
            # Brute-force sigma excludes the point's own noise; closed form
            # includes it (it predicts the noisy observation).
            var_with_noise = sigma[0] ** 2 + fitted.noise_variance
            assert loo.std[i] ** 2 == pytest.approx(var_with_noise, rel=1e-6)

    def test_residual_definition(self, fitted):
        loo = leave_one_out(fitted)
        np.testing.assert_allclose(loo.residuals, fitted.y - loo.mean, atol=1e-12)

    def test_standardized_residuals_reasonable(self, fitted):
        loo = leave_one_out(fitted)
        z = loo.standardized_residuals
        assert np.abs(z).max() < 5.0
        assert np.abs(np.mean(z)) < 1.0

    def test_rmse_small_for_good_model(self, fitted):
        assert leave_one_out(fitted).rmse < 0.3

    def test_log_predictive_density_prefers_good_model(self, fitted):
        good = leave_one_out(fitted).log_predictive_density()
        bad_gp = GaussianProcess(2, noise_variance=1e-6).fit(fitted.X, fitted.y)
        bad_gp.kernel.lengthscales[:] = 20.0  # absurdly long: underfits
        bad_gp.fit(fitted.X, fitted.y)
        bad = leave_one_out(bad_gp).log_predictive_density()
        assert good > bad

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            leave_one_out(GaussianProcess(2))
