"""Tests for cost-aware EasyBO."""

import numpy as np
import pytest

from repro.core.cost_aware import CostAwareEasyBO
from repro.core.problem import FunctionProblem

QUICK = dict(n_init=8, max_evals=28, rng=0, acq_candidates=256, acq_restarts=1)


def plateau_problem():
    """Flat-ish objective where cost varies strongly with x[0].

    Designs with x[0] > 0 cost 10x more but offer no FOM advantage, so a
    cost-aware optimizer should spend its budget on the cheap half.
    """

    def fom(x):
        return float(-0.1 * np.sum(x**2))

    def cost(x):
        return 100.0 if x[0] > 0 else 10.0

    return FunctionProblem(fom, [[-1, 1], [-1, 1]], cost_model=cost, name="plateau")


class TestCostAware:
    def test_runs_and_names(self):
        driver = CostAwareEasyBO(plateau_problem(), batch_size=3, **QUICK)
        assert driver.algorithm_name == "caEasyBO-3"
        result = driver.run()
        assert result.n_evaluations == 28

    def test_prefers_cheap_region(self):
        driver = CostAwareEasyBO(
            plateau_problem(), batch_size=3, cost_exponent=1.0, **QUICK
        )
        result = driver.run()
        model_phase = [r for r in result.trace.records if r.index >= 8]
        cheap = sum(1 for r in model_phase if r.x[0] <= 0)
        assert cheap > len(model_phase) / 2

    def test_saves_wall_clock_vs_plain(self):
        from repro.core.async_batch import AsynchronousBatchBO

        plain = AsynchronousBatchBO(plateau_problem(), batch_size=3, **QUICK).run()
        aware = CostAwareEasyBO(
            plateau_problem(), batch_size=3, cost_exponent=1.0, **QUICK
        ).run()
        assert aware.wall_clock < plain.wall_clock

    def test_exponent_zero_ignores_cost(self):
        driver = CostAwareEasyBO(
            plateau_problem(), batch_size=2, cost_exponent=0.0, **QUICK
        )
        result = driver.run()
        assert result.n_evaluations == 28  # behaves like plain EasyBO

    def test_predicted_cost_learns_scale(self):
        driver = CostAwareEasyBO(plateau_problem(), batch_size=2, **QUICK)
        driver.run()
        U_cheap = np.array([[0.2, 0.5]])  # x[0] = -0.6
        U_dear = np.array([[0.8, 0.5]])  # x[0] = +0.6
        assert driver.predicted_cost(U_dear)[0] > driver.predicted_cost(U_cheap)[0]

    def test_cost_model_needs_fit(self):
        driver = CostAwareEasyBO(plateau_problem(), batch_size=2, **QUICK)
        with pytest.raises(RuntimeError):
            driver.predicted_cost(np.array([[0.5, 0.5]]))

    def test_exponent_validated(self):
        with pytest.raises(ValueError):
            CostAwareEasyBO(plateau_problem(), batch_size=2, cost_exponent=-1.0)
