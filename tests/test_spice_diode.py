"""Tests for the junction diode across all analyses."""

import numpy as np
import pytest

from repro.spice import (
    Circuit,
    Diode,
    DiodeParams,
    SinWave,
    ac_analysis,
    dc_operating_point,
    transient_analysis,
)
from repro.spice.diode import VT


class TestModel:
    def test_reverse_saturation(self):
        d = Diode("d1", "a", "c")
        op = d.evaluate(-1.0)
        assert op.current == pytest.approx(-d.params.i_s, rel=1e-6)

    def test_zero_bias_zero_current(self):
        d = Diode("d1", "a", "c")
        assert d.evaluate(0.0).current == 0.0

    def test_exponential_region(self):
        d = Diode("d1", "a", "c")
        v = 0.5
        expected = d.params.i_s * (np.exp(v / VT) - 1.0)
        assert d.evaluate(v).current == pytest.approx(expected, rel=1e-9)

    def test_gd_matches_finite_difference(self):
        d = Diode("d1", "a", "c")
        for v in (-0.5, 0.3, 0.55, 0.9, 2.0):
            eps = 1e-8
            num = (d.evaluate(v + eps).current - d.evaluate(v - eps).current) / (2 * eps)
            assert d.evaluate(v).gd == pytest.approx(num, rel=1e-4)

    def test_limiting_keeps_current_finite(self):
        d = Diode("d1", "a", "c")
        op = d.evaluate(50.0)  # would overflow a raw exponential
        assert np.isfinite(op.current)
        assert np.isfinite(op.gd)

    def test_linearization_continuous_at_vcrit(self):
        d = Diode("d1", "a", "c")
        below = d.evaluate(d.v_crit - 1e-9).current
        above = d.evaluate(d.v_crit + 1e-9).current
        assert above == pytest.approx(below, rel=1e-6)

    def test_ieq_consistency(self):
        d = Diode("d1", "a", "c")
        op = d.evaluate(0.6)
        assert op.gd * op.v + op.ieq == pytest.approx(op.current, rel=1e-12)

    def test_params_validated(self):
        with pytest.raises(ValueError):
            DiodeParams(i_s=-1.0)
        with pytest.raises(ValueError):
            DiodeParams(n=0.0)


class TestDcWithDiode:
    def test_forward_drop_in_series_circuit(self):
        c = Circuit("diode drop")
        c.V("v1", "in", "0", dc=5.0)
        c.R("r1", "in", "a", 1000)
        c.D("d1", "a", "0")
        op = dc_operating_point(c)
        vd = op.v("a")
        assert 0.5 < vd < 0.8  # silicon-ish forward drop
        # KCL: resistor current equals the diode equation.
        i_r = (5.0 - vd) / 1000.0
        d = c.find("d1")
        assert i_r == pytest.approx(d.evaluate(vd).current, rel=1e-5)

    def test_reverse_biased_blocks(self):
        c = Circuit("reverse")
        c.V("v1", "in", "0", dc=-5.0)
        c.R("r1", "in", "a", 1000)
        c.D("d1", "a", "0")
        op = dc_operating_point(c)
        assert op.v("a") == pytest.approx(-5.0, abs=1e-3)  # no current flows


class TestAcWithDiode:
    def test_small_signal_conductance(self):
        c = Circuit("diode ac")
        c.V("v1", "in", "0", dc=5.0, ac=1.0)
        c.R("r1", "in", "a", 1000)
        c.D("d1", "a", "0", DiodeParams(cj0=0.0))
        op = dc_operating_point(c)
        res = ac_analysis(c, np.array([100.0]), op=op)
        gd = c.find("d1").evaluate(op.v("a")).gd
        expected = (1.0 / 1000.0) / (1.0 / 1000.0 + gd)  # divider with rd
        assert abs(res.v("a"))[0] == pytest.approx(expected, rel=1e-4)


class TestTransientWithDiode:
    def test_half_wave_rectifier(self):
        c = Circuit("rectifier")
        c.V("v1", "in", "0", waveform=SinWave(0.0, 5.0, 1e3))
        c.D("d1", "in", "out", DiodeParams(cj0=0.0))
        c.R("rl", "out", "0", 10_000)
        res = transient_analysis(c, 2e-3, 2e-6)
        v = res.v("out")
        assert v.min() > -0.05  # negative half-cycles blocked
        assert v.max() > 3.5  # positive peaks pass minus the drop
        assert v.max() < 5.0

    def test_peak_detector_holds_charge(self):
        c = Circuit("peak detector")
        c.V("v1", "in", "0", waveform=SinWave(0.0, 3.0, 1e4))
        c.D("d1", "in", "out", DiodeParams(cj0=0.0))
        c.C("chold", "out", "0", 1e-6)
        c.R("rl", "out", "0", 1e6)
        res = transient_analysis(c, 5e-4, 2e-7)
        v = res.v("out")
        # After the first peak the output stays near the peak voltage.
        late = v[res.t > 3e-4]
        assert late.min() > 1.8
        assert np.ptp(late) < 0.5


class TestSummaryAndValidation:
    def test_describe(self):
        assert "IS=" in Diode("d1", "a", "c").describe()

    def test_circuit_helper(self):
        c = Circuit()
        d = c.D("d1", "a", "0")
        assert isinstance(d, Diode)
