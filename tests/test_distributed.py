"""The distributed subsystem: protocol, supervision, and chaos cases.

The contract-level behaviour shared with the other backends lives in
``test_pool_contract.py``; this file covers what only exists for real OS
workers — the wire protocol and problem specs, worker death (SIGKILL),
frozen workers (SIGSTOP -> heartbeat expiry), wedged evaluations
(``policy.timeout`` -> worker kill), driver-level orphan reissue over
processes, journal resume onto a process pool, and the no-zombies close
guarantee on both the clean and the exception path.
"""

from __future__ import annotations

import math
import os
import signal
import time

import numpy as np
import pytest

from repro.circuits import OpAmpProblem
from repro.circuits.benchmarks import sphere
from repro.core.easybo import EasyBO
from repro.core.faults import (
    FailurePolicy,
    HangProblem,
    KillSwitchJournal,
    ProcessKilled,
)
from repro.core.journal import JournalWriter
from repro.core.problem import EvaluationResult
from repro.core.recovery import resume
from repro.distributed import (
    ProcessWorkerPool,
    load_problem,
    problem_spec,
)
from repro.distributed.protocol import result_from_dict, result_to_dict

FAST = dict(heartbeat_interval=0.1, poll_interval=0.05, respawn_backoff=0.1)


def assert_reaped(pool):
    """No zombie left behind: every process the pool ever spawned is waited."""
    assert all(proc.poll() is not None for proc in pool._all_procs)


class TestProtocol:
    def test_result_round_trip(self):
        result = EvaluationResult(
            fom=1.25, metrics={"gain": 80.0}, cost=3.5, feasible=True
        )
        clone = result_from_dict(result_to_dict(result))
        assert clone == result

    def test_failed_result_round_trip_preserves_nan(self):
        result = EvaluationResult.failed("sim died", status="crashed", cost=2.0)
        clone = result_from_dict(result_to_dict(result))
        assert math.isnan(clone.fom)
        assert clone.status == "crashed"
        assert clone.error == "sim died"
        assert not clone.feasible

    def test_picklable_problem_uses_pickle_spec(self):
        spec = problem_spec(OpAmpProblem())
        assert spec["kind"] == "pickle"
        rebuilt = load_problem(spec)
        x = rebuilt.bounds.mean(axis=1)
        assert rebuilt.evaluate(x).fom == OpAmpProblem().evaluate(x).fom

    def test_closure_problem_falls_back_to_named_spec(self):
        problem = sphere(dim=2)  # closures make it unpicklable
        spec = problem_spec(problem)
        assert spec == {"kind": "named", "name": "sphere2"}
        rebuilt = load_problem(spec)
        np.testing.assert_array_equal(rebuilt.bounds, problem.bounds)

    def test_unresolvable_problem_is_rejected_loudly(self):
        class Local:  # neither picklable by the worker nor registered
            name = "no-such-problem"
            bounds = np.array([[0.0, 1.0]])

        Local.__module__ = "__main__"
        with pytest.raises(ValueError, match="neither picklable"):
            problem_spec(Local())


def _opamp_points(n, seed=0):
    problem = OpAmpProblem()
    rng = np.random.default_rng(seed)
    return problem, rng.uniform(problem.bounds[:, 0], problem.bounds[:, 1],
                                size=(n, problem.dim))


class TestSupervision:
    def _wait_dispatched(self, pool, index, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            pool._service(0.05)
            meta = pool._tasks.get(index)
            if meta is not None and meta["dispatch_time"] is not None:
                return pool._slots[meta["worker"]]
        raise AssertionError(f"evaluation {index} never dispatched")

    def test_sigkill_orphans_task_and_respawns_worker(self):
        problem, X = _opamp_points(3, seed=1)
        with ProcessWorkerPool(problem, 2, **FAST) as pool:
            i0 = pool.submit(X[0])
            pool.submit(X[1])
            slot = self._wait_dispatched(pool, i0)
            slot.proc.kill()
            completions = {c.index: c for c in pool.wait_all()}
            assert completions[i0].result.status == "orphaned"
            # The fleet recovers: the respawned slot serves new work.
            deadline = time.monotonic() + 60
            while pool.idle_count < 2 and time.monotonic() < deadline:
                pool._service(0.05)
            pool.submit(X[2])
            assert pool.wait_next().result.ok
            assert pool.telemetry().n_respawns == 1
        assert_reaped(pool)

    def test_sigstop_expires_heartbeat_and_orphans(self):
        problem, X = _opamp_points(2, seed=2)
        with ProcessWorkerPool(problem, 1, **FAST) as pool:
            i0 = pool.submit(X[0])
            slot = self._wait_dispatched(pool, i0)
            os.kill(slot.proc.pid, signal.SIGSTOP)
            start = time.monotonic()
            completion = pool.wait_next()
            assert completion.index == i0
            assert completion.result.status == "orphaned"
            # Expired within a few heartbeat windows, not a lease/minutes.
            assert time.monotonic() - start < 30
            assert pool.telemetry().n_heartbeat_expiries == 1
        assert_reaped(pool)

    def test_policy_timeout_kills_wedged_worker(self):
        # The heartbeat thread keeps beating through the hang, so only the
        # evaluation deadline — not the heartbeat — can catch this one.
        inner = OpAmpProblem()
        hi = inner.bounds[:, 1]
        problem = HangProblem(inner, hang_above=float(hi[0]), hang_seconds=60.0)
        policy = FailurePolicy(timeout=1.5)
        _, X = _opamp_points(1, seed=3)
        with ProcessWorkerPool(problem, 1, policy=policy, **FAST) as pool:
            x = X[0].copy()
            x[0] = hi[0]  # trigger the hang
            index = pool.submit(x)
            start = time.monotonic()
            completion = pool.wait_next()
            assert completion.index == index
            assert completion.result.status == "timeout"
            assert completion.result.cost == pytest.approx(1.5)
            assert time.monotonic() - start < 30
            assert pool.telemetry().n_timeout_kills == 1
        assert_reaped(pool)

    def test_all_workers_dead_raises_instead_of_hanging(self):
        problem, X = _opamp_points(1, seed=4)
        with ProcessWorkerPool(problem, 1, respawn_limit=0, **FAST) as pool:
            i0 = pool.submit(X[0])
            slot = self._wait_dispatched(pool, i0)
            slot.proc.kill()
            completion = pool.wait_next()  # the orphan drains first
            assert completion.result.status == "orphaned"
            with pytest.raises(RuntimeError, match="failed permanently"):
                pool.submit(X[0])
        assert_reaped(pool)


class TestDriverIntegration:
    def test_easybo_end_to_end_with_telemetry(self):
        problem = sphere(dim=2)  # crosses the wire as a named spec
        result = EasyBO(
            problem, batch_size=2, n_init=4, max_evals=10, rng=0,
            pool_factory=lambda p, n, policy=None: ProcessWorkerPool(
                p, n, policy=policy, **FAST
            ),
            acq_candidates=64, acq_restarts=1,
        ).optimize()
        assert result.n_evaluations == 10
        assert np.isfinite(result.best_fom)
        telemetry = result.pool_telemetry
        assert telemetry is not None
        assert telemetry.backend == "process"
        assert telemetry.n_workers == 2
        assert telemetry.n_tasks == 10
        assert sum(telemetry.worker_tasks) == 10
        assert telemetry.n_respawns == 0  # a clean run needed no supervision
        assert result.trace.pool_telemetry is telemetry

    def test_killed_worker_mid_run_completes_via_orphan_reissue(self):
        from repro.circuits.benchmarks import RepeatedProblem

        # Latency-padded so the kill reliably lands while the victim's
        # point is still in flight (a bare 15 ms op-amp call often
        # finishes before the signal does).
        problem = RepeatedProblem(OpAmpProblem(), latency=0.3)
        policy = FailurePolicy(on_orphan="reissue")
        pools = []
        killed = {}

        # Kill one busy worker once, from a completion hook: wrap the
        # pool's wait_next to murder a worker that still has a point in
        # flight after the second completion — its result can then only
        # arrive through the orphan-reissue path.
        def killing_factory(p, n, policy=policy):
            pool = ProcessWorkerPool(p, n, policy=policy, **FAST)
            pools.append(pool)
            original = pool.wait_next

            def wait_next():
                completion = original()
                if len(pool.trace.records) >= 2 and not killed:
                    busy = next(
                        (s for s in pool._slots
                         if s.task is not None and s.proc is not None
                         and s.proc.poll() is None),
                        None,
                    )
                    if busy is not None:
                        busy.proc.kill()
                        killed["worker"] = busy.worker_id
                return completion

            pool.wait_next = wait_next
            return pool

        easybo = EasyBO(
            problem, batch_size=2, n_init=4, max_evals=9, rng=0,
            pool_factory=killing_factory, failure_policy=policy,
            acq_candidates=64, acq_restarts=1,
        )
        start = time.monotonic()
        result = easybo.optimize()
        assert time.monotonic() - start < 300  # completed, no hang
        assert killed, "the chaos hook never fired"
        statuses = [r.status for r in result.trace.records]
        assert statuses.count("orphaned") >= 1
        # Budget preserved: orphan reissues are budget-neutral, and the
        # reissued points were actually evaluated.
        assert statuses.count("ok") >= 9
        for pool in pools:
            assert_reaped(pool)

    def test_journal_resume_onto_process_pool(self, tmp_path):
        problem = sphere(dim=2)
        path = tmp_path / "run.journal"
        factory = lambda p, n, policy=None: ProcessWorkerPool(
            p, n, policy=policy, **FAST
        )
        easybo = EasyBO(
            problem, batch_size=2, n_init=4, max_evals=8, rng=0,
            pool_factory=factory, acq_candidates=64, acq_restarts=1,
            journal=KillSwitchJournal(JournalWriter(path), kill_at=14),
        )
        pool_seen = []
        easybo.driver.pool_factory = lambda p, n, policy=None: pool_seen.append(
            factory(p, n, policy=policy)
        ) or pool_seen[-1]
        with pytest.raises(ProcessKilled):
            easybo.optimize()
        # The exception path still closed the pool: no zombies mid-crash.
        assert pool_seen and pool_seen[0]._closed
        assert_reaped(pool_seen[0])

        result = resume(path, problem=problem, pool_factory=factory)
        assert result.n_evaluations == 8
        assert np.isfinite(result.best_fom)
        assert result.pool_telemetry is not None
        assert result.pool_telemetry.backend == "process"


class TestCampaignServerNoZombies:
    """The server-hosted pools follow the same no-zombie close guarantee."""

    def test_client_disconnect_reaps_server_pool(self, tmp_path):
        from repro.distributed import CampaignClient, serve

        server = serve(journal_dir=tmp_path, max_workers=2, background=True)
        try:
            client = CampaignClient(port=server.port)
            cid = client.create(
                "EasyBO-2", "sphere2",
                config=dict(rng=0, n_init=3, max_evals=200,
                            acq_candidates=32, acq_restarts=1),
                evaluate=True, n_workers=2, pool="process",
            )
            hosted = server._campaigns[cid]
            pool = hosted.pool
            assert isinstance(pool, ProcessWorkerPool)
            deadline = time.monotonic() + 60
            while not pool._all_procs and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool._all_procs, "workers never spawned"
            client.close()  # the mid-campaign kill: socket drops, no goodbye
            deadline = time.monotonic() + 60
            while hosted.state != "suspended" and time.monotonic() < deadline:
                time.sleep(0.05)
            # The orphaned campaign was suspended, its pool reaped, its
            # worker lease returned — and the journal survives for resume.
            assert hosted.state == "suspended"
            assert hosted.pool is None and pool._closed
            assert_reaped(pool)
            assert server.leases.leased == 0
            assert (tmp_path / f"{cid}.journal").exists()
        finally:
            server.stop()
