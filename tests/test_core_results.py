"""Tests for run results and table summaries."""

import numpy as np
import pytest

from repro.core.results import RunResult, summarize_runs
from repro.sched.trace import EvalRecord, ExecutionTrace


def make_result(algorithm="A", best=5.0, wall=100.0):
    trace = ExecutionTrace(1)
    trace.add(
        EvalRecord(0, 0, np.array([0.0]), best, issue_time=0.0, finish_time=wall)
    )
    return RunResult(
        algorithm=algorithm,
        problem="p",
        trace=trace,
        best_x=np.array([0.0]),
        best_fom=best,
        n_evaluations=1,
        wall_clock=wall,
    )


class TestRunResult:
    def test_best_curve(self):
        r = make_result()
        times, best = r.best_curve
        assert best[-1] == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RunResult("a", "p", ExecutionTrace(1), np.zeros(1), 0.0, -1, 0.0)
        with pytest.raises(ValueError):
            RunResult("a", "p", ExecutionTrace(1), np.zeros(1), 0.0, 1, -5.0)


class TestSummarize:
    def test_columns(self):
        runs = [make_result(best=v, wall=w) for v, w in [(1, 10), (3, 20), (2, 30)]]
        s = summarize_runs(runs)
        assert s.best == 3.0
        assert s.worst == 1.0
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.mean_time == pytest.approx(20.0)
        assert s.n_runs == 3

    def test_single_run_std_zero(self):
        s = summarize_runs([make_result()])
        assert s.std == 0.0

    def test_mixed_algorithms_rejected(self):
        with pytest.raises(ValueError, match="mixed"):
            summarize_runs([make_result("A"), make_result("B")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_runs([])

    def test_as_row_format(self):
        row = summarize_runs([make_result(best=690.36, wall=1150)]).as_row()
        assert row[0] == "A"
        assert row[1] == "690.36"
        assert row[-1] == "19m10s"
