"""Tests for repro.gp.hyperopt."""

import numpy as np
import pytest

from repro.gp import GaussianProcess, HyperparameterBounds, fit_hyperparameters


class TestBounds:
    def test_shape(self):
        b = HyperparameterBounds(3).as_log_bounds()
        assert b.shape == (5, 2)

    def test_sample_within(self):
        bounds = HyperparameterBounds(2)
        rng = np.random.default_rng(0)
        arr = bounds.as_log_bounds()
        for _ in range(20):
            theta = bounds.sample(rng)
            assert np.all(theta >= arr[:, 0]) and np.all(theta <= arr[:, 1])

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            HyperparameterBounds(2, lengthscale=(1.0, 0.5))
        with pytest.raises(ValueError):
            HyperparameterBounds(2, noise_std=(-1.0, 0.5))


class TestFit:
    def test_improves_likelihood(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, size=(40, 2))
        y = np.sin(6 * X[:, 0]) * np.cos(3 * X[:, 1])
        gp = GaussianProcess(2).fit(X, y)
        before = gp.log_marginal_likelihood()
        fit_hyperparameters(gp, rng=0)
        after = gp.log_marginal_likelihood()
        assert after >= before - 1e-9

    def test_recovers_short_lengthscale(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1, size=(60, 1))
        y = np.sin(25 * X[:, 0])  # needs a short lengthscale
        gp = GaussianProcess(1).fit(X, y)
        fit_hyperparameters(gp, n_restarts=3, rng=0)
        assert gp.kernel.lengthscales[0] < 0.5

    def test_respects_bounds(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 1, size=(15, 1))
        y = rng.standard_normal(15)
        gp = GaussianProcess(1).fit(X, y)
        bounds = HyperparameterBounds(1, lengthscale=(0.5, 2.0))
        fit_hyperparameters(gp, bounds=bounds, rng=0)
        assert 0.5 - 1e-6 <= gp.kernel.lengthscales[0] <= 2.0 + 1e-6

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            fit_hyperparameters(GaussianProcess(1))

    def test_dim_mismatch_raises(self):
        gp = GaussianProcess(2).fit(np.zeros((3, 2)), [0.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            fit_hyperparameters(gp, bounds=HyperparameterBounds(3))

    def test_warm_start_never_regresses(self):
        # Drift guard for the every-K-events refit policy: across a stream of
        # warm-started refits, the ending marginal likelihood must never be
        # worse than the incumbent hyperparameters' likelihood on the same
        # data — fit_hyperparameters keeps the incumbent when no restart
        # beats it.
        rng = np.random.default_rng(5)
        X = rng.uniform(0, 1, size=(12, 2))
        y = np.sin(5 * X[:, 0]) + 0.3 * X[:, 1]
        gp = GaussianProcess(2).fit(X, y)
        fit_hyperparameters(gp, n_restarts=3, rng=0)
        for step in range(8):
            x_new = rng.uniform(0, 1, size=(1, 2))
            X = np.vstack([X, x_new])
            y = np.append(y, np.sin(5 * x_new[0, 0]) + 0.3 * x_new[0, 1])
            gp.fit(X, y)
            incumbent_lml = gp.log_marginal_likelihood()
            fit_hyperparameters(gp, n_restarts=1, rng=step)
            assert gp.log_marginal_likelihood() >= incumbent_lml - 1e-9, (
                f"warm-started refit {step} drifted below the incumbent"
            )

    def test_keeps_incumbent_when_restarts_lose(self):
        # With zero restarts the optimizer only polishes the incumbent start;
        # the result must still be at least as good as the incumbent.
        rng = np.random.default_rng(6)
        X = rng.uniform(0, 1, size=(20, 1))
        y = np.sin(9 * X[:, 0])
        gp = GaussianProcess(1).fit(X, y)
        fit_hyperparameters(gp, n_restarts=2, rng=0)
        before = gp.log_marginal_likelihood()
        fit_hyperparameters(gp, n_restarts=0, rng=1)
        assert gp.log_marginal_likelihood() >= before - 1e-9

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(0, 1, size=(25, 2))
        y = X[:, 0] ** 2 - X[:, 1]
        thetas = []
        for _ in range(2):
            gp = GaussianProcess(2).fit(X, y)
            fit_hyperparameters(gp, n_restarts=3, rng=123)
            thetas.append(gp.get_theta())
        np.testing.assert_array_equal(thetas[0], thetas[1])


class TestStandardizers:
    def test_box_roundtrip(self):
        from repro.gp import BoxTransform

        t = BoxTransform([[1e-6, 1e-4], [0.0, 5.0]])
        X = np.array([[5e-5, 2.5]])
        np.testing.assert_allclose(t.to_physical(t.to_unit(X)), X)

    def test_box_clip(self):
        from repro.gp import BoxTransform

        t = BoxTransform([[0, 1]])
        np.testing.assert_array_equal(t.clip_unit(np.array([[1.5]])), [[1.0]])

    def test_output_standardizer_roundtrip(self):
        from repro.gp import OutputStandardizer

        y = np.array([3.0, 5.0, 9.0, 11.0])
        s = OutputStandardizer()
        z = s.fit_transform(y)
        assert abs(z.mean()) < 1e-12
        np.testing.assert_allclose(s.inverse_mean(z), y)

    def test_output_standardizer_constant_y(self):
        from repro.gp import OutputStandardizer

        s = OutputStandardizer()
        z = s.fit_transform(np.full(4, 7.0))
        np.testing.assert_allclose(z, 0.0)
        np.testing.assert_allclose(s.inverse_std(np.ones(4)), 1.0)

    def test_output_standardizer_empty_rejected(self):
        from repro.gp import OutputStandardizer

        with pytest.raises(ValueError):
            OutputStandardizer().fit([])
