"""End-to-end integration tests: BO drivers on the real circuit testbenches.

These run the full stack — GP surrogate, acquisition machinery, worker pools,
and the MNA circuit simulator — at small budgets.  The paper-scale protocols
live in benchmarks/.
"""

import numpy as np
import pytest

from repro import EasyBO, make_algorithm
from repro.circuits import ClassEProblem, OpAmpProblem, hartmann6
from repro.core.results import summarize_runs
from repro.sched.executor import ThreadWorkerPool

QUICK = dict(acq_candidates=512, acq_restarts=1)


class TestOpAmpEndToEnd:
    @pytest.fixture(scope="class")
    def result(self):
        problem = OpAmpProblem()
        return EasyBO(
            problem, batch_size=5, rng=0, n_init=10, max_evals=40, **QUICK
        ).optimize()

    def test_budget_and_trace(self, result):
        assert result.n_evaluations == 40
        assert len(result.trace) == 40

    def test_beats_its_own_initial_design(self, result):
        # The best FOM must not come from the random phase alone; BO should
        # improve on the initial 10 samples.
        init_best = max(r.fom for r in result.trace.records if r.index < 10)
        assert result.best_fom >= init_best

    def test_improves_over_random_baseline(self):
        """On average over seeds BO beats random search at equal budget.

        The op-amp landscape is heavy-tailed, so a single lucky random run
        can win; the paper's protocol averages 20 repetitions — we use 3.
        """
        problem = OpAmpProblem()
        bo_foms, rs_foms = [], []
        for seed in range(3):
            bo = EasyBO(problem, batch_size=5, rng=seed, n_init=10,
                        max_evals=40, **QUICK).optimize()
            rs = make_algorithm("Random", problem, max_evals=40, rng=seed).run()
            bo_foms.append(bo.best_fom)
            rs_foms.append(rs.best_fom)
        assert np.mean(bo_foms) > np.mean(rs_foms)

    def test_wall_clock_is_paper_scale(self, result):
        # 40 sims on 5 workers at ~38.8 s/sim: roughly 310 s of sim time.
        assert 200 < result.wall_clock < 500

    def test_best_design_is_feasible(self, result):
        problem = OpAmpProblem()
        check = problem.evaluate(result.best_x)
        assert check.feasible
        assert check.fom == pytest.approx(result.best_fom, rel=1e-9)


class TestClassEEndToEnd:
    def test_short_budget_run(self):
        problem = ClassEProblem(settle_periods=10, measure_periods=2,
                                steps_per_period=48)
        result = EasyBO(
            problem, batch_size=4, rng=0, n_init=6, max_evals=14, **QUICK
        ).optimize()
        assert result.n_evaluations == 14
        assert result.best_fom > 0.0  # found at least one working PA


class TestThreadBackend:
    def test_easybo_on_thread_pool(self):
        problem = hartmann6()
        result = EasyBO(
            problem,
            batch_size=3,
            rng=0,
            n_init=6,
            max_evals=18,
            pool_factory=ThreadWorkerPool,
            **QUICK,
        ).optimize()
        assert result.n_evaluations == 18
        # Real elapsed seconds, not the cost model's simulated seconds.
        assert result.wall_clock < 60.0
        workers = {r.worker for r in result.trace.records}
        assert workers == {0, 1, 2}


class TestRepetitionProtocol:
    def test_summarize_repetitions(self):
        problem = hartmann6()
        runs = [
            EasyBO(problem, batch_size=5, rng=seed, n_init=8, max_evals=24,
                   **QUICK).optimize()
            for seed in range(3)
        ]
        summary = summarize_runs(runs)
        assert summary.n_runs == 3
        assert summary.worst <= summary.mean <= summary.best
        row = summary.as_row()
        assert row[0] == "EasyBO-5"


class TestSchedulingShape:
    """Tiny-scale versions of the paper's wall-clock claims."""

    def test_async_saves_time_vs_sync_same_budget(self):
        problem = hartmann6()  # lognormal costs
        kw = dict(n_init=8, max_evals=32, rng=2, **QUICK)
        sync = make_algorithm("EasyBO-SP-8", problem, **kw).run()
        async_ = make_algorithm("EasyBO-8", problem, **kw).run()
        assert async_.n_evaluations == sync.n_evaluations
        assert async_.wall_clock < sync.wall_clock

    def test_time_saving_grows_with_batch_size(self):
        """Scheduler-level version of the paper's §IV observation that the
        async/sync gap widens with B (9.2% -> 13.7% on the op-amp).

        With a fixed stream of lognormal durations, the sync makespan is a
        sum of per-batch maxima while async packs work continuously; the
        relative gap must grow with the batch size.
        """
        from repro.core.problem import FunctionProblem
        from repro.sched.durations import LognormalCostModel
        from repro.sched.workers import VirtualWorkerPool

        cost = LognormalCostModel(mean_seconds=40.0, sigma=0.35, seed=0)
        problem = FunctionProblem(
            lambda x: float(x[0]), [[0.0, 1.0]], cost_model=cost
        )
        rng = np.random.default_rng(0)
        points = rng.uniform(size=(240, 1))
        savings = {}
        for b in (2, 8):
            sync = VirtualWorkerPool(problem, b)
            for start in range(0, len(points), b):
                for x in points[start : start + b]:
                    sync.submit(x)
                sync.wait_all()
            async_ = VirtualWorkerPool(problem, b)
            for x in points[:b]:
                async_.submit(x)
            for x in points[b:]:
                async_.wait_next()
                async_.submit(x)
            async_.wait_all()
            savings[b] = 1.0 - async_.trace.makespan / sync.trace.makespan
        assert savings[8] > savings[2] > 0.0
