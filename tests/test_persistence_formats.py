"""Golden-fixture coverage of every readable persistence format version.

``tests/golden/persistence/`` holds one hand-built runs file per historical
format (v1 .. v8, written by ``regenerate.py``).  These tests pin three
contracts:

* ``load_runs`` reads **every** version it claims to
  (``_READABLE_VERSIONS``), filling version-appropriate defaults for
  blocks the file predates;
* the committed fixtures are byte-exact reproductions of the generator
  (nobody edited the JSON by hand);
* the current writer emits the newest version and round-trips losslessly.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import numpy as np
import pytest

from repro.core import persistence
from repro.core.persistence import load_runs, run_from_dict, save_runs

GOLDEN = pathlib.Path(__file__).parent / "golden" / "persistence"
VERSIONS = sorted(persistence._READABLE_VERSIONS)


def _regenerator():
    spec = importlib.util.spec_from_file_location(
        "golden_persistence_regenerate", GOLDEN / "regenerate.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_readable_version_has_a_fixture():
    assert persistence._FORMAT_VERSION == max(VERSIONS)
    for version in VERSIONS:
        assert (GOLDEN / f"runs_v{version}.json").is_file(), version


@pytest.mark.parametrize("version", VERSIONS)
def test_golden_fixture_loads(version):
    grid = load_runs(GOLDEN / f"runs_v{version}.json")
    assert list(grid) == ["EasyBO-2"]
    (run,) = grid["EasyBO-2"]
    assert run.algorithm == "EasyBO-2"
    assert run.problem == "golden-sphere"
    assert run.best_fom == -1.5
    np.testing.assert_allclose(run.best_x, [0.6, 0.4])
    assert run.trace.n_workers == 2

    if version == 1:
        # Pre-failure-semantics: every record loads as a clean success.
        assert run.n_evaluations == 3
        assert run.n_failures == 0 and run.n_retries == 0
        assert all(r.status == "ok" for r in run.trace.records)
        assert all(r.attempts == 1 for r in run.trace.records)
    else:
        assert run.n_evaluations == 4
        assert run.n_failures == 2 and run.n_retries == 3
        statuses = [r.status for r in run.trace.records]
        assert statuses == ["ok", "failed", "ok", "orphaned"]
        assert np.isnan(run.trace.records[1].fom)
        assert run.trace.records[1].error == "simulation diverged"
        assert run.trace.records[2].attempts == 2

    # Optional blocks appear exactly from the version that introduced them.
    assert (run.surrogate_stats is not None) == (version >= 3)
    assert (run.rng_state is not None) == (version >= 4)
    assert (run.pool_telemetry is not None) == (version >= 5)
    assert (run.metrics is not None) == (version >= 6)
    assert (run.surrogate is not None) == (version >= 8)

    if version >= 3:
        assert run.surrogate_stats.n_refits == 2
        assert run.surrogate_stats.refit_seconds == [0.01, 0.02]
        assert run.trace.surrogate_stats is run.surrogate_stats
    if version >= 4:
        assert run.rng_state["bit_generator"] == "PCG64"
    if version >= 5:
        assert run.pool_telemetry.backend == "process"
        assert run.pool_telemetry.n_respawns == 1
        assert run.trace.pool_telemetry is run.pool_telemetry
    if version >= 6:
        counters = run.metrics["counters"]
        assert counters["driver.failures"] == run.n_failures
        assert counters["driver.retries"] == run.n_retries
        hist = run.metrics["histograms"]["pool.queue_wait_seconds"]
        assert hist["count"] == 4
    if version >= 7:
        assert run.pending_policy == "hallucinate"
    if version >= 3:
        # n_mode_switches arrived with v8 writers; older files load with the
        # dataclass default of 0.
        assert run.surrogate_stats.n_mode_switches == (1 if version >= 8 else 0)
    if version >= 8:
        assert run.surrogate == "auto"


def test_fixtures_are_byte_exact():
    """The committed files are exactly what the generator emits."""
    module = _regenerator()
    for version in VERSIONS:
        path = GOLDEN / f"runs_v{version}.json"
        assert path.read_text(encoding="utf-8") == module.render(version), (
            f"{path.name} drifted from regenerate.py — rerun "
            "'python tests/golden/persistence/regenerate.py' after an "
            "intentional change"
        )


def test_current_writer_round_trips_newest_version(tmp_path):
    grid = load_runs(GOLDEN / f"runs_v{max(VERSIONS)}.json")
    out = tmp_path / "roundtrip.json"
    save_runs(out, grid)
    payload = json.loads(out.read_text())
    assert payload["version"] == persistence._FORMAT_VERSION
    assert payload["grid"]["EasyBO-2"][0]["version"] == persistence._FORMAT_VERSION

    reloaded = load_runs(out)
    original = grid["EasyBO-2"][0]
    back = reloaded["EasyBO-2"][0]
    assert back.best_fom == original.best_fom
    assert back.metrics == original.metrics
    assert back.rng_state == original.rng_state
    assert back.surrogate_stats.as_dict() == original.surrogate_stats.as_dict()
    assert back.pool_telemetry.as_dict() == original.pool_telemetry.as_dict()
    assert [r.as_dict() for r in back.trace.records] == [
        r.as_dict() for r in original.trace.records
    ]


def test_unsupported_versions_are_rejected():
    module = _regenerator()
    # A *newer* format gets the explicit upgrade-me message, not a generic
    # rejection (tests/test_campaign.py covers the same guard for journals).
    payload = module.build_payload(6)
    payload["version"] = 99
    with pytest.raises(ValueError, match="grid format v99 is newer than supported"):
        load_runs_from_payload(payload)

    run = module.build_run(6)
    run["version"] = 0
    with pytest.raises(ValueError, match="unsupported run format"):
        run_from_dict(run)


def load_runs_from_payload(payload, tmp=pathlib.Path("/tmp")):
    import tempfile

    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False, dir=tmp
    ) as handle:
        json.dump(payload, handle)
        name = handle.name
    try:
        return load_runs(name)
    finally:
        pathlib.Path(name).unlink()
