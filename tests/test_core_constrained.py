"""Tests for the constrained-EasyBO extension."""

import numpy as np
import pytest

from repro.core.constrained import (
    ConstrainedEasyBO,
    ConstrainedProblem,
    ConstraintSpec,
)
from repro.core.problem import EvaluationResult


class DiskProblem(ConstrainedProblem):
    """Maximize x+y inside the unit disk: optimum sqrt(2) at (1,1)/sqrt(2)."""

    name = "disk"

    SPECS = (ConstraintSpec("disk", "x^2 + y^2 <= 1"),)

    @property
    def bounds(self):
        return np.array([[-2.0, 2.0], [-2.0, 2.0]])

    @property
    def constraint_specs(self):
        return self.SPECS

    def evaluate(self, x):
        x = self.validate_point(x)
        slack = 1.0 - float(np.sum(x**2))
        return EvaluationResult(
            fom=float(np.sum(x)),
            metrics={"slack_disk": slack},
            cost=1.0,
            feasible=slack >= 0,
        )


class BadProblem(ConstrainedProblem):
    """Forgets to report its declared slack."""

    name = "bad"
    SPECS = (ConstraintSpec("missing"),)

    @property
    def bounds(self):
        return np.array([[0.0, 1.0]])

    @property
    def constraint_specs(self):
        return self.SPECS

    def evaluate(self, x):
        return EvaluationResult(fom=0.0)


QUICK = dict(n_init=8, max_evals=30, rng=0, acq_candidates=256, acq_restarts=1)


class TestConstraintPlumbing:
    def test_constraint_vector_extraction(self):
        p = DiskProblem()
        r = p.evaluate(np.array([0.5, 0.5]))
        np.testing.assert_allclose(p.constraint_vector(r), [0.5])

    def test_missing_slack_raises(self):
        p = BadProblem()
        with pytest.raises(KeyError, match="slack"):
            p.constraint_vector(p.evaluate(np.array([0.5])))

    def test_requires_constrained_problem(self):
        from repro.circuits.benchmarks import sphere

        with pytest.raises(TypeError):
            ConstrainedEasyBO(sphere(2))


class TestConstrainedOptimization:
    def test_finds_feasible_optimum(self):
        driver = ConstrainedEasyBO(DiskProblem(), batch_size=3, **QUICK)
        driver.run()
        best = driver.best_feasible()
        assert best is not None
        x_best, y_best = best
        assert np.sum(x_best**2) <= 1.0 + 1e-9
        assert y_best > 1.0  # well above the feasible-region average

    def test_unconstrained_optimum_rejected(self):
        """The raw argmax of x+y is the (2,2) corner — infeasible; the
        constrained driver's feasible incumbent must not be near it."""
        driver = ConstrainedEasyBO(DiskProblem(), batch_size=3, **QUICK)
        driver.run()
        x_best, _ = driver.best_feasible()
        assert np.linalg.norm(x_best - np.array([2.0, 2.0])) > 1.0

    def test_algorithm_name(self):
        driver = ConstrainedEasyBO(DiskProblem(), batch_size=4, **QUICK)
        assert driver.algorithm_name == "cEasyBO-4"

    def test_no_feasible_returns_none(self):
        driver = ConstrainedEasyBO(DiskProblem(), batch_size=2, **QUICK)
        assert driver.best_feasible() is None  # before running

    def test_registry_label(self):
        from repro.core.easybo import make_algorithm

        algo = make_algorithm("cEasyBO-3", DiskProblem(), **QUICK)
        assert isinstance(algo, ConstrainedEasyBO)
        assert algo.batch_size == 3


class TestConstrainedOpAmp:
    @pytest.fixture(scope="class")
    def problem(self):
        from repro.circuits import ConstrainedOpAmpProblem

        return ConstrainedOpAmpProblem()

    def test_specs_declared(self, problem):
        assert [s.name for s in problem.constraint_specs] == ["gain", "pm"]

    def test_slacks_reported(self, problem):
        rng = np.random.default_rng(0)
        r = problem.evaluate(problem.space.sample(1, rng)[0])
        assert "slack_gain" in r.metrics and "slack_pm" in r.metrics
        if r.metrics["slack_gain"] > -100:
            assert r.metrics["slack_gain"] == pytest.approx(
                r.metrics["gain_db"] - 60.0
            )

    def test_feasibility_consistent(self, problem):
        rng = np.random.default_rng(1)
        for x in problem.space.sample(10, rng):
            r = problem.evaluate(x)
            slacks = problem.constraint_vector(r)
            assert r.feasible == bool(np.all(slacks >= 0))

    def test_short_constrained_run(self, problem):
        driver = ConstrainedEasyBO(
            problem, batch_size=4, n_init=10, max_evals=30, rng=0,
            acq_candidates=256, acq_restarts=1,
        )
        driver.run()
        best = driver.best_feasible()
        if best is not None:
            x_best, ugf = best
            check = problem.evaluate(x_best)
            assert check.metrics["gain_db"] >= 60.0 - 1e-6
            assert check.metrics["pm_deg"] >= 60.0 - 1e-6
