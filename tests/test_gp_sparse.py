"""Unit tests for the sparse inducing-point GP (repro.gp.sparse).

The convergence/equivalence *sweeps* live in ``tests/test_properties.py``
(marked ``property``); this module pins the small, deterministic contracts:
inducing selection (greedy max-min, forced ``include`` indices), the
duck-typed model API the surrogate session relies on, and the factor-shared
sparse hallucinated view.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gp.gp import GaussianProcess
from repro.gp.kernels import SquaredExponential
from repro.gp.sparse import (
    SparseGaussianProcess,
    SparseHallucinatedView,
    select_inducing,
)


def make_dataset(n=40, dim=3, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, dim))
    y = np.sin(3.0 * X[:, 0]) + X[:, 1] ** 2 + 0.1 * rng.standard_normal(n)
    return X, y


def make_sparse(n=40, dim=3, seed=0, n_inducing=12, **kwargs):
    X, y = make_dataset(n, dim, seed)
    kernel = SquaredExponential(dim, lengthscales=np.full(dim, 0.5))
    model = SparseGaussianProcess(
        kernel=kernel, noise_variance=1e-2, n_inducing=n_inducing, **kwargs
    )
    model.fit(X, y)
    return model, X, y


class TestSelectInducing:
    def test_deterministic_sorted_unique(self):
        X, _ = make_dataset(n=50)
        idx = select_inducing(X, 10)
        assert idx.shape == (10,)
        assert len(np.unique(idx)) == 10
        np.testing.assert_array_equal(idx, np.sort(idx))
        np.testing.assert_array_equal(idx, select_inducing(X, 10))

    def test_budget_at_least_dataset_returns_all(self):
        X, _ = make_dataset(n=8)
        np.testing.assert_array_equal(select_inducing(X, 8), np.arange(8))
        np.testing.assert_array_equal(select_inducing(X, 99), np.arange(8))

    def test_include_indices_are_forced_in(self):
        X, _ = make_dataset(n=60)
        forced = [41, 7, 41, 3]  # duplicate on purpose
        idx = select_inducing(X, 10, include=forced)
        assert {41, 7, 3} <= set(idx.tolist())
        assert idx.shape == (10,)
        assert len(np.unique(idx)) == 10

    def test_include_capped_at_budget(self):
        X, _ = make_dataset(n=20)
        idx = select_inducing(X, 3, include=[5, 9, 11, 13])
        np.testing.assert_array_equal(idx, [5, 9, 11])

    def test_include_out_of_range_rejected(self):
        X, _ = make_dataset(n=10)
        with pytest.raises(ValueError):
            select_inducing(X, 4, include=[10])
        with pytest.raises(ValueError):
            select_inducing(X, 4, include=[-1])

    def test_rejects_nonpositive_budget(self):
        X, _ = make_dataset(n=10)
        with pytest.raises(ValueError):
            select_inducing(X, 0)

    def test_max_min_is_space_filling(self):
        # Two tight clusters: a budget of 2 must take one point from each,
        # never two from the same cluster.
        rng = np.random.default_rng(2)
        left = rng.normal(0.0, 0.01, size=(10, 2))
        right = rng.normal(5.0, 0.01, size=(10, 2))
        X = np.vstack([left, right])
        idx = select_inducing(X, 2)
        sides = {int(i >= 10) for i in idx}
        assert sides == {0, 1}


class TestSparseModelContract:
    def test_fit_predict_shapes_and_finiteness(self):
        model, X, _ = make_sparse()
        mu, sd = model.predict(X[:5])
        assert mu.shape == (5,) and sd.shape == (5,)
        assert np.all(np.isfinite(mu)) and np.all(sd > 0)
        mu_only = model.predict(X[:5], return_std=False)
        np.testing.assert_array_equal(mu_only, mu)

    def test_degenerate_inducing_set_matches_exact(self):
        model, X, y = make_sparse(n=15, n_inducing=15)
        exact = GaussianProcess(kernel=model.kernel, noise_variance=1e-2)
        exact.fit(X, y)
        Xs = np.random.default_rng(1).uniform(size=(6, X.shape[1]))
        mu_s, sd_s = model.predict(Xs)
        mu_e, sd_e = exact.predict(Xs)
        np.testing.assert_allclose(mu_s, mu_e, atol=1e-8)
        np.testing.assert_allclose(sd_s, sd_e, atol=1e-8)

    def test_update_grows_n_train_keeps_inducing_set(self):
        model, X, _ = make_sparse(n=30, n_inducing=8)
        Z_before = model.inducing_points
        rng = np.random.default_rng(3)
        model.update(rng.uniform(size=(4, 3)), rng.standard_normal(4))
        assert model.n_train == 34
        np.testing.assert_array_equal(model.inducing_points, Z_before)

    def test_update_refresh_alpha_false_then_set_targets(self):
        # The session's incremental path: append without the weight solve,
        # then set_targets replays every (re-standardized) target.
        model, X, y = make_sparse(n=25, n_inducing=10)
        x_new = np.random.default_rng(4).uniform(size=(1, 3))
        model.update(x_new, [0.3], refresh_alpha=False)
        model.set_targets(np.append(y, 0.3))
        fresh = SparseGaussianProcess(
            kernel=model.kernel, noise_variance=1e-2, n_inducing=10
        )
        fresh.fit(
            np.vstack([X, x_new]),
            np.append(y, 0.3),
            inducing_indices=model.posterior_state.inducing_indices,
        )
        Xs = np.random.default_rng(5).uniform(size=(6, 3))
        np.testing.assert_allclose(
            model.predict(Xs)[0], fresh.predict(Xs)[0], atol=1e-8
        )

    def test_empty_update_is_noop(self):
        model, _, _ = make_sparse()
        n = model.n_train
        model.update(np.empty((0, 3)), np.empty(0))
        assert model.n_train == n

    def test_copy_is_independent(self):
        model, _, _ = make_sparse()
        clone = model.copy()
        x_new = np.full((1, 3), 0.5)
        clone.update(x_new, [1.0])
        assert clone.n_train == model.n_train + 1
        mu_orig, _ = model.predict(x_new)
        mu_clone, _ = clone.predict(x_new)
        assert not np.allclose(mu_orig, mu_clone)

    def test_requires_fit_before_predict(self):
        model = SparseGaussianProcess(dim=2)
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((1, 2)))

    def test_posterior_covariance_psd_diag_matches_predict(self):
        model, _, _ = make_sparse()
        Xs = np.random.default_rng(6).uniform(size=(5, 3))
        cov = model.posterior_covariance(Xs)
        _, sd = model.predict(Xs)
        np.testing.assert_allclose(np.diag(cov), sd**2, rtol=1e-8, atol=1e-10)
        eigvals = np.linalg.eigvalsh((cov + cov.T) / 2.0)
        assert eigvals.min() > -1e-8

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            SparseGaussianProcess(dim=2, n_inducing=0)
        with pytest.raises(ValueError):
            SparseGaussianProcess(dim=2, noise_variance=-1.0)
        model = SparseGaussianProcess(dim=2)
        with pytest.raises(ValueError):
            model.fit(np.empty((0, 2)), np.empty(0))


class TestSparseHallucinatedView:
    def test_sigma_collapses_mean_unchanged(self):
        model, _, _ = make_sparse()
        x_busy = np.array([[0.3, 0.7, 0.2]])
        mu_before, sd_before = model.predict(x_busy)
        view = model.condition_on_pending(x_busy)
        assert isinstance(view, SparseHallucinatedView)
        mu_after, sd_after = view.predict(x_busy)
        assert sd_after[0] < sd_before[0]
        np.testing.assert_allclose(mu_after, mu_before, atol=1e-10)

    def test_base_model_untouched(self):
        model, X, _ = make_sparse()
        Xs = X[:4]
        mu0, sd0 = model.predict(Xs)
        view = SparseHallucinatedView(model, np.array([[0.5, 0.5, 0.5]]))
        assert view.discard() is model
        assert view.n_pending == 1
        mu1, sd1 = model.predict(Xs)
        np.testing.assert_array_equal(mu0, mu1)
        np.testing.assert_array_equal(sd0, sd1)

    def test_sigma_never_inflates_far_away(self):
        model, _, _ = make_sparse()
        view = SparseHallucinatedView(model, np.array([[0.1, 0.1, 0.1]]))
        Xs = np.random.default_rng(7).uniform(size=(20, 3))
        _, sd_base = model.predict(Xs)
        _, sd_view = view.predict(Xs)
        assert np.all(sd_view <= sd_base + 1e-8)
