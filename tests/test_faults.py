"""Failure semantics: policies, fault injection, pool containment, drivers.

The invariants under test, end to end:

* no evaluation failure (crash / NaN / timeout) ever raises out of a pool or
  driver;
* worker accounting stays consistent (``idle + busy == n_workers``) through
  every failure;
* a poisoned (non-finite) observation can never reach the GP;
* failures are visible in the trace and the ``RunResult`` counters;
* the asynchronous loop keeps its remaining workers productive while a
  failed point is retried or discarded.
"""

import os
import time

import numpy as np
import pytest

from repro.core.bo import SequentialBO
from repro.core.async_batch import AsynchronousBatchBO
from repro.core.faults import (
    FailurePolicy,
    FaultInjectionProblem,
    SimulationError,
    run_with_policy,
)
from repro.core.persistence import run_from_dict, run_to_dict
from repro.core.problem import EvaluationResult, FunctionProblem, Problem
from repro.core.surrogate import SurrogateSession
from repro.core.sync_batch import SynchronousBatchBO
from repro.baselines.de import DifferentialEvolution
from repro.circuits.opamp import OpAmpProblem
from repro.sched.executor import ThreadWorkerPool
from repro.sched.workers import VirtualWorkerPool

#: Seed for the stochastic fault-injection runs; the CI fault job sweeps it.
FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

BOUNDS = [[-2.0, 2.0], [-2.0, 2.0]]


def quadratic_problem(cost=1.0):
    return FunctionProblem(
        lambda x: -float(np.sum(x**2)), BOUNDS, cost_model=lambda x: cost, name="quad"
    )


class FlakyProblem(Problem):
    """Crashes on scheduled call numbers (1-based), succeeds otherwise."""

    name = "flaky"

    def __init__(self, fail_calls=(), cost=1.0, crash_cost=None):
        self.fail_calls = set(fail_calls)
        self.cost = cost
        self.crash_cost = crash_cost
        self.n_calls = 0

    @property
    def bounds(self):
        return np.array(BOUNDS)

    def evaluate(self, x):
        self.n_calls += 1
        if self.n_calls in self.fail_calls:
            raise SimulationError("scheduled crash", cost=self.crash_cost)
        return EvaluationResult(fom=-float(np.sum(x**2)), cost=self.cost)


class HangingProblem(Problem):
    """Really sleeps; used against the thread pool's wall-clock timeout."""

    name = "hanging"

    def __init__(self, sleep_s):
        self.sleep_s = sleep_s

    @property
    def bounds(self):
        return np.array(BOUNDS)

    def evaluate(self, x):
        time.sleep(self.sleep_s)
        return EvaluationResult(fom=1.0, cost=self.sleep_s)


# --------------------------------------------------------------------------
# Failure model and policy
# --------------------------------------------------------------------------
class TestEvaluationResultFailureModel:
    def test_failed_constructor(self):
        r = EvaluationResult.failed("boom", status="crashed", cost=2.5)
        assert not r.ok
        assert not r.feasible
        assert np.isnan(r.fom)
        assert r.error == "boom"
        assert r.cost == 2.5

    def test_ok_requires_finite_fom(self):
        with pytest.raises(ValueError, match="finite"):
            EvaluationResult(fom=float("nan"))

    def test_nonfinite_cost_rejected(self):
        with pytest.raises(ValueError, match="cost"):
            EvaluationResult(fom=1.0, cost=float("nan"))

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError, match="status"):
            EvaluationResult(fom=1.0, status="exploded")

    def test_failed_requires_failure_status(self):
        with pytest.raises(ValueError, match="failure status"):
            EvaluationResult.failed("fine?", status="ok")


class TestFailurePolicy:
    def test_defaults(self):
        policy = FailurePolicy()
        assert policy.max_retries == 0
        assert policy.timeout is None
        assert policy.on_failure == "impute"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"retry_backoff": -0.1},
            {"timeout": 0.0},
            {"on_failure": "explode"},
            {"failure_cost": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FailurePolicy(**kwargs)


class TestRunWithPolicy:
    def test_success_passthrough(self):
        result, attempts, elapsed = run_with_policy(
            quadratic_problem(cost=3.0), np.zeros(2), FailurePolicy()
        )
        assert result.ok and attempts == 1 and elapsed == 3.0

    def test_retry_recovers(self):
        problem = FlakyProblem(fail_calls={1}, cost=2.0, crash_cost=0.5)
        result, attempts, elapsed = run_with_policy(
            problem,
            np.zeros(2),
            FailurePolicy(max_retries=2, retry_backoff=1.0),
            cost_timeout=True,
        )
        assert result.ok and attempts == 2
        # crash (0.5) + backoff (1.0 * 1) + success (2.0)
        assert elapsed == pytest.approx(3.5)

    def test_retries_exhausted(self):
        problem = FlakyProblem(fail_calls={1, 2, 3}, crash_cost=1.0)
        result, attempts, elapsed = run_with_policy(
            problem, np.zeros(2), FailurePolicy(max_retries=2), cost_timeout=True
        )
        assert not result.ok and result.status == "crashed"
        assert attempts == 3 and elapsed == pytest.approx(3.0)
        assert "scheduled crash" in result.error

    def test_nan_output_sanitized_and_retried(self):
        calls = {"n": 0}

        def fom(x):
            calls["n"] += 1
            return float("nan") if calls["n"] == 1 else 1.0

        problem = FunctionProblem(fom, BOUNDS)
        result, attempts, _ = run_with_policy(
            problem, np.zeros(2), FailurePolicy(max_retries=1)
        )
        # FunctionProblem constructs EvaluationResult(nan) -> ValueError ->
        # contained as a crash; the retry then succeeds.
        assert result.ok and attempts == 2

    def test_poisoned_result_object_sanitized(self):
        class Poisoner(Problem):
            name = "poison"

            @property
            def bounds(self):
                return np.array(BOUNDS)

            def evaluate(self, x):
                r = EvaluationResult(fom=1.0, cost=1.0)
                r.fom = float("inf")  # mutate past validation
                return r

        result, attempts, _ = run_with_policy(
            Poisoner(), np.zeros(2), FailurePolicy()
        )
        assert not result.ok and result.status == "nan"

    def test_cost_timeout(self):
        result, attempts, elapsed = run_with_policy(
            quadratic_problem(cost=50.0),
            np.zeros(2),
            FailurePolicy(timeout=10.0, max_retries=3),
            cost_timeout=True,
        )
        assert result.status == "timeout"
        assert attempts == 1  # timeouts are never retried in place
        assert elapsed == pytest.approx(10.0)

    def test_never_raises(self):
        class Hostile(Problem):
            name = "hostile"

            @property
            def bounds(self):
                return np.array(BOUNDS)

            def evaluate(self, x):
                return "not a result"  # wrong type entirely

        result, _, _ = run_with_policy(Hostile(), np.zeros(2), FailurePolicy())
        assert not result.ok
        assert "EvaluationResult" in result.error


# --------------------------------------------------------------------------
# Fault injection
# --------------------------------------------------------------------------
class TestFaultInjectionProblem:
    def test_deterministic_replay(self):
        def outcomes(seed):
            problem = FaultInjectionProblem(
                quadratic_problem(), crash_rate=0.3, nan_rate=0.2, rng=seed
            )
            out = []
            for _ in range(50):
                try:
                    r = problem.evaluate(np.zeros(2))
                    out.append("nan" if np.isnan(r.fom) else "ok")
                except SimulationError:
                    out.append("crash")
            return out

        assert outcomes(7) == outcomes(7)
        assert outcomes(7) != outcomes(8)

    def test_counters_and_rates(self):
        problem = FaultInjectionProblem(
            quadratic_problem(), crash_rate=0.5, nan_rate=0.25, rng=FAULT_SEED
        )
        for _ in range(200):
            try:
                problem.evaluate(np.zeros(2))
            except SimulationError:
                pass
        assert problem.n_calls == 200
        assert problem.n_crashes + problem.n_nans == problem.n_faults
        assert 60 <= problem.n_crashes <= 140  # ~100 expected
        assert 20 <= problem.n_nans <= 85  # ~50 expected

    def test_slowdown_inflates_cost(self):
        problem = FaultInjectionProblem(
            quadratic_problem(cost=2.0), slowdown_rate=1.0, slowdown_factor=5.0, rng=0
        )
        assert problem.evaluate(np.zeros(2)).cost == pytest.approx(10.0)
        assert problem.n_slowdowns == 1

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="rates"):
            FaultInjectionProblem(quadratic_problem(), crash_rate=0.7, nan_rate=0.5)


# --------------------------------------------------------------------------
# Pool containment
# --------------------------------------------------------------------------
class TestVirtualPoolFaults:
    def test_crash_contained_and_traced(self):
        pool = VirtualWorkerPool(FlakyProblem(fail_calls={1}, crash_cost=2.0), 1)
        pool.submit(np.zeros(2))
        done = pool.wait_next()
        assert not done.result.ok and done.result.status == "crashed"
        assert done.finish_time == pytest.approx(2.0)  # crash cost charged
        assert pool.trace.n_failures == 1
        assert pool.trace.records[0].error is not None
        assert pool.idle_count == pool.n_workers

    def test_retry_on_simulated_clock(self):
        policy = FailurePolicy(max_retries=1, retry_backoff=0.5)
        pool = VirtualWorkerPool(
            FlakyProblem(fail_calls={1}, cost=3.0, crash_cost=1.0), 1, policy=policy
        )
        pool.submit(np.zeros(2))
        done = pool.wait_next()
        assert done.result.ok
        # Worker occupied: 1.0 (crash) + 0.5 (backoff) + 3.0 (success).
        assert done.finish_time == pytest.approx(4.5)
        assert pool.trace.records[0].attempts == 2
        assert pool.trace.n_retries == 1
        assert pool.trace.n_failures == 0

    def test_timeout_on_simulated_clock(self):
        pool = VirtualWorkerPool(
            quadratic_problem(cost=100.0), 1, policy=FailurePolicy(timeout=5.0)
        )
        pool.submit(np.zeros(2))
        done = pool.wait_next()
        assert done.result.status == "timeout"
        assert done.finish_time == pytest.approx(5.0)

    def test_full_pool_does_not_burn_an_evaluation(self):
        """Regression: submit() must check for an idle worker *before*
        running the evaluation (side effects + eval-count skew)."""
        problem = FlakyProblem(cost=1.0)
        pool = VirtualWorkerPool(problem, n_workers=1)
        pool.submit(np.zeros(2))
        assert problem.n_calls == 1
        with pytest.raises(RuntimeError, match="idle"):
            pool.submit(np.ones(2))
        assert problem.n_calls == 1  # the rejected submit evaluated nothing

    def test_accounting_invariant_through_failures(self):
        problem = FaultInjectionProblem(
            quadratic_problem(), crash_rate=0.4, nan_rate=0.2, rng=FAULT_SEED
        )
        pool = VirtualWorkerPool(problem, n_workers=3)
        issued = 0
        while issued < 30 or pool.busy_count:
            while issued < 30 and pool.idle_count > 0:
                pool.submit(np.zeros(2))
                issued += 1
                assert pool.idle_count + pool.busy_count == 3
            pool.wait_next()
            assert pool.idle_count + pool.busy_count == 3
        assert len(pool.trace) == 30
        assert pool.trace.n_failures == problem.n_faults > 0


class TestThreadPoolFaults:
    def test_timeout_frees_worker_and_discards_late_result(self):
        policy = FailurePolicy(timeout=0.2)
        with ThreadWorkerPool(HangingProblem(0.6), n_workers=1, policy=policy) as pool:
            pool.submit(np.zeros(2))
            t0 = time.monotonic()
            done = pool.wait_next()
            assert time.monotonic() - t0 < 0.5  # did not wait for the hang
            assert done.result.status == "timeout"
            assert pool.idle_count == 1 and pool.busy_count == 0
            # The worker slot is genuinely reusable while the abandoned
            # thread is still sleeping, and its late result is discarded.
            pool.submit(np.zeros(2))
            done2 = pool.wait_next()
            assert done2.result.status == "timeout"
            assert len(pool.trace) == 2

    def test_hung_worker_does_not_starve_the_others(self):
        """The async loop's point: B-1 workers stay productive while one
        evaluation hangs past its timeout."""
        class MixedProblem(Problem):
            name = "mixed"

            @property
            def bounds(self):
                return np.array(BOUNDS)

            def evaluate(self, x):
                if x[0] > 1.5:  # the poisoned point hangs
                    time.sleep(5.0)
                return EvaluationResult(fom=float(x[0]), cost=0.01)

        policy = FailurePolicy(timeout=1.0)
        with ThreadWorkerPool(MixedProblem(), n_workers=3, policy=policy) as pool:
            pool.submit(np.array([2.0, 0.0]))  # hangs
            for i in range(6):  # healthy work keeps flowing on the other two
                if pool.idle_count == 0:
                    done = pool.wait_next()
                    assert done.result.ok
                pool.submit(np.array([0.1 * i, 0.0]))
            completions = pool.wait_all()
        statuses = [c.result.status for c in completions] + [
            r.status for r in pool.trace.records
        ]
        assert "timeout" in statuses
        assert sum(r.ok for r in pool.trace.records) == 6

    def test_retry_with_real_backoff(self):
        policy = FailurePolicy(max_retries=2, retry_backoff=0.01)
        problem = FlakyProblem(fail_calls={1, 2}, cost=0.0)
        with ThreadWorkerPool(problem, n_workers=1, policy=policy) as pool:
            pool.submit(np.zeros(2))
            done = pool.wait_next()
        assert done.result.ok
        assert pool.trace.records[0].attempts == 3


# --------------------------------------------------------------------------
# pending_points shape regression (both pools, every state)
# --------------------------------------------------------------------------
class TestPendingPointsShape:
    def test_virtual_pool_empty_shape(self):
        pool = VirtualWorkerPool(quadratic_problem(), n_workers=2)
        assert pool.pending_points().shape == (0, 2)

    def test_thread_pool_empty_shape(self):
        with ThreadWorkerPool(HangingProblem(0.0), n_workers=2) as pool:
            assert pool.pending_points().shape == (0, 2)

    @pytest.mark.parametrize("n_busy", [0, 1, 2])
    def test_model_with_pending_accepts_every_pool_state(self, n_busy):
        problem = quadratic_problem()
        pool = VirtualWorkerPool(problem, n_workers=2)
        rng = np.random.default_rng(0)
        session = SurrogateSession(problem.bounds, rng=rng)
        for _ in range(6):
            x = rng.uniform(-2, 2, size=2)
            session.add(x, -float(np.sum(x**2)))
        session.refit()
        for i in range(n_busy):
            pool.submit(np.full(2, 0.1 * (i + 1)))
        pending = pool.pending_points()
        assert pending.shape == (n_busy, 2)
        model = session.model_with_pending(pending)  # must not raise
        mu, sigma = model.predict(np.zeros((1, 2)))
        assert np.all(np.isfinite(mu)) and np.all(np.isfinite(sigma))


# --------------------------------------------------------------------------
# Surrogate guards
# --------------------------------------------------------------------------
class TestSurrogateGuards:
    def test_nan_observation_rejected(self):
        session = SurrogateSession(np.array(BOUNDS))
        with pytest.raises(ValueError, match="finite"):
            session.add(np.zeros(2), float("nan"))
        with pytest.raises(ValueError, match="finite"):
            session.add(np.array([np.inf, 0.0]), 1.0)
        assert session.n_observations == 0

    def test_nan_batch_rejected(self):
        session = SurrogateSession(np.array(BOUNDS))
        with pytest.raises(ValueError, match="finite"):
            session.add_batch(np.zeros((2, 2)), np.array([1.0, np.nan]))
        assert session.n_observations == 0


# --------------------------------------------------------------------------
# Drivers survive failures (all three, both pools)
# --------------------------------------------------------------------------
def faulty_factory(**rates):
    return FaultInjectionProblem(
        quadratic_problem(),
        rng=FAULT_SEED,
        **rates,
    )


DRIVER_FACTORIES = {
    "sequential": lambda p, policy: SequentialBO(
        p, n_init=4, max_evals=12, rng=1, acq_candidates=64, acq_restarts=1,
        failure_policy=policy,
    ),
    "sync": lambda p, policy: SynchronousBatchBO(
        p, batch_size=3, n_init=6, max_evals=15, rng=1, acq_candidates=64,
        acq_restarts=1, failure_policy=policy,
    ),
    "async": lambda p, policy: AsynchronousBatchBO(
        p, batch_size=3, n_init=6, max_evals=15, rng=1, acq_candidates=64,
        acq_restarts=1, failure_policy=policy,
    ),
}


@pytest.mark.parametrize("driver_name", sorted(DRIVER_FACTORIES))
@pytest.mark.parametrize("on_failure", ["impute", "drop"])
def test_driver_completes_with_failures_virtual(driver_name, on_failure):
    problem = faulty_factory(crash_rate=0.2, nan_rate=0.1)
    policy = FailurePolicy(on_failure=on_failure)
    driver = DRIVER_FACTORIES[driver_name](problem, policy)
    result = driver.run()
    assert result.n_evaluations == driver.max_evals
    assert result.n_failures == problem.n_faults > 0
    assert len(result.trace.failure_records()) == result.n_failures
    # No poisoned observation reached the surrogate.
    assert np.all(np.isfinite(driver.session.y))
    if on_failure == "drop":
        # Dropped failures never become observations.
        assert driver.session.n_observations == result.n_evaluations - result.n_failures


@pytest.mark.parametrize("driver_name", sorted(DRIVER_FACTORIES))
def test_driver_completes_with_failures_thread(driver_name):
    problem = faulty_factory(crash_rate=0.25)
    driver = DRIVER_FACTORIES[driver_name](problem, FailurePolicy())
    driver.pool_factory = ThreadWorkerPool
    result = driver.run()
    assert result.n_evaluations == driver.max_evals
    assert result.n_failures == problem.n_crashes > 0


class CrashOncePerPoint(Problem):
    """Every new design point crashes on its first attempt; the retry (same
    point, same worker) succeeds — a transient license-drop style fault."""

    name = "crash-once"

    def __init__(self):
        self.seen = set()

    @property
    def bounds(self):
        return np.array(BOUNDS)

    def evaluate(self, x):
        key = tuple(np.round(np.asarray(x, dtype=float), 12))
        if key not in self.seen:
            self.seen.add(key)
            raise SimulationError("first-attempt crash", cost=0.1)
        return EvaluationResult(fom=-float(np.sum(x**2)), cost=1.0)


def test_driver_retry_policy_recovers_transient_faults():
    driver = DRIVER_FACTORIES["async"](
        CrashOncePerPoint(), FailurePolicy(max_retries=1)
    )
    result = driver.run()
    # Every evaluation crashed once and recovered on its retry.
    assert result.n_failures == 0
    assert result.n_retries == result.n_evaluations == driver.max_evals
    assert result.trace.records[0].attempts == 2


def test_imputation_is_pessimistic():
    problem = FlakyProblem(fail_calls={5}, cost=1.0)
    driver = DRIVER_FACTORIES["sequential"](
        problem, FailurePolicy(on_failure="impute")
    )
    result = driver.run()
    assert result.n_failures == 1
    y = driver.session.y
    assert len(y) == driver.max_evals
    # Call 5 is the first post-init evaluation; its imputed stand-in sits
    # strictly below everything observed at imputation time.
    assert np.isfinite(y[4])
    assert y[4] < y[:4].min()


def test_imputation_fixed_value():
    problem = FlakyProblem(fail_calls={5}, cost=1.0)
    driver = DRIVER_FACTORIES["sequential"](
        problem, FailurePolicy(on_failure="impute", impute_value=-123.0)
    )
    driver.run()
    assert driver.session.y[4] == -123.0


def test_de_survives_failures():
    problem = faulty_factory(crash_rate=0.2)
    de = DifferentialEvolution(problem, max_evals=40, pop_size=8, rng=2, n_workers=4)
    result = de.run()
    assert result.n_evaluations == 40
    assert result.trace.n_failures == problem.n_crashes > 0
    assert np.isfinite(result.best_fom)


def test_all_failures_run_still_completes():
    """Even a 100% failure rate must not raise — the run reports no best."""
    problem = faulty_factory(crash_rate=1.0)
    driver = DRIVER_FACTORIES["async"](problem, FailurePolicy(on_failure="drop"))
    result = driver.run()
    assert result.n_evaluations == driver.max_evals
    assert result.n_failures == driver.max_evals
    assert result.best_fom == float("-inf")
    assert np.all(np.isnan(result.best_x))


def test_failure_counters_roundtrip_persistence():
    problem = faulty_factory(crash_rate=0.3)
    result = DRIVER_FACTORIES["async"](problem, FailurePolicy()).run()
    assert result.n_failures > 0
    restored = run_from_dict(run_to_dict(result))
    assert restored.n_failures == result.n_failures
    assert restored.n_retries == result.n_retries
    statuses = [r.status for r in restored.trace.records]
    assert statuses == [r.status for r in result.trace.records]
    assert restored.trace.n_failures == result.n_failures


# --------------------------------------------------------------------------
# Acceptance: seeded >=10% failure rate, op-amp, EasyBO-5, both pools
# --------------------------------------------------------------------------
@pytest.mark.parametrize("pool_factory", [VirtualWorkerPool, ThreadWorkerPool])
def test_opamp_easybo5_survives_faults(pool_factory):
    problem = FaultInjectionProblem(
        OpAmpProblem(),
        crash_rate=0.10,
        nan_rate=0.05,
        rng=FAULT_SEED,
    )
    driver = AsynchronousBatchBO(
        problem,
        batch_size=5,
        n_init=8,
        max_evals=24,
        rng=FAULT_SEED,
        acq_candidates=64,
        acq_restarts=1,
        pool_factory=pool_factory,
        failure_policy=FailurePolicy(on_failure="impute"),
    )
    result = driver.run()  # must not raise
    assert result.n_evaluations == 24
    assert result.n_failures == problem.n_faults
    assert result.trace.n_failures == result.n_failures
    assert np.all(np.isfinite(driver.session.y))
    if result.trace.has_success:
        assert np.isfinite(result.best_fom)
