"""Tests for the sequential / synchronous / asynchronous BO drivers.

These use cheap synthetic problems; the heavier end-to-end behaviour is in
tests/test_integration.py.
"""

import numpy as np
import pytest

from repro.circuits.benchmarks import branin, sphere
from repro.core.async_batch import AsynchronousBatchBO
from repro.core.bo import SequentialBO
from repro.core.sync_batch import SYNC_STRATEGIES, SynchronousBatchBO
from repro.sched.durations import ConstantCostModel


def quick(problem_factory=sphere, **kw):
    kw.setdefault("n_init", 5)
    kw.setdefault("max_evals", 15)
    kw.setdefault("rng", 0)
    kw.setdefault("acq_candidates", 256)
    kw.setdefault("acq_restarts", 1)
    return problem_factory(cost_model=ConstantCostModel(2.0)), kw


class TestSequential:
    @pytest.mark.parametrize("acq", ["easybo", "ei", "pi", "lcb", "ucb"])
    def test_runs_and_improves(self, acq):
        problem, kw = quick()
        result = SequentialBO(problem, acquisition=acq, **kw).run()
        assert result.n_evaluations == 15
        assert result.best_fom > -20.0  # random mean is around -25

    def test_unknown_acquisition(self):
        problem, kw = quick()
        with pytest.raises(ValueError):
            SequentialBO(problem, acquisition="nope", **kw)

    def test_wall_clock_is_serial_sum(self):
        problem, kw = quick()
        result = SequentialBO(problem, **kw).run()
        assert result.wall_clock == pytest.approx(15 * 2.0)

    def test_deterministic_given_seed(self):
        problem, kw = quick()
        a = SequentialBO(problem, **kw).run()
        b = SequentialBO(problem, **kw).run()
        assert a.best_fom == b.best_fom
        np.testing.assert_array_equal(a.best_x, b.best_x)

    def test_algorithm_names(self):
        problem, kw = quick()
        assert SequentialBO(problem, acquisition="easybo", **kw).algorithm_name == "EasyBO"
        assert SequentialBO(problem, acquisition="lcb", **kw).algorithm_name == "LCB"

    def test_budget_validation(self):
        problem, _ = quick()
        with pytest.raises(ValueError):
            SequentialBO(problem, n_init=10, max_evals=5)
        with pytest.raises(ValueError):
            SequentialBO(problem, n_init=1, max_evals=5)


class TestSynchronous:
    @pytest.mark.parametrize("strategy", SYNC_STRATEGIES)
    def test_all_strategies_run(self, strategy):
        problem, kw = quick()
        driver = SynchronousBatchBO(problem, batch_size=3, strategy=strategy, **kw)
        result = driver.run()
        assert result.n_evaluations == 15
        assert result.algorithm.endswith("-3")

    def test_batches_share_issue_times(self):
        problem, kw = quick()
        driver = SynchronousBatchBO(problem, batch_size=5, strategy="pbo", **kw)
        result = driver.run()
        by_batch = {}
        for record in result.trace.records:
            by_batch.setdefault(record.batch, []).append(record.issue_time)
        for times in by_batch.values():
            assert len(set(times)) == 1  # barrier: all issued together

    def test_wall_clock_with_constant_cost(self):
        problem, kw = quick()
        driver = SynchronousBatchBO(problem, batch_size=5, strategy="easybo-s", **kw)
        result = driver.run()
        # constant 2 s per eval, 15 evals in batches of 5 -> 3 barriers.
        assert result.wall_clock == pytest.approx(6.0)

    def test_respects_budget_with_partial_batch(self):
        problem, kw = quick()
        kw["max_evals"] = 13  # 5 init + 3 batches of 3 + partial 2
        driver = SynchronousBatchBO(problem, batch_size=3, strategy="easybo-sp", **kw)
        assert driver.run().n_evaluations == 13

    def test_unknown_strategy(self):
        problem, kw = quick()
        with pytest.raises(ValueError, match="unknown strategy"):
            SynchronousBatchBO(problem, batch_size=3, strategy="magic", **kw)

    def test_batch_size_validation(self):
        problem, kw = quick()
        with pytest.raises(ValueError):
            SynchronousBatchBO(problem, batch_size=0, **kw)


class TestAsynchronous:
    def test_runs_with_and_without_penalty(self):
        problem, kw = quick()
        for penalized in (True, False):
            driver = AsynchronousBatchBO(
                problem, batch_size=3, penalized=penalized, **kw
            )
            result = driver.run()
            assert result.n_evaluations == 15

    def test_names(self):
        problem, kw = quick()
        assert (
            AsynchronousBatchBO(problem, batch_size=4, **kw).algorithm_name
            == "EasyBO-4"
        )
        assert (
            AsynchronousBatchBO(problem, batch_size=1, **kw).algorithm_name
            == "EasyBO"
        )
        assert (
            AsynchronousBatchBO(
                problem, batch_size=4, penalized=False, **kw
            ).algorithm_name
            == "EasyBO-A-4"
        )

    def test_async_faster_than_sync_with_heterogeneous_costs(self):
        """The paper's core claim at the scheduling level."""
        problem = branin()  # heterogeneous lognormal cost model
        kw = dict(n_init=6, max_evals=24, rng=3, acq_candidates=256, acq_restarts=1)
        sync = SynchronousBatchBO(problem, batch_size=6, strategy="easybo-sp", **kw).run()
        async_ = AsynchronousBatchBO(problem, batch_size=6, **kw).run()
        assert async_.wall_clock < sync.wall_clock
        assert async_.trace.utilization() > sync.trace.utilization()

    def test_async_keeps_all_workers_busy(self):
        problem, kw = quick()
        result = AsynchronousBatchBO(problem, batch_size=3, **kw).run()
        workers = {r.worker for r in result.trace.records}
        assert workers == {0, 1, 2}

    def test_pending_seen_by_acquisition(self):
        """After the init phase the pool always holds B-1 pending points."""
        problem, kw = quick()
        driver = AsynchronousBatchBO(problem, batch_size=3, **kw)
        seen = []
        original = driver._propose_async

        def spy(pool):
            seen.append(pool.pending_points().shape[0])
            return original(pool)

        driver._propose_async = spy
        driver.run()
        assert seen  # model-driven phase happened
        assert all(n == 2 for n in seen)  # B - 1 busy points every time

    def test_batch_size_validation(self):
        problem, kw = quick()
        with pytest.raises(ValueError):
            AsynchronousBatchBO(problem, batch_size=0, **kw)
