"""Tests for the class-E power-amplifier testbench (paper §IV-B)."""

import numpy as np
import pytest

from repro.circuits.classe import (
    F0,
    RLOAD,
    ClassEProblem,
    build_classe,
    classe_design_space,
)
from repro.spice import dc_operating_point


@pytest.fixture(scope="module")
def problem():
    return ClassEProblem()


@pytest.fixture(scope="module")
def tuned_values():
    """Sokal-equation design for R_opt ~ 6 ohm at 100 MHz."""
    return {
        "w": 1000e-6,
        "l": 0.18e-6,
        "l_choke": 2e-6,
        "c_shunt": 47e-12,
        "l0": 60e-9,
        "c0": 52e-12,
        "l_match": 26e-9,
        "c_match": 85e-12,
        "duty": 0.5,
        "rise_frac": 0.05,
        "vdd": 1.8,
        "v_gate": 1.8,
    }


class TestDesignSpace:
    def test_twelve_variables(self):
        assert classe_design_space().dim == 12

    def test_reactive_parameters_are_log(self):
        space = classe_design_space()
        log_names = {p.name for p in space.parameters if p.log}
        assert {"l_choke", "c_shunt", "l0", "c0"} <= log_names


class TestNetlist:
    def test_builds_and_validates(self, tuned_values):
        c = build_classe(tuned_values)
        c.validate()
        assert len(c.mosfets()) == 1

    def test_dc_state(self, tuned_values):
        c = build_classe(tuned_values)
        op = dc_operating_point(c)
        # Gate drive starts low: switch off, drain pulled to vdd by choke.
        assert op.v("drain") == pytest.approx(1.8, abs=0.05)

    def test_load_present(self, tuned_values):
        c = build_classe(tuned_values)
        assert c.find("rl").resistance == RLOAD


class TestEvaluate:
    def test_tuned_design_performs(self, problem, tuned_values):
        x = problem.space.to_vector(tuned_values)
        r = problem.evaluate(x)
        assert r.feasible
        assert r.metrics["pae"] > 0.4
        assert r.metrics["p_out_w"] > 0.05
        assert r.fom > 2.0

    def test_fom_formula(self, problem, tuned_values):
        x = problem.space.to_vector(tuned_values)
        r = problem.evaluate(x)
        expected = 3.0 * r.metrics["pae"] + r.metrics["p_out_w"] / 0.1
        assert r.fom == pytest.approx(expected)

    def test_energy_conservation(self, problem, tuned_values):
        """Output power cannot exceed what the supplies deliver."""
        x = problem.space.to_vector(tuned_values)
        r = problem.evaluate(x)
        assert r.metrics["p_out_w"] <= r.metrics["p_dc_w"] + r.metrics["p_in_w"] + 1e-3

    def test_pae_bounded(self, problem):
        rng = np.random.default_rng(5)
        for x in problem.space.sample(3, rng):
            r = problem.evaluate(x)
            if r.feasible:
                assert 0.0 <= r.metrics["pae"] <= 1.0

    def test_deterministic(self, problem, tuned_values):
        x = problem.space.to_vector(tuned_values)
        assert problem.evaluate(x).fom == problem.evaluate(x).fom

    def test_period_settings_validated(self):
        with pytest.raises(ValueError):
            ClassEProblem(settle_periods=0)

    def test_carrier_frequency_constant(self):
        assert F0 == pytest.approx(100e6)
