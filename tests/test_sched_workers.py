"""Tests for the virtual worker pool."""

import numpy as np
import pytest

from repro.core.problem import FunctionProblem
from repro.sched.workers import VirtualWorkerPool


def make_problem(costs=None):
    """FOM = x[0]; cost from a lookup on x[0] (default constant 1)."""

    def cost_model(x):
        if costs is None:
            return 1.0
        return float(costs[int(round(x[0]))])

    return FunctionProblem(
        lambda x: float(x[0]), [[0.0, 100.0]], cost_model=cost_model, name="lin"
    )


class TestSubmitWait:
    def test_single_worker_serializes(self):
        pool = VirtualWorkerPool(make_problem(), n_workers=1)
        pool.submit(np.array([1.0]))
        done = pool.wait_next()
        assert done.finish_time == 1.0
        pool.submit(np.array([2.0]))
        done = pool.wait_next()
        assert done.finish_time == 2.0

    def test_submit_when_full_raises(self):
        pool = VirtualWorkerPool(make_problem(), n_workers=1)
        pool.submit(np.array([1.0]))
        with pytest.raises(RuntimeError, match="idle"):
            pool.submit(np.array([2.0]))

    def test_wait_with_nothing_running_raises(self):
        pool = VirtualWorkerPool(make_problem(), n_workers=1)
        with pytest.raises(RuntimeError, match="running"):
            pool.wait_next()

    def test_earliest_completion_first(self):
        costs = {0: 5.0, 1: 2.0, 2: 8.0}
        pool = VirtualWorkerPool(make_problem(costs), n_workers=3)
        for i in range(3):
            pool.submit(np.array([float(i)]))
        first = pool.wait_next()
        assert first.x[0] == 1.0
        assert pool.now == 2.0

    def test_async_refill_uses_freed_worker(self):
        costs = {0: 5.0, 1: 2.0, 2: 3.0}
        pool = VirtualWorkerPool(make_problem(costs), n_workers=2)
        pool.submit(np.array([0.0]))
        pool.submit(np.array([1.0]))
        done = pool.wait_next()  # x=1 at t=2
        assert done.worker == 1
        pool.submit(np.array([2.0]))  # starts at t=2 on worker 1
        done = pool.wait_next()  # x=0 at t=5
        assert done.x[0] == 0.0
        done = pool.wait_next()  # x=2 at t=2+3=5
        assert done.finish_time == 5.0
        assert done.worker == 1

    def test_wait_all_barrier(self):
        costs = {0: 1.0, 1: 9.0, 2: 4.0}
        pool = VirtualWorkerPool(make_problem(costs), n_workers=3)
        for i in range(3):
            pool.submit(np.array([float(i)]))
        completions = pool.wait_all()
        assert len(completions) == 3
        assert pool.now == 9.0  # clock at the slowest member


class TestPending:
    def test_pending_points_in_issue_order(self):
        pool = VirtualWorkerPool(make_problem(), n_workers=3)
        pool.submit(np.array([3.0]))
        pool.submit(np.array([7.0]))
        np.testing.assert_array_equal(pool.pending_points().ravel(), [3.0, 7.0])

    def test_pending_empty(self):
        pool = VirtualWorkerPool(make_problem(), n_workers=2)
        assert pool.pending_points().shape[0] == 0

    def test_counts(self):
        pool = VirtualWorkerPool(make_problem(), n_workers=2)
        assert pool.idle_count == 2
        pool.submit(np.array([1.0]))
        assert pool.idle_count == 1
        assert pool.busy_count == 1


class TestTrace:
    def test_trace_records_everything(self):
        pool = VirtualWorkerPool(make_problem(), n_workers=2)
        for i in range(2):
            pool.submit(np.array([float(i)]), batch=0)
        pool.wait_all()
        assert len(pool.trace) == 2
        assert {r.batch for r in pool.trace.records} == {0}

    def test_sync_vs_async_makespan(self):
        """Async refilling finishes the same workload sooner than batching."""
        durations = [5.0, 1.0, 1.0, 1.0, 5.0, 1.0]
        costs = dict(enumerate(durations))

        # Synchronous: batches of 2 -> makespan sum of per-batch maxima.
        sync = VirtualWorkerPool(make_problem(costs), n_workers=2)
        for batch in range(3):
            sync.submit(np.array([float(2 * batch)]), batch=batch)
            sync.submit(np.array([float(2 * batch + 1)]), batch=batch)
            sync.wait_all()
        assert sync.trace.makespan == 5.0 + 1.0 + 5.0

        # Asynchronous: refill on every completion.
        pool = VirtualWorkerPool(make_problem(costs), n_workers=2)
        pool.submit(np.array([0.0]))
        pool.submit(np.array([1.0]))
        next_i = 2
        while next_i < 6:
            pool.wait_next()
            pool.submit(np.array([float(next_i)]))
            next_i += 1
        pool.wait_all()
        assert pool.trace.makespan < sync.trace.makespan
        assert pool.trace.utilization() > sync.trace.utilization()


class TestValidation:
    def test_worker_count(self):
        with pytest.raises(ValueError):
            VirtualWorkerPool(make_problem(), 0)
