"""Tests for repro.spice.units."""

import pytest

from repro.spice.units import format_eng, parse_value


class TestParseValue:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("10k", 1e4),
            ("1.5u", 1.5e-6),
            ("2meg", 2e6),
            ("2MEG", 2e6),
            ("100n", 1e-7),
            ("3p", 3e-12),
            ("5f", 5e-15),
            ("4m", 4e-3),
            ("1mil", 25.4e-6),
            ("2.2K", 2200.0),
            ("1e-9", 1e-9),
            ("-3.3", -3.3),
            (".5u", 0.5e-6),
            ("1g", 1e9),
            ("2t", 2e12),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_value(text) == pytest.approx(expected, rel=1e-12)

    def test_unit_letters_ignored(self):
        assert parse_value("10pF") == pytest.approx(1e-11)
        assert parse_value("2.2kOhm") == pytest.approx(2200.0)

    def test_bare_unit_scale_one(self):
        assert parse_value("5V") == 5.0

    def test_numeric_passthrough(self):
        assert parse_value(3) == 3.0
        assert parse_value(2.5) == 2.5

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            parse_value("abc")
        with pytest.raises(ValueError):
            parse_value("")


class TestFormatEng:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (2200.0, "2.2k"),
            (1.5e-6, "1.5u"),
            (0.0, "0"),
            (3e6, "3M"),
            (-4.7e-9, "-4.7n"),
            (1e-15, "1f"),
        ],
    )
    def test_values(self, value, expected):
        assert format_eng(value) == expected

    def test_unit_suffix(self):
        assert format_eng(1e-12, "F") == "1pF"

    def test_roundtrip(self):
        for value in (1e-13, 4.7e-9, 2.2e3, 1.8):
            assert parse_value(format_eng(value, digits=12)) == pytest.approx(value)
