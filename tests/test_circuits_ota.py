"""Tests for the five-transistor OTA testbench."""

import numpy as np
import pytest

from repro.circuits.ota import OtaProblem, build_ota, ota_design_space
from repro.spice import dc_operating_point


NOMINAL = {
    "w12": 16e-6, "l12": 0.36e-6, "w34": 8e-6, "l34": 0.36e-6,
    "w5": 8e-6, "ibias": 20e-6,
}


class TestDesignSpace:
    def test_six_variables(self):
        assert ota_design_space().dim == 6

    def test_all_log_scaled(self):
        assert all(p.log for p in ota_design_space().parameters)


class TestNetlist:
    def test_builds_and_biases(self):
        c = build_ota(NOMINAL)
        c.validate()
        op = dc_operating_point(c)
        assert len(c.mosfets()) == 6
        for name in ("m1", "m2", "m3", "m4"):
            assert op.mosfet_ops[name].region == "saturation", name

    def test_mirror_symmetry(self):
        op = dc_operating_point(build_ota(NOMINAL))
        # Balanced inputs: pair currents match.
        assert op.mosfet_ops["m1"].ids == pytest.approx(
            op.mosfet_ops["m2"].ids, rel=0.05
        )


class TestEvaluate:
    @pytest.fixture(scope="class")
    def problem(self):
        return OtaProblem()

    def test_nominal_design(self, problem):
        r = problem.evaluate(problem.space.to_vector(NOMINAL))
        assert r.feasible
        assert r.fom > 100
        assert r.metrics["gain_db"] > 25  # single stage: modest gain
        assert r.metrics["pm_deg"] > 60  # single stage: stable

    def test_fom_formula(self, problem):
        r = problem.evaluate(problem.space.to_vector(NOMINAL))
        expected = (
            1.2 * r.metrics["gain_db"]
            + r.metrics["ugf_mhz"]
            + 1.6 * min(r.metrics["pm_deg"], 120.0)
        )
        assert r.fom == pytest.approx(expected)

    def test_random_designs_mostly_work(self, problem):
        rng = np.random.default_rng(0)
        results = [problem.evaluate(x) for x in problem.space.sample(15, rng)]
        assert sum(r.feasible for r in results) >= 10

    def test_fast_cost_model(self, problem):
        rng = np.random.default_rng(1)
        costs = [problem.evaluate(x).cost for x in problem.space.sample(5, rng)]
        assert all(5 < c < 30 for c in costs)

    def test_bo_improves_quickly(self, problem):
        """The OTA exists to be easy: 30 evals must beat its init design."""
        from repro import EasyBO

        result = EasyBO(problem, batch_size=3, n_init=8, max_evals=30, rng=0,
                        acq_candidates=256, acq_restarts=1).optimize()
        init_best = max(r.fom for r in result.trace.records if r.index < 8)
        assert result.best_fom > init_best
