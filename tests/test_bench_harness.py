"""Unit tests for the benchmark harness's pure functions."""

import pathlib
import sys

import numpy as np
import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))

import harness  # noqa: E402
from harness import SCALES, grid_labels, run_grid, speedup_report, time_to_target_report  # noqa: E402

from repro.circuits.benchmarks import sphere  # noqa: E402
from repro.sched.durations import ConstantCostModel  # noqa: E402


class TestScales:
    def test_all_scales_defined(self):
        for table in ("table1", "table2"):
            assert set(SCALES[table]) == {"smoke", "reduced", "paper"}

    def test_paper_scale_matches_protocol(self):
        t1 = SCALES["table1"]["paper"]
        assert t1.repetitions == 20
        assert t1.n_init == 20
        assert t1.max_evals == 150
        assert t1.de_evals == 20000
        assert t1.batch_sizes == (5, 10, 15)
        t2 = SCALES["table2"]["paper"]
        assert t2.max_evals == 450
        assert t2.de_evals == 15000


class TestGridLabels:
    def test_paper_row_order(self):
        labels = grid_labels(SCALES["table1"]["paper"])
        assert labels[:4] == ["DE", "LCB", "EI", "EasyBO"]
        assert labels[4:10] == [
            "pBO-5", "pHCBO-5", "EasyBO-S-5", "EasyBO-A-5", "EasyBO-SP-5", "EasyBO-5",
        ]
        assert len(labels) == 4 + 6 * 3

    def test_without_sequential(self):
        labels = grid_labels(SCALES["table1"]["smoke"], include_sequential=False)
        assert labels[0] == "pBO-5"


class TestRunGridAndReports:
    @pytest.fixture(scope="class")
    def tiny_grid(self):
        scale = harness.Scale("tiny", 2, 4, 10, 30, (2,), 64, 1)
        labels = ["EasyBO-SP-2", "EasyBO-2"]
        problem_factory = lambda: sphere(2)  # noqa: E731
        return run_grid(labels, problem_factory, scale, seed=0, verbose=False), scale

    def test_grid_shape(self, tiny_grid):
        grid, scale = tiny_grid
        assert set(grid) == {"EasyBO-SP-2", "EasyBO-2"}
        for runs in grid.values():
            assert len(runs) == 2
            assert all(r.n_evaluations == 10 for r in runs)

    def test_repetitions_differ(self, tiny_grid):
        grid, _ = tiny_grid
        runs = grid["EasyBO-2"]
        assert runs[0].best_fom != runs[1].best_fom  # independent seeds

    def test_speedup_report_mentions_batch(self, tiny_grid):
        grid, scale = tiny_grid
        text = speedup_report(grid, scale.batch_sizes)
        assert "B=2" in text
        assert "%" in text

    def test_time_to_target_report(self, tiny_grid):
        grid, _ = tiny_grid
        text = time_to_target_report(
            grid, ("EasyBO-SP-2", "EasyBO-2"), reference="EasyBO-2"
        )
        assert "Time to reach" in text
        assert "EasyBO-2" in text

    def test_grid_table_renders(self, tiny_grid):
        grid, _ = tiny_grid
        text = harness.grid_table(grid, "T")
        assert "Best" in text and "EasyBO-2" in text

    def test_constant_cost_grid_times_equal(self):
        scale = harness.Scale("tiny", 1, 4, 8, 30, (2,), 64, 1)
        factory = lambda: sphere(2, cost_model=ConstantCostModel(2.0))  # noqa: E731
        grid = run_grid(["EasyBO-2"], factory, scale, seed=0, verbose=False)
        run = grid["EasyBO-2"][0]
        # 8 evals at 2 s on 2 workers, perfectly packed: 8 s makespan.
        assert run.wall_clock == pytest.approx(8.0)
