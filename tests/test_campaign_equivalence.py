"""Ask/tell <-> driver-loop equivalence (the tentpole's acceptance test).

The drivers are now thin loops over :class:`repro.core.Campaign`; this file
proves the converse direction: a *standalone* campaign, driven by hand with
``ask()``/``tell()`` against a worker pool, reproduces the committed golden
trajectories byte-for-byte.  Any RNG draw added, removed, or reordered on
either side of the refactor breaks these tests.

Three hand-rolled harnesses mirror the three driver families:

* sequential — one worker, strict submit/consume alternation;
* asynchronous — keep B workers busy, wait-any, refill one ask at a time
  (each proposal must see the earlier ones as pending, Eq. 9);
* synchronous — DoE slices then full batches with a ``wait_all`` barrier.

Both ``surrogate_update`` modes are covered with the same guarantees as
``test_golden_trajectories.py``: full mode is byte-for-byte against the
fixtures; incremental mode is byte-for-byte against a fresh *driver* run in
incremental mode (sequential incremental also matches the fixture exactly).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RunResult, make_campaign
from repro.sched.workers import VirtualWorkerPool
from tests.golden.regenerate import (
    COMMON_KWARGS,
    SCENARIOS,
    canonical_json,
    golden_path,
    make_problem,
    run_scenario,
    trajectory_payload,
)

BATCH_SCENARIOS = [n for n in SCENARIOS if n != "lcb-branin"]


def _build(name: str, surrogate_update: str):
    label, problem_name, kwargs = SCENARIOS[name]
    problem = make_problem(problem_name)
    campaign = make_campaign(
        label,
        problem,
        surrogate_update=surrogate_update,
        refit_every=1,
        **COMMON_KWARGS,
        **kwargs,
    )
    return campaign, problem


def _package(campaign, pool) -> RunResult:
    """The trajectory-relevant slice of ``BODriverBase._package``."""
    trace = pool.trace
    best = trace.best_record()
    return RunResult(
        algorithm=campaign.algorithm,
        problem=campaign.problem.name,
        trace=trace,
        best_x=best.x.copy(),
        best_fom=best.fom,
        n_evaluations=len(trace),
        wall_clock=trace.makespan,
    )


def _tell(campaign, pool, completion) -> None:
    action = campaign.tell(completion.x, completion.result)
    # The golden scenarios never orphan a point; a reissue here would mean
    # the harness diverged from the driver semantics.
    assert action != "reissued"


def drive_sequential(campaign, pool) -> None:
    """Mirror of ``SequentialBO._drive``: strict busy/idle alternation."""
    while True:
        if pool.busy_count:
            _tell(campaign, pool, pool.wait_next())
        elif campaign.exhausted:
            break
        else:
            pool.submit(campaign.ask())


def drive_async(campaign, pool) -> None:
    """Mirror of ``AsynchronousBatchBO._drive``: wait-any + refill fixpoint.

    Refills one ``ask()`` at a time so every proposal sees the previously
    refilled points as pending — the Eq. 9 hallucination matrix must match
    ``pool.pending_points()`` point-for-point.
    """

    def refill() -> None:
        while not campaign.exhausted and pool.idle_count > 0:
            pool.submit(campaign.ask())

    refill()
    while not campaign.exhausted:
        _tell(campaign, pool, pool.wait_next())
        refill()
    while pool.busy_count:
        _tell(campaign, pool, pool.wait_next())


def drive_sync(campaign, pool, batch_size: int) -> None:
    """Mirror of ``SynchronousBatchBO._drive``: batches behind a barrier."""
    batch_index = 0
    while campaign.in_doe:
        points = campaign.ask(min(batch_size, campaign.n_init - campaign.issued))
        for x in points:
            pool.submit(x, batch=batch_index)
        for completion in pool.wait_all():
            _tell(campaign, pool, completion)
        batch_index += 1
    while not campaign.exhausted:
        points = campaign.ask(min(batch_size, campaign.max_evals - campaign.issued))
        for x in points:
            pool.submit(x, batch=batch_index)
        for completion in pool.wait_all():
            _tell(campaign, pool, completion)
        batch_index += 1


def run_ask_tell_scenario(name: str, *, surrogate_update: str) -> RunResult:
    campaign, problem = _build(name, surrogate_update)
    n_workers = campaign.batch_size
    pool = VirtualWorkerPool(problem, n_workers)
    try:
        kind = campaign.strategy.kind
        if kind == "sequential":
            drive_sequential(campaign, pool)
        elif kind == "async":
            drive_async(campaign, pool)
        else:
            drive_sync(campaign, pool, campaign.batch_size)
        assert campaign.done, "budget issued but points still pending"
        campaign.finish()
        return _package(campaign, pool)
    finally:
        pool.close()


class TestFullModeByteForByte:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_ask_tell_reproduces_golden(self, name):
        result = run_ask_tell_scenario(name, surrogate_update="full")
        replayed = canonical_json(trajectory_payload(name, result))
        assert replayed == golden_path(name).read_text()


class TestIncrementalMode:
    def test_sequential_incremental_matches_golden(self):
        result = run_ask_tell_scenario("lcb-branin", surrogate_update="incremental")
        replayed = canonical_json(trajectory_payload("lcb-branin", result))
        assert replayed == golden_path("lcb-branin").read_text()

    @pytest.mark.parametrize("name", BATCH_SCENARIOS)
    def test_batch_incremental_matches_driver(self, name):
        """Ask/tell in incremental mode == the driver loop in incremental mode.

        The fixtures only bound incremental batch runs up to round-off (see
        ``tests/golden/README.md``), but campaign-vs-driver must agree
        *exactly*: both sides run the identical arithmetic in the identical
        order, whatever mode the surrogate is in.
        """
        via_campaign = run_ask_tell_scenario(name, surrogate_update="incremental")
        via_driver = run_scenario(name, surrogate_update="incremental")
        assert canonical_json(trajectory_payload(name, via_campaign)) == canonical_json(
            trajectory_payload(name, via_driver)
        )


class TestPendingMirrorsPool:
    def test_async_pending_matches_pool_pending_points(self):
        """``campaign.pending_matrix()`` == ``pool.pending_points()`` at every
        wait boundary (the cold-start dedupe satellite's invariant)."""
        campaign, problem = _build("easybo-async-branin", "full")
        pool = VirtualWorkerPool(problem, campaign.batch_size)
        try:
            while not campaign.exhausted and pool.idle_count > 0:
                pool.submit(campaign.ask())
            while not campaign.exhausted:
                np.testing.assert_array_equal(
                    campaign.pending_matrix(), pool.pending_points()
                )
                _tell(campaign, pool, pool.wait_next())
                while not campaign.exhausted and pool.idle_count > 0:
                    pool.submit(campaign.ask())
            while pool.busy_count:
                np.testing.assert_array_equal(
                    campaign.pending_matrix(), pool.pending_points()
                )
                _tell(campaign, pool, pool.wait_next())
        finally:
            pool.close()
        assert campaign.n_pending == 0
