"""Tests for the AC small-signal analysis."""

import numpy as np
import pytest

from repro.spice import (
    Circuit,
    ac_analysis,
    bode_metrics,
    dc_operating_point,
    logspace_frequencies,
    nmos_180,
)


class TestFrequencyGrid:
    def test_logspace_endpoints(self):
        f = logspace_frequencies(1.0, 1e6, 10)
        assert f[0] == pytest.approx(1.0)
        assert f[-1] == pytest.approx(1e6)
        assert len(f) == 61

    def test_logspace_validation(self):
        with pytest.raises(ValueError):
            logspace_frequencies(0, 1e3)
        with pytest.raises(ValueError):
            logspace_frequencies(1e3, 1e3)


class TestLinearAc:
    def test_rc_lowpass_matches_analytic(self):
        R, C = 1000.0, 1e-6
        c = Circuit("rc")
        c.V("vin", "in", "0", ac=1.0)
        c.R("r", "in", "out", R)
        c.C("c", "out", "0", C)
        freqs = logspace_frequencies(1.0, 1e6, 10)
        res = ac_analysis(c, freqs)
        measured = res.v("out")
        expected = 1.0 / (1.0 + 2j * np.pi * freqs * R * C)
        np.testing.assert_allclose(measured, expected, rtol=1e-6)

    def test_rl_highpass(self):
        R, L = 100.0, 1e-3
        c = Circuit("rl")
        c.V("vin", "in", "0", ac=1.0)
        c.R("r", "in", "out", R)
        c.L("l", "out", "0", L)
        freqs = logspace_frequencies(1.0, 1e6, 10)
        res = ac_analysis(c, freqs)
        expected = (2j * np.pi * freqs * L) / (R + 2j * np.pi * freqs * L)
        np.testing.assert_allclose(res.v("out"), expected, rtol=1e-6)

    def test_series_rlc_resonance(self):
        R, L, C = 10.0, 1e-6, 1e-9
        f0 = 1.0 / (2 * np.pi * np.sqrt(L * C))
        c = Circuit("rlc")
        c.V("vin", "in", "0", ac=1.0)
        c.R("r", "in", "a", R)
        c.L("l", "a", "b", L)
        c.C("c", "b", "0", C)
        res = ac_analysis(c, np.array([f0]))
        # At resonance L and C cancel: all drive appears across R, so the
        # current is 1/R and |V(b)| = |I| * 1/(w C).
        i_mag = np.abs(res.i("vin"))[0]
        assert i_mag == pytest.approx(1.0 / R, rel=1e-6)

    def test_transfer_helper(self):
        c = Circuit()
        c.V("vin", "in", "0", ac=1.0)
        c.R("r1", "in", "out", 1000)
        c.R("r2", "out", "0", 1000)
        res = ac_analysis(c, np.array([1e3]))
        h = res.transfer("out", "in")
        assert h[0] == pytest.approx(0.5, rel=1e-9)

    def test_ground_node_voltage_zero(self):
        c = Circuit()
        c.V("vin", "in", "0", ac=1.0)
        c.R("r", "in", "0", 100)
        res = ac_analysis(c, np.array([1e3]))
        np.testing.assert_array_equal(res.v("0"), 0.0)


class TestMosfetAc:
    def test_common_source_gain(self):
        c = Circuit("cs")
        c.V("vdd", "vdd", "0", dc=1.8)
        c.V("vin", "g", "0", dc=0.65, ac=1.0)
        c.R("rd", "vdd", "d", 10_000)
        c.M("m1", "d", "g", "0", "0", nmos_180(), w=10e-6, l=0.5e-6)
        op = dc_operating_point(c)
        assert op.mosfet_ops["m1"].region == "saturation"
        res = ac_analysis(c, np.array([100.0]), op=op)
        gm = op.mosfet_ops["m1"].gm
        gds = op.mosfet_ops["m1"].gds
        expected_gain = gm / (1.0 / 10_000 + gds)
        assert np.abs(res.v("d"))[0] == pytest.approx(expected_gain, rel=1e-3)

    def test_gain_rolls_off_at_high_frequency(self):
        c = Circuit("cs rolloff")
        c.V("vdd", "vdd", "0", dc=1.8)
        c.V("vin", "g", "0", dc=0.65, ac=1.0)
        c.R("rd", "vdd", "d", 10_000)
        c.C("cl", "d", "0", 1e-12)
        c.M("m1", "d", "g", "0", "0", nmos_180(), w=10e-6, l=0.5e-6)
        freqs = logspace_frequencies(1e3, 1e11, 5)
        res = ac_analysis(c, freqs)
        mag = np.abs(res.v("d"))
        assert mag[-1] < 0.05 * mag[0]


class TestValidation:
    def test_rejects_empty_freqs(self):
        c = Circuit()
        c.V("v", "a", "0", ac=1.0)
        c.R("r", "a", "0", 1)
        with pytest.raises(ValueError):
            ac_analysis(c, np.array([]))

    def test_rejects_nonpositive_freqs(self):
        c = Circuit()
        c.V("v", "a", "0", ac=1.0)
        c.R("r", "a", "0", 1)
        with pytest.raises(ValueError):
            ac_analysis(c, np.array([0.0, 1.0]))


class TestBodeMetrics:
    def test_single_pole_system(self):
        """H(s) = A / (1 + s/p): UGF = A*p, PM ~ 90 deg."""
        A, p = 1000.0, 1e3  # pole at 1 kHz
        freqs = logspace_frequencies(1.0, 1e8, 40)
        H = A / (1.0 + 1j * freqs / p)
        m = bode_metrics(freqs, H)
        assert m.dc_gain_db == pytest.approx(60.0, abs=0.01)
        assert m.ugf_hz == pytest.approx(A * p, rel=0.01)
        assert m.phase_margin_deg == pytest.approx(90.0, abs=1.0)

    def test_two_pole_phase_margin(self):
        A, p1, p2 = 1000.0, 1e3, 1e6
        freqs = logspace_frequencies(1.0, 1e9, 40)
        H = A / ((1.0 + 1j * freqs / p1) * (1.0 + 1j * freqs / p2))
        m = bode_metrics(freqs, H)
        # Analytic: |H| = 1 at ~786 kHz, where total lag is ~128 deg,
        # leaving a ~52 deg margin.
        from scipy.optimize import brentq

        ugf = brentq(lambda f: abs(A / ((1 + 1j * f / p1) * (1 + 1j * f / p2))) - 1, 1e3, 1e8)
        pm = 180.0 - np.degrees(np.arctan(ugf / p1) + np.arctan(ugf / p2))
        assert m.ugf_hz == pytest.approx(ugf, rel=0.01)
        assert m.phase_margin_deg == pytest.approx(pm, abs=1.0)

    def test_inverting_amplifier_phase_reference(self):
        """An inverting single-pole amp must still report ~90 deg margin."""
        A, p = 1000.0, 1e3
        freqs = logspace_frequencies(1.0, 1e8, 40)
        H = -A / (1.0 + 1j * freqs / p)
        m = bode_metrics(freqs, H)
        assert m.phase_margin_deg == pytest.approx(90.0, abs=1.0)

    def test_no_crossing_raises(self):
        from repro.spice.exceptions import AnalysisError

        freqs = logspace_frequencies(1.0, 1e3, 10)
        H = np.full(len(freqs), 100.0 + 0j)
        with pytest.raises(AnalysisError, match="never crosses"):
            bode_metrics(freqs, H)

    def test_subunity_gain_raises(self):
        from repro.spice.exceptions import AnalysisError

        freqs = logspace_frequencies(1.0, 1e3, 10)
        H = np.full(len(freqs), 0.5 + 0j)
        with pytest.raises(AnalysisError):
            bode_metrics(freqs, H)
