"""Property-based sweeps over the paper's core invariants.

Each test drives one mathematical invariant through ``N_CASES`` (>= 200)
randomized cases from seeded :class:`numpy.random.Generator` streams —
deterministic, so a failure reproduces from its case index alone:

* Eq. 8 — the randomized acquisition weight ``w = kappa/(kappa+1)``,
  ``kappa ~ U[0, lam]``, follows the exact CDF ``F(t) = t / ((1-t) lam)``
  on ``[0, lam/(lam+1)]`` and concentrates above 0.5 for ``lam = 6``
  (``P(w > 0.5) = 5/6``) — the exploration-heavy density of Fig. 2.
* Eq. 9 — hallucinating pending points never inflates the posterior
  spread (``sigma_hat <= sigma``) and collapses it to the noise level at
  the busy points, while the mean surface is untouched (kriging believer).
* GP regression is symmetric in its training data: permuting the
  observations leaves the posterior unchanged.
* The incremental Cholesky algebra (border updates, block appends,
  shrinks, rank-1 up/downdates, row deletion) reproduces a fresh
  factorization of the assembled matrix, including near-singular inputs
  where the jitter policy engages.
* Pending-point policies (``repro.core.pending``): the local-penalisation
  factor lies in ``(0, 1]``, is non-decreasing in the distance to the
  pending point, and tends to 1 far away; the pessimistic extension never
  inflates the posterior spread, never raises the acquisition at a lone
  pending point above its no-pending baseline, and degenerates to the
  kriging believer at ``beta=0``; the standard policy is a strict no-op
  for every pending set.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.acquisition import EASYBO_LAMBDA, sample_easybo_weight
from repro.core.pending import (
    LocalPenalisationPolicy,
    PessimisticPolicy,
    StandardPolicy,
)
from repro.core.surrogate import HallucinatedView
from repro.gp import linalg
from repro.gp.gp import GaussianProcess
from repro.gp.kernels import SquaredExponential
from repro.gp.sparse import (
    SparseGaussianProcess,
    SparseHallucinatedView,
    select_inducing,
)

pytestmark = pytest.mark.property

#: Randomized cases per invariant (the ISSUE floor is 200).
N_CASES = 200


def _random_gp(rng, *, noise_floor=1e-6):
    """A fitted GP with randomized shape, scales, and noise."""
    dim = int(rng.integers(1, 5))
    n = int(rng.integers(2, 13))
    kernel = SquaredExponential(
        dim,
        lengthscales=rng.uniform(0.3, 2.0, size=dim),
        variance=float(rng.uniform(0.5, 2.0)),
    )
    noise = float(10.0 ** rng.uniform(np.log10(noise_floor), -2.0))
    X = rng.uniform(-1.0, 1.0, size=(n, dim))
    y = rng.standard_normal(n)
    model = GaussianProcess(kernel=kernel, noise_variance=noise).fit(X, y)
    return model, X, y


# --------------------------------------------------------------- Eq. 8 weight
class TestEq8WeightDensity:
    def test_support_and_exact_cdf(self):
        """Pooled empirical CDF matches ``F(t) = t/((1-t) lam)`` (DKW bound)."""
        lam = EASYBO_LAMBDA
        w_max = lam / (lam + 1.0)
        pooled = []
        for case in range(N_CASES):
            rng = np.random.default_rng(10_000 + case)
            ws = np.array([sample_easybo_weight(rng) for _ in range(20)])
            assert np.all(ws >= 0.0) and np.all(ws <= w_max + 1e-15), case
            pooled.append(ws)
        w = np.sort(np.concatenate(pooled))
        n = w.size  # 4000
        # Dvoretzky–Kiefer–Wolfowitz: sup |F_n - F| > eps w.p. <= 2 e^{-2 n eps^2};
        # delta = 1e-6 makes a false failure essentially impossible.
        eps = np.sqrt(np.log(2.0 / 1e-6) / (2.0 * n))
        ts = np.linspace(0.01, w_max - 0.01, 101)
        exact = np.minimum(ts / ((1.0 - ts) * lam), 1.0)
        empirical = np.searchsorted(w, ts, side="right") / n
        assert np.max(np.abs(empirical - exact)) <= eps

        # Exploration concentration (paper Fig. 2): P(w > 1/2) = 5/6 at lam=6.
        frac_explore = float(np.mean(w > 0.5))
        assert abs(frac_explore - 5.0 / 6.0) <= eps
        assert frac_explore > 0.5

    def test_randomized_lambda_median(self):
        """For random ``lam`` the sample median sits at ``lam/(lam+2)``."""
        for case in range(N_CASES):
            rng = np.random.default_rng(20_000 + case)
            lam = float(rng.uniform(0.5, 10.0))
            ws = np.array([sample_easybo_weight(rng, lam=lam) for _ in range(400)])
            assert np.all(ws >= 0.0)
            assert np.all(ws <= lam / (lam + 1.0) + 1e-15)
            # Map the empirical median through the exact CDF: it must land
            # near 1/2 (std ~ 0.025 at 400 samples; 0.15 is a ~6-sigma gate).
            median = float(np.median(ws))
            cdf_at_median = median / ((1.0 - median) * lam)
            assert abs(cdf_at_median - 0.5) <= 0.15, (case, lam, median)

    def test_rejects_nonpositive_lambda(self):
        with pytest.raises(ValueError):
            sample_easybo_weight(np.random.default_rng(0), lam=0.0)


# ------------------------------------------------------- Eq. 9 hallucination
class TestEq9Hallucination:
    def test_sigma_hat_never_inflates_and_collapses_at_busy_points(self):
        for case in range(N_CASES):
            rng = np.random.default_rng(30_000 + case)
            model, X, _ = _random_gp(rng)
            k = int(rng.integers(1, 4))
            X_busy = rng.uniform(-1.0, 1.0, size=(k, model.dim))
            X_test = np.vstack(
                [X_busy, rng.uniform(-1.0, 1.0, size=(8, model.dim))]
            )
            mu, sigma = model.predict(X_test)

            view = HallucinatedView(model, X_busy)
            mu_hat, sigma_hat = view.predict(X_test)

            # Eq. 9: the hallucinated spread never exceeds the plain one.
            assert np.all(sigma_hat <= sigma + 1e-8), case
            # Kriging believer: the mean surface is untouched.
            np.testing.assert_allclose(mu_hat, mu, atol=1e-10)
            # The spread collapses to the noise level at the busy points
            # (posterior variance at an observed input is <= sigma_n^2).
            noise_std = np.sqrt(model.noise_variance)
            assert np.all(sigma_hat[:k] <= noise_std + 1e-7), case

    def test_view_matches_condition_on_pending(self):
        for case in range(N_CASES):
            rng = np.random.default_rng(40_000 + case)
            model, _, _ = _random_gp(rng)
            k = int(rng.integers(1, 4))
            X_busy = rng.uniform(-1.0, 1.0, size=(k, model.dim))
            X_test = rng.uniform(-1.0, 1.0, size=(8, model.dim))

            view = HallucinatedView(model, X_busy)
            rebuilt = model.condition_on_pending(X_busy)
            mu_v, sigma_v = view.predict(X_test)
            mu_r, sigma_r = rebuilt.predict(X_test)
            np.testing.assert_allclose(mu_v, mu_r, atol=1e-6)
            np.testing.assert_allclose(sigma_v, sigma_r, atol=1e-6)


# ------------------------------------------------- permutation invariance
class TestPosteriorPermutationInvariance:
    def test_permuting_training_data_leaves_posterior_unchanged(self):
        for case in range(N_CASES):
            rng = np.random.default_rng(50_000 + case)
            # Noise >= 1e-4 keeps both factorizations well conditioned so
            # the two round-off paths agree to the 1e-8 gate.
            model, X, y = _random_gp(rng, noise_floor=1e-4)
            perm = rng.permutation(X.shape[0])
            permuted = GaussianProcess(
                kernel=model.kernel.copy(), noise_variance=model.noise_variance
            ).fit(X[perm], y[perm])

            X_test = rng.uniform(-1.0, 1.0, size=(10, model.dim))
            mu_a, sigma_a = model.predict(X_test)
            mu_b, sigma_b = permuted.predict(X_test)
            np.testing.assert_allclose(mu_a, mu_b, atol=1e-8)
            np.testing.assert_allclose(sigma_a, sigma_b, atol=1e-8)


# ---------------------------------------------- pending-point policies
class TestLocalPenalisationFactor:
    def test_factor_in_unit_interval_and_one_far_away(self):
        """``phi_j`` lies in ``(0, 1]``, grows with distance, and saturates
        to 1 outside the Lipschitz ball around the pending point."""
        factor = LocalPenalisationPolicy.penalisation_factor
        for case in range(N_CASES):
            rng = np.random.default_rng(80_000 + case)
            dim = int(rng.integers(1, 6))
            u_j = rng.uniform(size=dim)
            mu_j = float(rng.normal())
            sigma_j = float(10.0 ** rng.uniform(-3, 0.5))
            lipschitz = float(10.0 ** rng.uniform(-2, 2))
            best = mu_j + float(rng.uniform(0.0, 3.0))  # incumbent >= mean

            U = rng.uniform(size=(32, dim))
            phi = factor(U, u_j, mu_j, sigma_j, lipschitz, best)
            assert phi.shape == (32,)
            assert np.all(phi > 0.0) and np.all(phi <= 1.0), case

            # Monotone in the distance to the pending point: scoring the
            # same direction at growing radii never shrinks the factor.
            direction = rng.standard_normal(dim)
            direction /= np.linalg.norm(direction)
            radii = np.sort(rng.uniform(0.0, 5.0, size=16))
            ray = u_j[None, :] + radii[:, None] * direction[None, :]
            along = factor(ray, u_j, mu_j, sigma_j, lipschitz, best)
            assert np.all(np.diff(along) >= -1e-12), case

            # Far outside the ball (z >= 8) the penalty vanishes: phi ~ 1.
            r_far = ((best - mu_j) + 8.0 * np.sqrt(2.0) * sigma_j) / lipschitz
            far = u_j[None, :] + (r_far + 1.0) * direction[None, :]
            assert factor(far, u_j, mu_j, sigma_j, lipschitz, best)[0] >= 1 - 1e-9

            # At the pending point itself the factor is a real penalty
            # (< 1/2 whenever the incumbent strictly dominates the mean).
            at = factor(u_j[None, :], u_j, mu_j, sigma_j, lipschitz, best)
            if best > mu_j:
                assert at[0] <= 0.5, case


class TestPessimisticExtension:
    def test_lone_pending_point_never_beats_baseline(self):
        """Eq. 8 acquisition at a single pending point: pessimistic model
        value <= no-pending value, for random ``beta`` and weight ``w``."""
        for case in range(N_CASES):
            rng = np.random.default_rng(90_000 + case)
            model, _, _ = _random_gp(rng)
            policy = PessimisticPolicy(beta=float(rng.uniform(0.0, 2.0)))
            u = rng.uniform(-1.0, 1.0, size=(1, model.dim))
            extended = policy.condition_pessimistic(model, u)
            mu0, sigma0 = model.predict(u)
            mu1, sigma1 = extended.predict(u)
            w = float(rng.uniform(0.0, 1.0))
            base = (1.0 - w) * mu0[0] + w * sigma0[0]
            pess = (1.0 - w) * mu1[0] + w * sigma1[0]
            assert pess <= base + 1e-8, case

    def test_spread_never_inflates_for_any_pending_set(self):
        for case in range(N_CASES):
            rng = np.random.default_rng(91_000 + case)
            model, _, _ = _random_gp(rng)
            policy = PessimisticPolicy(beta=float(rng.uniform(0.0, 2.0)))
            k = int(rng.integers(1, 4))
            U_pending = rng.uniform(-1.0, 1.0, size=(k, model.dim))
            extended = policy.condition_pessimistic(model, U_pending)
            X_test = np.vstack(
                [U_pending, rng.uniform(-1.0, 1.0, size=(8, model.dim))]
            )
            _, sigma = model.predict(X_test)
            _, sigma_hat = extended.predict(X_test)
            assert np.all(sigma_hat <= sigma + 1e-8), case

    def test_beta_zero_degenerates_to_kriging_believer(self):
        for case in range(N_CASES):
            rng = np.random.default_rng(92_000 + case)
            model, _, _ = _random_gp(rng, noise_floor=1e-4)
            k = int(rng.integers(1, 4))
            U_pending = rng.uniform(-1.0, 1.0, size=(k, model.dim))
            extended = PessimisticPolicy(beta=0.0).condition_pessimistic(
                model, U_pending
            )
            believer = model.condition_on_pending(U_pending)
            X_test = rng.uniform(-1.0, 1.0, size=(8, model.dim))
            mu_p, sigma_p = extended.predict(X_test)
            mu_b, sigma_b = believer.predict(X_test)
            np.testing.assert_allclose(mu_p, mu_b, atol=1e-7)
            np.testing.assert_allclose(sigma_p, sigma_b, atol=1e-7)

    def test_rejects_negative_beta(self):
        with pytest.raises(ValueError):
            PessimisticPolicy(beta=-0.1)


class TestStandardPolicyIsNoOp:
    def test_invariant_to_the_pending_set(self):
        """The standard policy must not look at the pending matrix at all:
        same model object, same acquisition object, for any pending set."""

        class SessionStub:
            def __init__(self, model):
                self._model = model

            def require_model(self):
                return self._model

        policy = StandardPolicy()
        for case in range(N_CASES):
            rng = np.random.default_rng(93_000 + case)
            model, _, _ = _random_gp(rng)
            session = SessionStub(model)
            k = int(rng.integers(0, 5))
            X_pending = rng.uniform(-1.0, 1.0, size=(k, model.dim))
            assert policy.model(session, X_pending) is model, case
            acquisition = object()
            wrapped = policy.wrap(
                session, model, acquisition, X_pending, rng=rng
            )
            assert wrapped is acquisition, case


# --------------------------------------------------- incremental Cholesky
def _random_spd(rng, n, *, ridge):
    A = rng.standard_normal((n, n))
    return A @ A.T + ridge * np.eye(n)


def _assert_factors(lower, matrix, *, atol=1e-8):
    """The factor reconstructs the matrix (factor uniqueness up to signs
    makes comparing ``L L^T`` the robust check)."""
    scale = max(1.0, float(np.max(np.abs(matrix))))
    np.testing.assert_allclose(lower @ lower.T, matrix, atol=atol * scale)
    assert np.all(np.diag(lower) > 0)


class TestIncrementalCholesky:
    def test_updates_match_fresh_factorization(self):
        for case in range(N_CASES):
            rng = np.random.default_rng(60_000 + case)
            n = int(rng.integers(2, 10))
            K = _random_spd(rng, n, ridge=float(rng.uniform(0.05, 1.0)))
            lower, jitter = linalg.jittered_cholesky(K)
            assert jitter == 0.0
            _assert_factors(lower, K)

            # Single border update vs the bordered matrix refactorized.
            cross = K @ rng.uniform(-0.3, 0.3, size=n)
            corner = float(cross @ np.linalg.solve(K, cross) + rng.uniform(0.1, 1.0))
            bordered = np.block(
                [[K, cross[:, None]], [cross[None, :], np.array([[corner]])]]
            )
            up = linalg.cholesky_update(lower, cross, corner)
            _assert_factors(up, bordered)

            # Block append of k columns vs the assembled matrix.
            k = int(rng.integers(1, 4))
            big = _random_spd(rng, n + k, ridge=float(rng.uniform(0.05, 1.0)))
            base_lower, _ = linalg.jittered_cholesky(big[:n, :n])
            appended = linalg.cholesky_append(
                base_lower, big[:n, n:], big[n:, n:]
            )
            _assert_factors(appended, big)

            # Shrinking back is exact truncation.
            np.testing.assert_allclose(
                linalg.cholesky_shrink(appended, k), base_lower, atol=0.0
            )

            # Rank-1 update, then downdate by the same vector, round-trips.
            v = rng.standard_normal(n)
            up1 = linalg.cholesky_rank1_update(lower, v)
            _assert_factors(up1, K + np.outer(v, v))
            down1 = linalg.cholesky_rank1_downdate(up1, v)
            _assert_factors(down1, K)

            # Row deletion vs refactorizing the reduced matrix.
            idx = int(rng.integers(0, n))
            keep = [i for i in range(n) if i != idx]
            reduced = K[np.ix_(keep, keep)]
            deleted = linalg.cholesky_delete_row(lower, idx)
            _assert_factors(deleted, reduced)

    def test_near_singular_jitter_and_downdate_failure(self):
        engaged = 0
        for case in range(N_CASES):
            rng = np.random.default_rng(70_000 + case)
            n = int(rng.integers(2, 8))
            # Exactly rank-deficient Gram matrix (a duplicated point, the
            # way a GP covariance goes singular): the plain factorization
            # fails, so the jitter policy must engage and stay faithful to
            # K + jitter I.
            A = rng.standard_normal((n, max(1, n - 1)))
            K = A @ A.T
            K[-1] = K[0]
            K[:, -1] = K[:, 0]
            K[-1, -1] = K[0, 0]
            lower, jitter = linalg.jittered_cholesky(K)
            engaged += jitter > 0.0
            _assert_factors(lower, K + jitter * np.eye(n), atol=1e-7)

            # Downdating by a vector carrying (numerically) the factor's
            # full mass must refuse rather than corrupt the factor.
            full = lower[:, 0].copy()
            full[0] = np.hypot(full[0], 10.0 * np.sqrt(max(jitter, 1e-12)))
            with pytest.raises(np.linalg.LinAlgError):
                linalg.cholesky_rank1_downdate(lower, full)
        # The sweep must actually exercise the jitter path, not skirt it.
        assert engaged >= N_CASES // 10


# ------------------------------------------------- sparse inducing posterior
def _random_sparse_case(rng):
    """A dataset + kernel sized for the sparse-vs-exact convergence sweeps.

    The ranges are chosen for a well-conditioned ``Kuu``: unlike the exact
    system ``Kff + sigma^2 I``, the DTC system inverts the *noiseless*
    inducing Gram matrix, whose condition number explodes for long
    lengthscales or tightly packed 1-D designs and would turn the exactness
    sweeps into round-off measurements (empirically: lengthscales 0.3-0.8
    over dims 2-4 with n <= 16 keep the degenerate-case error below 1e-9
    at kappa(Kff) up to ~1e6; doubling the lengthscale ceiling pushes the
    error past 1e-5).  Noise stays at 10^-1.5 .. 10^-1 because
    ``B = Kuu + sigma^-2 Kuf Kfu`` amplifies round-off by ``sigma^-2``.
    """
    dim = int(rng.integers(2, 5))
    n = int(rng.integers(10, 17))
    kernel = SquaredExponential(
        dim,
        lengthscales=rng.uniform(0.3, 0.8, size=dim),
        variance=float(rng.uniform(0.5, 2.0)),
    )
    noise = float(10.0 ** rng.uniform(-1.5, -1.0))
    X = rng.uniform(-1.0, 1.0, size=(n, dim))
    y = rng.standard_normal(n)
    return kernel, noise, X, y


class TestSparseInducingPosterior:
    def test_error_vs_exact_shrinks_as_budget_grows(self):
        """Mean sparse-vs-exact error decreases along the m -> n ladder."""
        ladder_errors = []
        for case in range(N_CASES):
            rng = np.random.default_rng(80_000 + case)
            kernel, noise, X, y = _random_sparse_case(rng)
            n = len(y)
            exact = GaussianProcess(kernel=kernel, noise_variance=noise).fit(X, y)
            X_test = rng.uniform(-1.0, 1.0, size=(16, X.shape[1]))
            mu_e, sd_e = exact.predict(X_test)
            errs = []
            for m in (2, max(n // 4, 3), max(n // 2, 4), n):
                sparse = SparseGaussianProcess(
                    kernel=kernel, noise_variance=noise, n_inducing=m
                ).fit(X, y)
                mu_s, sd_s = sparse.predict(X_test)
                errs.append(
                    float(np.abs(mu_s - mu_e).max() + np.abs(sd_s - sd_e).max())
                )
            ladder_errors.append(errs)
            # The full-budget rung must agree with the exact posterior
            # (compound mean+std metric, hence the 2e-8 headroom over the
            # per-quantity 1e-8 the degenerate test below enforces).
            assert errs[-1] <= 2e-8, (case, errs)
        means = np.asarray(ladder_errors).mean(axis=0)
        # Monotone convergence of the sweep average: every extra chunk of
        # inducing budget strictly reduces the approximation error.
        assert np.all(np.diff(means) < 0.0), means

    def test_degenerates_to_exact_when_inducing_is_training_set(self):
        for case in range(N_CASES):
            rng = np.random.default_rng(90_000 + case)
            kernel, noise, X, y = _random_sparse_case(rng)
            exact = GaussianProcess(kernel=kernel, noise_variance=noise).fit(X, y)
            sparse = SparseGaussianProcess(
                kernel=kernel, noise_variance=noise, n_inducing=len(y)
            ).fit(X, y, inducing_indices=np.arange(len(y)))
            X_test = rng.uniform(-1.0, 1.0, size=(16, X.shape[1]))
            mu_e, sd_e = exact.predict(X_test)
            mu_s, sd_s = sparse.predict(X_test)
            np.testing.assert_allclose(mu_s, mu_e, atol=1e-8)
            np.testing.assert_allclose(sd_s, sd_e, atol=1e-8)

    def test_incremental_tell_matches_batch_refit(self):
        """Rank-1 tells reproduce the from-scratch sparse fit (frozen Z)."""
        for case in range(N_CASES):
            rng = np.random.default_rng(100_000 + case)
            kernel, noise, X, y = _random_sparse_case(rng)
            n = len(y)
            n_held = int(rng.integers(1, 4))
            m = max(n // 2, 3)
            idx = select_inducing(X[: n - n_held], m)
            told = SparseGaussianProcess(
                kernel=kernel, noise_variance=noise, n_inducing=m
            ).fit(X[: n - n_held], y[: n - n_held], inducing_indices=idx)
            told.update(X[n - n_held :], y[n - n_held :])
            batch = SparseGaussianProcess(
                kernel=kernel, noise_variance=noise, n_inducing=m
            ).fit(X, y, inducing_indices=idx)
            X_test = rng.uniform(-1.0, 1.0, size=(8, X.shape[1]))
            mu_t, sd_t = told.predict(X_test)
            mu_b, sd_b = batch.predict(X_test)
            np.testing.assert_allclose(mu_t, mu_b, atol=1e-8)
            np.testing.assert_allclose(sd_t, sd_b, atol=1e-8)

    def test_sparse_hallucination_satisfies_eq9(self):
        """Eq. 9 on the budgeted posterior: no inflation, busy collapse.

        The busy-point collapse is quantitative: hallucinating a single
        pending point at its predictive mean turns its variance into

            var_hat(p) = var(p) - g^2 / (sigma_n^2 + g),  g = k_p^T B^-1 k_p

        (rank-1 Sherman-Morrison on the DTC system), i.e. the *explained*
        part ``g`` collapses to below the noise level while the inducing
        representational gap ``k** - k_p^T Kuu^-1 k_p`` — irreducible
        without moving Z — stays.
        """
        for case in range(N_CASES):
            rng = np.random.default_rng(110_000 + case)
            kernel, noise, X, y = _random_sparse_case(rng)
            m = max(len(y) // 2, 4)
            sparse = SparseGaussianProcess(
                kernel=kernel, noise_variance=noise, n_inducing=m
            ).fit(X, y)
            k = int(rng.integers(1, 4))
            X_busy = rng.uniform(-1.0, 1.0, size=(k, sparse.dim))
            X_test = np.vstack(
                [X_busy, rng.uniform(-1.0, 1.0, size=(8, sparse.dim))]
            )
            mu, sigma = sparse.predict(X_test)
            view = SparseHallucinatedView(sparse, X_busy)
            mu_hat, sigma_hat = view.predict(X_test)

            # Eq. 9: the hallucinated spread never exceeds the plain one.
            assert np.all(sigma_hat <= sigma + 1e-8), case
            # Kriging believer: the mean surface is untouched (exactly, by
            # Sherman-Morrison — the view shares w with the base model).
            np.testing.assert_allclose(mu_hat, mu, atol=1e-10)

            # Quantitative single-point collapse identity.
            state = sparse.posterior_state
            p = X_busy[:1]
            kp = kernel(state.Z, p)[:, 0]
            v = linalg.solve_lower(state.lb, kp)
            g = float(v @ v)
            single = SparseHallucinatedView(sparse, p)
            var_busy = single.predict(p)[1][0] ** 2
            var_base = sparse.predict(p)[1][0] ** 2
            expected = var_base - g**2 / (noise + g)
            np.testing.assert_allclose(var_busy, expected, rtol=1e-9, atol=1e-12)
            # The explained mass collapses below the noise level; only the
            # inducing gap (k** - q) survives.
            vq = linalg.solve_lower(state.luu, kp)
            gap = float(kernel.diag(p)[0] - vq @ vq)
            assert var_busy <= gap + noise + 1e-8, case
