"""Golden-trajectory regression harness.

Replays the seeded scenarios defined in ``tests/golden/regenerate.py`` and
compares against the committed fixtures:

* ``surrogate_update="full"`` must reproduce each fixture **byte-for-byte**
  (every queried point, FOM, worker assignment, and simulated timestamp);
* ``surrogate_update="incremental"`` must reproduce the *sequential* fixture
  byte-for-byte too (no pending points -> identical arithmetic), and for the
  batch fixtures must match the initial design exactly and the first BO
  proposal within a documented tolerance — full batch trajectories are a
  closed loop and may legally diverge after one ulp (see
  ``tests/golden/README.md``; per-event exactness is enforced separately by
  ``tests/test_incremental_equivalence.py``).

Any unexplained diff here is a behaviour regression: a change in rng
consumption order, acquisition defaults, scheduling, or GP numerics.
"""

import json

import numpy as np
import pytest

from tests.golden.regenerate import (
    SCENARIOS,
    canonical_json,
    golden_path,
    run_scenario,
    trajectory_payload,
)

#: |x_golden - x_replayed| bound for the first post-init proposal of batch
#: scenarios replayed in incremental mode (L-BFGS stops within ~1e-9 of the
#: full-mode optimum when the acquisition surface differs by round-off).
FIRST_PROPOSAL_TOL = 1e-6

BATCH_SCENARIOS = [n for n in SCENARIOS if n != "lcb-branin"]


def load_golden(name: str) -> dict:
    return json.loads(golden_path(name).read_text())


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestFixtures:
    def test_fixture_exists_and_is_canonical(self, name):
        text = golden_path(name).read_text()
        payload = json.loads(text)
        # The file itself must be in canonical form, or byte-for-byte
        # comparisons would fail for formatting rather than behaviour.
        assert canonical_json(payload) == text
        assert payload["scenario"] == name
        assert len(payload["records"]) == payload["n_evaluations"]

    def test_records_are_wellformed(self, name):
        payload = load_golden(name)
        # Records land in completion order; the submission indices must
        # still form a gapless permutation of the budget.
        indices = [r["index"] for r in payload["records"]]
        assert sorted(indices) == list(range(payload["n_evaluations"]))
        for record in payload["records"]:
            assert record["finish_time"] >= record["issue_time"]
            assert record["status"] == "ok"
            assert np.isfinite(record["fom"])
        best = max(r["fom"] for r in payload["records"])
        assert payload["best_fom"] == best


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_full_mode_is_byte_for_byte(name):
    result = run_scenario(name, surrogate_update="full", refit_every=1)
    replayed = canonical_json(trajectory_payload(name, result))
    assert replayed == golden_path(name).read_text(), (
        f"golden {name} drifted in full mode; if this change is intentional, "
        "regenerate via tests/golden/regenerate.py and commit the diff"
    )


def test_explicit_hallucinate_policy_matches_legacy_golden():
    # pending_policy="hallucinate" is the refactored spelling of the original
    # Eq. 9 pending-point handling; selecting it explicitly must reproduce
    # the pre-refactor fixture byte-for-byte.
    result = run_scenario(
        "easybo-async-branin", surrogate_update="full", refit_every=1,
        pending_policy="hallucinate",
    )
    replayed = canonical_json(trajectory_payload("easybo-async-branin", result))
    assert replayed == golden_path("easybo-async-branin").read_text()


def test_incremental_sequential_is_byte_for_byte():
    # No pending points and refit_every=1: the incremental mode executes
    # bit-identical arithmetic, so even the fast path must hit the fixture.
    result = run_scenario("lcb-branin", surrogate_update="incremental")
    replayed = canonical_json(trajectory_payload("lcb-branin", result))
    assert replayed == golden_path("lcb-branin").read_text()


@pytest.mark.parametrize("name", sorted(BATCH_SCENARIOS))
def test_incremental_batch_matches_prefix(name):
    golden = load_golden(name)
    result = run_scenario(name, surrogate_update="incremental")
    _, _, kwargs = SCENARIOS[name]
    n_init = kwargs["n_init"]
    records = result.trace.records
    assert len(records) == golden["n_evaluations"]
    # The initial design never touches the surrogate: bitwise identical.
    for got, want in zip(records[:n_init], golden["records"][:n_init]):
        np.testing.assert_array_equal(np.asarray(got.x), np.asarray(want["x"]))
        assert got.fom == want["fom"]
        assert got.issue_time == want["issue_time"]
    # First model-driven proposal: same posterior up to <=1e-8 (equivalence
    # harness), so the maximizer lands within FIRST_PROPOSAL_TOL.
    got_first = np.asarray(records[n_init].x)
    want_first = np.asarray(golden["records"][n_init]["x"])
    np.testing.assert_allclose(got_first, want_first, atol=FIRST_PROPOSAL_TOL, rtol=0)
    # Structural invariants hold for the whole (legally divergent) tail.
    for record in records:
        assert record.status == "ok"
        assert np.isfinite(record.fom)


def test_modes_disagree_only_after_feedback():
    # Documents *why* batch trajectories are compared by prefix: replaying
    # the async scenario in both modes, the runs agree through the first
    # proposal and may only split later, once differing observations have
    # fed back into the surrogate.
    full = run_scenario("easybo-async-branin", surrogate_update="full")
    fast = run_scenario("easybo-async-branin", surrogate_update="incremental")
    n_init = SCENARIOS["easybo-async-branin"][2]["n_init"]
    X_full = np.vstack([r.x for r in full.trace.records])
    X_fast = np.vstack([r.x for r in fast.trace.records])
    np.testing.assert_array_equal(X_full[:n_init], X_fast[:n_init])
    np.testing.assert_allclose(
        X_full[n_init], X_fast[n_init], atol=FIRST_PROPOSAL_TOL, rtol=0
    )
    assert fast.surrogate_stats.n_hallucinated_views > 0
    assert full.surrogate_stats.n_hallucinated_views == 0
