"""Tests for the acquisition maximizer."""

import numpy as np
import pytest

from repro.core.optimizers import maximize_acquisition

BOUNDS = np.array([[-2.0, 2.0], [-2.0, 2.0]])


def quadratic(X):
    """Peak 1.0 at (0.5, -0.5)."""
    return 1.0 - np.sum((X - np.array([0.5, -0.5])) ** 2, axis=1)


class TestMaximize:
    def test_finds_smooth_peak(self):
        x = maximize_acquisition(quadratic, BOUNDS, rng=0)
        np.testing.assert_allclose(x, [0.5, -0.5], atol=1e-3)

    def test_respects_bounds(self):
        def edge(X):
            return X[:, 0] + X[:, 1]  # maximum at the corner (2, 2)

        x = maximize_acquisition(edge, BOUNDS, rng=0)
        np.testing.assert_allclose(x, [2.0, 2.0], atol=1e-6)

    def test_no_polish_mode(self):
        x = maximize_acquisition(
            quadratic, BOUNDS, rng=0, n_candidates=4096, polish=False
        )
        assert quadratic(x.reshape(1, -1))[0] > 0.95

    def test_deterministic(self):
        a = maximize_acquisition(quadratic, BOUNDS, rng=42)
        b = maximize_acquisition(quadratic, BOUNDS, rng=42)
        np.testing.assert_array_equal(a, b)

    def test_multimodal_picks_global(self):
        def two_bumps(X):
            b1 = 1.0 * np.exp(-20 * np.sum((X - [-1, -1]) ** 2, axis=1))
            b2 = 2.0 * np.exp(-20 * np.sum((X - [1, 1]) ** 2, axis=1))
            return b1 + b2

        x = maximize_acquisition(two_bumps, BOUNDS, rng=0, n_candidates=4096)
        np.testing.assert_allclose(x, [1.0, 1.0], atol=0.05)

    def test_nonfinite_values_handled(self):
        def sometimes_nan(X):
            values = quadratic(X)
            values[X[:, 0] > 1.5] = np.nan
            return np.where(np.isnan(values), -np.inf, values)

        x = maximize_acquisition(sometimes_nan, BOUNDS, rng=0)
        assert np.all(np.isfinite(x))

    def test_shape_validation(self):
        def bad(X):
            return np.zeros((len(X), 2))

        with pytest.raises(ValueError, match="shape"):
            maximize_acquisition(bad, BOUNDS, rng=0)

    def test_candidate_count_validation(self):
        with pytest.raises(ValueError):
            maximize_acquisition(quadratic, BOUNDS, n_candidates=0)
