"""Tests for the thread-pool evaluation backend."""

import time

import numpy as np
import pytest

from repro.core.problem import EvaluationResult, Problem
from repro.sched.executor import ThreadWorkerPool


class SleepyProblem(Problem):
    """FOM = x[0]; evaluation really sleeps for x[1] seconds."""

    name = "sleepy"

    @property
    def bounds(self):
        return np.array([[0.0, 100.0], [0.0, 1.0]])

    def evaluate(self, x):
        time.sleep(float(x[1]))
        return EvaluationResult(fom=float(x[0]), cost=float(x[1]))


class FailingProblem(Problem):
    name = "failing"

    @property
    def bounds(self):
        return np.array([[0.0, 1.0]])

    def evaluate(self, x):
        raise RuntimeError("simulator crashed")


class TestThreadPool:
    def test_basic_roundtrip(self):
        with ThreadWorkerPool(SleepyProblem(), n_workers=2) as pool:
            pool.submit(np.array([7.0, 0.0]))
            done = pool.wait_next()
        assert done.result.fom == 7.0
        assert len(pool.trace) == 1

    def test_parallel_faster_than_serial(self):
        naps = 0.15
        with ThreadWorkerPool(SleepyProblem(), n_workers=4) as pool:
            t0 = time.monotonic()
            for i in range(4):
                pool.submit(np.array([float(i), naps]))
            pool.wait_all()
            elapsed = time.monotonic() - t0
        assert elapsed < 4 * naps  # threads overlapped the sleeps

    def test_async_completion_order(self):
        with ThreadWorkerPool(SleepyProblem(), n_workers=2) as pool:
            pool.submit(np.array([1.0, 0.3]))
            pool.submit(np.array([2.0, 0.05]))
            first = pool.wait_next()
            assert first.result.fom == 2.0  # shorter sleep finishes first
            pool.submit(np.array([3.0, 0.0]))
            pool.wait_all()
        assert len(pool.trace) == 3

    def test_pending_points(self):
        with ThreadWorkerPool(SleepyProblem(), n_workers=2) as pool:
            pool.submit(np.array([5.0, 0.2]))
            pending = pool.pending_points()
            assert pending.shape == (1, 2)
            assert pending[0, 0] == 5.0
            pool.wait_all()
        assert pool.pending_points().shape[0] == 0

    def test_submit_when_full_raises(self):
        with ThreadWorkerPool(SleepyProblem(), n_workers=1) as pool:
            pool.submit(np.array([1.0, 0.2]))
            with pytest.raises(RuntimeError, match="idle"):
                pool.submit(np.array([2.0, 0.0]))
            pool.wait_all()

    def test_wait_with_nothing_running(self):
        with ThreadWorkerPool(SleepyProblem(), n_workers=1) as pool:
            with pytest.raises(RuntimeError, match="running"):
                pool.wait_next()

    def test_evaluation_exception_contained(self):
        """A crashing evaluation surfaces as a failed completion, not a raise,
        and the pool's worker accounting stays consistent."""
        with ThreadWorkerPool(FailingProblem(), n_workers=1) as pool:
            pool.submit(np.array([0.5]))
            done = pool.wait_next()
            assert not done.result.ok
            assert done.result.status == "crashed"
            assert "simulator crashed" in done.result.error
            assert pool.idle_count == 1 and pool.busy_count == 0
            # The failure is traced, and the pool remains usable.
            assert len(pool.trace) == 1
            assert pool.trace.n_failures == 1
            pool.submit(np.array([0.5]))
            assert not pool.wait_next().result.ok

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            ThreadWorkerPool(SleepyProblem(), 0)
