"""Tests for hierarchical subcircuits."""

import numpy as np
import pytest

from repro.spice import Circuit, SubCircuit, dc_operating_point, nmos_180
from repro.spice.exceptions import TopologyError


def divider_subckt():
    sub = SubCircuit("divider", ports=["top", "mid"])
    sub.R("r1", "top", "mid", 1000)
    sub.R("r2", "mid", "0", 1000)
    return sub


class TestDefinition:
    def test_validation(self):
        with pytest.raises(ValueError):
            SubCircuit("", ["a"])
        with pytest.raises(ValueError):
            SubCircuit("x", [])
        with pytest.raises(ValueError):
            SubCircuit("x", ["a", "a"])
        with pytest.raises(ValueError, match="ground"):
            SubCircuit("x", ["0"])

    def test_builder_helpers_work(self):
        sub = divider_subckt()
        assert len(sub.body) == 2


class TestInstantiation:
    def test_flattening_names_and_nodes(self):
        c = Circuit("parent")
        c.V("vin", "in", "0", dc=2.0)
        divider_subckt().instantiate(c, "x1", {"top": "in", "mid": "out"})
        names = [e.name for e in c.elements]
        assert "x1.r1" in names and "x1.r2" in names
        op = dc_operating_point(c)
        assert op.v("out") == pytest.approx(1.0, rel=1e-6)

    def test_sequence_connections(self):
        c = Circuit("parent")
        c.V("vin", "in", "0", dc=2.0)
        divider_subckt().instantiate(c, "x1", ["in", "out"])
        assert dc_operating_point(c).v("out") == pytest.approx(1.0, rel=1e-6)

    def test_internal_nodes_prefixed(self):
        sub = SubCircuit("chain", ports=["a", "b"])
        sub.R("r1", "a", "internal", 500)
        sub.R("r2", "internal", "b", 500)
        c = Circuit("parent")
        c.V("v", "in", "0", dc=1.0)
        sub.instantiate(c, "u1", {"a": "in", "b": "0"})
        assert "u1.internal" in c.nodes

    def test_two_instances_independent(self):
        c = Circuit("parent")
        c.V("vin", "in", "0", dc=4.0)
        divider_subckt().instantiate(c, "x1", {"top": "in", "mid": "m1"})
        divider_subckt().instantiate(c, "x2", {"top": "m1", "mid": "m2"})
        op = dc_operating_point(c)
        assert op.v("m1") > op.v("m2") > 0

    def test_ground_is_global(self):
        sub = SubCircuit("gnd ref", ports=["a"])
        sub.R("r", "a", "0", 100)
        c = Circuit("parent")
        c.V("v", "in", "0", dc=1.0)
        sub.instantiate(c, "x1", {"a": "in"})
        op = dc_operating_point(c)
        assert op.i("v") == pytest.approx(-0.01, rel=1e-6)

    def test_instantiation_does_not_mutate_definition(self):
        sub = divider_subckt()
        c = Circuit("parent")
        c.V("v", "in", "0", dc=1.0)
        sub.instantiate(c, "x1", {"top": "in", "mid": "m"})
        assert sub.body.elements[0].nodes == ("top", "mid")

    def test_connection_errors(self):
        sub = divider_subckt()
        c = Circuit("parent")
        with pytest.raises(TopologyError, match="unconnected"):
            sub.instantiate(c, "x1", {"top": "in"})
        with pytest.raises(TopologyError, match="unknown ports"):
            sub.instantiate(c, "x2", {"top": "in", "mid": "m", "oops": "x"})
        with pytest.raises(TopologyError, match="expected 2"):
            sub.instantiate(c, "x3", ["in"])

    def test_mosfet_in_subckt(self):
        sub = SubCircuit("inverter", ports=["vdd", "in", "out"])
        sub.M("mn", "out", "in", "0", "0", nmos_180(), 2e-6, 0.18e-6)
        sub.R("rp", "vdd", "out", 10_000)
        c = Circuit("parent")
        c.V("vdd", "vdd", "0", dc=1.8)
        c.V("vin", "a", "0", dc=1.8)
        sub.instantiate(c, "u1", {"vdd": "vdd", "in": "a", "out": "y"})
        op = dc_operating_point(c)
        assert op.v("y") < 0.3  # NMOS on pulls output low
        assert "u1.mn" in op.mosfet_ops
