"""Tests for the surrogate session."""

import numpy as np
import pytest

from repro.core.acquisition import WeightedAcquisition
from repro.core.surrogate import SurrogateSession

BOUNDS = np.array([[0.0, 10.0], [-1.0, 1.0]])


def make_session(n=25, seed=0):
    rng = np.random.default_rng(seed)
    session = SurrogateSession(BOUNDS, rng=rng)
    X = rng.uniform(BOUNDS[:, 0], BOUNDS[:, 1], size=(n, 2))
    y = -((X[:, 0] - 5.0) ** 2) + X[:, 1]
    session.add_batch(X, y)
    return session


class TestDataset:
    def test_add_and_best(self):
        session = SurrogateSession(BOUNDS)
        session.add([1.0, 0.0], 3.0)
        session.add([2.0, 0.0], 7.0)
        session.add([3.0, 0.0], 5.0)
        assert session.n_observations == 3
        assert session.best_y == 7.0
        np.testing.assert_array_equal(session.best_x, [2.0, 0.0])

    def test_best_without_data_raises(self):
        with pytest.raises(RuntimeError):
            SurrogateSession(BOUNDS).best_y

    def test_add_validates_shape(self):
        session = SurrogateSession(BOUNDS)
        with pytest.raises(ValueError):
            session.add([1.0], 0.0)


class TestFitting:
    def test_refit_returns_predictive_model(self):
        session = make_session()
        session.refit()
        mu, sigma = session.predict_physical(session.X[:5])
        np.testing.assert_allclose(mu, session.y[:5], atol=0.5)

    def test_refit_requires_two_points(self):
        session = SurrogateSession(BOUNDS)
        session.add([1.0, 0.0], 0.0)
        with pytest.raises(RuntimeError):
            session.refit()

    def test_require_model_before_fit(self):
        with pytest.raises(RuntimeError):
            SurrogateSession(BOUNDS).require_model()

    def test_warm_start_refits(self):
        session = make_session()
        session.refit()
        theta_first = session.model.get_theta()
        session.add([5.0, 0.5], 0.4)
        session.refit()
        # Model refit on n+1 points; hyperparameters stay finite and bounded.
        assert np.all(np.isfinite(session.model.get_theta()))
        assert session.model.n_train == 26
        assert theta_first.shape == session.model.get_theta().shape


class TestPending:
    def test_hallucination_collapses_sigma(self):
        session = make_session()
        session.refit()
        x_pending = np.array([[7.7, 0.3]])
        _, sigma_before = session.predict_physical(x_pending)
        model_h = session.model_with_pending(x_pending)
        _, sigma_after = session.predict_physical(x_pending, model=model_h)
        assert sigma_after[0] < sigma_before[0]

    def test_empty_pending_returns_same_model(self):
        session = make_session()
        model = session.refit()
        assert session.model_with_pending(np.empty((0, 0))) is model

    def test_acquisition_scorer_on_unit_cube(self):
        session = make_session()
        session.refit()
        scorer = session.acquisition_on_unit(WeightedAcquisition(0.5))
        U = np.random.default_rng(1).uniform(size=(8, 2))
        values = scorer(U)
        assert values.shape == (8,)
        assert np.all(np.isfinite(values))

    def test_unit_bounds(self):
        session = SurrogateSession(BOUNDS)
        np.testing.assert_array_equal(
            session.unit_bounds(), [[0.0, 1.0], [0.0, 1.0]]
        )

    def test_roundtrip_physical(self):
        session = SurrogateSession(BOUNDS)
        U = np.array([[0.5, 0.5]])
        np.testing.assert_allclose(session.to_physical(U), [[5.0, 0.0]])
