"""Tests for the surrogate session."""

import numpy as np
import pytest

from repro.core.acquisition import WeightedAcquisition
from repro.core.surrogate import SurrogateSession

BOUNDS = np.array([[0.0, 10.0], [-1.0, 1.0]])


def make_session(n=25, seed=0):
    rng = np.random.default_rng(seed)
    session = SurrogateSession(BOUNDS, rng=rng)
    X = rng.uniform(BOUNDS[:, 0], BOUNDS[:, 1], size=(n, 2))
    y = -((X[:, 0] - 5.0) ** 2) + X[:, 1]
    session.add_batch(X, y)
    return session


class TestDataset:
    def test_add_and_best(self):
        session = SurrogateSession(BOUNDS)
        session.add([1.0, 0.0], 3.0)
        session.add([2.0, 0.0], 7.0)
        session.add([3.0, 0.0], 5.0)
        assert session.n_observations == 3
        assert session.best_y == 7.0
        np.testing.assert_array_equal(session.best_x, [2.0, 0.0])

    def test_best_without_data_raises(self):
        with pytest.raises(RuntimeError):
            SurrogateSession(BOUNDS).best_y

    def test_add_validates_shape(self):
        session = SurrogateSession(BOUNDS)
        with pytest.raises(ValueError):
            session.add([1.0], 0.0)


class TestFitting:
    def test_refit_returns_predictive_model(self):
        session = make_session()
        session.refit()
        mu, sigma = session.predict_physical(session.X[:5])
        np.testing.assert_allclose(mu, session.y[:5], atol=0.5)

    def test_refit_degrades_below_two_points(self):
        # Drivers under a "drop" failure policy can reach a refit with a
        # starved dataset; refit must degrade (return None), not crash.
        session = SurrogateSession(BOUNDS)
        assert session.refit() is None
        session.add([1.0, 0.0], 0.0)
        assert not session.can_fit
        assert session.refit() is None
        assert session.model is None
        with pytest.raises(RuntimeError):
            session.require_model()
        session.add([2.0, 0.5], 1.0)
        assert session.can_fit
        assert session.refit() is not None

    def test_require_model_before_fit(self):
        with pytest.raises(RuntimeError):
            SurrogateSession(BOUNDS).require_model()

    def test_warm_start_refits(self):
        session = make_session()
        session.refit()
        theta_first = session.model.get_theta()
        session.add([5.0, 0.5], 0.4)
        session.refit()
        # Model refit on n+1 points; hyperparameters stay finite and bounded.
        assert np.all(np.isfinite(session.model.get_theta()))
        assert session.model.n_train == 26
        assert theta_first.shape == session.model.get_theta().shape


class TestIncrementalSchedule:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SurrogateSession(BOUNDS, surrogate_update="sometimes")
        with pytest.raises(ValueError):
            SurrogateSession(BOUNDS, refit_every=0)

    def test_refit_every_schedules_ml2(self):
        session = make_session()
        session.surrogate_update = "incremental"
        session.refit_every = 3
        for i in range(7):
            session.refit()
            session.add([1.0 + 0.5 * i, 0.1], float(i))
        # Refits 1, 4, 7 pay ML-II; 2, 3, 5, 6 are incremental updates.
        assert session.stats.n_full_fits == 3
        assert session.stats.n_incremental_updates == 4
        assert session.stats.n_refits == 7
        assert len(session.stats.refit_seconds) == 7

    def test_full_mode_counts_refactorizations(self):
        session = SurrogateSession(
            BOUNDS, rng=0, surrogate_update="full", refit_every=4
        )
        rng = np.random.default_rng(3)
        X = rng.uniform(BOUNDS[:, 0], BOUNDS[:, 1], size=(10, 2))
        session.add_batch(X, X[:, 0])
        for i in range(4):
            session.refit()
            session.add([1.0 + i, 0.2], float(i))
        assert session.stats.n_full_fits == 1
        assert session.stats.n_refactorizations == 3
        assert session.stats.n_incremental_updates == 0

    def test_incremental_tracks_growing_dataset(self):
        session = SurrogateSession(
            BOUNDS, rng=0, surrogate_update="incremental", refit_every=100
        )
        rng = np.random.default_rng(4)
        X = rng.uniform(BOUNDS[:, 0], BOUNDS[:, 1], size=(8, 2))
        session.add_batch(X, np.sin(X[:, 0]))
        session.refit()
        theta = session.model.get_theta().copy()
        for i in range(5):
            session.add(rng.uniform(BOUNDS[:, 0], BOUNDS[:, 1]), float(i))
            session.refit()
        assert session.model.n_train == 13
        # Hyperparameters frozen between ML-II events.
        np.testing.assert_array_equal(session.model.get_theta(), theta)
        assert session.stats.n_incremental_updates == 5

    def test_pd_loss_falls_back_to_refactorization(self, monkeypatch):
        session = SurrogateSession(
            BOUNDS, rng=0, surrogate_update="incremental", refit_every=100
        )
        rng = np.random.default_rng(5)
        X = rng.uniform(BOUNDS[:, 0], BOUNDS[:, 1], size=(10, 2))
        session.add_batch(X, X[:, 1])
        session.refit()

        from repro.gp.gp import GaussianProcess

        def boom(self, X_new, y_new, **kwargs):
            raise np.linalg.LinAlgError("simulated PD loss")

        monkeypatch.setattr(GaussianProcess, "update", boom)
        session.add([3.3, -0.4], 0.7)
        model = session.refit()
        assert model is not None and model.n_train == 11
        assert session.stats.n_fallbacks == 1
        assert session.stats.n_refactorizations == 1
        # The fallback refactorization must still serve predictions.
        mu, sigma = session.predict_physical(session.X[:3])
        assert np.all(np.isfinite(mu)) and np.all(sigma > 0)


class TestSurrogateKinds:
    """The surrogate= seam: exact vs sparse posterior, auto switching."""

    def _session(self, **kwargs):
        rng = np.random.default_rng(9)
        session = SurrogateSession(BOUNDS, rng=rng, **kwargs)
        X = rng.uniform(BOUNDS[:, 0], BOUNDS[:, 1], size=(10, 2))
        session.add_batch(X, np.sin(X[:, 0]) + X[:, 1])
        return session

    def test_invalid_kind_and_budgets_rejected(self):
        with pytest.raises(ValueError):
            SurrogateSession(BOUNDS, surrogate="approximate")
        with pytest.raises(ValueError):
            SurrogateSession(BOUNDS, max_exact_n=0)
        with pytest.raises(ValueError):
            SurrogateSession(BOUNDS, n_inducing=0)

    def test_exact_kind_never_switches(self):
        from repro.gp import GaussianProcess

        session = self._session(surrogate="exact", max_exact_n=2)
        session.refit()
        assert type(session.model) is GaussianProcess
        assert session.active_surrogate == "exact"
        assert session.stats.n_mode_switches == 0

    def test_sparse_kind_fits_sparse_model(self):
        from repro.gp.sparse import SparseGaussianProcess

        session = self._session(surrogate="sparse", n_inducing=6)
        session.refit()
        assert isinstance(session.model, SparseGaussianProcess)
        assert session.active_surrogate == "sparse"
        mu, sigma = session.predict_physical(session.X[:3])
        assert np.all(np.isfinite(mu)) and np.all(sigma > 0)

    def test_auto_switches_past_max_exact_n(self):
        from repro.obs import MetricsRegistry, Observability
        from repro.gp import GaussianProcess
        from repro.gp.sparse import SparseGaussianProcess

        metrics = MetricsRegistry()
        session = self._session(
            surrogate="auto",
            max_exact_n=12,
            n_inducing=8,
            obs=Observability(metrics=metrics),
        )
        session.refit()
        assert type(session.model) is GaussianProcess
        rng = np.random.default_rng(10)
        for i in range(5):
            session.add(rng.uniform(BOUNDS[:, 0], BOUNDS[:, 1]), float(i))
            session.refit()
        # 10 seed points + 5 adds crosses max_exact_n=12 exactly once.
        assert isinstance(session.model, SparseGaussianProcess)
        assert session.active_surrogate == "sparse"
        assert session.stats.n_mode_switches == 1
        assert metrics.counter("surrogate.mode_switches") == 1

    def test_sparse_pending_returns_sparse_view(self):
        from repro.gp.sparse import SparseHallucinatedView

        session = self._session(surrogate="sparse", n_inducing=6)
        session.refit()
        x_pending = np.array([[7.7, 0.3]])
        _, sigma_before = session.predict_physical(x_pending)
        view = session.model_with_pending(x_pending)
        assert isinstance(view, SparseHallucinatedView)
        _, sigma_after = session.predict_physical(x_pending, model=view)
        assert sigma_after[0] < sigma_before[0]
        assert session.stats.n_hallucinated_views == 1

    def test_sparse_snapshot_roundtrip_restores_kind(self):
        from repro.gp.sparse import SparseGaussianProcess

        session = self._session(surrogate="sparse", n_inducing=6)
        session.refit()
        snap = session.snapshot()
        assert snap["model"]["kind"] == "sparse"
        clone = SurrogateSession(
            BOUNDS, rng=0, surrogate="sparse", n_inducing=6
        )
        clone.add_batch(session.X, session.y)
        clone.restore_snapshot(snap)
        assert isinstance(clone.model, SparseGaussianProcess)
        np.testing.assert_allclose(
            clone.predict_physical(session.X[:4])[0],
            session.predict_physical(session.X[:4])[0],
            atol=1e-8,
        )

    def test_fallback_emits_metric(self, monkeypatch):
        # Regression: the PD-loss fallback used to be visible only through
        # run-end stats; it must now tick surrogate.fallback_rebuilds so
        # operators can watch the incremental path degrade live.
        from repro.obs import MetricsRegistry, Observability
        from repro.gp.gp import GaussianProcess

        metrics = MetricsRegistry()
        session = self._session(
            surrogate="exact",
            surrogate_update="incremental",
            refit_every=100,
            obs=Observability(metrics=metrics),
        )
        session.refit()

        def boom(self, X_new, y_new, **kwargs):
            raise np.linalg.LinAlgError("simulated PD loss")

        monkeypatch.setattr(GaussianProcess, "update", boom)
        session.add([3.3, -0.4], 0.7)
        assert session.refit() is not None
        assert metrics.counter("surrogate.fallback_rebuilds") == 1
        assert session.stats.n_fallbacks == 1


class TestPending:
    def test_hallucination_collapses_sigma(self):
        session = make_session()
        session.refit()
        x_pending = np.array([[7.7, 0.3]])
        _, sigma_before = session.predict_physical(x_pending)
        model_h = session.model_with_pending(x_pending)
        _, sigma_after = session.predict_physical(x_pending, model=model_h)
        assert sigma_after[0] < sigma_before[0]

    def test_empty_pending_returns_same_model(self):
        session = make_session()
        model = session.refit()
        assert session.model_with_pending(np.empty((0, 0))) is model

    def test_incremental_mode_returns_view(self):
        from repro.core.surrogate import HallucinatedView

        session = make_session()
        session.surrogate_update = "incremental"
        session.refit()
        model = session.model_with_pending(np.array([[7.7, 0.3]]))
        assert isinstance(model, HallucinatedView)
        assert model.discard() is session.model
        assert session.stats.n_hallucinated_views == 1

    def test_full_mode_returns_rebuilt_model(self):
        from repro.gp import GaussianProcess

        session = make_session()
        session.surrogate_update = "full"
        session.refit()
        model = session.model_with_pending(np.array([[7.7, 0.3]]))
        assert isinstance(model, GaussianProcess)
        assert session.stats.n_hallucinated_rebuilds == 1

    def test_view_pd_loss_falls_back_to_rebuild(self, monkeypatch):
        from repro.core import surrogate as surrogate_mod
        from repro.gp import GaussianProcess

        session = make_session()
        session.surrogate_update = "incremental"
        session.refit()

        class Doomed(surrogate_mod.HallucinatedView):
            def __init__(self, base, X_pending):
                raise np.linalg.LinAlgError("simulated PD loss")

        monkeypatch.setattr(surrogate_mod, "HallucinatedView", Doomed)
        model = session.model_with_pending(np.array([[7.7, 0.3]]))
        assert isinstance(model, GaussianProcess)
        assert session.stats.n_fallbacks == 1
        assert session.stats.n_hallucinated_rebuilds == 1

    def test_acquisition_scorer_on_unit_cube(self):
        session = make_session()
        session.refit()
        scorer = session.acquisition_on_unit(WeightedAcquisition(0.5))
        U = np.random.default_rng(1).uniform(size=(8, 2))
        values = scorer(U)
        assert values.shape == (8,)
        assert np.all(np.isfinite(values))

    def test_unit_bounds(self):
        session = SurrogateSession(BOUNDS)
        np.testing.assert_array_equal(
            session.unit_bounds(), [[0.0, 1.0], [0.0, 1.0]]
        )

    def test_roundtrip_physical(self):
        session = SurrogateSession(BOUNDS)
        U = np.array([[0.5, 0.5]])
        np.testing.assert_allclose(session.to_physical(U), [[5.0, 0.0]])
