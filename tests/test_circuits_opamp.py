"""Tests for the op-amp testbench (paper §IV-A)."""

import numpy as np
import pytest

from repro.circuits.opamp import (
    FAILURE_FOM,
    MIN_PHASE_MARGIN,
    OpAmpProblem,
    build_opamp,
    opamp_design_space,
)
from repro.spice import ac_analysis, dc_operating_point, logspace_frequencies


@pytest.fixture(scope="module")
def problem():
    return OpAmpProblem()


@pytest.fixture(scope="module")
def nominal_values():
    """A hand-checked sizing that biases correctly."""
    return {
        "w12": 20e-6,
        "l12": 0.5e-6,
        "w34": 10e-6,
        "l34": 0.5e-6,
        "w5": 8e-6,
        "w6": 50e-6,
        "l6": 0.35e-6,
        "w7": 30e-6,
        "rz": 2e3,
        "cc": 2e-12,
    }


class TestDesignSpace:
    def test_ten_variables(self):
        assert opamp_design_space().dim == 10

    def test_geometry_parameters_are_log(self):
        space = opamp_design_space()
        assert all(p.log for p in space.parameters)


class TestNetlist:
    def test_builds_and_validates(self, nominal_values):
        c = build_opamp(nominal_values)
        c.validate()
        assert len(c.mosfets()) == 8

    def test_dc_bias_sane(self, nominal_values):
        c = build_opamp(nominal_values)
        op = dc_operating_point(c)
        # Key devices saturated in a working design.
        for name in ("m1", "m2", "m6", "m7"):
            assert op.mosfet_ops[name].region == "saturation", name
        # Output sits between the rails.
        assert 0.2 < op.v("out") < 1.6

    def test_differential_stimulus(self, nominal_values):
        c = build_opamp(nominal_values)
        vip = c.find("vip")
        vim = c.find("vim")
        assert vip.ac == pytest.approx(0.5)
        assert vim.ac == pytest.approx(-0.5)

    def test_gain_is_high(self, nominal_values):
        c = build_opamp(nominal_values)
        res = ac_analysis(c, logspace_frequencies(10, 1e3, 4))
        gain_db = 20 * np.log10(np.abs(res.v("out")[0]))
        assert gain_db > 50  # two-stage amp: >300x


class TestEvaluate:
    def test_nominal_design_feasible(self, problem, nominal_values):
        x = problem.space.to_vector(nominal_values)
        r = problem.evaluate(x)
        assert r.feasible
        assert r.fom > 100
        assert r.metrics["pm_deg"] >= MIN_PHASE_MARGIN
        assert {"gain_db", "ugf_mhz", "pm_deg"} <= set(r.metrics)

    def test_fom_formula(self, problem, nominal_values):
        x = problem.space.to_vector(nominal_values)
        r = problem.evaluate(x)
        expected = (
            1.2 * r.metrics["gain_db"]
            + 10.0 * (r.metrics["ugf_mhz"] / 10.0)
            + 1.6 * min(r.metrics["pm_deg"], 120.0)
        )
        assert r.fom == pytest.approx(expected)

    def test_soft_penalty_below_min_pm(self, problem):
        """A low-PM design scores worse than Eq. 10 raw but above zero."""
        rng = np.random.default_rng(0)
        for x in problem.space.sample(60, rng):
            r = problem.evaluate(x)
            if r.metrics and not r.feasible and r.metrics["pm_deg"] > 0:
                raw = (
                    1.2 * r.metrics["gain_db"]
                    + r.metrics["ugf_mhz"]
                    + 1.6 * min(r.metrics["pm_deg"], 120.0)
                )
                assert r.fom < raw
                assert r.fom >= 0.0
                return
        pytest.skip("no low-PM design sampled")

    def test_deterministic(self, problem, nominal_values):
        x = problem.space.to_vector(nominal_values)
        r1 = problem.evaluate(x)
        r2 = problem.evaluate(x)
        assert r1.fom == r2.fom
        assert r1.cost == r2.cost

    def test_cost_is_paper_scale(self, problem):
        rng = np.random.default_rng(0)
        costs = [problem.evaluate(x).cost for x in problem.space.sample(5, rng)]
        assert all(20 < c < 80 for c in costs)

    def test_random_designs_mostly_evaluate(self, problem):
        rng = np.random.default_rng(42)
        results = [problem.evaluate(x) for x in problem.space.sample(20, rng)]
        feasible = [r for r in results if r.feasible]
        assert len(feasible) >= 10
        assert all(r.fom == FAILURE_FOM for r in results if not r.feasible)

    def test_out_of_bounds_clipped(self, problem):
        x = problem.bounds[:, 1] + 1.0
        r = problem.evaluate(x)
        assert np.isfinite(r.fom)
