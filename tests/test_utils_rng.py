"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators


def test_as_generator_from_int_is_deterministic():
    a = as_generator(42).uniform(size=5)
    b = as_generator(42).uniform(size=5)
    np.testing.assert_array_equal(a, b)


def test_as_generator_passthrough():
    rng = np.random.default_rng(7)
    assert as_generator(rng) is rng


def test_as_generator_none_gives_generator():
    assert isinstance(as_generator(None), np.random.Generator)


def test_spawn_generators_reproducible():
    fam1 = [g.uniform() for g in spawn_generators(3, 4)]
    fam2 = [g.uniform() for g in spawn_generators(3, 4)]
    assert fam1 == fam2


def test_spawn_generators_independent_streams():
    gens = spawn_generators(0, 3)
    draws = [g.uniform(size=10).tolist() for g in gens]
    assert draws[0] != draws[1] != draws[2]


def test_spawn_generators_count_validation():
    with pytest.raises(ValueError):
        spawn_generators(0, -1)


def test_spawn_generators_zero_count():
    assert spawn_generators(0, 0) == []
