"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_duration, format_table


class TestFormatDuration:
    def test_paper_style_hours(self):
        assert format_duration(216 * 3600 + 40 * 60 + 51) == "216h40m51s"

    def test_minutes(self):
        assert format_duration(21 * 60 + 19) == "21m19s"

    def test_seconds_only(self):
        assert format_duration(42) == "42s"

    def test_zero(self):
        assert format_duration(0) == "0s"

    def test_rounds_fractional(self):
        assert format_duration(59.6) == "1m0s"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_duration(-1)


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["Algo", "Mean"], [["DE", 682.19], ["EasyBO", 689.87]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "Algo" in lines[0] and "Mean" in lines[0]
        assert "682.19" in lines[2]

    def test_title(self):
        text = format_table(["A"], [[1]], title="Table I")
        assert text.splitlines()[0] == "Table I"

    def test_numeric_right_alignment(self):
        text = format_table(["V"], [[1.0], [100.0]])
        rows = text.splitlines()[2:]
        assert rows[0] == "|   1.00 |"
        assert rows[1] == "| 100.00 |"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="row 0"):
            format_table(["A", "B"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["A"], [])
        assert "A" in text
