"""Integration-method behaviour of the transient engine (trap vs BE)."""

import numpy as np
import pytest

from repro.spice import Circuit, PulseWave, transient_analysis


def rc_circuit(tau=1e-3):
    c = Circuit("rc")
    c.V("vin", "in", "0", waveform=PulseWave(0, 1, delay=0, rise=1e-9, fall=1e-9,
                                             width=100 * tau, period=200 * tau))
    c.R("r", "in", "out", 1000)
    c.C("c", "out", "0", tau / 1000)
    return c


def lc_tank():
    c = Circuit("lc")
    c.I("kick", "0", "top", waveform=PulseWave(0, 1e-3, delay=0, rise=1e-12,
                                               fall=1e-12, width=5e-9, period=1.0))
    c.C("c", "top", "0", 1e-9)
    c.L("l", "top", "0", 1e-6)
    return c


class TestBackwardEuler:
    def test_be_tracks_rc_response(self):
        tau = 1e-3
        res = transient_analysis(rc_circuit(tau), 5 * tau, tau / 200, method="be")
        expected = 1 - np.exp(-res.t / tau)
        assert np.max(np.abs(res.v("out") - expected)) < 0.01

    def test_be_damps_lc_tank(self):
        """BE is numerically dissipative: the LC oscillation must decay —
        the classic reason trap is the default for RF circuits."""
        period = 2 * np.pi * np.sqrt(1e-6 * 1e-9)
        res = transient_analysis(lc_tank(), 20 * period, period / 60, method="be")
        v = res.v("top")
        n = len(v)
        early = np.max(np.abs(v[n // 10: 2 * n // 10]))
        late = np.max(np.abs(v[-n // 10:]))
        assert late < 0.7 * early

    def test_trap_preserves_lc_amplitude_where_be_does_not(self):
        period = 2 * np.pi * np.sqrt(1e-6 * 1e-9)
        res_trap = transient_analysis(lc_tank(), 20 * period, period / 60, method="trap")
        res_be = transient_analysis(lc_tank(), 20 * period, period / 60, method="be")
        n = len(res_trap.t)
        late_trap = np.max(np.abs(res_trap.v("top")[-n // 10:]))
        late_be = np.max(np.abs(res_be.v("top")[-n // 10:]))
        assert late_trap > 1.3 * late_be


class TestAccuracyOrder:
    def test_trap_converges_faster_than_be(self):
        """On a smooth drive, halving dt shrinks trap error ~4x, BE ~2x.

        A sinusoidal source keeps the error purely from the integrator (a
        pulse edge would add O(dt) sampling error that masks the order).
        """
        from repro.spice import SinWave

        tau = 1e-3
        omega = 1.0 / tau  # omega * tau = 1

        def circuit():
            c = Circuit("rc sin")
            c.V("vin", "in", "0", waveform=SinWave(0.0, 1.0, omega / (2 * np.pi)))
            c.R("r", "in", "out", 1000)
            c.C("c", "out", "0", tau / 1000)
            return c

        def exact(t):
            wt = omega * tau
            forced = (np.sin(omega * t) - wt * np.cos(omega * t)) / (1 + wt**2)
            return forced + wt / (1 + wt**2) * np.exp(-t / tau)

        def max_error(method, dt):
            res = transient_analysis(circuit(), 3 * tau, dt, method=method)
            return np.max(np.abs(res.v("out") - exact(res.t)))

        coarse, fine = tau / 20, tau / 40
        ratio_trap = max_error("trap", coarse) / max_error("trap", fine)
        ratio_be = max_error("be", coarse) / max_error("be", fine)
        assert ratio_trap > 3.0  # second order
        assert 1.5 < ratio_be < 3.0  # first order


class TestInitialConditions:
    def test_starts_from_operating_point(self):
        c = Circuit("precharged")
        c.V("v1", "a", "0", dc=2.0)
        c.R("r", "a", "b", 1000)
        c.C("c", "b", "0", 1e-9)
        res = transient_analysis(c, 1e-6, 1e-8)
        # DC op has the cap charged to 2 V; nothing should move.
        np.testing.assert_allclose(res.v("b"), 2.0, atol=1e-9)

    def test_supplied_op0_reused(self):
        from repro.spice import dc_operating_point

        c = Circuit("with op0")
        c.V("v1", "a", "0", dc=1.0)
        c.R("r", "a", "0", 100)
        op = dc_operating_point(c)
        res = transient_analysis(c, 1e-6, 1e-7, op0=op)
        assert res.op0 is op
