"""Unit tests for synchronous-batch selection internals (MACE, LP, batches)."""

import numpy as np
import pytest

from repro.circuits.benchmarks import sphere
from repro.core.sync_batch import SynchronousBatchBO, _pareto_front_mask
from repro.sched.durations import ConstantCostModel

QUICK = dict(n_init=6, max_evals=18, rng=0, acq_candidates=256, acq_restarts=1)


class TestParetoFrontMask:
    def test_single_point(self):
        assert _pareto_front_mask(np.array([[1.0, 2.0]])).tolist() == [True]

    def test_dominated_point_removed(self):
        scores = np.array([[1.0, 1.0], [2.0, 2.0]])
        assert _pareto_front_mask(scores).tolist() == [False, True]

    def test_tradeoff_points_kept(self):
        scores = np.array([[1.0, 3.0], [3.0, 1.0], [2.0, 2.0]])
        assert _pareto_front_mask(scores).tolist() == [True, True, True]

    def test_duplicates_kept(self):
        scores = np.array([[1.0, 1.0], [1.0, 1.0]])
        # Equal rows do not strictly dominate each other.
        assert _pareto_front_mask(scores).tolist() == [True, True]

    def test_mixed(self):
        scores = np.array([[0.0, 0.0], [1.0, 3.0], [3.0, 1.0], [0.5, 0.5]])
        assert _pareto_front_mask(scores).tolist() == [False, True, True, False]

    def test_random_front_is_mutually_nondominated(self):
        rng = np.random.default_rng(0)
        scores = rng.uniform(size=(60, 3))
        mask = _pareto_front_mask(scores)
        front = scores[mask]
        for i in range(len(front)):
            for j in range(len(front)):
                if i == j:
                    continue
                assert not (
                    np.all(front[j] >= front[i]) and np.any(front[j] > front[i])
                )


class TestBatchSelection:
    @pytest.fixture
    def driver(self):
        problem = sphere(2, cost_model=ConstantCostModel(1.0))
        return lambda strategy: SynchronousBatchBO(
            problem, batch_size=4, strategy=strategy, **QUICK
        )

    def _primed(self, driver_factory, strategy):
        driver = driver_factory(strategy)
        rng = np.random.default_rng(1)
        X = rng.uniform(-5, 5, size=(10, 2))
        driver.session.add_batch(X, -np.sum(X**2, axis=1))
        return driver

    @pytest.mark.parametrize("strategy", ["pbo", "phcbo", "easybo-s", "easybo-sp",
                                          "bucb", "lp", "mace"])
    def test_selection_returns_n_points_in_bounds(self, driver, strategy):
        primed = self._primed(driver, strategy)
        points = primed._select_batch(4)
        assert len(points) == 4
        for x in points:
            assert x.shape == (2,)
            assert np.all(x >= -5.0 - 1e-9) and np.all(x <= 5.0 + 1e-9)

    def test_hallucinated_batch_is_diverse(self, driver):
        primed = self._primed(driver, "easybo-sp")
        points = np.vstack(primed._select_batch(4))
        # The hallucination penalty must keep batch members apart.
        min_dist = min(
            np.linalg.norm(points[i] - points[j])
            for i in range(4)
            for j in range(i + 1, 4)
        )
        assert min_dist > 1e-3

    def test_lipschitz_estimate_positive(self, driver):
        primed = self._primed(driver, "lp")
        model = primed.session.refit()
        lipschitz = primed._estimate_lipschitz(model)
        assert lipschitz > 0

    def test_mace_points_distinct(self, driver):
        primed = self._primed(driver, "mace")
        points = np.vstack(primed._select_batch(4))
        assert len(np.unique(points.round(12), axis=0)) == 4
