"""Tests for the MNA stamping primitives against hand-built matrices."""

import numpy as np
import pytest

from repro.spice.stamps import MnaAssembler


class TestPrimitives:
    def test_conductance_stamp(self):
        asm = MnaAssembler(2)
        asm.conductance(0, 1, 0.5)
        expected = np.array([[0.5, -0.5], [-0.5, 0.5]])
        np.testing.assert_array_equal(asm.A, expected)

    def test_conductance_to_ground(self):
        asm = MnaAssembler(1)
        asm.conductance(0, -1, 2.0)
        np.testing.assert_array_equal(asm.A, [[2.0]])

    def test_ground_to_ground_noop(self):
        asm = MnaAssembler(1)
        asm.conductance(-1, -1, 5.0)
        np.testing.assert_array_equal(asm.A, [[0.0]])
        asm.current_source(-1, -1, 1.0)
        np.testing.assert_array_equal(asm.z, [0.0])

    def test_current_source_sign(self):
        """Source pushing current from node 0 to node 1 internally."""
        asm = MnaAssembler(2)
        asm.current_source(0, 1, 1e-3)
        np.testing.assert_array_equal(asm.z, [-1e-3, 1e-3])

    def test_voltage_source_rows(self):
        asm = MnaAssembler(3)  # nodes 0,1 + branch 2
        asm.voltage_source(0, 1, 2, 5.0)
        expected = np.array(
            [[0, 0, 1], [0, 0, -1], [1, -1, 0]], dtype=float
        )
        np.testing.assert_array_equal(asm.A, expected)
        np.testing.assert_array_equal(asm.z, [0, 0, 5.0])

    def test_vccs_quadrant(self):
        asm = MnaAssembler(4)
        asm.vccs(0, 1, 2, 3, 1e-3)
        g = 1e-3
        assert asm.A[0, 2] == g and asm.A[0, 3] == -g
        assert asm.A[1, 2] == -g and asm.A[1, 3] == g

    def test_vcvs(self):
        asm = MnaAssembler(5)  # nodes 0..3 + branch 4
        asm.vcvs(0, 1, 2, 3, 4, 10.0)
        assert asm.A[4, 2] == -10.0
        assert asm.A[4, 3] == 10.0
        assert asm.A[0, 4] == 1.0 and asm.A[1, 4] == -1.0

    def test_branch_impedance(self):
        asm = MnaAssembler(2)  # node 0 + branch 1
        asm.branch_impedance(0, -1, 1, 3.0)
        assert asm.A[1, 1] == -3.0
        assert asm.A[1, 0] == 1.0
        assert asm.A[0, 1] == 1.0

    def test_gmin(self):
        asm = MnaAssembler(3)
        asm.gmin_to_ground(2, 1e-9)  # only node rows, not branch rows
        np.testing.assert_array_equal(np.diag(asm.A), [1e-9, 1e-9, 0.0])

    def test_complex_dtype(self):
        asm = MnaAssembler(2, dtype=complex)
        asm.conductance(0, 1, 1j * 2.0)
        assert asm.A[0, 0] == 2j

    def test_solution_of_hand_built_system(self):
        """Divider assembled by hand through the stamps solves correctly."""
        # v_source 10V at node0; R1=1k node0->node1; R2=3k node1->gnd.
        asm = MnaAssembler(3)
        asm.conductance(0, 1, 1e-3)
        asm.conductance(1, -1, 1.0 / 3000.0)
        asm.voltage_source(0, -1, 2, 10.0)
        x = np.linalg.solve(asm.A, asm.z)
        assert x[0] == pytest.approx(10.0)
        assert x[1] == pytest.approx(7.5)
        assert x[2] == pytest.approx(-10.0 / 4000.0)  # source branch current
