"""Smoke tests: the example scripts must run end to end.

Each fast example executes as a subprocess exactly as a user would run it;
the slow circuit-sizing examples are exercised at tiny budgets via their
CLI flags.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "best value" in out
    assert "convergence" in out


def test_async_vs_sync():
    out = run_example("async_vs_sync.py")
    assert "op-amp-like" in out and "class-E-like" in out
    # Every row shows a positive saving at every batch size.
    assert out.count("%") > 10


def test_custom_simulator():
    out = run_example("custom_simulator.py")
    assert "resonance" in out
    assert "real time" in out


@pytest.mark.slow
def test_opamp_sizing_small_budget():
    out = run_example("opamp_sizing.py", "--budget", "40")
    assert "Best design found" in out
    assert "phase margin" in out


@pytest.mark.slow
def test_classe_sizing_small_budget():
    out = run_example(
        "classe_pa_sizing.py", "--budget", "24", "--batch", "4", "--fast"
    )
    assert "Best design found" in out
    assert "PAE" in out
