"""Pending-point policy zoo: registry, drivers, server, and tournament.

The byte-level guarantees live elsewhere (``test_golden_trajectories.py``
pins each policy's trajectory, ``test_properties.py`` sweeps the
mathematical invariants, ``test_campaign.py`` covers the ask/tell core).
This module covers the plumbing the ISSUE added around them:

* :func:`make_pending_policy` registry semantics;
* label / kwarg round trips through :func:`make_algorithm`, including the
  ``EasyBO-A ==`` ``pending_policy="none"`` equivalence and the
  ``pending_policy`` field riding in :class:`RunResult` / format v7;
* the campaign server's ``create`` verb accepting the policy both as a
  top-level convenience field and inside ``config``;
* the tournament harness (grid shape, paired keys, ranking, determinism).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.circuits.benchmarks import sphere
from repro.core import (
    HallucinatePolicy,
    LocalPenalisationPolicy,
    PENDING_POLICIES,
    PendingPolicy,
    PessimisticPolicy,
    StandardPolicy,
    make_campaign,
    make_pending_policy,
    run_from_dict,
    run_to_dict,
)
from repro.core.easybo import make_algorithm
from repro.core.tournament import (
    SCALES,
    check_tournament,
    paired_comparisons,
    rank_table,
    render_report,
    run_cell,
    run_tournament,
)
from repro.distributed import CampaignClient, serve

ACQ = dict(acq_candidates=32, acq_restarts=1)


class TestRegistry:
    def test_names_resolve_to_their_types(self):
        assert PENDING_POLICIES == ("hallucinate", "lp", "pessimistic", "none")
        for name, cls in [
            ("hallucinate", HallucinatePolicy),
            ("lp", LocalPenalisationPolicy),
            ("pessimistic", PessimisticPolicy),
            ("none", StandardPolicy),
        ]:
            policy = make_pending_policy(name)
            assert isinstance(policy, cls)
            assert policy.name == name

    def test_none_defaults_to_hallucinate(self):
        assert isinstance(make_pending_policy(None), HallucinatePolicy)

    def test_instance_passes_through(self):
        policy = PessimisticPolicy(beta=0.5)
        assert make_pending_policy(policy) is policy

    def test_name_is_case_and_whitespace_tolerant(self):
        assert isinstance(make_pending_policy("  LP "), LocalPenalisationPolicy)

    def test_unknown_name_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown pending policy"):
            make_pending_policy("krig")

    def test_non_policy_object_raises_type_error(self):
        with pytest.raises(TypeError, match="pending_policy"):
            make_pending_policy(42)

    def test_custom_subclass_is_accepted_by_campaign(self):
        class Custom(PendingPolicy):
            name = "custom"

        campaign = make_campaign(
            "EasyBO-3", sphere(2), pending_policy=Custom(),
            rng=0, n_init=3, max_evals=8, **ACQ,
        )
        assert campaign.strategy.pending_policy.name == "custom"
        assert campaign.algorithm == "EasyBO+custom-3"


class TestDriverRoundTrips:
    def _run(self, label, **extra):
        return make_algorithm(
            label, sphere(2), rng=5, n_init=3, max_evals=8, **ACQ, **extra
        ).run()

    @pytest.mark.parametrize(
        "label,policy",
        [
            ("EasyBO-3", "hallucinate"),
            ("EasyBO-A-3", "none"),
            ("EasyBO-LP-3", "lp"),
            ("EasyBO-PESS-3", "pessimistic"),
        ],
    )
    def test_label_sets_policy_and_result_field(self, label, policy):
        result = self._run(label)
        assert result.algorithm == label
        assert result.pending_policy == policy
        # The policy rides format v7 round trips.
        clone = run_from_dict(json.loads(json.dumps(run_to_dict(result))))
        assert clone.pending_policy == policy

    def test_easybo_a_label_equals_none_policy_kwarg(self):
        # The historical penalized=False spelling, the EasyBO-A label, and
        # the explicit pending_policy="none" kwarg are one algorithm.
        by_label = self._run("EasyBO-A-3")
        by_kwarg = self._run("EasyBO-3", pending_policy="none")
        assert by_kwarg.algorithm == "EasyBO-A-3"
        assert by_label.best_fom == by_kwarg.best_fom
        for a, b in zip(by_label.trace.records, by_kwarg.trace.records):
            np.testing.assert_array_equal(a.x, b.x)
            assert a.fom == b.fom

    def test_sequential_driver_has_no_policy(self):
        result = self._run("LCB")
        assert result.pending_policy is None


class TestServerCreate:
    @pytest.fixture()
    def client(self, tmp_path):
        server = serve(journal_dir=tmp_path / "journals", background=True)
        try:
            with CampaignClient(port=server.port) as c:
                yield c
        finally:
            server.stop()

    CONFIG = dict(rng=9, n_init=3, max_evals=6, **ACQ)

    def _drive_to_done(self, client, cid):
        problem = sphere(2)
        points = []
        while True:
            x = client.ask(cid)[0]
            points.append(x)
            if client.tell(cid, x, problem.evaluate(x))["done"]:
                return points

    @pytest.mark.parametrize("spelling", ["top-level", "config"])
    def test_create_accepts_policy_both_ways(self, client, spelling):
        if spelling == "top-level":
            cid = client.create("EasyBO-2", "sphere2",
                                config=dict(self.CONFIG),
                                pending_policy="lp")
        else:
            cid = client.create("EasyBO-2", "sphere2",
                                config=dict(self.CONFIG, pending_policy="lp"))
        points = self._drive_to_done(client, cid)
        # The hosted campaign tracks a local twin built the same way.
        twin = make_campaign("EasyBO-2", sphere(2), pending_policy="lp",
                             **self.CONFIG)
        assert twin.algorithm == "EasyBO-LP-2"
        for x in points:
            np.testing.assert_array_equal(x, twin.ask())
            twin.tell(x, twin.problem.evaluate(x))
        assert client.status(cid)["algorithm"] == "EasyBO-LP-2"

    def test_config_wins_over_top_level(self, client):
        cid = client.create("EasyBO-2", "sphere2",
                            config=dict(self.CONFIG, pending_policy="none"),
                            pending_policy="lp")
        assert client.status(cid)["algorithm"] == "EasyBO-A-2"


class TestTournamentHarness:
    def test_smoke_grid_runs_and_checks(self):
        scale = SCALES["smoke"]
        results = run_tournament(scale)
        check_tournament(scale, results)  # grid, budget, pairing, rerun, golden

    def test_rank_table_and_paired_stats_are_consistent(self):
        scale = SCALES["smoke"]
        results = run_tournament(scale)
        rows = rank_table(results)
        assert [row["rank"] for row in rows] == [1, 2]
        assert {row["policy"] for row in rows} == set(scale.policies)
        means = [row["mean_regret"] for row in rows]
        assert means == sorted(means)
        paired = paired_comparisons(results)
        assert set(paired) == {"none"}
        stats = paired["none"]
        assert stats["n"] == scale.n_seeds  # one matched cell per seed
        assert stats["wins"] + stats["losses"] + stats["ties"] == stats["n"]
        report = render_report(scale, results)
        assert "pending-policy tournament [smoke]" in report

    def test_cell_is_deterministic_and_faults_are_paired(self):
        scale = SCALES["smoke"]
        spec = dict(circuit="branin", batch=3, fault_rate=0.4, seed=1)
        a = run_cell("hallucinate", scale=scale, **spec)
        b = run_cell("hallucinate", scale=scale, **spec)
        assert a == b
        # The fault stream is a function of the cell, not the policy: a
        # different policy on the same cell sees the same fault pressure.
        c = run_cell("none", scale=scale, **spec)
        assert c.cell_key == a.cell_key
        assert a.n_failures > 0 and c.n_failures > 0

    def test_scales_cover_the_acceptance_grid(self):
        reduced = SCALES["reduced"]
        assert set(reduced.policies) == set(PENDING_POLICIES)
        assert len(reduced.circuits) >= 2
        assert len(reduced.batch_sizes) >= 2
        assert len(reduced.fault_rates) >= 2
        assert reduced.n_seeds >= 2
