"""Unit coverage of the observability layer (``repro.obs``).

The integration angle — drivers and pools feeding the tracer/registry over
whole runs, parity across backends, resume fold-once semantics — lives in
``test_pool_contract.py`` and ``test_crash_resume.py``.  Here the pieces
are pinned in isolation: span tree structure and framing, torn-tail
tolerance, registry arithmetic and (de)serialization, the fold helpers,
and the guarantee that the disabled path allocates nothing and writes
nothing.
"""

from __future__ import annotations

import pytest

from repro.core.journal import read_journal
from repro.obs import (
    NULL_OBS,
    NULL_TRACER,
    MetricsRegistry,
    Observability,
    Tracer,
    hotspots,
    load_trace,
    render_trace,
)
from repro.sched.trace import PoolTelemetry, SurrogateStats


class TestTracer:
    def test_span_tree_ids_depths_and_timing(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path, meta={"who": "test"})
        with tracer.span("run", algorithm="x"):
            with tracer.span("iteration", index=0):
                with tracer.span("fit", n=3) as fit:
                    fit.annotate(jitter=0.0)
            with tracer.span("iteration", index=1):
                pass
        tracer.close()

        records = read_journal(path, strict=True)
        assert records[0]["type"] == "trace_start"
        assert records[0]["trace_version"] == 1
        assert records[0]["meta"] == {"who": "test"}

        spans = {s["name"]: s for s in load_trace(path)}
        assert len(load_trace(path)) == 4  # children close before parents
        run = spans["run"]
        fit = spans["fit"]
        assert run["parent"] is None and run["depth"] == 0
        assert fit["depth"] == 2
        assert fit["attrs"] == {"n": 3, "jitter": 0.0}
        iterations = [s for s in load_trace(path) if s["name"] == "iteration"]
        assert all(s["parent"] == run["id"] for s in iterations)
        assert fit["parent"] == iterations[0]["id"]
        for span in spans.values():
            assert span["wall"] >= 0.0 and span["cpu"] >= 0.0
        assert run["wall"] >= fit["wall"]

    def test_exception_marks_span_and_close_recovers_leaks(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)
        with pytest.raises(RuntimeError):
            with tracer.span("run"):
                with tracer.span("fit"):
                    raise RuntimeError("boom")
        leaked = tracer.span("dangling")
        leaked.__enter__()  # never exited: close() must force-close it
        tracer.close()

        spans = {s["name"]: s for s in load_trace(path)}
        assert spans["fit"]["error"] is True
        assert spans["run"]["error"] is True
        assert "dangling" in spans

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)
        for i in range(5):
            with tracer.span("iteration", index=i):
                pass
        tracer.close()
        raw = path.read_bytes()
        torn = tmp_path / "torn.jsonl"
        torn.write_bytes(raw[:-7])  # crash mid-append
        spans = load_trace(torn)
        assert [s["attrs"]["index"] for s in spans] == [0, 1, 2, 3]
        assert "iteration" in render_trace(torn)

    def test_null_tracer_is_free_and_shared(self, tmp_path):
        assert NULL_TRACER.enabled is False
        a = NULL_TRACER.span("anything", n=1)
        b = NULL_TRACER.span("else")
        assert a is b  # one shared no-op span: zero allocation per call
        with a as span:
            span.annotate(ignored=True)


class TestRenderer:
    def _write(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)
        with tracer.span("run"):
            for i in range(3):
                with tracer.span("iteration", index=i):
                    with tracer.span("fit", n=i + 2):
                        pass
        tracer.close()
        return path

    def test_tree_and_hotspots_render(self, tmp_path):
        out = render_trace(self._write(tmp_path))
        assert "run" in out and "└─" in out and "├─" in out
        assert "fit [n=2]" in out
        assert "hotspots" in out

    def test_hotspots_rank_by_total_wall(self, tmp_path):
        spans = load_trace(self._write(tmp_path))
        rows = hotspots(spans, top=2)
        assert len(rows) == 2
        assert rows[0]["name"] == "run"  # the root dominates total wall
        assert rows[0]["count"] == 1
        fit_row = next(r for r in hotspots(spans) if r["name"] == "fit")
        assert fit_row["count"] == 3

    def test_empty_or_missing_trace_degrades_gracefully(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        assert isinstance(render_trace(empty), str)


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        registry.set_counter("b", 10)
        registry.set_gauge("g", 0.5)
        registry.observe("h", 2.0)
        registry.observe("h", 4.0)
        registry.declare_histogram("empty")
        assert registry.counter("a") == 5
        assert registry.counter("b") == 10
        assert registry.counter("missing") == 0
        assert registry.gauge("g") == 0.5
        hist = registry.histogram("h")
        assert hist["count"] == 2 and hist["total"] == 6.0
        assert hist["min"] == 2.0 and hist["max"] == 4.0
        assert registry.histogram("empty")["count"] == 0
        assert set(registry.names()) == {"a", "b", "g", "h", "empty"}

    def test_set_counter_is_assignment_not_increment(self):
        registry = MetricsRegistry()
        registry.inc("pool.tasks", 3)
        registry.set_counter("pool.tasks", 7)
        registry.set_counter("pool.tasks", 7)  # folding twice is idempotent
        assert registry.counter("pool.tasks") == 7

    def test_round_trip_and_merge(self):
        a = MetricsRegistry()
        a.inc("c", 2)
        a.set_gauge("g", 1.0)
        a.observe("h", 1.0)
        clone = MetricsRegistry.from_dict(a.as_dict())
        assert clone.as_dict() == a.as_dict()

        b = MetricsRegistry()
        b.inc("c", 3)
        b.set_gauge("g", 2.0)
        b.observe("h", 5.0)
        a.merge(b)
        assert a.counter("c") == 5
        assert a.gauge("g") == 2.0  # gauges overwrite
        merged = a.histogram("h")
        assert merged["count"] == 2 and merged["max"] == 5.0

    def test_summary_rows_are_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.inc("z.counter")
        registry.set_gauge("a.gauge", 1.5)
        registry.observe("m.hist", 0.25)
        rows = registry.summary_rows()
        kinds = [row[1] for row in rows]
        assert kinds == ["counter", "gauge", "histogram"]
        assert all(len(row) == 3 for row in rows)

    def test_fold_surrogate_stats(self):
        stats = SurrogateStats(
            n_refits=4, n_full_fits=1, n_refactorizations=1,
            n_incremental_updates=2, n_fallbacks=1,
            n_hallucinated_views=3, n_hallucinated_rebuilds=0,
            refit_seconds=[0.1, 0.2, 0.3, 0.4],
            hallucination_seconds=[0.01],
        )
        registry = MetricsRegistry()
        registry.fold_surrogate_stats(stats)
        registry.fold_surrogate_stats(stats)  # resumable: fold-once semantics
        assert registry.counter("surrogate.refits") == 4
        assert registry.counter("surrogate.incremental_updates") == 2
        assert registry.counter("surrogate.fallbacks") == 1
        hist = registry.histogram("surrogate.refit_seconds")
        assert hist["count"] == 4
        assert hist["total"] == pytest.approx(1.0)
        assert registry.histogram("surrogate.hallucination_seconds")["count"] == 1

    def test_fold_pool_telemetry_declares_queue_waits_even_when_empty(self):
        telemetry = PoolTelemetry(
            backend="virtual", n_workers=2, n_tasks=5,
            elapsed_seconds=10.0, worker_busy_seconds=[4.0, 5.0],
            worker_tasks=[3, 2],
        )
        registry = MetricsRegistry()
        registry.fold_pool_telemetry(telemetry)
        assert registry.counter("pool.tasks") == 5
        assert registry.gauge("pool.workers") == 2
        assert registry.histogram("pool.queue_wait_seconds")["count"] == 0
        assert "pool.queue_wait_seconds" in registry.names()


class TestObservabilityFacade:
    def test_null_obs_is_inert(self):
        assert NULL_OBS.enabled is False
        assert NULL_OBS.metrics is None
        with NULL_OBS.span("x", a=1) as span:
            span.annotate(b=2)
        with NULL_OBS.profile("y"):
            pass
        NULL_OBS.inc("counter")
        NULL_OBS.observe("hist", 1.0)

    def test_profile_is_span(self):
        assert Observability.profile is Observability.span

    def test_partial_wiring(self, tmp_path):
        registry = MetricsRegistry()
        metrics_only = Observability(metrics=registry)
        assert metrics_only.enabled is True  # metrics alone enable the facade
        with metrics_only.span("untraced"):  # no tracer: span is a no-op
            pass
        metrics_only.inc("c")
        metrics_only.observe("h", 1.0)
        assert registry.counter("c") == 1

        tracer = Tracer(tmp_path / "t.jsonl")
        trace_only = Observability(tracer)
        assert trace_only.enabled is True
        with trace_only.span("s"):
            trace_only.inc("ignored")  # no registry: must be a no-op
        tracer.close()
        assert [s["name"] for s in load_trace(tmp_path / "t.jsonl")] == ["s"]

    def test_disabled_hooks_add_no_observable_state(self):
        before = NULL_TRACER.span("x")
        for _ in range(1000):
            with NULL_OBS.profile("fit", n=3):
                pass
        assert NULL_TRACER.span("y") is before  # still the shared singleton
