"""Tests for the design-space mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.spec import DesignSpace, Parameter


class TestParameter:
    def test_linear_bounds(self):
        p = Parameter("duty", 0.25, 0.75)
        assert p.optimizer_bounds == (0.25, 0.75)
        assert p.to_physical(0.5) == 0.5

    def test_log_bounds(self):
        p = Parameter("w", 1e-6, 1e-4, log=True)
        lo, hi = p.optimizer_bounds
        assert lo == pytest.approx(-6.0)
        assert hi == pytest.approx(-4.0)
        assert p.to_physical(-5.0) == pytest.approx(1e-5)

    def test_roundtrip(self):
        p = Parameter("c", 1e-12, 1e-9, log=True)
        for value in (1e-12, 3.3e-11, 1e-9):
            assert p.to_physical(p.to_optimizer(value)) == pytest.approx(value)

    def test_to_physical_clips(self):
        p = Parameter("x", 0.0, 1.0)
        assert p.to_physical(5.0) == 1.0
        assert p.to_physical(-5.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Parameter("", 0, 1)
        with pytest.raises(ValueError):
            Parameter("x", 1, 0)
        with pytest.raises(ValueError):
            Parameter("x", 0.0, 1.0, log=True)  # log needs low > 0
        with pytest.raises(ValueError):
            Parameter("x", 0, float("inf"))

    def test_log_to_optimizer_rejects_nonpositive(self):
        p = Parameter("x", 1e-3, 1.0, log=True)
        with pytest.raises(ValueError):
            p.to_optimizer(-1.0)


class TestDesignSpace:
    @pytest.fixture
    def space(self):
        return DesignSpace(
            [
                Parameter("w", 1e-6, 1e-4, log=True),
                Parameter("duty", 0.25, 0.75),
            ]
        )

    def test_bounds_matrix(self, space):
        bounds = space.bounds
        assert bounds.shape == (2, 2)
        assert bounds[1, 0] == 0.25

    def test_to_values(self, space):
        values = space.to_values(np.array([-5.0, 0.5]))
        assert values["w"] == pytest.approx(1e-5)
        assert values["duty"] == 0.5

    def test_to_vector_roundtrip(self, space):
        values = {"w": 2e-5, "duty": 0.6}
        x = space.to_vector(values)
        back = space.to_values(x)
        assert back["w"] == pytest.approx(2e-5)
        assert back["duty"] == pytest.approx(0.6)

    def test_to_vector_missing_key(self, space):
        with pytest.raises(KeyError, match="duty"):
            space.to_vector({"w": 1e-5})

    def test_sample_within_bounds(self, space):
        rng = np.random.default_rng(0)
        X = space.sample(50, rng)
        assert X.shape == (50, 2)
        bounds = space.bounds
        assert np.all(X >= bounds[:, 0]) and np.all(X <= bounds[:, 1])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            DesignSpace([Parameter("a", 0, 1), Parameter("a", 0, 1)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace([])

    def test_describe(self, space):
        text = space.describe()
        assert "w" in text and "log10" in text and "linear" in text


@settings(max_examples=30, deadline=None)
@given(
    low_exp=st.floats(-12, -3),
    span=st.floats(0.5, 4),
    frac=st.floats(0, 1),
)
def test_property_log_parameter_monotonic_and_bounded(low_exp, span, frac):
    p = Parameter("x", 10.0**low_exp, 10.0 ** (low_exp + span), log=True)
    lo, hi = p.optimizer_bounds
    value = p.to_physical(lo + frac * (hi - lo))
    assert p.low * (1 - 1e-9) <= value <= p.high * (1 + 1e-9)
