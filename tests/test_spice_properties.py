"""Property-based physics tests of the simulator on random linear networks.

Linear-circuit theory gives three machine-checkable invariants:

* **superposition** — the response to two sources is the sum of the
  responses to each source alone;
* **reciprocity** — in a passive RLC network, the transfer impedance from a
  current injection at node a to the voltage at node b equals the reverse;
* **Tellegen / passivity** — the power delivered by all sources equals the
  power dissipated in the resistors at DC.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice import Circuit, ac_analysis, dc_operating_point

pytestmark = pytest.mark.property


def random_resistor_ladder(rng, n_nodes: int) -> Circuit:
    """A random connected resistive network over nodes n0..n{k-1} + ground."""
    c = Circuit("random ladder")
    # Spanning chain guarantees connectivity to ground.
    previous = "0"
    for i in range(n_nodes):
        c.R(f"rc{i}", previous, f"n{i}", float(rng.uniform(100, 10_000)))
        previous = f"n{i}"
    # Extra random cross edges.
    for j in range(n_nodes):
        a, b = rng.integers(0, n_nodes, size=2)
        if a != b:
            c.R(f"rx{j}", f"n{a}", f"n{b}", float(rng.uniform(100, 10_000)))
    return c


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n_nodes=st.integers(2, 6))
def test_superposition_dc(seed, n_nodes):
    rng = np.random.default_rng(seed)
    i1 = float(rng.uniform(1e-4, 1e-2))
    i2 = float(rng.uniform(1e-4, 1e-2))
    target = f"n{rng.integers(0, n_nodes)}"

    def solve(a, b):
        c = random_resistor_ladder(np.random.default_rng(seed), n_nodes)
        c.I("is1", "0", "n0", dc=a)
        c.I("is2", "0", f"n{n_nodes - 1}", dc=b)
        return dc_operating_point(c).v(target)

    both = solve(i1, i2)
    only1 = solve(i1, 0.0)
    only2 = solve(0.0, i2)
    assert both == pytest.approx(only1 + only2, rel=1e-9, abs=1e-12)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n_nodes=st.integers(2, 5))
def test_reciprocity_ac(seed, n_nodes):
    """Z(a->b) == Z(b->a) for a passive RC network."""
    rng = np.random.default_rng(seed)
    a = f"n{rng.integers(0, n_nodes)}"
    b = f"n{rng.integers(0, n_nodes)}"
    freq = np.array([float(rng.uniform(1e2, 1e6))])

    def build(inject_at):
        # Fresh identically-seeded rng so both builds get the same values.
        local = np.random.default_rng(seed)
        c = random_resistor_ladder(local, n_nodes)
        for k in range(n_nodes):
            c.C(f"cap{k}", f"n{k}", "0", float(local.uniform(1e-12, 1e-9)))
        c.I("probe", "0", inject_at, ac=1.0)
        return c

    forward = ac_analysis(build(a), freq).v(b)[0]
    backward = ac_analysis(build(b), freq).v(a)[0]
    assert forward == pytest.approx(backward, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n_nodes=st.integers(2, 6))
def test_power_balance_dc(seed, n_nodes):
    """Power from sources equals power dissipated in resistors (Tellegen)."""
    rng = np.random.default_rng(seed)
    c = random_resistor_ladder(np.random.default_rng(seed), n_nodes)
    c.V("vs", "n0", "0", dc=float(rng.uniform(0.5, 5.0)))
    op = dc_operating_point(c)
    source = c.find("vs")
    p_source = source.value * (-op.i("vs"))
    p_resistors = 0.0
    from repro.spice import Resistor

    for element in c.elements:
        if isinstance(element, Resistor):
            v_drop = op.v(element.n_plus) - op.v(element.n_minus)
            p_resistors += v_drop**2 / element.resistance
    assert p_source == pytest.approx(p_resistors, rel=1e-6, abs=1e-15)
