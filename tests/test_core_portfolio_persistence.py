"""Tests for the GP-Hedge portfolio driver and result persistence."""

import numpy as np
import pytest

from repro.circuits.benchmarks import branin, sphere
from repro.core.persistence import load_runs, run_from_dict, run_to_dict, save_runs
from repro.core.portfolio import PortfolioBO
from repro.sched.durations import ConstantCostModel

QUICK = dict(n_init=6, max_evals=20, rng=0, acq_candidates=256, acq_restarts=1)


class TestPortfolio:
    def test_runs_and_improves(self):
        problem = sphere(2, cost_model=ConstantCostModel(1.0))
        result = PortfolioBO(problem, **QUICK).run()
        assert result.n_evaluations == 20
        assert result.best_fom > -5.0

    def test_every_member_can_be_played(self):
        problem = sphere(2, cost_model=ConstantCostModel(1.0))
        driver = PortfolioBO(problem, **QUICK)
        driver.run()
        assert sum(driver.plays.values()) == 20 - 6
        assert all(count >= 0 for count in driver.plays.values())

    def test_gains_updated(self):
        problem = sphere(2, cost_model=ConstantCostModel(1.0))
        driver = PortfolioBO(problem, **QUICK)
        driver.run()
        assert np.any(driver.gains != 0.0)

    def test_probabilities_normalized(self):
        problem = sphere(2, cost_model=ConstantCostModel(1.0))
        driver = PortfolioBO(problem, **QUICK)
        driver.gains = np.array([0.0, 5.0, -3.0])
        probs = driver._probabilities()
        assert probs.sum() == pytest.approx(1.0)
        assert probs[1] > probs[0] > probs[2]

    def test_eta_validated(self):
        with pytest.raises(ValueError):
            PortfolioBO(sphere(2), eta=0.0, **QUICK)

    def test_deterministic(self):
        problem = sphere(2, cost_model=ConstantCostModel(1.0))
        a = PortfolioBO(problem, **QUICK).run()
        b = PortfolioBO(problem, **QUICK).run()
        assert a.best_fom == b.best_fom


class TestPersistence:
    @pytest.fixture
    def sample_run(self):
        from repro.core.easybo import make_algorithm

        return make_algorithm("EasyBO-3", branin(), **QUICK).run()

    def test_dict_roundtrip(self, sample_run):
        restored = run_from_dict(run_to_dict(sample_run))
        assert restored.algorithm == sample_run.algorithm
        assert restored.best_fom == sample_run.best_fom
        np.testing.assert_array_equal(restored.best_x, sample_run.best_x)
        assert len(restored.trace) == len(sample_run.trace)
        assert restored.trace.makespan == pytest.approx(sample_run.trace.makespan)

    def test_trace_curves_survive(self, sample_run):
        restored = run_from_dict(run_to_dict(sample_run))
        t0, b0 = sample_run.trace.best_fom_curve()
        t1, b1 = restored.trace.best_fom_curve()
        np.testing.assert_allclose(t1, t0)
        np.testing.assert_allclose(b1, b0)

    def test_file_roundtrip(self, sample_run, tmp_path):
        path = tmp_path / "grid.json"
        save_runs(path, {"EasyBO-3": [sample_run, sample_run]})
        grid = load_runs(path)
        assert set(grid) == {"EasyBO-3"}
        assert len(grid["EasyBO-3"]) == 2
        assert grid["EasyBO-3"][0].best_fom == sample_run.best_fom

    def test_surrogate_stats_roundtrip(self, sample_run):
        stats = sample_run.surrogate_stats
        assert stats is not None and stats.n_refits > 0
        restored = run_from_dict(run_to_dict(sample_run))
        assert restored.surrogate_stats is not None
        assert restored.surrogate_stats.as_dict() == stats.as_dict()
        # The trace carries the same object, as in a live run.
        assert restored.trace.surrogate_stats is restored.surrogate_stats

    def test_pre_v3_payload_loads_without_surrogate_stats(self, sample_run):
        data = run_to_dict(sample_run)
        data["version"] = 2
        del data["surrogate_stats"]
        restored = run_from_dict(data)
        assert restored.surrogate_stats is None
        assert restored.trace.surrogate_stats is None
        assert restored.best_fom == sample_run.best_fom

    def test_version_checked(self, sample_run):
        data = run_to_dict(sample_run)
        data["version"] = 99
        with pytest.raises(ValueError, match="newer than supported"):
            run_from_dict(data)
        data["version"] = "bogus"
        with pytest.raises(ValueError, match="version"):
            run_from_dict(data)

    def test_grid_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "grid": {}}')
        with pytest.raises(ValueError, match="newer than supported"):
            load_runs(path)

    def test_summaries_from_restored_grid(self, sample_run, tmp_path):
        from repro.core.results import summarize_runs

        path = tmp_path / "grid.json"
        save_runs(path, {"EasyBO-3": [sample_run]})
        summary = summarize_runs(load_runs(path)["EasyBO-3"])
        assert summary.best == sample_run.best_fom
