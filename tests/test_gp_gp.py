"""Tests for repro.gp.gp (GaussianProcess)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import (
    ConstantMean,
    GaussianProcess,
    Matern52,
    SquaredExponential,
)


@pytest.fixture
def simple_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, size=(25, 2))
    y = np.sin(4 * X[:, 0]) + X[:, 1] ** 2
    return X, y


class TestConstruction:
    def test_requires_dim_or_kernel(self):
        with pytest.raises(ValueError):
            GaussianProcess()

    def test_dim_kernel_mismatch(self):
        with pytest.raises(ValueError):
            GaussianProcess(3, kernel=SquaredExponential(2))

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess(2, noise_variance=-1.0)

    def test_noise_floor_applied(self):
        gp = GaussianProcess(2, noise_variance=0.0)
        assert gp.noise_variance > 0


class TestFitPredict:
    def test_interpolates_training_data(self, simple_data):
        X, y = simple_data
        gp = GaussianProcess(2, noise_variance=1e-8).fit(X, y)
        mu = gp.predict(X, return_std=False)
        np.testing.assert_allclose(mu, y, atol=1e-3)

    def test_sigma_small_at_train_large_away(self, simple_data):
        X, y = simple_data
        gp = GaussianProcess(2, noise_variance=1e-8).fit(X, y)
        _, s_train = gp.predict(X)
        _, s_far = gp.predict(np.array([[10.0, 10.0]]))
        assert s_train.max() < 1e-2
        assert s_far[0] == pytest.approx(1.0, rel=1e-3)  # prior std

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess(2).predict(np.zeros((1, 2)))

    def test_rejects_nan_observations(self):
        X = np.zeros((2, 1))
        with pytest.raises(ValueError):
            GaussianProcess(1).fit(X, [1.0, np.nan])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GaussianProcess(1).fit(np.zeros((0, 1)), [])

    def test_predict_single_point_promotion(self, simple_data):
        X, y = simple_data
        gp = GaussianProcess(2).fit(X, y)
        mu, s = gp.predict(X[0])
        assert mu.shape == (1,)

    def test_constant_mean_reverts_far_away(self):
        X = np.array([[0.0]])
        y = np.array([5.0])
        gp = GaussianProcess(1, mean=ConstantMean(5.0)).fit(X, y)
        mu = gp.predict(np.array([[100.0]]), return_std=False)
        assert mu[0] == pytest.approx(5.0, abs=1e-6)

    def test_matches_direct_formula(self, simple_data):
        """Posterior must equal the textbook Eq. 2 computed naively."""
        X, y = simple_data
        noise = 1e-4
        gp = GaussianProcess(2, noise_variance=noise).fit(X, y)
        Xs = np.random.default_rng(1).uniform(0, 1, size=(5, 2))
        K = gp.kernel(X) + noise * np.eye(len(X))
        ks = gp.kernel(X, Xs)
        mu_direct = ks.T @ np.linalg.solve(K, y)
        var_direct = gp.kernel.diag(Xs) - np.sum(ks * np.linalg.solve(K, ks), axis=0)
        mu, s = gp.predict(Xs)
        np.testing.assert_allclose(mu, mu_direct, atol=1e-8)
        np.testing.assert_allclose(s**2, var_direct, atol=1e-8)


class TestIncrementalUpdate:
    def test_add_observation_matches_refit(self, simple_data):
        X, y = simple_data
        gp = GaussianProcess(2).fit(X[:-1], y[:-1])
        gp.add_observation(X[-1], y[-1])
        gp_full = GaussianProcess(2).fit(X, y)
        Xs = np.random.default_rng(2).uniform(0, 1, size=(6, 2))
        mu_a, s_a = gp.predict(Xs)
        mu_b, s_b = gp_full.predict(Xs)
        np.testing.assert_allclose(mu_a, mu_b, atol=1e-7)
        np.testing.assert_allclose(s_a, s_b, atol=1e-7)

    def test_n_train_increments(self, simple_data):
        X, y = simple_data
        gp = GaussianProcess(2).fit(X, y)
        gp.add_observation([0.5, 0.5], 1.0)
        assert gp.n_train == len(X) + 1


class TestPending:
    def test_pending_collapses_sigma(self, simple_data):
        X, y = simple_data
        gp = GaussianProcess(2, noise_variance=1e-6).fit(X, y)
        x_pending = np.array([[0.9, 0.1]])
        _, s_before = gp.predict(x_pending)
        gp_hal = gp.condition_on_pending(x_pending)
        _, s_after = gp_hal.predict(x_pending)
        assert s_after[0] < s_before[0]

    def test_pending_preserves_mean_at_pending_point(self, simple_data):
        X, y = simple_data
        gp = GaussianProcess(2, noise_variance=1e-8).fit(X, y)
        x_pending = np.array([[0.42, 0.77]])
        mu_before = gp.predict(x_pending, return_std=False)
        gp_hal = gp.condition_on_pending(x_pending)
        mu_after = gp_hal.predict(x_pending, return_std=False)
        np.testing.assert_allclose(mu_after, mu_before, atol=1e-4)

    def test_original_model_untouched(self, simple_data):
        X, y = simple_data
        gp = GaussianProcess(2).fit(X, y)
        n = gp.n_train
        gp.condition_on_pending(np.array([[0.5, 0.5]]))
        assert gp.n_train == n

    def test_multiple_pending_points(self, simple_data):
        X, y = simple_data
        gp = GaussianProcess(2).fit(X, y)
        pend = np.array([[0.1, 0.9], [0.2, 0.8], [0.3, 0.7]])
        gp_hal = gp.condition_on_pending(pend)
        assert gp_hal.n_train == gp.n_train + 3
        _, s = gp_hal.predict(pend)
        assert np.all(s < 0.05)


class TestMarginalLikelihood:
    def test_gradient_matches_finite_difference(self, simple_data):
        X, y = simple_data
        for kernel in (SquaredExponential(2), Matern52(2)):
            gp = GaussianProcess(kernel=kernel.copy(), noise_variance=1e-3).fit(X, y)
            theta0 = gp.get_theta()
            _, grad = gp.log_marginal_likelihood(theta0, return_grad=True)
            eps = 1e-6
            for i in range(len(theta0)):
                tp, tm = theta0.copy(), theta0.copy()
                tp[i] += eps
                tm[i] -= eps
                num = (
                    gp.log_marginal_likelihood(tp) - gp.log_marginal_likelihood(tm)
                ) / (2 * eps)
                assert grad[i] == pytest.approx(num, rel=1e-3, abs=1e-5)

    def test_higher_at_true_hyperparameters(self):
        rng = np.random.default_rng(5)
        kernel = SquaredExponential(1, lengthscales=[0.2], variance=1.0)
        gp_gen = GaussianProcess(kernel=kernel, noise_variance=1e-4)
        X = rng.uniform(0, 1, size=(40, 1))
        K = kernel(X) + 1e-4 * np.eye(40)
        y = np.linalg.cholesky(K) @ rng.standard_normal(40)
        gp = GaussianProcess(1).fit(X, y)
        theta_true = gp_gen.get_theta()
        lml_true = gp.log_marginal_likelihood(theta_true)
        theta_bad = theta_true.copy()
        theta_bad[0] = np.log(10.0)  # wildly long lengthscale
        lml_bad = gp.log_marginal_likelihood(theta_bad)
        assert lml_true > lml_bad

    def test_theta_shape_validation(self, simple_data):
        X, y = simple_data
        gp = GaussianProcess(2).fit(X, y)
        with pytest.raises(ValueError):
            gp.log_marginal_likelihood(np.zeros(99))


class TestSampling:
    def test_posterior_samples_shape_and_anchoring(self, simple_data):
        X, y = simple_data
        gp = GaussianProcess(2, noise_variance=1e-8).fit(X, y)
        samples = gp.sample_posterior(X[:4], n_samples=8, rng=0)
        assert samples.shape == (8, 4)
        # Near-interpolating model: samples at training inputs hug y.
        np.testing.assert_allclose(samples.mean(axis=0), y[:4], atol=0.05)

    def test_posterior_covariance_psd(self, simple_data):
        X, y = simple_data
        gp = GaussianProcess(2).fit(X, y)
        Xs = np.random.default_rng(3).uniform(size=(6, 2))
        cov = gp.posterior_covariance(Xs)
        assert np.linalg.eigvalsh(cov).min() > -1e-8


class TestCopy:
    def test_copy_independent(self, simple_data):
        X, y = simple_data
        gp = GaussianProcess(2).fit(X, y)
        gp2 = gp.copy()
        gp2.add_observation([0.5, 0.5], 0.0)
        assert gp.n_train == len(X)
        assert gp2.n_train == len(X) + 1


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(3, 20))
def test_property_posterior_variance_nonincreasing_with_data(seed, n):
    """Adding an observation can only shrink posterior variance elsewhere."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 1))
    y = np.sin(5 * X[:, 0])
    gp = GaussianProcess(1, noise_variance=1e-6).fit(X, y)
    Xs = rng.uniform(0, 1, size=(10, 1))
    _, s_before = gp.predict(Xs)
    gp.add_observation(rng.uniform(0, 1, size=1), 0.0)
    _, s_after = gp.predict(Xs)
    assert np.all(s_after <= s_before + 1e-7)
