"""Tests for the Problem / EvaluationResult interface."""

import numpy as np
import pytest

from repro.core.problem import EvaluationResult, FunctionProblem


class TestEvaluationResult:
    def test_defaults(self):
        r = EvaluationResult(fom=1.5)
        assert r.feasible
        assert r.cost == 1.0
        assert r.metrics == {}

    def test_rejects_nan_fom(self):
        with pytest.raises(ValueError, match="finite"):
            EvaluationResult(fom=float("nan"))

    def test_rejects_inf_fom(self):
        with pytest.raises(ValueError):
            EvaluationResult(fom=float("inf"))

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError, match="cost"):
            EvaluationResult(fom=0.0, cost=-1.0)


class TestFunctionProblem:
    def test_basic_evaluation(self):
        p = FunctionProblem(lambda x: -float(np.sum(x**2)), [[-1, 1], [-1, 1]])
        r = p.evaluate(np.array([0.5, 0.5]))
        assert r.fom == pytest.approx(-0.5)
        assert r.cost == 1.0

    def test_dim(self):
        p = FunctionProblem(lambda x: 0.0, [[-1, 1]] * 3)
        assert p.dim == 3

    def test_cost_model(self):
        p = FunctionProblem(
            lambda x: 0.0, [[0, 1]], cost_model=lambda x: 5.0 + x[0]
        )
        assert p.evaluate(np.array([0.25])).cost == pytest.approx(5.25)

    def test_clips_out_of_bounds(self):
        p = FunctionProblem(lambda x: float(x[0]), [[0, 1]])
        assert p.evaluate(np.array([7.0])).fom == 1.0

    def test_validate_point_shape(self):
        p = FunctionProblem(lambda x: 0.0, [[0, 1]] * 2)
        with pytest.raises(ValueError):
            p.validate_point(np.zeros(3))

    def test_evaluate_batch(self):
        p = FunctionProblem(lambda x: float(x[0]), [[0, 1]])
        results = p.evaluate_batch(np.array([[0.1], [0.2], [0.3]]))
        assert [r.fom for r in results] == pytest.approx([0.1, 0.2, 0.3])

    def test_evaluate_batch_promotes_vector(self):
        p = FunctionProblem(lambda x: float(x[0] + x[1]), [[0, 1]] * 2)
        results = p.evaluate_batch(np.array([0.1, 0.2]))
        assert len(results) == 1
