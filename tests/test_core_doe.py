"""Tests for initial experimental designs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.doe import latin_hypercube, random_design

BOUNDS = np.array([[0.0, 1.0], [-5.0, 5.0], [100.0, 200.0]])


class TestRandomDesign:
    def test_shape_and_bounds(self):
        X = random_design(BOUNDS, 50, rng=0)
        assert X.shape == (50, 3)
        assert np.all(X >= BOUNDS[:, 0]) and np.all(X <= BOUNDS[:, 1])

    def test_deterministic(self):
        np.testing.assert_array_equal(
            random_design(BOUNDS, 5, rng=7), random_design(BOUNDS, 5, rng=7)
        )

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            random_design(BOUNDS, 0)


class TestLatinHypercube:
    def test_shape_and_bounds(self):
        X = latin_hypercube(BOUNDS, 30, rng=0)
        assert X.shape == (30, 3)
        assert np.all(X >= BOUNDS[:, 0]) and np.all(X <= BOUNDS[:, 1])

    def test_stratification(self):
        """Exactly one sample per 1/n slice in every dimension."""
        n = 20
        X = latin_hypercube(np.array([[0.0, 1.0]] * 2), n, rng=3)
        for j in range(2):
            strata = np.floor(X[:, j] * n).astype(int)
            assert sorted(strata) == list(range(n))

    def test_deterministic(self):
        np.testing.assert_array_equal(
            latin_hypercube(BOUNDS, 8, rng=1), latin_hypercube(BOUNDS, 8, rng=1)
        )

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            latin_hypercube(BOUNDS, -1)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 40), seed=st.integers(0, 1000))
def test_property_lhs_always_stratified(n, seed):
    X = latin_hypercube(np.array([[0.0, 1.0]]), n, rng=seed)
    strata = np.floor(X[:, 0] * n).astype(int)
    strata = np.minimum(strata, n - 1)  # guard exact upper edge
    assert sorted(strata) == list(range(n))
