"""Tests for the DC sweep analysis."""

import numpy as np
import pytest

from repro.spice import Circuit, SinWave, dc_sweep, nmos_180, pmos_180


def nmos_iv_circuit():
    c = Circuit("nmos iv")
    c.V("vg", "g", "0", dc=0.0)
    c.V("vd", "d", "0", dc=1.8)
    c.M("m1", "d", "g", "0", "0", nmos_180(), w=10e-6, l=0.5e-6)
    return c


class TestDcSweep:
    def test_transfer_characteristic_monotone(self):
        c = nmos_iv_circuit()
        vgs = np.linspace(0.0, 1.8, 19)
        result = dc_sweep(c, "vg", vgs)
        ids = result.device_current("m1")
        assert ids[0] == 0.0  # cutoff at vgs = 0
        assert np.all(np.diff(ids) >= -1e-15)  # monotone in vgs
        assert ids[-1] > 1e-4

    def test_square_law_in_saturation(self):
        c = nmos_iv_circuit()
        vth = nmos_180().vt0
        vgs = np.array([vth + 0.2, vth + 0.4])
        ids = dc_sweep(c, "vg", vgs).device_current("m1")
        # Saturation current scales with vov^2 (CLM identical at fixed vds).
        assert ids[1] / ids[0] == pytest.approx(4.0, rel=1e-6)

    def test_output_characteristic_regions(self):
        c = nmos_iv_circuit()
        c.find("vg").value = 1.0
        vds = np.linspace(0.0, 1.8, 20)
        result = dc_sweep(c, "vd", vds)
        ids = result.device_current("m1")
        # Triode slope near zero is much steeper than saturation slope.
        d_triode = (ids[2] - ids[0]) / (vds[2] - vds[0])
        d_sat = (ids[-1] - ids[-3]) / (vds[-1] - vds[-3])
        assert d_triode > 10 * d_sat

    def test_inverter_vtc(self):
        c = Circuit("inverter")
        c.V("vdd", "vdd", "0", dc=1.8)
        c.V("vin", "in", "0", dc=0.0)
        c.M("mn", "out", "in", "0", "0", nmos_180(), w=2e-6, l=0.18e-6)
        c.M("mp", "out", "in", "vdd", "vdd", pmos_180(), w=4e-6, l=0.18e-6)
        result = dc_sweep(c, "vin", np.linspace(0, 1.8, 37))
        vout = result.v("out")
        assert vout[0] == pytest.approx(1.8, abs=1e-3)
        assert vout[-1] == pytest.approx(0.0, abs=1e-3)
        assert np.all(np.diff(vout) <= 1e-6)  # monotone falling VTC

    def test_source_restored_after_sweep(self):
        c = nmos_iv_circuit()
        dc_sweep(c, "vg", [0.0, 1.0])
        assert c.find("vg").value == 0.0

    def test_current_source_sweep(self):
        c = Circuit("i sweep")
        c.I("ib", "0", "a", dc=1e-3)
        c.R("r", "a", "0", 1000)
        result = dc_sweep(c, "ib", [1e-3, 2e-3])
        np.testing.assert_allclose(result.v("a"), [1.0, 2.0], rtol=1e-6)

    def test_unknown_source(self):
        with pytest.raises(KeyError):
            dc_sweep(nmos_iv_circuit(), "nope", [0.0])

    def test_non_source_rejected(self):
        c = nmos_iv_circuit()
        with pytest.raises(TypeError, match="independent source"):
            dc_sweep(c, "m1", [0.0])

    def test_waveform_source_rejected(self):
        c = Circuit("wave")
        c.V("vin", "a", "0", waveform=SinWave(0, 1, 1e3))
        c.R("r", "a", "0", 100)
        with pytest.raises(TypeError, match="waveform"):
            dc_sweep(c, "vin", [0.0])

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            dc_sweep(nmos_iv_circuit(), "vg", [])
