"""Tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest


def run_cli(*args, timeout=600):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestCli:
    def test_info(self):
        result = run_cli("info")
        assert result.returncode == 0
        assert "EasyBO" in result.stdout
        assert "phcbo" in result.stdout
        assert "OpAmpProblem" in result.stdout

    def test_demo(self):
        result = run_cli("demo", "--budget", "25", "--batch", "3")
        assert result.returncode == 0
        assert "best value" in result.stdout
        assert "utilization" in result.stdout

    @pytest.mark.slow
    def test_opamp(self):
        result = run_cli("opamp", "--budget", "30", "--batch", "3")
        assert result.returncode == 0
        assert "best FOM" in result.stdout
        assert "pm_deg" in result.stdout

    def test_run_with_metrics_then_trace_renders(self, tmp_path):
        trace = tmp_path / "run-trace.jsonl"
        result = run_cli(
            "run", "--problem", "sphere", "--algorithm", "EasyBO-2",
            "--budget", "10", "--n-init", "4",
            "--metrics", "--trace", str(trace),
        )
        assert result.returncode == 0
        assert "best FOM" in result.stdout
        assert "run metrics" in result.stdout
        assert "driver.evaluations" in result.stdout
        assert "spans written" in result.stdout
        assert trace.is_file()

        rendered = run_cli("trace", str(trace), "--top", "5")
        assert rendered.returncode == 0
        assert "run [" in rendered.stdout
        assert "iteration" in rendered.stdout
        assert "hotspots" in rendered.stdout

    def test_run_without_obs_flags_writes_no_trace(self, tmp_path):
        result = run_cli(
            "run", "--problem", "sphere", "--algorithm", "LCB",
            "--budget", "6", "--n-init", "3",
        )
        assert result.returncode == 0
        assert "spans written" not in result.stdout

    def test_run_with_sparse_surrogate_flags(self, tmp_path):
        result = run_cli(
            "run", "--problem", "sphere", "--algorithm", "EasyBO-2",
            "--budget", "12", "--n-init", "4",
            "--surrogate", "auto", "--max-exact-n", "6", "--n-inducing", "8",
            "--metrics", "--trace", str(tmp_path / "sparse-trace.jsonl"),
        )
        assert result.returncode == 0
        assert "best FOM" in result.stdout
        # Crossing --max-exact-n mid-run must surface as a mode switch.
        assert "surrogate.mode_switches" in result.stdout

    def test_rejects_unknown_surrogate_kind(self):
        result = run_cli(
            "run", "--problem", "sphere", "--algorithm", "LCB",
            "--budget", "6", "--n-init", "3", "--surrogate", "dense",
        )
        assert result.returncode != 0

    def test_requires_command(self):
        result = run_cli()
        assert result.returncode != 0

    def test_unknown_command(self):
        result = run_cli("fly")
        assert result.returncode != 0
