"""Tests for the EasyBO facade and the algorithm label registry."""

import pytest

from repro.baselines.de import DifferentialEvolution
from repro.baselines.random_search import RandomSearch
from repro.circuits.benchmarks import sphere
from repro.core.async_batch import AsynchronousBatchBO
from repro.core.bo import SequentialBO
from repro.core.easybo import EasyBO, make_algorithm
from repro.core.sync_batch import SynchronousBatchBO
from repro.sched.durations import ConstantCostModel


def problem():
    return sphere(2, cost_model=ConstantCostModel(1.0))


QUICK = dict(n_init=4, max_evals=10, rng=0, acq_candidates=128, acq_restarts=1)


class TestFacade:
    def test_async_mode(self):
        bo = EasyBO(problem(), batch_size=2, mode="async", **QUICK)
        assert isinstance(bo.driver, AsynchronousBatchBO)
        assert bo.driver.penalized
        result = bo.optimize()
        assert result.n_evaluations == 10

    def test_sync_mode(self):
        bo = EasyBO(problem(), batch_size=2, mode="sync", **QUICK)
        assert isinstance(bo.driver, SynchronousBatchBO)
        assert bo.driver.strategy == "easybo-sp"

    def test_nopen_modes(self):
        assert not EasyBO(problem(), mode="async-nopen", **QUICK).driver.penalized
        assert (
            EasyBO(problem(), mode="sync-nopen", **QUICK).driver.strategy
            == "easybo-s"
        )

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            EasyBO(problem(), mode="warp")


class TestRegistry:
    @pytest.mark.parametrize(
        "label,cls,batch",
        [
            ("EI", SequentialBO, None),
            ("LCB", SequentialBO, None),
            ("EasyBO", SequentialBO, None),
            ("pBO-5", SynchronousBatchBO, 5),
            ("pHCBO-10", SynchronousBatchBO, 10),
            ("EasyBO-S-5", SynchronousBatchBO, 5),
            ("EasyBO-SP-15", SynchronousBatchBO, 15),
            ("BUCB-4", SynchronousBatchBO, 4),
            ("LP-4", SynchronousBatchBO, 4),
            ("EasyBO-A-10", AsynchronousBatchBO, 10),
            ("EasyBO-15", AsynchronousBatchBO, 15),
        ],
    )
    def test_labels_build_right_driver(self, label, cls, batch):
        algo = make_algorithm(label, problem(), **QUICK)
        assert isinstance(algo, cls)
        if batch is not None:
            assert algo.batch_size == batch

    def test_easybo_label_properties(self):
        algo = make_algorithm("EasyBO-A-10", problem(), **QUICK)
        assert not algo.penalized
        algo = make_algorithm("EasyBO-10", problem(), **QUICK)
        assert algo.penalized

    def test_de_and_random(self):
        de = make_algorithm("DE", problem(), max_evals=30, rng=0)
        assert isinstance(de, DifferentialEvolution)
        rs = make_algorithm("Random", problem(), max_evals=30, rng=0)
        assert isinstance(rs, RandomSearch)

    def test_case_insensitive(self):
        assert isinstance(make_algorithm("easybo-sp-5", problem(), **QUICK),
                          SynchronousBatchBO)

    def test_unknown_label(self):
        with pytest.raises(ValueError, match="unknown algorithm family"):
            make_algorithm("SGD-5", problem(), **QUICK)

    def test_display_names_match_paper(self):
        assert make_algorithm("pBO-5", problem(), **QUICK).algorithm_name == "pBO-5"
        assert (
            make_algorithm("EasyBO-SP-10", problem(), **QUICK).algorithm_name
            == "EasyBO-SP-10"
        )
        assert make_algorithm("LCB", problem(), **QUICK).algorithm_name == "LCB"
