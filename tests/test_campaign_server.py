"""Campaign server: multi-tenancy, leases, crash/suspend/resume, no leaks.

The server under test runs on a daemon thread in-process
(``serve(background=True)``); clients dial in over real loopback sockets
through :class:`CampaignClient`.  Determinism is checked against local
"twin" campaigns built with the same label/seed: a campaign hosted behind
the RPC must ask for byte-identical points, however many tenants the
server is juggling in between.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.circuits.benchmarks import sphere
from repro.core import make_campaign
from repro.distributed import CampaignClient, CampaignServerError, serve
from repro.distributed.protocol import PROTOCOL_VERSION
from repro.obs import MetricsRegistry, Observability

pytestmark = pytest.mark.server

CONFIG = dict(n_init=3, max_evals=6, acq_candidates=32, acq_restarts=1)


@pytest.fixture()
def server(tmp_path):
    srv = serve(journal_dir=tmp_path / "journals", max_workers=4,
                obs=Observability(metrics=MetricsRegistry()),
                background=True)
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    with CampaignClient(port=server.port) as c:
        yield c


def _twin(seed):
    return make_campaign("EasyBO-2", sphere(2), rng=seed, **CONFIG)


def _wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestBasics:
    def test_ping_reports_protocol_version(self, client):
        pong = client.ping()
        assert pong["protocol"] == PROTOCOL_VERSION

    def test_unknown_campaign_is_an_error_not_a_crash(self, client):
        with pytest.raises(CampaignServerError, match="c9999"):
            client.status("c9999")
        assert client.ping()["ok"]  # the connection survived the error

    def test_ask_past_budget_maps_to_server_error(self, client):
        cid = client.create("LCB", "sphere2",
                            config=dict(rng=0, n_init=2, max_evals=2,
                                        acq_candidates=16, acq_restarts=1))
        client.ask(cid, n=2)
        with pytest.raises(CampaignServerError, match="budget"):
            client.ask(cid)


class TestMultiTenancy:
    def test_interleaved_campaigns_stay_byte_identical(self, client):
        """Three tenants round-robin through one connection; each must track
        its isolated twin exactly — no cross-campaign state bleed."""
        problem = sphere(2)
        seeds = [101, 202, 303]
        cids = [client.create("EasyBO-2", "sphere2", config=dict(rng=s, **CONFIG))
                for s in seeds]
        twins = {cid: _twin(s) for cid, s in zip(cids, seeds)}
        done = set()
        while len(done) < len(cids):
            for cid in cids:
                if cid in done:
                    continue
                try:
                    x = client.ask(cid)[0]
                except CampaignServerError:
                    done.add(cid)
                    continue
                np.testing.assert_array_equal(x, twins[cid].ask())
                result = problem.evaluate(x)
                reply = client.tell(cid, x, result)
                twins[cid].tell(x, result)
                if reply["done"]:
                    done.add(cid)
        states = {c["campaign"]: c["state"] for c in client.list()}
        assert all(states[cid] == "finished" for cid in cids)

    def test_status_and_metrics_track_tenants(self, client, server):
        cid = client.create("LCB", "sphere2", config=dict(rng=1, **CONFIG))
        status = client.status(cid)
        assert status["state"] == "active"
        assert status["max_evals"] == CONFIG["max_evals"]
        assert client.metrics()["active"] >= 1


class TestWorkerLeases:
    def test_leases_capped_and_returned(self, client):
        # Budgets big enough that neither tenant finishes mid-test.
        slow = dict(rng=5, n_init=3, max_evals=40,
                    acq_candidates=32, acq_restarts=1)
        a = client.create("EasyBO-3", "sphere2", config=slow,
                          evaluate=True, n_workers=3)
        assert client.metrics()["workers_leased"] == 3
        # Capacity 4: the second tenant gets the single remaining worker.
        b = client.create("EasyBO-3", "sphere2", config=dict(slow, rng=6),
                          evaluate=True, n_workers=3)
        assert client.metrics()["workers_leased"] == 4
        with pytest.raises(CampaignServerError, match="no worker capacity"):
            client.create("EasyBO-2", "sphere2", config=dict(slow, rng=7),
                          evaluate=True, n_workers=1)
        # Suspending returns each lease to the shared registry.
        client.suspend(a)
        assert client.metrics()["workers_leased"] == 1
        client.suspend(b)
        assert client.metrics()["workers_leased"] == 0

    def test_server_evaluated_campaign_finishes(self, client):
        cid = client.create("EasyBO-2", "sphere2",
                            config=dict(rng=9, **CONFIG),
                            evaluate=True)
        with pytest.raises(CampaignServerError, match="server-evaluated"):
            client.ask(cid)
        assert _wait_for(lambda: client.status(cid)["state"] == "finished")
        status = client.status(cid)
        assert status["issued"] == CONFIG["max_evals"]
        assert status["best_fom"] is not None


class TestSuspendResume:
    def test_client_disconnect_suspends_and_resume_is_bit_exact(self, server):
        """Kill a client mid-campaign: the server suspends the orphaned
        campaign (journal durable, lease returned); a second client resumes
        it to the exact pre-kill state and finishes byte-identically to an
        uninterrupted twin."""
        problem = sphere(2)
        twin = _twin(77)
        doomed = CampaignClient(port=server.port)
        cid = doomed.create("EasyBO-2", "sphere2", config=dict(rng=77, **CONFIG))
        for _ in range(3):
            x = doomed.ask(cid)[0]
            np.testing.assert_array_equal(x, twin.ask())
            result = problem.evaluate(x)
            doomed.tell(cid, x, result)
            twin.tell(x, result)
        in_flight = doomed.ask(cid)[0]  # asked but never told
        np.testing.assert_array_equal(in_flight, twin.ask())
        doomed.close()  # the "kill": socket drops with a point in flight

        with CampaignClient(port=server.port) as client:
            assert _wait_for(lambda: client.status(cid)["state"] == "suspended")
            reply = client.resume(cid)
            np.testing.assert_array_equal(
                np.asarray(reply["pending"]), twin.pending_matrix()
            )
            # Tell the recovered in-flight point, then drive both to done.
            result = problem.evaluate(in_flight)
            client.tell(cid, in_flight, result)
            twin.tell(in_flight, result)
            while True:
                try:
                    x = client.ask(cid)[0]
                except CampaignServerError:
                    break
                np.testing.assert_array_equal(x, twin.ask())
                result = problem.evaluate(x)
                reply = client.tell(cid, x, result)
                twin.tell(x, result)
                if reply["done"]:
                    break
            assert client.status(cid)["state"] == "finished"
            assert twin.done

    def test_explicit_suspend_then_resume(self, client):
        cid = client.create("LCB", "sphere2", config=dict(rng=13, **CONFIG))
        x = client.ask(cid)[0]
        assert client.suspend(cid) == "suspended"
        with pytest.raises(CampaignServerError, match="active"):
            client.ask(cid)
        reply = client.resume(cid)
        np.testing.assert_array_equal(np.asarray(reply["pending"])[0], x)
        assert client.status(cid)["state"] == "active"

    def test_resume_without_journal_is_an_error(self, tmp_path):
        srv = serve(journal_dir=None, background=True)
        try:
            with CampaignClient(port=srv.port) as client:
                cid = client.create("LCB", "sphere2", config=dict(rng=1, **CONFIG))
                client.suspend(cid)
                with pytest.raises(CampaignServerError, match="journal"):
                    client.resume(cid)
        finally:
            srv.stop()


class TestFailureContainment:
    def test_malformed_request_leaves_campaign_active(self, client):
        """A request the server cannot even parse is the *client's* problem:
        it gets an error back, the campaign is untouched."""
        cid = client.create("LCB", "sphere2", config=dict(rng=2, **CONFIG))
        x = client.ask(cid)[0]
        with pytest.raises(CampaignServerError):
            client.call("tell", campaign=cid, x=[float(v) for v in x],
                        result={"garbage": True})
        assert client.status(cid)["state"] == "active"

    def test_tell_blowing_up_fails_campaign_and_releases_lease(self, client):
        from repro.core.problem import EvaluationResult

        cid = client.create("LCB", "sphere2", config=dict(rng=2, **CONFIG))
        client.ask(cid)
        # A wrong-dimension point detonates inside campaign.tell(); the
        # server must contain it: campaign failed, lease returned.
        with pytest.raises(CampaignServerError):
            client.tell(cid, [0.5], EvaluationResult(
                fom=1.0, metrics={}, cost=1.0, feasible=True))
        assert client.status(cid)["state"] == "failed"
        assert client.metrics()["workers_leased"] == 0
        # The server keeps serving other tenants.
        other = client.create("LCB", "sphere2", config=dict(rng=3, **CONFIG))
        assert client.status(other)["state"] == "active"
