"""Crash/resume harness: kill seeded runs and prove the resume is exact.

The contract under test (see ``docs/crash_recovery.md``): in full surrogate
mode, a run killed at *any* journal append and resumed with
:func:`repro.core.recovery.resume` finishes with the byte-for-byte trajectory
of the uninterrupted run — the same fixtures ``test_golden_trajectories.py``
enforces.  The chaos test draws its kill points from ``REPRO_CHAOS_SEED`` so
the CI chaos job sweeps a different slice of crash boundaries on every seed.

Also covered here: worker-lease reconciliation (a hung worker is orphaned and
reissued without wedging ``wait_next``), the impute/drop orphan dispositions,
bounded reissues for poisoned points, the v4 persistence format, and RNG
state round-trips.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core.easybo import make_algorithm
from repro.core.faults import (
    FailurePolicy,
    KillSwitchJournal,
    KillSwitchProblem,
    ProcessKilled,
)
from repro.core.journal import JournalWriter, read_journal
from repro.core.persistence import load_runs, run_from_dict, run_to_dict, save_runs
from repro.core.problem import FunctionProblem
from repro.core.recovery import resolve_problem, resume
from repro.sched.executor import ThreadWorkerPool
from repro.utils.rng import generator_from_state, rng_state_to_dict, set_rng_state
from tests.golden.regenerate import (
    SCENARIOS,
    canonical_json,
    golden_path,
    make_problem,
    run_scenario,
    trajectory_payload,
)

pytestmark = pytest.mark.chaos

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def run_killed(name: str, journal_path, kill_at: int):
    """Run a golden scenario with the journal kill switch armed."""
    writer = KillSwitchJournal(JournalWriter(journal_path), kill_at=kill_at)
    try:
        with pytest.raises(ProcessKilled):
            run_scenario(name, journal=writer, checkpoint_every=3)
    finally:
        writer.journal.close()


_JOURNAL_LENGTHS: dict[str, int] = {}


def journal_length(name: str, tmp_path) -> int:
    """Number of journal records a completed run of ``name`` writes.

    Deterministic per scenario, so the result is memoized: the 5-fraction
    kill sweep costs one reference run per scenario, not one per case.
    """
    if name not in _JOURNAL_LENGTHS:
        path = tmp_path / "complete.jsonl"
        run_scenario(name, journal=path)
        _JOURNAL_LENGTHS[name] = len(read_journal(path, strict=True))
    return _JOURNAL_LENGTHS[name]


def assert_matches_golden(name: str, result) -> None:
    assert canonical_json(trajectory_payload(name, result)) == golden_path(
        name
    ).read_text()


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_journaled_run_matches_golden(name, tmp_path):
    # Attaching a journal must be an observer: same trajectory, byte for byte.
    path = tmp_path / "run.jsonl"
    result = run_scenario(name, journal=path, checkpoint_every=2)
    assert_matches_golden(name, result)
    events = read_journal(path, strict=True)
    assert events[0]["type"] == "run_start"
    assert events[-1]["type"] == "run_end"
    assert events[-1]["best_fom"] == result.best_fom


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("fraction", [0.15, 0.4, 0.6, 0.85, 1.0])
def test_resume_after_journal_kill_matches_golden(name, fraction, tmp_path):
    # Kill between two journal appends at several depths (1.0 = kill on the
    # final append, i.e. even run_end itself being lost is recoverable).
    n_records = journal_length(name, tmp_path)
    kill_at = max(2, round(fraction * n_records))
    path = tmp_path / "run.jsonl"
    run_killed(name, path, kill_at)
    resumed = resume(path)
    assert_matches_golden(name, resumed)
    # The journal now ends with the completed run's epilogue.
    events = read_journal(path, strict=True)
    assert any(e["type"] == "resume" for e in events)
    assert events[-1]["type"] == "run_end"


@pytest.mark.parametrize("kill_at", [1, 4, 7, 11])
def test_resume_after_mid_evaluation_kill_matches_golden(kill_at, tmp_path):
    # Die INSIDE the kill_at-th evaluation (not between journal writes): the
    # in-flight point has an issue record but no completion, and must be
    # reissued at its original index/worker/time.
    name = "easybo-async-branin"
    label, problem_name, kwargs = SCENARIOS[name]
    path = tmp_path / "run.jsonl"
    killer = KillSwitchProblem(make_problem(problem_name), kill_at=kill_at)
    algorithm = make_algorithm(
        label, killer, surrogate_update="full", refit_every=1,
        acq_candidates=128, acq_restarts=1, journal=path, **kwargs,
    )
    with pytest.raises(ProcessKilled):
        algorithm.run()
    resumed = resume(path, problem=make_problem(problem_name))
    assert_matches_golden(name, resumed)


def test_chaos_kill_resume_sweep(tmp_path):
    # CI chaos job: 5 seed-derived crash points across the golden scenarios;
    # every one must resume to the exact golden trajectory.
    rng = np.random.default_rng(CHAOS_SEED)
    names = sorted(SCENARIOS)
    lengths = {name: journal_length(name, tmp_path / name) for name in names}
    for case in range(5):
        name = names[int(rng.integers(len(names)))]
        kill_at = int(rng.integers(2, lengths[name] + 1))
        path = tmp_path / f"chaos-{case}.jsonl"
        run_killed(name, path, kill_at)
        resumed = resume(path)
        assert canonical_json(trajectory_payload(name, resumed)) == golden_path(
            name
        ).read_text(), f"chaos seed {CHAOS_SEED}, case {case}: {name} killed at {kill_at}"


def test_resume_survives_torn_tail(tmp_path):
    # Truncate the journal mid-record (as a crash during a write would) and
    # resume from the torn file; the byte-offset sweep lives in
    # tests/test_journal.py, here we prove end-to-end resumability.
    name = "lcb-branin"
    path = tmp_path / "run.jsonl"
    run_killed(name, path, kill_at=12)
    raw = path.read_bytes()
    for cut in (len(raw) - 1, len(raw) - 9, len(raw) - 25):
        torn = tmp_path / f"torn-{cut}.jsonl"
        torn.write_bytes(raw[:cut])
        assert_matches_golden(name, resume(torn))


def test_resume_twice_after_double_crash(tmp_path):
    # A resumed run that crashes again resumes again from the same journal.
    name = "easybo-async-branin"
    problem = make_problem(SCENARIOS[name][1])
    path = tmp_path / "run.jsonl"
    run_killed(name, path, kill_at=10)
    # kill_at=8 lets the reissued orphans complete durably first; a pending
    # point that spanned BOTH crashes would instead be imputed (bounded
    # reissues), legally diverging from the golden.
    with pytest.raises(ProcessKilled):
        resume(path, problem=KillSwitchProblem(problem, kill_at=8))
    assert_matches_golden(name, resume(path, problem=problem))


def test_resume_refuses_finished_run(tmp_path):
    path = tmp_path / "run.jsonl"
    run_scenario("lcb-branin", journal=path)
    with pytest.raises(RuntimeError, match="already completed"):
        resume(path)


def test_resume_refuses_journal_without_run_start(tmp_path):
    path = tmp_path / "empty.jsonl"
    with JournalWriter(path) as writer:
        writer.append({"type": "complete"})
    with pytest.raises(Exception, match="run_start"):
        resume(path)


class TestOrphanDispositions:
    def _crash(self, tmp_path, policy):
        name = "easybo-async-branin"
        label, problem_name, kwargs = SCENARIOS[name]
        path = tmp_path / "run.jsonl"
        killer = KillSwitchProblem(make_problem(problem_name), kill_at=8)
        algorithm = make_algorithm(
            label, killer, surrogate_update="full", acq_candidates=128,
            acq_restarts=1, journal=path, failure_policy=policy, **kwargs,
        )
        with pytest.raises(ProcessKilled):
            algorithm.run()
        return path, make_problem(problem_name)

    @pytest.mark.parametrize("disposition", ["impute", "drop"])
    def test_impute_and_drop_spend_the_budget(self, tmp_path, disposition):
        policy = FailurePolicy(on_orphan=disposition)
        path, problem = self._crash(tmp_path, policy)
        result = resume(path, problem=problem)
        # Orphans are recorded, the budget is not refunded, and the run ends.
        assert result.trace.n_orphaned > 0
        assert result.n_evaluations == SCENARIOS["easybo-async-branin"][2]["max_evals"]
        orphans = [r for r in result.trace.records if r.status == "orphaned"]
        assert all(not r.feasible and np.isnan(r.fom) for r in orphans)

    def test_reissue_is_bounded_for_poisoned_points(self, tmp_path):
        # A point whose re-evaluation kills the process again must not be
        # reissued forever: after max_reissues the next resume imputes it.
        path, problem = self._crash(tmp_path, FailurePolicy(on_orphan="reissue"))
        for _ in range(2):
            with pytest.raises(ProcessKilled):
                resume(path, problem=KillSwitchProblem(problem, kill_at=1))
        events = read_journal(path)
        dispositions = [
            (e["index"], e["disposition"]) for e in events if e["type"] == "orphan"
        ]
        by_index: dict[int, list[str]] = {}
        for index, disposition in dispositions:
            by_index.setdefault(index, []).append(disposition)
        assert any(d == ["reissue", "impute"] for d in by_index.values())


class TestWorkerLeases:
    def make_pool(self, fn, dim=1, n_workers=2, **policy_kwargs):
        problem = FunctionProblem(fn, bounds=[(0.0, 1.0)] * dim, name="t")
        policy = FailurePolicy(**policy_kwargs)
        return ThreadWorkerPool(problem, n_workers, policy=policy, poll_interval=0.02)

    def test_expired_lease_orphans_the_task_without_deadlock(self):
        def fn(x):
            if x[0] > 0.5:
                time.sleep(60)
            return float(x[0])

        pool = self.make_pool(fn, lease_slack=3.0)
        pool.submit(np.array([0.1]))
        pool.submit(np.array([0.2]))
        for _ in range(2):
            assert pool.wait_next().result.ok
        start = time.monotonic()
        index = pool.submit(np.array([0.9]))
        completion = pool.wait_next()
        assert completion.index == index
        assert completion.result.status == "orphaned"
        assert time.monotonic() - start < 10
        # The worker slot is reclaimed: the pool keeps serving evaluations.
        pool.submit(np.array([0.3]))
        assert pool.wait_next().result.ok

    def test_no_lease_before_first_completion(self):
        pool = self.make_pool(lambda x: float(x[0]), lease_slack=2.0)
        index = pool.submit(np.array([0.4]))
        assert pool.task_info(index)["lease"] is None
        pool.wait_next()
        index = pool.submit(np.array([0.4]))
        assert pool.task_info(index)["lease"] is not None
        pool.wait_next()

    def test_wait_next_never_blocks_unboundedly(self):
        # Satellite: every queue wait is capped, so Ctrl-C surfaces promptly
        # even when no completion ever arrives.
        pool = self.make_pool(lambda x: float(x[0]))
        timeouts = []
        inner = pool._results

        class SpyQueue:
            def get(self, *args, **kwargs):
                timeout = kwargs.get("timeout", args[0] if args else None)
                timeouts.append(timeout)
                return inner.get(*args, **kwargs)

            def put(self, item):
                inner.put(item)

        pool._results = SpyQueue()
        pool.submit(np.array([0.6]))
        pool.wait_next()
        assert timeouts
        assert all(t is not None and t <= pool.poll_interval for t in timeouts)

    def test_driver_survives_hung_worker_via_lease_reissue(self):
        hung: dict[float, int] = {}

        def fn(x):
            key = round(float(x[0]), 9)
            if x[0] > 0.8 and hung.setdefault(key, 0) == 0:
                hung[key] += 1
                time.sleep(60)
            return float((x[0] - 0.3) ** 2)

        problem = FunctionProblem(fn, bounds=[(0.0, 1.0)], name="flaky")
        policy = FailurePolicy(lease_slack=50.0, on_orphan="reissue")
        factory = lambda prob, n, policy=policy: ThreadWorkerPool(
            prob, n, policy=policy, poll_interval=0.02
        )
        driver = make_algorithm(
            "EasyBO-2", problem, rng=0, n_init=4, max_evals=8,
            acq_candidates=64, acq_restarts=1, failure_policy=policy,
            pool_factory=factory,
        )
        start = time.monotonic()
        result = driver.run()
        assert time.monotonic() - start < 30
        statuses = [r.status for r in result.trace.records]
        assert statuses.count("orphaned") >= 1
        assert statuses.count("ok") >= 8  # every orphan was re-evaluated


class TestRngState:
    def test_round_trip_is_json_safe_and_exact(self):
        rng = np.random.default_rng(123)
        rng.normal(size=17)
        state = rng_state_to_dict(rng)
        json.loads(json.dumps(state))  # plain-JSON serializable
        clone = generator_from_state(state)
        np.testing.assert_array_equal(rng.normal(size=8), clone.normal(size=8))

    def test_set_state_rejects_mismatched_bit_generator(self):
        rng = np.random.default_rng(0)
        state = rng_state_to_dict(rng)
        state["bit_generator"] = "MT19937"
        with pytest.raises(ValueError):
            set_rng_state(np.random.default_rng(0), state)

    def test_run_result_carries_final_rng_state(self):
        result = run_scenario("lcb-branin")
        assert result.rng_state is not None
        generator_from_state(result.rng_state)  # must reconstruct


class TestPersistenceV4:
    def test_round_trip_preserves_rng_state(self):
        result = run_scenario("lcb-branin")
        data = run_to_dict(result)
        assert data["version"] == 8
        clone = run_from_dict(json.loads(json.dumps(data)))
        assert clone.rng_state == result.rng_state
        assert clone.best_fom == result.best_fom

    def test_v2_through_v6_files_still_load(self):
        result = run_scenario("lcb-branin")
        data = run_to_dict(result)
        for version in (2, 3, 4, 5, 6, 7):
            old = json.loads(json.dumps(data))
            old["version"] = version
            old.pop("surrogate", None)
            if version < 7:
                old.pop("pending_policy", None)
            if version < 6:
                old.pop("metrics", None)
            if version < 5:
                old.pop("pool_telemetry", None)
            if version < 4:
                old.pop("rng_state", None)
            if version < 3:
                old.pop("surrogate_stats", None)
            clone = run_from_dict(old)
            assert clone.surrogate is None
            if version < 7:
                assert clone.pending_policy is None
            if version < 6:
                assert clone.metrics is None
            if version < 5:
                assert clone.pool_telemetry is None
            if version < 4:
                assert clone.rng_state is None
            assert clone.best_fom == result.best_fom

    def test_save_runs_is_atomic(self, tmp_path):
        result = run_scenario("lcb-branin")
        path = tmp_path / "grid.json"
        save_runs(path, {"LCB": [result]})
        first = path.read_bytes()
        save_runs(path, {"LCB": [result, result]})
        assert not (tmp_path / "grid.json.tmp").exists()
        grid = load_runs(path)
        assert len(grid["LCB"]) == 2
        assert len(first) < path.stat().st_size


class TestObservabilityAcrossResume:
    """Replay-safe metrics: a killed-and-resumed run reports the same
    durable counters as the uninterrupted run, never replayed-plus-live
    double counts, and the resume opens its own (marked) run span."""

    NAME = "easybo-async-branin"

    def test_resumed_metrics_match_uninterrupted_run(self, tmp_path):
        from repro.obs import MetricsRegistry

        baseline = run_scenario(
            self.NAME, journal=tmp_path / "full.jsonl",
            metrics=MetricsRegistry(),
        )
        assert baseline.metrics is not None

        path = tmp_path / "crash.jsonl"
        run_killed(self.NAME, path, kill_at=10)
        # The resumed process brings a fresh registry, as a real restart would.
        resumed = resume(path, metrics=MetricsRegistry())
        assert_matches_golden(self.NAME, resumed)
        assert resumed.metrics is not None

        # Trace-derived counters are folded (assigned) at packaging time, so
        # replayed completions cannot double-count: the resumed totals equal
        # the uninterrupted run's exactly.
        durable = (
            "driver.evaluations", "driver.failures", "driver.retries",
            "driver.orphans", "pool.tasks",
        )
        for name in durable:
            assert (
                resumed.metrics["counters"][name]
                == baseline.metrics["counters"][name]
            ), name
        assert (
            resumed.metrics["counters"]["driver.evaluations"]
            == resumed.n_evaluations
        )
        # Live counters tick only for post-resume events — they can never
        # exceed the run totals (a double count would).
        assert (
            resumed.metrics["counters"]["pool.submits"]
            <= resumed.n_evaluations
        )
        assert (
            resumed.metrics["counters"]["driver.completions"]
            <= resumed.n_evaluations
        )

    def test_resume_opens_a_marked_run_span(self, tmp_path):
        from repro.obs import Tracer, load_trace, render_trace

        path = tmp_path / "crash.jsonl"
        run_killed(self.NAME, path, kill_at=10)
        trace_path = tmp_path / "resume-trace.jsonl"
        tracer = Tracer(trace_path)
        resumed = resume(path, tracer=tracer)
        tracer.close()
        assert_matches_golden(self.NAME, resumed)

        spans = load_trace(trace_path)
        roots = [s for s in spans if s["parent"] is None]
        assert len(roots) == 1
        assert roots[0]["name"] == "run"
        assert roots[0]["attrs"]["resumed"] is True
        assert render_trace(trace_path)  # renders without error

    def test_metrics_are_strictly_opt_in_on_resume(self, tmp_path):
        path = tmp_path / "crash.jsonl"
        run_killed(self.NAME, path, kill_at=10)
        resumed = resume(path)
        assert resumed.metrics is None


class TestResolveProblem:
    @pytest.mark.parametrize(
        "name, dim",
        [("branin", 2), ("hartmann6", 6), ("sphere2", 2), ("ackley5", 5),
         ("rastrigin4", 4)],
    )
    def test_benchmarks_resolve_by_journaled_name(self, name, dim):
        problem = resolve_problem(name)
        assert problem.name == name
        assert len(problem.bounds) == dim

    def test_unknown_name_raises_with_guidance(self):
        with pytest.raises(ValueError, match="problem="):
            resolve_problem("my-custom-testbench")
