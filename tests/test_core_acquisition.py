"""Tests for acquisition functions and the EasyBO weight sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acquisition import (
    EASYBO_LAMBDA,
    ExpectedImprovement,
    HighCoveragePenalty,
    ProbabilityOfImprovement,
    UpperConfidenceBound,
    WeightedAcquisition,
    pbo_weights,
    sample_easybo_weight,
)
from repro.gp import GaussianProcess


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, size=(30, 2))
    y = np.sin(5 * X[:, 0]) + X[:, 1]
    return GaussianProcess(2, noise_variance=1e-6).fit(X, y)


class TestUCB:
    def test_formula(self, model):
        X = np.random.default_rng(1).uniform(size=(5, 2))
        mu, sigma = model.predict(X)
        np.testing.assert_allclose(
            UpperConfidenceBound(2.5)(model, X), mu + 2.5 * sigma
        )

    def test_kappa_zero_is_mean(self, model):
        X = np.random.default_rng(2).uniform(size=(4, 2))
        np.testing.assert_allclose(
            UpperConfidenceBound(0.0)(model, X), model.predict(X, return_std=False)
        )

    def test_rejects_negative_kappa(self):
        with pytest.raises(ValueError):
            UpperConfidenceBound(-1.0)


class TestEI:
    def test_zero_when_certain_and_worse(self, model):
        """EI at a training point below the incumbent is ~0."""
        x_train = model.X[:1]
        y_train = model.y[0]
        ei = ExpectedImprovement(best_y=y_train + 5.0)
        assert ei(model, x_train)[0] == pytest.approx(0.0, abs=1e-6)

    def test_positive_everywhere(self, model):
        X = np.random.default_rng(3).uniform(size=(20, 2))
        ei = ExpectedImprovement(best_y=float(model.y.max()))
        assert np.all(ei(model, X) >= 0)

    def test_grows_with_uncertainty(self, model):
        best = float(model.y.max())
        ei = ExpectedImprovement(best_y=best)
        inside = ei(model, model.X[:1])  # training point: sigma ~ 0
        outside = ei(model, np.array([[5.0, 5.0]]))  # far away: sigma ~ 1
        assert outside[0] > inside[0]

    def test_closed_form_against_monte_carlo(self, model):
        rng = np.random.default_rng(4)
        x = np.array([[0.5, 0.5]])
        best = float(model.y.max()) - 0.3
        mu, sigma = model.predict(x)
        samples = rng.normal(mu[0], sigma[0], size=200_000)
        mc = np.mean(np.maximum(samples - best, 0.0))
        assert ExpectedImprovement(best)(model, x)[0] == pytest.approx(mc, rel=0.05)


class TestPI:
    def test_bounded_01(self, model):
        X = np.random.default_rng(5).uniform(size=(20, 2))
        pi = ProbabilityOfImprovement(best_y=0.0)
        values = pi(model, X)
        assert np.all((values >= 0) & (values <= 1))

    def test_high_when_mean_far_above(self, model):
        pi = ProbabilityOfImprovement(best_y=-100.0)
        assert pi(model, model.X[:1])[0] == pytest.approx(1.0, abs=1e-9)


class TestWeighted:
    def test_w0_is_mean(self, model):
        X = np.random.default_rng(6).uniform(size=(4, 2))
        np.testing.assert_allclose(
            WeightedAcquisition(0.0)(model, X), model.predict(X, return_std=False)
        )

    def test_w1_is_sigma(self, model):
        X = np.random.default_rng(7).uniform(size=(4, 2))
        _, sigma = model.predict(X)
        np.testing.assert_allclose(WeightedAcquisition(1.0)(model, X), sigma)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            WeightedAcquisition(1.5)
        with pytest.raises(ValueError):
            WeightedAcquisition(-0.1)


class TestEasyBOWeight:
    def test_range(self):
        rng = np.random.default_rng(0)
        ws = [sample_easybo_weight(rng) for _ in range(2000)]
        w_max = EASYBO_LAMBDA / (EASYBO_LAMBDA + 1.0)
        assert all(0.0 <= w <= w_max for w in ws)

    def test_density_increases_toward_one(self):
        """Fig. 2: w mass concentrates near the top of its range."""
        rng = np.random.default_rng(1)
        ws = np.array([sample_easybo_weight(rng) for _ in range(20_000)])
        w_max = EASYBO_LAMBDA / (EASYBO_LAMBDA + 1.0)
        low = np.mean(ws < 0.5 * w_max)
        high = np.mean(ws > 0.5 * w_max)
        assert high > 2 * low

    def test_analytic_cdf(self):
        """P(w <= t) = (t/(1-t)) / lambda for the transformed uniform."""
        rng = np.random.default_rng(2)
        ws = np.array([sample_easybo_weight(rng, lam=6.0) for _ in range(50_000)])
        for t in (0.3, 0.5, 0.7):
            expected = (t / (1 - t)) / 6.0
            assert np.mean(ws <= t) == pytest.approx(expected, abs=0.01)

    def test_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            sample_easybo_weight(None, lam=0.0)


class TestPboWeights:
    def test_grid(self):
        np.testing.assert_allclose(pbo_weights(5), [0.0, 0.25, 0.5, 0.75, 1.0])

    def test_single(self):
        np.testing.assert_allclose(pbo_weights(1), [0.5])

    def test_rejects_bad(self):
        with pytest.raises(ValueError):
            pbo_weights(0)


class TestHighCoveragePenalty:
    def test_zero_without_history(self):
        hc = HighCoveragePenalty(2)
        X = np.random.default_rng(0).uniform(size=(5, 2))
        np.testing.assert_array_equal(hc(0, X), 0.0)

    def test_large_near_recorded_point(self):
        hc = HighCoveragePenalty(2, d=0.1)
        x_prev = np.array([0.5, 0.5])
        hc.record(0, x_prev)
        near = hc(0, x_prev.reshape(1, -1) + 0.01)
        far = hc(0, np.array([[0.95, 0.95]]))
        assert near[0] > 1e10
        assert far[0] == pytest.approx(0.0, abs=1e-6)

    def test_slots_independent(self):
        hc = HighCoveragePenalty(2, d=0.1)
        hc.record(0, np.array([0.5, 0.5]))
        assert hc(1, np.array([[0.5, 0.5]]))[0] == 0.0

    def test_history_capped_at_five(self):
        hc = HighCoveragePenalty(1, d=0.1)
        for i in range(8):
            hc.record(0, np.array([float(i)]))
        assert len(hc._history[0]) == 5

    def test_no_overflow(self):
        hc = HighCoveragePenalty(2, d=0.5)
        hc.record(0, np.array([0.5, 0.5]))
        values = hc(0, np.array([[0.5, 0.5]]))  # zero distance
        assert np.isfinite(values).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            HighCoveragePenalty(0)
        with pytest.raises(ValueError):
            HighCoveragePenalty(2, d=-1.0)


@settings(max_examples=30, deadline=None)
@given(lam=st.floats(0.5, 20.0), seed=st.integers(0, 500))
def test_property_weight_in_closed_form_range(lam, seed):
    w = sample_easybo_weight(np.random.default_rng(seed), lam=lam)
    assert 0.0 <= w <= lam / (lam + 1.0)
