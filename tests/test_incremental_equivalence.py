"""Equivalence harness: the incremental surrogate path is exact.

"Standard Acquisition Is Sufficient for Asynchronous BO"-style results rely
on the hallucinated-posterior machinery staying *numerically exact*; a fast
path that drifts silently degrades the async behaviour.  This harness
therefore proves, over hundreds of randomized append/discard sequences
mimicking the async loop, that every incremental operation — rank-k factor
appends, truncation discards, target refreshes, the factor-sharing
hallucinated view of Eq. 9, and the PD-loss fallback — reproduces the
from-scratch rebuild to <= 1e-8 in posterior mean and standard deviation.
"""

import numpy as np
import pytest

from repro.core.surrogate import HallucinatedView, SurrogateSession
from repro.gp import GaussianProcess, SquaredExponential

#: Agreement threshold between incremental and full-rebuild posteriors.
TOL = 1e-8

#: Randomized append/discard sequences exercised by the harness.
N_SEQUENCES = 220


def scratch_gp(reference: GaussianProcess, X, y) -> GaussianProcess:
    """From-scratch rebuild with the same hyperparameters (the ground truth)."""
    model = GaussianProcess(
        kernel=reference.kernel.copy(), noise_variance=reference.noise_variance
    )
    return model.fit(X, y)


def assert_posteriors_match(model_a, model_b, probes, context=""):
    mu_a, sigma_a = model_a.predict(probes)
    mu_b, sigma_b = model_b.predict(probes)
    np.testing.assert_allclose(mu_a, mu_b, atol=TOL, rtol=0, err_msg=f"mean {context}")
    np.testing.assert_allclose(
        sigma_a, sigma_b, atol=TOL, rtol=0, err_msg=f"sigma {context}"
    )


def random_model(rng, dim, n0):
    """A fitted GP with randomized data and randomized hyperparameters."""
    kernel = SquaredExponential(
        dim,
        lengthscales=rng.uniform(0.2, 1.5, size=dim),
        variance=rng.uniform(0.5, 2.0),
    )
    model = GaussianProcess(kernel=kernel, noise_variance=rng.uniform(1e-5, 1e-2))
    X = rng.uniform(size=(n0, dim))
    y = rng.standard_normal(n0)
    return model.fit(X, y), X, y


class TestRandomizedSequences:
    """The core property: incremental == rebuild across async-like histories."""

    def test_append_discard_sequences(self):
        failures = 0
        for seq in range(N_SEQUENCES):
            rng = np.random.default_rng(1000 + seq)
            dim = int(rng.integers(1, 4))
            model, X, y = random_model(rng, dim, n0=int(rng.integers(3, 9)))
            probes = rng.uniform(size=(16, dim))
            for _ in range(int(rng.integers(4, 9))):
                op = rng.choice(["append", "discard", "retarget"])
                if op == "append":
                    k = int(rng.integers(1, 4))
                    X_new = rng.uniform(size=(k, dim))
                    y_new = rng.standard_normal(k)
                    model.update(X_new, y_new)
                    X = np.vstack([X, X_new])
                    y = np.concatenate([y, y_new])
                elif op == "discard" and model.n_train > 3:
                    k = int(rng.integers(1, min(3, model.n_train - 1)))
                    model.downdate(k)
                    X, y = X[:-k], y[:-k]
                else:
                    y = y + rng.standard_normal(len(y)) * 0.1
                    model.set_targets(y)
                assert_posteriors_match(
                    model, scratch_gp(model, X, y), probes,
                    context=f"sequence {seq} after {op}",
                )
        assert failures == 0

    def test_hallucinated_posterior_matches_eq9(self):
        """The Eq. 9 view == sequential kriging believer == scratch rebuild."""
        for seq in range(60):
            rng = np.random.default_rng(7000 + seq)
            dim = int(rng.integers(1, 4))
            model, X, y = random_model(rng, dim, n0=int(rng.integers(4, 10)))
            probes = rng.uniform(size=(16, dim))
            k = int(rng.integers(1, 5))
            pending = rng.uniform(size=(k, dim))

            view = HallucinatedView(model, pending)
            sequential = model.condition_on_pending(pending)
            # Joint kriging believer: pseudo-targets are the base posterior
            # means, so the scratch reference fits the extended dataset.
            pseudo = model.predict(pending, return_std=False)
            scratch = scratch_gp(
                model, np.vstack([X, pending]), np.concatenate([y, pseudo])
            )

            assert_posteriors_match(view, sequential, probes, f"view/seq {seq}")
            assert_posteriors_match(view, scratch, probes, f"view/scratch {seq}")
            # Kriging believer leaves the mean surface unchanged.
            np.testing.assert_allclose(
                view.predict(probes, return_std=False),
                model.predict(probes, return_std=False),
                atol=TOL, rtol=0,
            )
            # And collapses sigma at the pending points themselves.
            _, sigma_at_pending = view.predict(pending)
            _, sigma_before = model.predict(pending)
            assert np.all(sigma_at_pending <= sigma_before + TOL)


class TestPdLossFallback:
    """Loss of positive definiteness must fall back, never corrupt."""

    def test_append_raises_on_exactly_singular_block(self):
        # Exact-arithmetic construction (integer-valued floats): the Schur
        # complement of the appended block is exactly zero, which the strict
        # (non-clamping) append must reject.  This is the primitive the
        # update/view fallbacks are built on.
        from repro.gp.linalg import cholesky_append

        lower = np.eye(2)
        cross = np.array([[1.0, 1.0], [0.0, 0.0]])
        corner = np.ones((2, 2))  # corner - B^T B == zeros exactly
        with pytest.raises(np.linalg.LinAlgError):
            cholesky_append(lower, cross, corner)

    def test_update_pd_loss_leaves_model_intact(self, monkeypatch):
        rng = np.random.default_rng(0)
        model, X, y = random_model(rng, 2, n0=6)
        probes = rng.uniform(size=(8, 2))
        mu_before, sigma_before = model.predict(probes)

        from repro.gp import gp as gp_mod

        def boom(lower, cross, corner):
            raise np.linalg.LinAlgError("simulated PD loss")

        monkeypatch.setattr(gp_mod.linalg, "cholesky_append", boom)
        with pytest.raises(np.linalg.LinAlgError):
            model.update(rng.uniform(size=(2, 2)), np.zeros(2))
        # Strong exception safety: the model still answers, unchanged.
        assert model.n_train == 6
        mu_after, sigma_after = model.predict(probes)
        np.testing.assert_array_equal(mu_before, mu_after)
        np.testing.assert_array_equal(sigma_before, sigma_after)

    def test_session_fallback_posterior_still_exact(self, monkeypatch):
        """After a PD-loss fallback the session posterior equals a full refit."""
        from repro.gp.gp import GaussianProcess

        bounds = np.array([[0.0, 1.0], [0.0, 1.0]])
        session = SurrogateSession(
            bounds, rng=0, surrogate_update="incremental", refit_every=50
        )
        rng = np.random.default_rng(2)
        X = rng.uniform(size=(8, 2))
        session.add_batch(X, np.cos(4 * X[:, 0]) + X[:, 1])
        session.refit()

        real_update = GaussianProcess.update

        def flaky_update(self, X_new, y_new, **kwargs):
            if not flaky_update.tripped:
                flaky_update.tripped = True
                raise np.linalg.LinAlgError("simulated PD loss")
            return real_update(self, X_new, y_new, **kwargs)

        flaky_update.tripped = False
        monkeypatch.setattr(GaussianProcess, "update", flaky_update)
        session.add([0.3, 0.7], 0.5)
        model = session.refit()
        assert model is not None
        assert session.stats.n_fallbacks == 1
        assert session.stats.n_refactorizations == 1
        # The fallback refactorized from scratch: the served posterior must
        # equal a from-scratch rebuild on the same data, same hyperparameters.
        probes = rng.uniform(size=(12, 2))
        reference = scratch_gp(
            model,
            session.transform.to_unit(session.X),
            session.output.transform(session.y),
        )
        assert_posteriors_match(model, reference, probes, "post-fallback")
        # And the next refit resumes the incremental fast path.
        session.add([0.9, 0.1], 0.2)
        session.refit()
        assert session.stats.n_incremental_updates >= 1
        assert session.stats.n_fallbacks == 1


class TestSessionModeEquivalence:
    """incremental vs full sessions agree event-by-event to <= 1e-8."""

    @pytest.mark.parametrize("refit_every", [1, 4])
    def test_streaming_agreement(self, refit_every):
        bounds = np.array([[-2.0, 3.0], [0.0, 1.0], [5.0, 9.0]])
        sessions = {
            mode: SurrogateSession(
                bounds, rng=0, surrogate_update=mode, refit_every=refit_every
            )
            for mode in ("incremental", "full")
        }
        rng = np.random.default_rng(11)
        probes = rng.uniform(bounds[:, 0], bounds[:, 1], size=(10, 3))
        X0 = rng.uniform(bounds[:, 0], bounds[:, 1], size=(6, 3))
        y0 = np.sin(X0[:, 0]) + 0.1 * X0[:, 2]
        for session in sessions.values():
            session.add_batch(X0, y0)
        for event in range(10):
            x = rng.uniform(bounds[:, 0], bounds[:, 1])
            y_val = float(np.sin(x[0]) + 0.1 * x[2])
            pending = rng.uniform(bounds[:, 0], bounds[:, 1], size=(3, 3))
            posteriors = {}
            for mode, session in sessions.items():
                session.add(x, y_val)
                session.refit()
                model = session.model_with_pending(pending)
                posteriors[mode] = session.predict_physical(probes, model=model)
            np.testing.assert_allclose(
                posteriors["incremental"][0], posteriors["full"][0],
                atol=TOL, rtol=0, err_msg=f"mean at event {event}",
            )
            np.testing.assert_allclose(
                posteriors["incremental"][1], posteriors["full"][1],
                atol=TOL, rtol=0, err_msg=f"sigma at event {event}",
            )
        incremental = sessions["incremental"].stats
        assert incremental.n_incremental_updates > 0 or refit_every == 1
        assert incremental.n_hallucinated_views == 10
        assert sessions["full"].stats.n_hallucinated_rebuilds == 10
