"""Tests for the synthetic benchmark functions."""

import numpy as np
import pytest

from repro.circuits.benchmarks import (
    ackley,
    branin,
    by_name,
    hartmann6,
    levy,
    rastrigin,
    sphere,
)
from repro.sched.durations import ConstantCostModel

KNOWN_OPTIMA = [
    (branin(), np.array([np.pi, 2.275])),
    (hartmann6(), np.array([0.20169, 0.150011, 0.476874, 0.275332, 0.311652, 0.6573])),
    (ackley(3), np.zeros(3)),
    (rastrigin(2), np.zeros(2)),
    (levy(3), np.ones(3)),
    (sphere(2), np.zeros(2)),
]


class TestOptima:
    @pytest.mark.parametrize("problem,x_star", KNOWN_OPTIMA, ids=lambda v: getattr(v, "name", ""))
    def test_known_optimum_value(self, problem, x_star):
        r = problem.evaluate(x_star)
        assert r.fom == pytest.approx(problem.optimum, abs=1e-3)

    @pytest.mark.parametrize("problem,x_star", KNOWN_OPTIMA, ids=lambda v: getattr(v, "name", ""))
    def test_optimum_not_exceeded_by_random_points(self, problem, x_star):
        rng = np.random.default_rng(0)
        bounds = problem.bounds
        X = rng.uniform(bounds[:, 0], bounds[:, 1], size=(200, problem.dim))
        foms = [problem.evaluate(x).fom for x in X]
        assert max(foms) <= problem.optimum + 1e-6


class TestInterface:
    def test_regret(self):
        p = sphere(2)
        assert p.regret(-1.0) == pytest.approx(1.0)
        assert p.regret(p.optimum) == pytest.approx(0.0)

    def test_cost_model_override(self):
        p = branin(cost_model=ConstantCostModel(3.0))
        assert p.evaluate(np.array([0.0, 5.0])).cost == 3.0

    def test_default_cost_heterogeneous(self):
        p = branin()
        rng = np.random.default_rng(1)
        bounds = p.bounds
        costs = {
            p.evaluate(rng.uniform(bounds[:, 0], bounds[:, 1])).cost
            for _ in range(5)
        }
        assert len(costs) == 5

    def test_by_name_lookup(self):
        assert by_name("branin").name == "branin"
        assert by_name("ackley", dim=7).dim == 7

    def test_by_name_unknown(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            by_name("nope")

    def test_dimensions(self):
        assert branin().dim == 2
        assert hartmann6().dim == 6
        assert ackley(5).dim == 5
