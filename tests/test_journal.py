"""Unit tests for the write-ahead run journal (framing, recovery, writer).

The journal's one job is to survive being killed mid-write: every record is
length- and CRC-framed, readers return the longest valid prefix, and
``recover_journal`` physically truncates a torn tail so later appends never
concatenate into a half-written line.  The torn-tail sweep here cuts a real
journal at *every* byte offset of its final record — each prefix must recover
to exactly the preceding records, never an exception, never a phantom record.
"""

import json
import zlib

import pytest

from repro.core.journal import (
    JournalError,
    JournalWriter,
    frame_record,
    parse_line,
    read_journal,
    recover_journal,
)

RECORDS = [
    {"type": "run_start", "algorithm": "LCB", "n_workers": 1},
    {"type": "issue", "index": 0, "x": [0.25, -1.5], "worker": 0},
    {"type": "complete", "index": 0, "value": 3.14159, "unicode": "μ±σ"},
]


def write_journal(path, records):
    with JournalWriter(path) as writer:
        for record in records:
            writer.append(record)


class TestFraming:
    def test_round_trip(self):
        for record in RECORDS:
            line = frame_record(record)
            assert line.endswith(b"\n")
            assert parse_line(line) == record

    def test_parse_rejects_bad_magic(self):
        line = frame_record(RECORDS[0])
        assert parse_line(b"XX" + line[2:]) is None

    def test_parse_rejects_flipped_payload_bit(self):
        line = bytearray(frame_record(RECORDS[1]))
        line[25] ^= 0x01  # inside the JSON payload
        assert parse_line(bytes(line)) is None

    def test_parse_rejects_wrong_crc(self):
        record = RECORDS[0]
        data = json.dumps(record, separators=(",", ":"), sort_keys=True).encode()
        bad_crc = (zlib.crc32(data) ^ 0xDEADBEEF) & 0xFFFFFFFF
        line = f"J1 {len(data):08x} {bad_crc:08x} ".encode() + data + b"\n"
        assert parse_line(line) is None

    def test_parse_rejects_truncation(self):
        line = frame_record(RECORDS[2])
        for cut in range(len(line)):
            assert parse_line(line[:cut]) is None


class TestReadJournal:
    def test_reads_all_records(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, RECORDS)
        assert read_journal(path) == RECORDS

    def test_missing_file_is_empty(self, tmp_path):
        assert read_journal(tmp_path / "nope.jsonl") == []

    def test_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, RECORDS)
        raw = path.read_bytes()
        path.write_bytes(raw[:-4])
        assert read_journal(path) == RECORDS[:-1]

    def test_strict_raises_on_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, RECORDS)
        path.write_bytes(path.read_bytes()[:-4])
        with pytest.raises(JournalError):
            read_journal(path, strict=True)

    def test_corrupt_middle_record_stops_the_prefix(self, tmp_path):
        # A flipped bit mid-file invalidates everything after it: suffix
        # records cannot be trusted once the sequence is broken.
        path = tmp_path / "j.jsonl"
        write_journal(path, RECORDS)
        raw = bytearray(path.read_bytes())
        first_len = len(frame_record(RECORDS[0]))
        raw[first_len + 30] ^= 0x01
        path.write_bytes(bytes(raw))
        assert read_journal(path) == RECORDS[:1]


class TestTornTailSweep:
    """Satellite: truncate at every byte offset of the last record."""

    def test_every_truncation_offset_recovers_the_prefix(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, RECORDS)
        raw = path.read_bytes()
        last_start = len(raw) - len(frame_record(RECORDS[-1]))
        for cut in range(last_start, len(raw)):
            torn = tmp_path / f"torn-{cut}.jsonl"
            torn.write_bytes(raw[:cut])
            records = recover_journal(torn)
            assert records == RECORDS[:-1], f"cut at byte {cut}"
            # Physical truncation: the torn bytes are gone, so an append
            # starts a fresh, parseable line.
            assert torn.read_bytes() == raw[:last_start]

    def test_recovered_journal_accepts_appends(self, tmp_path):
        path = tmp_path / "j.jsonl"
        write_journal(path, RECORDS)
        path.write_bytes(path.read_bytes()[:-7])
        recover_journal(path)
        extra = {"type": "resume", "clock": 1.0}
        with JournalWriter(path) as writer:
            writer.append(extra)
        assert read_journal(path, strict=True) == RECORDS[:-1] + [extra]


class TestWriter:
    def test_append_is_immediately_durable(self, tmp_path):
        path = tmp_path / "j.jsonl"
        writer = JournalWriter(path)
        writer.append(RECORDS[0])
        # Readable before close: the writer flushes and fsyncs per append.
        assert read_journal(path) == RECORDS[:1]
        writer.close()

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "j.jsonl"
        write_journal(path, RECORDS[:1])
        assert read_journal(path) == RECORDS[:1]

    def test_n_appends(self, tmp_path):
        writer = JournalWriter(tmp_path / "j.jsonl")
        assert writer.n_appends == 0
        writer.append(RECORDS[0])
        writer.append(RECORDS[1])
        assert writer.n_appends == 2
        writer.close()
