"""Public-API surface tests: imports, __all__ consistency, docstrings."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.gp",
    "repro.spice",
    "repro.circuits",
    "repro.sched",
    "repro.baselines",
    "repro.utils",
]

MODULES = [
    "repro.core.acquisition",
    "repro.core.async_batch",
    "repro.core.bo",
    "repro.core.constrained",
    "repro.core.cost_aware",
    "repro.core.doe",
    "repro.core.easybo",
    "repro.core.optimizers",
    "repro.core.persistence",
    "repro.core.portfolio",
    "repro.core.problem",
    "repro.core.results",
    "repro.core.surrogate",
    "repro.core.sync_batch",
    "repro.gp.diagnostics",
    "repro.gp.gp",
    "repro.gp.hyperopt",
    "repro.gp.kernels",
    "repro.gp.linalg",
    "repro.gp.mean",
    "repro.gp.standardize",
    "repro.spice.ac",
    "repro.spice.analysis",
    "repro.spice.dc",
    "repro.spice.diode",
    "repro.spice.elements",
    "repro.spice.exceptions",
    "repro.spice.mosfet",
    "repro.spice.netlist",
    "repro.spice.noise",
    "repro.spice.stamps",
    "repro.spice.subckt",
    "repro.spice.sweep",
    "repro.spice.transient",
    "repro.spice.units",
    "repro.circuits.benchmarks",
    "repro.circuits.classe",
    "repro.circuits.constrained_opamp",
    "repro.circuits.opamp",
    "repro.circuits.ota",
    "repro.circuits.spec",
    "repro.circuits.variation",
    "repro.sched.durations",
    "repro.sched.events",
    "repro.sched.executor",
    "repro.sched.trace",
    "repro.sched.workers",
    "repro.baselines.de",
    "repro.baselines.random_search",
    "repro.utils.rng",
    "repro.utils.tables",
    "repro.utils.validation",
]


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_imports_cleanly(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_all_names_resolve(name):
    """Every entry in __all__ must actually exist."""
    module = importlib.import_module(name)
    for export in getattr(module, "__all__", []):
        assert hasattr(module, export), f"{name}.__all__ lists missing {export!r}"


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_docstrings_present(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("name", MODULES)
def test_public_callables_documented(name):
    """Every public class/function in __all__ carries a docstring."""
    module = importlib.import_module(name)
    for export in getattr(module, "__all__", []):
        obj = getattr(module, export)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__ and obj.__doc__.strip(), (
                f"{name}.{export} lacks a docstring"
            )


def test_readme_quickstart_symbols_exist():
    import repro
    from repro.circuits import OpAmpProblem  # noqa: F401

    assert hasattr(repro, "EasyBO")
    assert hasattr(repro, "make_algorithm")
    assert hasattr(repro, "__version__")
