"""Tests for harmonic-distortion measurements."""

import numpy as np
import pytest

from repro.spice.analysis import harmonic_amplitudes, total_harmonic_distortion
from repro.spice.exceptions import AnalysisError

F0 = 1e6
T = np.arange(0, 4 / F0, 1 / (256 * F0))


class TestHarmonics:
    def test_pure_tone(self):
        signal = 2.0 * np.sin(2 * np.pi * F0 * T)
        amps = harmonic_amplitudes(T, signal, F0, n_harmonics=4)
        assert amps[0] == pytest.approx(2.0, rel=1e-9)
        np.testing.assert_allclose(amps[1:], 0.0, atol=1e-9)

    def test_known_mixture(self):
        signal = (
            1.0 * np.sin(2 * np.pi * F0 * T)
            + 0.3 * np.sin(2 * np.pi * 2 * F0 * T)
            + 0.1 * np.sin(2 * np.pi * 3 * F0 * T)
        )
        amps = harmonic_amplitudes(T, signal, F0, n_harmonics=3)
        np.testing.assert_allclose(amps, [1.0, 0.3, 0.1], atol=1e-9)

    def test_thd_value(self):
        signal = (
            1.0 * np.sin(2 * np.pi * F0 * T)
            + 0.3 * np.sin(2 * np.pi * 2 * F0 * T)
            + 0.4 * np.sin(2 * np.pi * 3 * F0 * T)
        )
        assert total_harmonic_distortion(T, signal, F0) == pytest.approx(0.5, rel=1e-9)

    def test_square_wave_thd(self):
        """Odd-harmonic series of a square wave: THD ~ 0.48 with 2 terms... use
        analytic amplitudes 1, 1/3, 1/5 over the first five harmonics."""
        signal = np.sign(np.sin(2 * np.pi * F0 * T))
        thd = total_harmonic_distortion(T, signal, F0, n_harmonics=5)
        expected = np.sqrt((1 / 3) ** 2 + (1 / 5) ** 2)
        assert thd == pytest.approx(expected, rel=0.01)

    def test_no_fundamental_raises(self):
        signal = np.sin(2 * np.pi * 2 * F0 * T)  # only the 2nd harmonic
        with pytest.raises(AnalysisError):
            total_harmonic_distortion(T, signal, F0)

    def test_n_harmonics_validated(self):
        with pytest.raises(ValueError):
            harmonic_amplitudes(T, np.sin(2 * np.pi * F0 * T), F0, n_harmonics=0)
