"""Tests for the simulation-duration models."""

import numpy as np
import pytest

from repro.sched.durations import ConstantCostModel, LognormalCostModel


class TestConstant:
    def test_value(self):
        m = ConstantCostModel(5.0)
        assert m.duration(np.zeros(3)) == 5.0
        assert m(np.ones(3)) == 5.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantCostModel(0.0)


class TestLognormal:
    def test_deterministic_per_design(self):
        m = LognormalCostModel(10.0, 0.3)
        x = np.array([1.0, 2.0, 3.0])
        assert m.duration(x) == m.duration(x.copy())

    def test_different_designs_differ(self):
        m = LognormalCostModel(10.0, 0.3)
        a = m.duration(np.array([1.0, 2.0]))
        b = m.duration(np.array([1.0, 2.0001]))
        assert a != b

    def test_seed_changes_draw(self):
        x = np.array([0.5, 0.5])
        a = LognormalCostModel(10.0, 0.3, seed=0).duration(x)
        b = LognormalCostModel(10.0, 0.3, seed=1).duration(x)
        assert a != b

    def test_mean_calibration(self):
        """E[duration] must equal mean_seconds (the -sigma^2/2 correction)."""
        m = LognormalCostModel(38.8, 0.35)
        rng = np.random.default_rng(0)
        draws = [m.duration(rng.uniform(size=4)) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(38.8, rel=0.03)

    def test_zero_sigma_is_constant(self):
        m = LognormalCostModel(10.0, 0.0)
        rng = np.random.default_rng(1)
        draws = {m.duration(rng.uniform(size=3)) for _ in range(10)}
        assert draws == {10.0}

    def test_spread_grows_with_sigma(self):
        rng = np.random.default_rng(2)
        X = [rng.uniform(size=3) for _ in range(500)]
        narrow = np.std([LognormalCostModel(10, 0.1).duration(x) for x in X])
        wide = np.std([LognormalCostModel(10, 0.4).duration(x) for x in X])
        assert wide > 2 * narrow

    def test_always_positive(self):
        m = LognormalCostModel(10.0, 0.5)
        rng = np.random.default_rng(3)
        assert all(m.duration(rng.uniform(size=2)) > 0 for _ in range(200))

    def test_validation(self):
        with pytest.raises(ValueError):
            LognormalCostModel(0.0, 0.1)
        with pytest.raises(ValueError):
            LognormalCostModel(1.0, -0.1)
