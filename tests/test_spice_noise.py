"""Tests for the noise analysis against textbook results."""

import numpy as np
import pytest

from repro.spice import (
    Circuit,
    DiodeParams,
    dc_operating_point,
    logspace_frequencies,
    nmos_180,
    noise_analysis,
)
from repro.spice.mosfet import MosfetParams
from repro.spice.noise import BOLTZMANN, MOS_GAMMA, TEMPERATURE

FOUR_KT = 4.0 * BOLTZMANN * TEMPERATURE


class TestResistorNoise:
    def test_single_resistor_psd(self):
        """Output PSD across a grounded resistor is 4kTR."""
        c = Circuit("r noise")
        c.V("vb", "in", "0", dc=0.0)
        c.R("rs", "in", "out", 1e9)  # huge series R isolates the node
        c.R("r", "out", "0", 1000.0)
        res = noise_analysis(c, np.array([1e3]), "out")
        # Parallel combination is dominated by the 1k resistor.
        expected = FOUR_KT * 1000.0
        assert res.output_psd[0] == pytest.approx(expected, rel=1e-3)

    def test_divider_parallel_resistance(self):
        """Two resistors give 4kT(R1 || R2) at the midpoint."""
        c = Circuit("divider noise")
        c.V("vb", "top", "0", dc=1.0)  # ideal source: AC short
        c.R("r1", "top", "out", 2000.0)
        c.R("r2", "out", "0", 2000.0)
        res = noise_analysis(c, np.array([1e3]), "out")
        expected = FOUR_KT * 1000.0  # 2k || 2k
        assert res.output_psd[0] == pytest.approx(expected, rel=1e-6)

    def test_ktc_noise_of_rc_filter(self):
        """Integrated output noise of an RC low-pass equals kT/C."""
        R, C = 1e3, 1e-9
        c = Circuit("ktc")
        c.V("vb", "in", "0", dc=0.0)
        c.R("r", "in", "out", R)
        c.C("c", "out", "0", C)
        freqs = logspace_frequencies(1.0, 1e9, 40)
        res = noise_analysis(c, freqs, "out")
        # Analytic check of the PSD shape at the pole...
        pole = 1 / (2 * np.pi * R * C)
        psd_at_pole = np.interp(pole, freqs, res.output_psd)
        assert psd_at_pole == pytest.approx(FOUR_KT * R / 2, rel=0.02)
        # ...and the classic total: kT/C, integrating over the wide sweep.
        assert res.integrated_output_noise() == pytest.approx(
            BOLTZMANN * TEMPERATURE / C, rel=0.05
        )

    def test_contributions_sum_to_total(self):
        c = Circuit("sum")
        c.V("vb", "a", "0", dc=0.0)
        c.R("r1", "a", "out", 500.0)
        c.R("r2", "out", "0", 1500.0)
        freqs = np.array([10.0, 1e6])
        res = noise_analysis(c, freqs, "out")
        total = sum(res.contributions.values())
        np.testing.assert_allclose(total, res.output_psd, rtol=1e-12)


class TestMosfetNoise:
    def cs_amplifier(self, kf=0.0):
        params = nmos_180()
        if kf:
            params = MosfetParams(**{**params.__dict__, "kf": kf})
        c = Circuit("cs noise")
        c.V("vdd", "vdd", "0", dc=1.8)
        c.V("vin", "g", "0", dc=0.65, ac=1.0)
        c.R("rd", "vdd", "d", 10_000.0)
        c.M("m1", "d", "g", "0", "0", params, w=10e-6, l=0.5e-6)
        return c

    def test_channel_noise_contribution(self):
        c = self.cs_amplifier()
        op = dc_operating_point(c)
        gm = op.mosfet_ops["m1"].gm
        res = noise_analysis(c, np.array([1e3]), "d", op=op)
        # MOSFET drain noise current flows through Rd || ro.
        gds = op.mosfet_ops["m1"].gds
        r_out = 1.0 / (1e-4 + gds)
        expected = FOUR_KT * MOS_GAMMA * gm * r_out**2
        assert res.contributions["m1"][0] == pytest.approx(expected, rel=1e-3)

    def test_input_referred_noise(self):
        c = self.cs_amplifier()
        res = noise_analysis(c, np.array([1e3]), "d", input_source="vin")
        op = dc_operating_point(c)
        gm = op.mosfet_ops["m1"].gm
        # Input-referred MOSFET noise ~ 4kT gamma / gm; Rd adds on top.
        floor = FOUR_KT * MOS_GAMMA / gm
        assert res.input_referred_psd[0] > floor
        assert res.input_referred_psd[0] < 10 * floor

    def test_flicker_noise_slope(self):
        c = self.cs_amplifier(kf=1e-26)
        res = noise_analysis(c, np.array([10.0, 100.0]), "d")
        m1 = res.contributions["m1"]
        # 1/f dominated at low frequency: decade apart -> ~10x ratio.
        assert m1[0] / m1[1] == pytest.approx(10.0, rel=0.25)

    def test_input_referral_requires_source(self):
        c = self.cs_amplifier()
        res = noise_analysis(c, np.array([1e3]), "d")
        with pytest.raises(ValueError):
            res.input_referred_psd


class TestDiodeNoise:
    def test_shot_noise(self):
        c = Circuit("shot")
        c.V("v1", "in", "0", dc=5.0)
        c.R("r", "in", "a", 1e6)
        c.D("d1", "a", "0", DiodeParams(cj0=0.0))
        op = dc_operating_point(c)
        res = noise_analysis(c, np.array([1e3]), "a", op=op)
        assert res.contributions["d1"][0] > 0


class TestValidation:
    def test_bad_frequencies(self):
        c = Circuit()
        c.V("v", "a", "0", dc=1.0)
        c.R("r", "a", "0", 100)
        with pytest.raises(ValueError):
            noise_analysis(c, np.array([]), "a")
        with pytest.raises(ValueError):
            noise_analysis(c, np.array([-1.0]), "a")

    def test_ground_output_rejected(self):
        c = Circuit()
        c.V("v", "a", "0", dc=1.0)
        c.R("r", "a", "0", 100)
        with pytest.raises(ValueError, match="ground"):
            noise_analysis(c, np.array([1.0]), "0")

    def test_unknown_output_node(self):
        c = Circuit()
        c.V("v", "a", "0", dc=1.0)
        c.R("r", "a", "0", 100)
        with pytest.raises(KeyError):
            noise_analysis(c, np.array([1.0]), "nope")

    def test_non_source_input_rejected(self):
        c = Circuit()
        c.V("v", "a", "0", dc=1.0)
        c.R("r", "a", "0", 100)
        with pytest.raises(TypeError):
            noise_analysis(c, np.array([1.0]), "a", input_source="r")
