"""Tests for repro.spice.elements (including source waveforms)."""

import pytest

from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    DcWave,
    Inductor,
    PulseWave,
    Resistor,
    SinWave,
    Vccs,
    Vcvs,
    VoltageSource,
)


class TestPassives:
    def test_resistor_conductance(self):
        r = Resistor("r1", "a", "b", "2k")
        assert r.resistance == 2000.0
        assert r.conductance == pytest.approx(5e-4)

    def test_resistor_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Resistor("r1", "a", "b", 0)
        with pytest.raises(ValueError):
            Resistor("r1", "a", "b", -5)

    def test_capacitor_value_parsing(self):
        assert Capacitor("c1", "a", "0", "10p").capacitance == pytest.approx(1e-11)

    def test_capacitor_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Capacitor("c1", "a", "0", 0)

    def test_inductor_value(self):
        assert Inductor("l1", "a", "b", "3.3u").inductance == pytest.approx(3.3e-6)

    def test_inductor_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Inductor("l1", "a", "b", -1e-9)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Resistor("", "a", "b", 1)

    def test_describe_contains_value(self):
        assert "2.2k" in Resistor("r1", "a", "b", 2200).describe()


class TestSources:
    def test_dc_value_without_waveform(self):
        v = VoltageSource("v1", "a", "0", dc=1.8)
        assert v.dc_value == 1.8
        assert v.value_at(123.0) == 1.8

    def test_waveform_dc_value(self):
        v = VoltageSource("v1", "a", "0", waveform=SinWave(0.9, 0.1, 1e6))
        assert v.dc_value == pytest.approx(0.9)

    def test_ac_magnitude(self):
        assert VoltageSource("v1", "a", "0", ac="1m").ac == pytest.approx(1e-3)

    def test_current_source(self):
        i = CurrentSource("i1", "a", "0", dc="10u")
        assert i.dc_value == pytest.approx(1e-5)

    def test_controlled_sources(self):
        e = Vcvs("e1", "o", "0", "a", "b", 100)
        assert e.gain == 100.0
        g = Vccs("g1", "o", "0", "a", "b", "1m")
        assert g.gm == pytest.approx(1e-3)
        assert "gm=" in g.describe()


class TestWaveforms:
    def test_dc_wave(self):
        assert DcWave(2.0)(99.0) == 2.0

    def test_sin_wave_values(self):
        w = SinWave(offset=1.0, amplitude=0.5, freq=1.0)
        assert w(0.0) == pytest.approx(1.0)
        assert w(0.25) == pytest.approx(1.5)
        assert w(0.75) == pytest.approx(0.5)

    def test_sin_wave_delay(self):
        w = SinWave(0.0, 1.0, 1.0, delay=1.0)
        assert w(0.5) == 0.0
        assert w(1.25) == pytest.approx(1.0)

    def test_pulse_shape(self):
        w = PulseWave(0.0, 1.0, delay=0.0, rise=0.1, fall=0.1, width=0.3, period=1.0)
        assert w(0.0) == pytest.approx(0.0)
        assert w(0.05) == pytest.approx(0.5)  # mid-rise
        assert w(0.2) == pytest.approx(1.0)  # on
        assert w(0.45) == pytest.approx(0.5)  # mid-fall
        assert w(0.9) == pytest.approx(0.0)  # off

    def test_pulse_periodicity(self):
        w = PulseWave(0.0, 1.0, rise=0.1, fall=0.1, width=0.3, period=1.0)
        for t in (0.05, 0.2, 0.45, 0.9):
            assert w(t) == pytest.approx(w(t + 3.0))

    def test_pulse_delay(self):
        w = PulseWave(0.2, 1.0, delay=5.0, rise=0.1, fall=0.1, width=0.3, period=1.0)
        assert w(4.9) == pytest.approx(0.2)

    def test_pulse_validation(self):
        with pytest.raises(ValueError):
            PulseWave(0, 1, rise=0.5, fall=0.5, width=0.5, period=1.0)
        with pytest.raises(ValueError):
            PulseWave(0, 1, period=-1.0)
        with pytest.raises(ValueError):
            PulseWave(0, 1, rise=0)
