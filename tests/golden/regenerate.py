"""Golden-trajectory fixtures: generation and shared scenario definitions.

Each fixture is one fully seeded optimizer run — algorithm label, problem,
budget, seed — serialized record-by-record (point, FOM, worker, issue/finish
times) as canonical JSON.  ``tests/test_golden_trajectories.py`` replays the
scenarios and compares byte-for-byte in ``surrogate_update="full"`` mode;
see that module and ``tests/golden/README.md`` for what is (and is not)
guaranteed in incremental mode.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/golden/regenerate.py

and commit the updated ``tests/golden/*.json`` together with the change that
motivated them.  ``--only <scenario>`` restricts the refresh to one fixture
and ``--check`` verifies the committed files against a fresh replay without
writing anything.  Never regenerate to silence a failure you cannot explain
— a golden diff *is* the regression the harness exists to catch.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent

#: scenario name -> (algorithm label, problem factory name, driver kwargs).
#: Budgets are tiny on purpose: goldens assert exact trajectories, not
#: optimizer quality, and must stay cheap enough for every tier-1 run.
SCENARIOS = {
    # Sequential LCB: no pending points, so the incremental mode must
    # reproduce this golden byte-for-byte as well.
    "lcb-branin": ("LCB", "branin", dict(rng=1, n_init=5, max_evals=10)),
    # The paper's algorithm proper: asynchronous, penalized, B=3.
    "easybo-async-branin": ("EasyBO-3", "branin", dict(rng=7, n_init=5, max_evals=12)),
    # Synchronous pBO baseline on a different landscape.
    "pbo-sphere2": ("pBO-3", "sphere2", dict(rng=3, n_init=5, max_evals=11)),
    # The non-default pending-point policies (repro.core.pending), same seed
    # and landscape as easybo-async-branin so the trajectories are directly
    # comparable: local penalisation, pessimistic sampling, and standard
    # acquisition.  Adding them here automatically enrolls each policy in
    # the byte-for-byte replay and the kill/resume chaos sweeps.
    "easybo-lp-branin": ("EasyBO-LP-3", "branin", dict(rng=7, n_init=5, max_evals=12)),
    "easybo-pess-branin": ("EasyBO-PESS-3", "branin", dict(rng=7, n_init=5, max_evals=12)),
    "easybo-std-branin": ("EasyBO-A-3", "branin", dict(rng=7, n_init=5, max_evals=12)),
    # The budgeted sparse posterior (repro.gp.sparse) under a deliberately
    # tiny inducing budget, async like the paper's algorithm: pins the
    # inducing selection, the DTC factor arithmetic, and the sparse
    # hallucinated view byte-for-byte, and enrolls the sparse path in the
    # kill/resume chaos sweeps.
    "easybo-sparse-branin": (
        "EasyBO-3",
        "branin",
        dict(rng=11, n_init=5, max_evals=12, surrogate="sparse", n_inducing=4),
    ),
}

#: Acquisition settings shared by every scenario (small but deterministic).
COMMON_KWARGS = dict(acq_candidates=128, acq_restarts=1)


def make_problem(name: str):
    from repro.circuits import branin, sphere

    if name == "branin":
        return branin()
    if name == "sphere2":
        return sphere(2)
    raise ValueError(f"unknown golden problem {name!r}")


def run_scenario(
    name: str, *, surrogate_update: str = "full", refit_every: int = 1, **extra
):
    """Replay one scenario; deterministic given the scenario's seed.

    ``extra`` driver kwargs (e.g. ``journal=``, ``checkpoint_every=``) let the
    crash-resume harness run the *same* scenarios with a write-ahead journal
    attached and compare against the same fixtures.
    """
    from repro.core.easybo import make_algorithm

    label, problem_name, kwargs = SCENARIOS[name]
    algorithm = make_algorithm(
        label,
        make_problem(problem_name),
        surrogate_update=surrogate_update,
        refit_every=refit_every,
        **COMMON_KWARGS,
        **kwargs,
        **extra,
    )
    return algorithm.run()


def trajectory_payload(name: str, result) -> dict:
    """JSON-serializable trajectory of one run.

    Floats are kept at full precision: ``json`` serializes via ``repr``,
    which round-trips ``float`` exactly, so equality on the parsed payload
    is equality on the underlying bits.
    """
    label, problem_name, kwargs = SCENARIOS[name]
    return {
        "scenario": name,
        "algorithm": result.algorithm,
        "problem": result.problem,
        "seed": kwargs["rng"],
        "n_evaluations": result.n_evaluations,
        "best_fom": result.best_fom,
        "records": [
            {
                "index": r.index,
                "worker": r.worker,
                "batch": r.batch,
                "x": [float(v) for v in r.x],
                "fom": r.fom,
                "issue_time": r.issue_time,
                "finish_time": r.finish_time,
                "status": r.status,
            }
            for r in result.trace.records
        ],
    }


def canonical_json(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def golden_path(name: str) -> pathlib.Path:
    return GOLDEN_DIR / f"{name}.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only", default=None, metavar="SCENARIO", choices=sorted(SCENARIOS),
        help="refresh/check a single scenario (e.g. easybo-sparse-branin)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="verify committed fixtures against a fresh replay; write nothing",
    )
    args = parser.parse_args(argv)
    names = SCENARIOS if args.only is None else (args.only,)
    drifted = []
    for name in names:
        result = run_scenario(name, surrogate_update="full", refit_every=1)
        path = golden_path(name)
        expected = canonical_json(trajectory_payload(name, result))
        if args.check:
            actual = path.read_text() if path.is_file() else None
            if actual != expected:
                drifted.append(path.name)
                print(f"DRIFT {path}")
            else:
                print(f"ok    {path}")
        else:
            path.write_text(expected)
            print(f"wrote {path} ({result.n_evaluations} records)")
    if drifted:
        print(f"{len(drifted)} fixture(s) drifted: {', '.join(drifted)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
