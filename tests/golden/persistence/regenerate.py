"""Regenerate the golden persistence fixtures (``runs_v1.json`` .. ``runs_v8.json``).

Each fixture is a hand-built, byte-stable runs file in one historical
format version, so ``load_runs`` is pinned against every version it claims
to read (``tests/test_persistence_formats.py`` asserts both loadability and
byte-exactness of the committed files).

The payloads are version-additive, mirroring the real history:

* v1 — all-success minimal run (no failure semantics).
* v2 — failure semantics: per-record status/error/attempts, run-level
  ``n_failures`` / ``n_retries`` (the canonical run gains a crashed and an
  orphaned evaluation).
* v3 — optional ``surrogate_stats`` block.
* v4 — optional final ``rng_state`` block.
* v5 — optional ``pool_telemetry`` block.
* v6 — optional ``metrics`` block (MetricsRegistry snapshot).
* v7 — optional ``pending_policy`` label (async pending-point policy).
* v8 — optional ``surrogate`` label (posterior configuration: exact /
  sparse / auto) and the ``n_mode_switches`` surrogate-stats counter.

Run ``python tests/golden/persistence/regenerate.py`` after an intentional
format change; never edit the JSON files by hand.  ``--only <fixture>``
restricts the refresh to one file (e.g. ``--only runs_v8``) and ``--check``
verifies the committed files against the generator without writing.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).parent

#: The two canonical runs: v1 predates failure semantics, so its run is
#: all-success; v2+ share a failure/orphan-rich run exercising every field.
_SUCCESS_RECORDS = [
    {
        "index": 0, "worker": 0, "x": [0.25, -0.5], "fom": -3.2,
        "issue_time": 0.0, "finish_time": 10.0, "feasible": True, "batch": None,
    },
    {
        "index": 1, "worker": 1, "x": [-0.75, 0.1], "fom": -2.4,
        "issue_time": 0.0, "finish_time": 12.0, "feasible": True, "batch": None,
    },
    {
        "index": 2, "worker": 0, "x": [0.6, 0.4], "fom": -1.5,
        "issue_time": 10.0, "finish_time": 21.0, "feasible": True, "batch": None,
    },
]

_FAILURE_RECORDS = [
    dict(_SUCCESS_RECORDS[0], status="ok", error=None, attempts=1),
    {
        "index": 1, "worker": 1, "x": [-0.75, 0.1], "fom": None,
        "issue_time": 0.0, "finish_time": 12.0, "feasible": False,
        "batch": None, "status": "failed",
        "error": "simulation diverged", "attempts": 3,
    },
    dict(_SUCCESS_RECORDS[2], status="ok", error=None, attempts=2),
    {
        "index": 3, "worker": 1, "x": [-0.2, -0.9], "fom": None,
        "issue_time": 12.0, "finish_time": 30.0, "feasible": False,
        "batch": None, "status": "orphaned",
        "error": "worker lease expired", "attempts": 1,
    },
]

_SURROGATE_STATS = {
    "n_refits": 2, "n_full_fits": 1, "n_refactorizations": 1,
    "n_incremental_updates": 1, "n_fallbacks": 0,
    "n_hallucinated_views": 2, "n_hallucinated_rebuilds": 0,
    "refit_seconds": [0.01, 0.02],
    "hallucination_seconds": [0.001, 0.002],
}

_RNG_STATE = {
    "bit_generator": "PCG64",
    "state": {"state": 35399562948360463058890781895381311971, "inc": 87136372517582989555478159403783844777},
    "has_uint32": 0,
    "uinteger": 0,
}

_POOL_TELEMETRY = {
    "backend": "process", "n_workers": 2, "n_tasks": 4,
    "n_respawns": 1, "n_heartbeat_expiries": 1, "n_timeout_kills": 0,
    "elapsed_seconds": 30.0,
    "worker_busy_seconds": [21.0, 30.0], "worker_tasks": [2, 2],
    "queue_wait_seconds": [0.1, 0.2, 0.15, 0.3],
    "heartbeat_age_seconds": [0.2, 0.4],
}

_METRICS = {
    "counters": {
        "driver.evaluations": 4, "driver.failures": 2, "driver.retries": 3,
        "driver.orphans": 1, "driver.reissues": 0,
        "pool.submits": 4, "pool.completions": 4,
        "surrogate.refits": 2, "surrogate.full_fits": 1,
    },
    "gauges": {"pool.workers": 2.0, "pool.utilization": 0.85},
    "histograms": {
        "pool.queue_wait_seconds": {
            "count": 4, "total": 0.75, "min": 0.1, "max": 0.3,
        },
        "surrogate.refit_seconds": {
            "count": 2, "total": 0.03, "min": 0.01, "max": 0.02,
        },
    },
}


def build_run(version: int) -> dict:
    """The canonical run serialized the way format ``version`` wrote it."""
    if version == 1:
        return {
            "version": 1,
            "algorithm": "EasyBO-2",
            "problem": "golden-sphere",
            "best_x": [0.6, 0.4],
            "best_fom": -1.5,
            "n_evaluations": 3,
            "wall_clock": 21.0,
            "n_workers": 2,
            "records": [dict(r) for r in _SUCCESS_RECORDS],
        }
    run = {
        "version": version,
        "algorithm": "EasyBO-2",
        "problem": "golden-sphere",
        "best_x": [0.6, 0.4],
        "best_fom": -1.5,
        "n_evaluations": 4,
        "wall_clock": 30.0,
        "n_failures": 2,
        "n_retries": 3,
        "n_workers": 2,
        "records": [dict(r) for r in _FAILURE_RECORDS],
    }
    if version >= 3:
        run["surrogate_stats"] = dict(_SURROGATE_STATS)
    if version >= 4:
        run["rng_state"] = dict(_RNG_STATE)
    if version >= 5:
        run["pool_telemetry"] = dict(_POOL_TELEMETRY)
    if version >= 6:
        run["metrics"] = dict(_METRICS)
    if version >= 7:
        run["pending_policy"] = "hallucinate"
    if version >= 8:
        # v8 writers also gained the n_mode_switches stats counter.
        run["surrogate_stats"] = dict(_SURROGATE_STATS, n_mode_switches=1)
        run["surrogate"] = "auto"
    return run


def build_payload(version: int) -> dict:
    """A save_runs-shaped grid holding the canonical run."""
    return {"version": version, "grid": {"EasyBO-2": [build_run(version)]}}


def render(version: int) -> str:
    """Byte-stable JSON text of one fixture file."""
    return json.dumps(build_payload(version), indent=2, sort_keys=True) + "\n"


ALL_VERSIONS = tuple(range(1, 9))


def _parse_only(only: str) -> int:
    """Accept ``8``, ``v8``, ``runs_v8`` or ``runs_v8.json``."""
    token = only.removesuffix(".json").removeprefix("runs_").removeprefix("v")
    try:
        version = int(token)
    except ValueError:
        raise SystemExit(f"unknown fixture {only!r}; expected e.g. runs_v8")
    if version not in ALL_VERSIONS:
        raise SystemExit(
            f"unknown fixture version {version}; have {list(ALL_VERSIONS)}"
        )
    return version


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only", default=None, metavar="FIXTURE",
        help="refresh/check a single fixture (e.g. runs_v8)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="verify committed fixtures against the generator; write nothing",
    )
    args = parser.parse_args(argv)
    versions = ALL_VERSIONS if args.only is None else (_parse_only(args.only),)
    drifted = []
    for version in versions:
        path = HERE / f"runs_v{version}.json"
        expected = render(version)
        if args.check:
            actual = path.read_text(encoding="utf-8") if path.is_file() else None
            if actual != expected:
                drifted.append(path.name)
                print(f"DRIFT {path}")
            else:
                print(f"ok    {path}")
        else:
            path.write_text(expected, encoding="utf-8")
            print(f"wrote {path}")
    if drifted:
        print(f"{len(drifted)} fixture(s) drifted: {', '.join(drifted)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
