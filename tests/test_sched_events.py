"""Tests for the discrete-event queue."""

import pytest

from repro.sched.events import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_among_ties(self):
        q = EventQueue()
        for name in "abc":
            q.push(1.0, name)
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(5.0, "x")
        assert q.peek_time() == 5.0
        assert len(q) == 1

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()
        with pytest.raises(IndexError):
            EventQueue().peek_time()

    def test_bool_and_len(self):
        q = EventQueue()
        assert not q
        q.push(0.0, None)
        assert q and len(q) == 1

    def test_rejects_nonfinite_time(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(float("nan"), "x")
        with pytest.raises(ValueError):
            q.push(float("inf"), "x")

    def test_unorderable_payloads_ok(self):
        q = EventQueue()
        q.push(1.0, {"a": 1})
        q.push(1.0, {"b": 2})  # dicts are not comparable; counter breaks tie
        assert q.pop().payload == {"a": 1}
