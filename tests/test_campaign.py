"""Unit tests for the standalone ask/tell :class:`Campaign` core.

Covers the budget/pending bookkeeping, the ``tell`` action vocabulary, the
cold-start dedupe against in-flight points (the ``batch_size >= n_init``
regression), label parsing in :func:`make_campaign`, the campaign-journal
crash/resume path, and the "format newer than supported" guards added to
every persistence reader (run files, run journals, campaign journals).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.circuits.benchmarks import sphere
from repro.core import (
    Campaign,
    CampaignError,
    CampaignExhausted,
    JournalError,
    JournalWriter,
    load_runs,
    make_algorithm,
    make_campaign,
    resume,
    resume_campaign,
    run_from_dict,
    run_to_dict,
    save_runs,
)
from repro.core import campaign as campaign_mod
from repro.core import persistence
from repro.core.journal import JOURNAL_VERSION
from repro.core.problem import EvaluationResult
from repro.obs import MetricsRegistry, Observability
from repro.utils.rng import rng_state_to_dict

ACQ = dict(acq_candidates=32, acq_restarts=1)


def _campaign(label="LCB", *, n_init=3, max_evals=8, rng=0, **kwargs):
    return make_campaign(
        label, sphere(2), n_init=n_init, max_evals=max_evals, rng=rng, **ACQ, **kwargs
    )


class TestAskTellBasics:
    def test_doe_rows_served_in_order_then_tracked_pending(self):
        campaign = _campaign()
        first = campaign.ask()
        design = campaign.design
        np.testing.assert_array_equal(first, design[0])
        rest = campaign.ask(2)
        np.testing.assert_array_equal(np.vstack(rest), design[1:3])
        assert campaign.n_pending == 3 and campaign.issued == 3
        np.testing.assert_array_equal(campaign.pending_matrix(), design[:3])

    def test_tell_removes_pending_and_feeds_surrogate(self):
        campaign = _campaign()
        problem = campaign.problem
        for _ in range(3):
            x = campaign.ask()
            assert campaign.tell(x, problem.evaluate(x)) == "added"
        assert campaign.n_pending == 0
        assert campaign.n_observations == 3
        assert campaign.best() is not None

    def test_ask_after_budget_raises_campaign_exhausted(self):
        campaign = _campaign(n_init=2, max_evals=2)
        campaign.ask(2)
        assert campaign.exhausted and not campaign.done
        with pytest.raises(CampaignExhausted):
            campaign.ask()

    def test_done_requires_all_pending_told(self):
        campaign = _campaign(n_init=2, max_evals=2)
        points = campaign.ask(2)
        assert not campaign.done
        for x in points:
            campaign.tell(x, campaign.problem.evaluate(x))
        assert campaign.done

    def test_block_ask_never_overruns_budget(self):
        campaign = _campaign(n_init=2, max_evals=3)
        campaign.ask(2)
        assert len(campaign.ask(5)) == 1  # clamped to the remaining budget
        assert campaign.exhausted


class TestTellActions:
    def _primed(self, **kwargs):
        campaign = _campaign(n_init=2, max_evals=8, **kwargs)
        for x in campaign.ask(2):
            campaign.tell(x, campaign.problem.evaluate(x))
        return campaign

    def test_failed_result_imputed_by_default(self):
        campaign = self._primed()
        x = campaign.ask()
        action = campaign.tell(x, EvaluationResult.failed("sim died"))
        assert action == "imputed"
        assert campaign.n_observations == 3
        # Imputation is pessimistic: below every genuine observation.
        assert campaign.session.y[-1] < campaign.session.y[:-1].min()

    def test_failed_result_dropped_under_drop_policy(self):
        campaign = self._primed(failure_policy={"on_failure": "drop"})
        x = campaign.ask()
        assert campaign.tell(x, EvaluationResult.failed("sim died")) == "dropped"
        assert campaign.n_observations == 2

    def test_orphan_reissued_once_then_imputed(self):
        campaign = self._primed()
        x = campaign.ask()
        orphan = EvaluationResult.failed("lease expired", status="orphaned")
        assert campaign.tell(x, orphan) == "reissued"
        # Budget-neutral: still pending (moved to the end), still issued=3.
        assert campaign.n_pending == 1 and campaign.issued == 3
        # Second orphan of the same point exhausts max_reissues -> imputed.
        assert campaign.tell(x, orphan) == "imputed"
        assert campaign.n_pending == 0

    def test_tell_for_never_asked_point_raises(self):
        # Regression: this used to be silently absorbed as a foreign
        # observation, hiding client bugs (wrong point, wrong campaign).
        campaign = self._primed()
        with pytest.raises(CampaignError, match="never asked"):
            campaign.tell(
                np.array([0.123, 0.456]),
                campaign.problem.evaluate(np.array([0.123, 0.456])),
            )

    def test_tell_twice_for_same_point_raises(self):
        campaign = self._primed()
        x = campaign.ask()
        result = campaign.problem.evaluate(x)
        assert campaign.tell(x, result) == "added"
        with pytest.raises(CampaignError, match="never asked"):
            campaign.tell(x, result)
        assert campaign.n_observations == 3  # the double tell changed nothing


class TestColdStartDedupe:
    """``batch_size >= n_init``: cold proposals must dodge in-flight points."""

    def test_cold_point_redraws_on_collision(self, monkeypatch):
        obs = Observability(metrics=MetricsRegistry())
        campaign = _campaign("EasyBO-4", n_init=2, max_evals=8, rng=0, obs=obs)
        pending = campaign.ask(2)  # the whole DoE, still in flight
        real = campaign_mod.random_design
        calls = {"n": 0}

        def rigged(bounds, n, rng):
            calls["n"] += 1
            if calls["n"] == 1:  # first cold draw collides with pending[0]
                return np.asarray([pending[0]])
            return real(bounds, n, rng)

        monkeypatch.setattr(campaign_mod, "random_design", rigged)
        x = campaign.ask()
        assert calls["n"] >= 2  # the collision forced a redraw
        assert obs.metrics.counter("campaign.cold_redraws") >= 1
        assert all(not np.array_equal(x, p) for p in pending)

    def test_cold_block_dedupes_within_block_and_against_pending(self, monkeypatch):
        campaign = _campaign("pBO-3", n_init=2, max_evals=8, rng=1)
        pending = campaign.ask(2)
        real = campaign_mod.random_design
        calls = {"n": 0}

        def rigged(bounds, n, rng):
            calls["n"] += 1
            if calls["n"] == 1:  # whole cold block collides with pending[0]
                return np.vstack([pending[0], pending[0], pending[0]])
            return real(bounds, n, rng)

        monkeypatch.setattr(campaign_mod, "random_design", rigged)
        block = campaign.ask(3)
        keys = {np.asarray(p).tobytes() for p in [*pending, *block]}
        assert len(keys) == 5  # all five in-flight points distinct

    def test_batch_larger_than_n_init_runs_clean_end_to_end(self, monkeypatch):
        """Driver-level regression: EasyBO with B=6 > n_init=4 completes with
        every issued point unique even when the first cold draw collides."""
        driver = make_algorithm(
            "EasyBO-6", sphere(2), n_init=4, max_evals=12, rng=5, **ACQ
        )
        real = campaign_mod.random_design
        state = {"rigged": False}

        def rigged(bounds, n, rng):
            if not state["rigged"] and n == 1 and driver.campaign.pending:
                state["rigged"] = True
                return np.asarray([driver.campaign.pending[0]])
            return real(bounds, n, rng)

        monkeypatch.setattr(campaign_mod, "random_design", rigged)
        result = driver.run()
        assert state["rigged"], "the collision rig never fired"
        assert result.n_evaluations == 12
        xs = [r.x.tobytes() for r in result.trace.records]
        assert len(set(xs)) == len(xs)


class TestMakeCampaign:
    @pytest.mark.parametrize(
        "label,algorithm,kind,batch",
        [
            ("LCB", "LCB", "sequential", 1),
            ("EasyBO", "EasyBO", "sequential", 1),
            ("EasyBO-3", "EasyBO-3", "async", 3),
            ("EasyBO-A-4", "EasyBO-A-4", "async", 4),
            ("pBO-3", "pBO-3", "sync", 3),
            ("EasyBO-SP-2", "EasyBO-SP-2", "sync", 2),
        ],
    )
    def test_label_round_trip(self, label, algorithm, kind, batch):
        campaign = _campaign(label)
        assert campaign.algorithm == algorithm
        assert campaign.strategy.kind == kind
        assert campaign.batch_size == batch

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="campaign form"):
            make_campaign("DE", sphere(2))

    def test_unparseable_label_rejected(self):
        with pytest.raises(ValueError, match="cannot parse"):
            make_campaign("3-easybo", sphere(2))


class TestPendingPolicySelection:
    @pytest.mark.parametrize(
        "label,policy",
        [
            ("EasyBO-3", "hallucinate"),
            ("EasyBO-A-3", "none"),
            ("EasyBO-LP-3", "lp"),
            ("EasyBO-PESS-3", "pessimistic"),
        ],
    )
    def test_label_implies_policy(self, label, policy):
        campaign = _campaign(label)
        assert campaign.strategy.pending_policy.name == policy
        assert campaign._config["pending_policy"] == policy
        assert campaign.algorithm == label

    @pytest.mark.parametrize(
        "policy,algorithm",
        [
            ("hallucinate", "EasyBO-3"),
            ("none", "EasyBO-A-3"),
            ("lp", "EasyBO-LP-3"),
            ("pessimistic", "EasyBO-PESS-3"),
        ],
    )
    def test_kwarg_selects_policy_and_renames(self, policy, algorithm):
        # The kwarg spelling and the label spelling are interchangeable:
        # an explicit pending_policy wins and the display name follows it.
        campaign = _campaign("EasyBO-3", pending_policy=policy)
        assert campaign.strategy.pending_policy.name == policy
        assert campaign.algorithm == algorithm

    def test_policy_on_batch_one_forces_async_form(self):
        campaign = _campaign("EasyBO", pending_policy="lp")
        assert campaign.strategy.kind == "async"
        assert campaign.algorithm == "EasyBO-LP"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown pending policy"):
            _campaign("EasyBO-3", pending_policy="krig")

    @pytest.mark.parametrize("label", ["LCB", "pBO-3"])
    def test_non_async_families_reject_policy(self, label):
        with pytest.raises(ValueError, match="asynchronous EasyBO family"):
            _campaign(label, pending_policy="lp")


class TestCampaignJournalResume:
    def _drive(self, campaign, n_tells, n_extra_asks):
        problem = campaign.problem
        for _ in range(n_tells):
            x = campaign.ask()
            campaign.tell(x, problem.evaluate(x))
        return [campaign.ask() for _ in range(n_extra_asks)]

    @pytest.mark.parametrize(
        "label", ["EasyBO-3", "EasyBO-A-3", "EasyBO-LP-3", "EasyBO-PESS-3"]
    )
    def test_resume_restores_pending_and_rng_bit_exact(self, label, tmp_path):
        # Every pending policy must survive the journal round trip: the
        # resumed campaign rebuilds the same policy (journaled config beats
        # the label default) and continues the exact random stream.
        journal = tmp_path / "campaign.journal"
        kwargs = dict(label=label, n_init=3, max_evals=12, rng=11)
        crashed = _campaign(**kwargs, journal=journal)
        in_flight = self._drive(crashed, n_tells=4, n_extra_asks=2)
        crashed.close()  # simulate the process dying with 2 points in flight

        twin = _campaign(**kwargs)  # the uninterrupted reference
        twin_flight = self._drive(twin, n_tells=4, n_extra_asks=2)

        resumed = resume_campaign(journal, problem=sphere(2))
        assert resumed.issued == crashed.issued == 6
        np.testing.assert_array_equal(
            resumed.pending_matrix(), np.vstack(in_flight)
        )
        np.testing.assert_array_equal(
            resumed.pending_matrix(), np.vstack(twin_flight)
        )
        # The next proposal continues the exact random stream: both the
        # resumed and the uninterrupted campaign ask for the same point.
        np.testing.assert_array_equal(resumed.ask(), twin.ask())
        assert rng_state_to_dict(resumed.rng) == rng_state_to_dict(twin.rng)
        assert (
            resumed.strategy.pending_policy.name
            == twin.strategy.pending_policy.name
        )

    def test_resume_replays_tells_in_order(self, tmp_path):
        journal = tmp_path / "campaign.journal"
        kwargs = dict(label="LCB", n_init=2, max_evals=6, rng=3)
        crashed = _campaign(**kwargs, journal=journal)
        problem = crashed.problem
        for _ in range(2):
            x = crashed.ask()
            crashed.tell(x, problem.evaluate(x))
        x = crashed.ask()
        crashed.tell(x, EvaluationResult.failed("sim died"))
        crashed.close()

        resumed = resume_campaign(journal, problem=sphere(2))
        assert resumed.n_observations == 3  # 2 added + 1 imputed
        np.testing.assert_array_equal(resumed.session.y, crashed.session.y)

    def test_missing_start_record_rejected(self, tmp_path):
        journal = tmp_path / "empty.journal"
        writer = JournalWriter(journal)
        writer.append({"type": "tell"})
        writer.close()
        with pytest.raises(JournalError, match="campaign_start"):
            resume_campaign(journal, problem=sphere(2))


class TestFormatVersionGuards:
    """Readers must refuse newer formats loudly, not misparse them."""

    def _run_result(self):
        return make_algorithm("LCB", sphere(2), n_init=2, max_evals=4, rng=0, **ACQ).run()

    def test_run_from_dict_rejects_newer_version(self):
        data = run_to_dict(self._run_result())
        data["version"] = persistence._FORMAT_VERSION + 1
        with pytest.raises(
            ValueError,
            match=rf"run format v{persistence._FORMAT_VERSION + 1} is newer "
            rf"than supported v{persistence._FORMAT_VERSION}",
        ):
            run_from_dict(data)

    def test_run_from_dict_rejects_unknown_version(self):
        data = run_to_dict(self._run_result())
        data["version"] = "eleven"
        with pytest.raises(ValueError, match="unsupported run format"):
            run_from_dict(data)

    def test_load_runs_rejects_newer_grid_version(self, tmp_path):
        path = tmp_path / "grid.json"
        save_runs(path, {"LCB": [self._run_result()]})
        payload = json.loads(path.read_text())
        payload["version"] = persistence._FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="grid format .* newer than supported"):
            load_runs(path)

    def test_resume_rejects_newer_run_journal(self, tmp_path):
        journal = tmp_path / "run.journal"
        writer = JournalWriter(journal)
        writer.append(
            {
                "type": "run_start",
                "journal_version": JOURNAL_VERSION + 1,
                "algorithm": "LCB",
                "problem": "sphere2",
                "n_workers": 1,
                "config": {},
                "rng_state": rng_state_to_dict(np.random.default_rng(0)),
            }
        )
        writer.close()
        with pytest.raises(
            JournalError,
            match=rf"run journal format v{JOURNAL_VERSION + 1} is newer than "
            rf"supported v{JOURNAL_VERSION}",
        ):
            resume(journal)

    def test_resume_campaign_rejects_newer_campaign_journal(self, tmp_path):
        journal = tmp_path / "campaign.journal"
        campaign = _campaign("LCB", n_init=2, max_evals=4, rng=0, journal=journal)
        campaign.ask()
        campaign.close()
        events = [json.loads(line.split(" ", 3)[3]) for line in journal.read_text().splitlines()]
        bumped = campaign_mod.CAMPAIGN_JOURNAL_VERSION + 1
        events[0]["campaign_version"] = bumped
        journal.unlink()
        writer = JournalWriter(journal)
        for event in events:
            writer.append(event)
        writer.close()
        with pytest.raises(
            JournalError,
            match=rf"campaign journal format v{bumped} is newer than supported",
        ):
            resume_campaign(journal, problem=sphere(2))
