"""Chaos proxy + retrying client: campaigns survive a hostile network.

The proxy (:mod:`repro.distributed.chaos`) drops, delays, truncates, and
corrupts frames and kills connections mid-stream — seeded, so every run of
a given ``REPRO_CHAOS_SEED`` injects the identical fault schedule.  The
contract under test is the tentpole's acceptance criterion: a campaign
driven through the proxy by a retrying client, with the server kill -9'd
and restarted mid-run, finishes with a trajectory byte-for-byte equal to
an uninterrupted local twin — retries never double-issue points or
double-count observations.
"""

from __future__ import annotations

import os
import socket
import threading
import time

import numpy as np
import pytest

from repro.circuits.benchmarks import sphere
from repro.core import make_campaign
from repro.core.journal import frame_record
from repro.distributed import (
    CampaignClient,
    ChaosConfig,
    ChaosProxy,
    serve,
)
from repro.distributed.transport import FrameCorruptionError, FramedConnection
from repro.obs import MetricsRegistry, Observability

pytestmark = pytest.mark.chaos

CONFIG = dict(n_init=3, max_evals=6, acq_candidates=32, acq_restarts=1)

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def _serve(journal_dir):
    return serve(journal_dir=journal_dir, max_workers=4,
                 obs=Observability(metrics=MetricsRegistry()),
                 background=True)


def _kill(server):
    server.abort()
    server._thread.join(timeout=5.0)
    assert not server._thread.is_alive()


def _twin(seed):
    return make_campaign("EasyBO-2", sphere(2), rng=seed, **CONFIG)


def _tcp_pair():
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    left = socket.create_connection(("127.0.0.1", listener.getsockname()[1]))
    right, _ = listener.accept()
    listener.close()
    return left, right


class TestFrameCorruption:
    def test_corrupt_frame_raises_typed_error_with_offset(self):
        left, right = _tcp_pair()
        receiver = FramedConnection(right)
        good = frame_record({"type": "fine"})
        left.sendall(good)
        left.sendall(b"J1 0000dead beefcafe {\"type\": \"mangled\"}\n")
        assert receiver.recv(timeout=5.0) == {"type": "fine"}
        with pytest.raises(FrameCorruptionError) as excinfo:
            receiver.recv(timeout=5.0)
        assert excinfo.value.offset == len(good)
        assert excinfo.value.detail  # which invariant broke, for diagnosis
        left.close()
        receiver.close()

    def test_server_drops_only_the_corrupt_client(self, tmp_path):
        server = _serve(tmp_path)
        try:
            healthy = CampaignClient(port=server.port)
            vandal = socket.create_connection(("127.0.0.1", server.port))
            vandal.sendall(b"this is not a frame\n")
            deadline = time.monotonic() + 5.0
            while server.frame_corruptions == 0:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            # The vandal's socket is dead; everyone else is still served.
            assert vandal.recv(1) == b""
            assert healthy.ping()["ok"]
            assert healthy.metrics()["frame_corruptions"] == 1
            vandal.close()
            healthy.close()
        finally:
            server.stop()


class TestClientDesync:
    def test_late_reply_to_timed_out_call_is_discarded(self):
        """The seq-only desync bug: after a recv timeout, the *late* reply
        to the abandoned attempt must never be parsed as the answer to the
        next call.  A scripted server answers the first logical call only
        after seeing its retry — then both replies are on the wire."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        errors = []

        def script():
            try:
                sock, _ = listener.accept()
                conn = FramedConnection(sock)
                first = conn.recv(timeout=10.0)
                retry = conn.recv(timeout=10.0)  # arrives after the timeout
                assert retry["request_id"] == first["request_id"]
                assert retry["attempt"] == 1
                for request in (first, retry):
                    conn.send({"seq": request["seq"], "ok": True,
                               "request_id": request["request_id"],
                               "points": [[0.5, 0.5]]})
                nxt = conn.recv(timeout=10.0)
                conn.send({"seq": nxt["seq"], "ok": True,
                           "request_id": nxt["request_id"],
                           "status": {"state": "active"}})
                conn.close()
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        thread = threading.Thread(target=script, daemon=True)
        thread.start()
        client = CampaignClient(port=port, timeout=0.3, retries=3,
                                backoff=0.01)
        reply = client.call("ask", campaign="c0000")
        assert reply["points"] == [[0.5, 0.5]]
        assert client.n_retries == 1
        # The duplicate reply to the retried ask is still buffered; the next
        # call must skip it by request_id instead of consuming it.
        status = client.call("status", campaign="c0000")
        assert status["status"] == {"state": "active"}
        assert "points" not in status
        client.close()
        thread.join(timeout=5.0)
        listener.close()
        assert not errors


class TestChaosProxy:
    def test_transparent_relay_with_zero_faults(self, tmp_path):
        problem, twin = sphere(2), _twin(70)
        server = _serve(tmp_path)
        try:
            with ChaosProxy(server.port, seed=CHAOS_SEED) as proxy:
                with CampaignClient(port=proxy.port) as client:
                    cid = client.create("EasyBO-2", "sphere2",
                                        config=dict(rng=70, **CONFIG))
                    while True:
                        x = client.ask(cid)[0]
                        np.testing.assert_array_equal(x, twin.ask())
                        result = problem.evaluate(x)
                        reply = client.tell(cid, x, result)
                        twin.tell(x, result)
                        if reply["done"]:
                            break
                assert proxy.stats["frames"] > 0
                assert proxy.stats["dropped"] == 0
                assert proxy.stats["corrupted"] == 0
        finally:
            server.stop()

    def test_chaos_sweep_with_server_kill_is_bit_exact(self, tmp_path):
        """The acceptance criterion: drop/delay/truncate/corrupt/disconnect
        faults on every frame, plus a kill -9 + restart mid-campaign, and
        the trajectory still matches the uninterrupted twin byte for byte."""
        problem, twin = sphere(2), _twin(71)
        server = _serve(tmp_path)
        config = ChaosConfig(drop=0.08, delay=0.05, truncate=0.04,
                             corrupt=0.04, disconnect=0.04, delay_s=0.01)
        with ChaosProxy(server.port, config=config, seed=CHAOS_SEED) as proxy:
            client = CampaignClient(port=proxy.port, timeout=0.35,
                                    retries=10, backoff=0.01)
            cid = client.create("EasyBO-2", "sphere2",
                                config=dict(rng=71, **CONFIG))
            rounds = 0
            while True:
                x = client.ask(cid)[0]
                np.testing.assert_array_equal(x, twin.ask())
                result = problem.evaluate(x)
                reply = client.tell(cid, x, result)
                twin.tell(x, result)
                if reply["done"]:
                    break
                rounds += 1
                if rounds == 2:  # kill -9 mid-campaign, behind the chaos
                    _kill(server)
                    server = _serve(tmp_path)
                    proxy.set_upstream(server.port)
            assert twin.done
            status = client.status(cid)
            assert status["state"] == "finished"
            # Retries never double-issued or double-counted.
            assert status["issued"] == CONFIG["max_evals"]
            assert status["n_observations"] == CONFIG["max_evals"]
            client.close()
        assert proxy.stats["frames"] > 20
        faults = sum(proxy.stats[k] for k in
                     ("dropped", "delayed", "truncated", "corrupted",
                      "disconnects"))
        assert faults > 0, "chaos config injected nothing; sweep is vacuous"
        server.stop()

    def test_restart_between_every_operation(self, tmp_path):
        """The harshest schedule: kill -9 and restart the server after
        *every* client operation.  Every recovery replays the manifest and
        journals; the trajectory never drifts from the twin."""
        problem, twin = sphere(2), _twin(72)
        server = _serve(tmp_path)
        with ChaosProxy(server.port, seed=CHAOS_SEED) as proxy:
            client = CampaignClient(port=proxy.port, timeout=2.0,
                                    retries=8, backoff=0.02)

            def restart():
                nonlocal server
                _kill(server)
                server = _serve(tmp_path)
                proxy.set_upstream(server.port)

            cid = client.create("EasyBO-2", "sphere2",
                                config=dict(rng=72, **CONFIG))
            restart()
            while True:
                x = client.ask(cid)[0]
                np.testing.assert_array_equal(x, twin.ask())
                restart()
                result = problem.evaluate(x)
                reply = client.tell(cid, x, result)
                twin.tell(x, result)
                if reply["done"]:
                    break
                restart()
            assert twin.done
            status = client.status(cid)
            assert status["state"] == "finished"
            assert status["issued"] == CONFIG["max_evals"]
            assert client.n_reconnects > 0
            client.close()
        server.stop()
