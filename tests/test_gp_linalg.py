"""Tests for repro.gp.linalg."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp.linalg import (
    cholesky_append,
    cholesky_delete_row,
    cholesky_rank1_downdate,
    cholesky_rank1_update,
    cholesky_shrink,
    cholesky_solve,
    cholesky_update,
    jittered_cholesky,
    log_det_from_cholesky,
    solve_lower,
)


def random_spd(n, rng, eig_floor=1e-3):
    A = rng.standard_normal((n, n))
    return A @ A.T + eig_floor * np.eye(n)


class TestJitteredCholesky:
    def test_spd_no_jitter(self):
        rng = np.random.default_rng(0)
        K = random_spd(6, rng)
        L, jitter = jittered_cholesky(K)
        assert jitter == 0.0
        np.testing.assert_allclose(L @ L.T, K, atol=1e-10)

    def test_singular_gets_jitter(self):
        v = np.array([[1.0, 2.0, 3.0]])
        K = v.T @ v  # rank 1, not PD
        L, jitter = jittered_cholesky(K)
        assert jitter > 0.0
        np.testing.assert_allclose(L @ L.T, K + jitter * np.eye(3), atol=1e-8)

    def test_rejects_nonfinite(self):
        with pytest.raises(np.linalg.LinAlgError):
            jittered_cholesky(np.array([[np.nan]]))

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            jittered_cholesky(np.zeros((2, 3)))

    def test_hopeless_matrix_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            jittered_cholesky(np.array([[-1e12, 0.0], [0.0, -1e12]]))


class TestSolves:
    def test_cholesky_solve_matches_direct(self):
        rng = np.random.default_rng(1)
        K = random_spd(5, rng)
        b = rng.standard_normal(5)
        L, _ = jittered_cholesky(K)
        np.testing.assert_allclose(cholesky_solve(L, b), np.linalg.solve(K, b), atol=1e-8)

    def test_solve_lower(self):
        rng = np.random.default_rng(2)
        K = random_spd(4, rng)
        L, _ = jittered_cholesky(K)
        b = rng.standard_normal(4)
        np.testing.assert_allclose(L @ solve_lower(L, b), b, atol=1e-10)

    def test_log_det(self):
        rng = np.random.default_rng(3)
        K = random_spd(5, rng)
        L, _ = jittered_cholesky(K)
        expected = np.linalg.slogdet(K)[1]
        assert log_det_from_cholesky(L) == pytest.approx(expected, rel=1e-10)


class TestCholeskyUpdate:
    def test_matches_full_factorization(self):
        rng = np.random.default_rng(4)
        K = random_spd(6, rng)
        L_small, _ = jittered_cholesky(K[:5, :5])
        L_updated = cholesky_update(L_small, K[:5, 5], K[5, 5])
        L_full, _ = jittered_cholesky(K)
        np.testing.assert_allclose(L_updated @ L_updated.T, L_full @ L_full.T, atol=1e-8)

    def test_from_empty(self):
        L = cholesky_update(np.zeros((0, 0)), np.zeros(0), 4.0)
        assert L.shape == (1, 1)
        assert L[0, 0] == pytest.approx(2.0)

    def test_degenerate_corner_clamped(self):
        # New point identical to existing one: Schur complement is ~0.
        K = np.array([[1.0]])
        L, _ = jittered_cholesky(K)
        L2 = cholesky_update(L, np.array([1.0]), 1.0)
        assert np.isfinite(L2).all()
        assert L2[1, 1] > 0

    def test_wrong_cross_length(self):
        L, _ = jittered_cholesky(np.eye(3))
        with pytest.raises(ValueError):
            cholesky_update(L, np.zeros(2), 1.0)


class TestCholeskyAppend:
    def test_rank_k_matches_full_factorization(self):
        rng = np.random.default_rng(5)
        K = random_spd(9, rng)
        L_small = np.linalg.cholesky(K[:6, :6])
        L_big = cholesky_append(L_small, K[:6, 6:], K[6:, 6:])
        np.testing.assert_allclose(L_big, np.linalg.cholesky(K), atol=1e-10)

    def test_accepts_1d_cross_for_rank1(self):
        rng = np.random.default_rng(6)
        K = random_spd(5, rng)
        L_small = np.linalg.cholesky(K[:4, :4])
        L_big = cholesky_append(L_small, K[:4, 4], K[4:, 4:])
        np.testing.assert_allclose(L_big, np.linalg.cholesky(K), atol=1e-10)

    def test_strict_raise_on_singular_schur(self):
        # Exact arithmetic: corner - B^T B == 0, so the strict append must
        # raise rather than clamp (the session's fallback depends on this).
        lower = np.eye(2)
        cross = np.array([[1.0], [0.0]])
        with pytest.raises(np.linalg.LinAlgError):
            cholesky_append(lower, cross, np.array([[1.0]]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cholesky_append(np.eye(3), np.zeros((2, 1)), np.eye(1))
        with pytest.raises(ValueError):
            cholesky_append(np.eye(3), np.zeros((3, 2)), np.eye(1))


class TestCholeskyShrink:
    def test_inverse_of_append(self):
        rng = np.random.default_rng(7)
        K = random_spd(8, rng)
        L = np.linalg.cholesky(K)
        np.testing.assert_array_equal(
            cholesky_shrink(L, 3), np.linalg.cholesky(K[:5, :5])
        )

    def test_zero_is_noop_copy(self):
        L = np.linalg.cholesky(random_spd(4, np.random.default_rng(8)))
        out = cholesky_shrink(L, 0)
        np.testing.assert_array_equal(out, L)
        assert out is not L

    def test_shrink_to_empty_allowed(self):
        assert cholesky_shrink(np.eye(3), 3).shape == (0, 0)

    def test_rejects_overshrink(self):
        with pytest.raises(ValueError):
            cholesky_shrink(np.eye(3), 4)


class TestRank1Rotations:
    def test_update_matches_refactorization(self):
        rng = np.random.default_rng(9)
        K = random_spd(6, rng)
        v = rng.standard_normal(6)
        L_up = cholesky_rank1_update(np.linalg.cholesky(K), v)
        np.testing.assert_allclose(
            L_up, np.linalg.cholesky(K + np.outer(v, v)), atol=1e-9
        )

    def test_downdate_inverts_update(self):
        rng = np.random.default_rng(10)
        K = random_spd(6, rng)
        L = np.linalg.cholesky(K)
        v = 0.3 * rng.standard_normal(6)
        L_round = cholesky_rank1_downdate(cholesky_rank1_update(L, v), v)
        np.testing.assert_allclose(L_round, L, atol=1e-8)

    def test_downdate_pd_loss_raises(self):
        # Removing more "mass" than the matrix holds destroys PD.
        L = np.linalg.cholesky(np.eye(3))
        with pytest.raises(np.linalg.LinAlgError):
            cholesky_rank1_downdate(L, np.array([2.0, 0.0, 0.0]))

    def test_delete_interior_row(self):
        rng = np.random.default_rng(11)
        K = random_spd(7, rng)
        keep = [0, 1, 3, 4, 5, 6]  # drop index 2
        L_del = cholesky_delete_row(np.linalg.cholesky(K), 2)
        np.testing.assert_allclose(
            L_del, np.linalg.cholesky(K[np.ix_(keep, keep)]), atol=1e-9
        )

    def test_delete_last_row_is_shrink(self):
        rng = np.random.default_rng(12)
        K = random_spd(5, rng)
        L = np.linalg.cholesky(K)
        np.testing.assert_allclose(
            cholesky_delete_row(L, 4), cholesky_shrink(L, 1), atol=1e-12
        )

    def test_update_drot_and_sweep_paths_agree(self):
        # The C-contiguous factor takes the BLAS drot fast path; a
        # Fortran-ordered copy of the same factor falls back to the blocked
        # numpy sweep.  Both must produce the same factor (the rotations are
        # algebraically identical; only round-off may differ).
        rng = np.random.default_rng(13)
        K = random_spd(40, rng)
        v = rng.standard_normal(40)
        L = np.linalg.cholesky(K)
        assert L.flags.c_contiguous
        L_fast = cholesky_rank1_update(L, v)
        L_slow = cholesky_rank1_update(np.asfortranarray(L), v)
        np.testing.assert_allclose(L_fast, L_slow, atol=1e-12)
        np.testing.assert_allclose(
            L_fast, np.linalg.cholesky(K + np.outer(v, v)), atol=1e-8
        )

    def test_update_overwrite_mutates_in_place(self):
        rng = np.random.default_rng(14)
        K = random_spd(8, rng)
        v = rng.standard_normal(8)
        L = np.linalg.cholesky(K)
        out = cholesky_rank1_update(L, v, overwrite=True)
        assert out is L
        np.testing.assert_allclose(
            L, np.linalg.cholesky(K + np.outer(v, v)), atol=1e-9
        )
        # Without overwrite the input factor must stay untouched.
        L2 = np.linalg.cholesky(K)
        ref = L2.copy()
        cholesky_rank1_update(L2, v)
        np.testing.assert_array_equal(L2, ref)

    def test_drot_update_roundtrips_through_downdate(self):
        rng = np.random.default_rng(15)
        K = random_spd(30, rng)
        L = np.linalg.cholesky(K)
        v = 0.5 * rng.standard_normal(30)
        L_round = cholesky_rank1_downdate(cholesky_rank1_update(L, v), v)
        np.testing.assert_allclose(L_round, L, atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 7), k=st.integers(1, 3), seed=st.integers(0, 10_000)
)
def test_property_rank_k_append_matches_full(n, k, seed):
    rng = np.random.default_rng(seed)
    K = random_spd(n + k, rng, eig_floor=1e-2)
    L = np.linalg.cholesky(K[:n, :n])
    L_big = cholesky_append(L, K[:n, n:], K[n:, n:])
    np.testing.assert_allclose(L_big, np.linalg.cholesky(K), atol=1e-6)
    # Truncation exactly undoes the append.
    np.testing.assert_array_equal(cholesky_shrink(L_big, k), L)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 8), seed=st.integers(0, 10_000))
def test_property_jittered_cholesky_reconstructs(n, seed):
    rng = np.random.default_rng(seed)
    K = random_spd(n, rng, eig_floor=1e-2)
    L, jitter = jittered_cholesky(K)
    np.testing.assert_allclose(L @ L.T, K + jitter * np.eye(n), atol=1e-7)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 7), seed=st.integers(0, 10_000))
def test_property_incremental_update_consistent(n, seed):
    rng = np.random.default_rng(seed)
    K = random_spd(n + 1, rng, eig_floor=1e-2)
    L, _ = jittered_cholesky(K[:n, :n])
    L_up = cholesky_update(L, K[:n, n], K[n, n])
    np.testing.assert_allclose(L_up @ L_up.T, K, atol=1e-6)
