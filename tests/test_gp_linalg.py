"""Tests for repro.gp.linalg."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp.linalg import (
    cholesky_solve,
    cholesky_update,
    jittered_cholesky,
    log_det_from_cholesky,
    solve_lower,
)


def random_spd(n, rng, eig_floor=1e-3):
    A = rng.standard_normal((n, n))
    return A @ A.T + eig_floor * np.eye(n)


class TestJitteredCholesky:
    def test_spd_no_jitter(self):
        rng = np.random.default_rng(0)
        K = random_spd(6, rng)
        L, jitter = jittered_cholesky(K)
        assert jitter == 0.0
        np.testing.assert_allclose(L @ L.T, K, atol=1e-10)

    def test_singular_gets_jitter(self):
        v = np.array([[1.0, 2.0, 3.0]])
        K = v.T @ v  # rank 1, not PD
        L, jitter = jittered_cholesky(K)
        assert jitter > 0.0
        np.testing.assert_allclose(L @ L.T, K + jitter * np.eye(3), atol=1e-8)

    def test_rejects_nonfinite(self):
        with pytest.raises(np.linalg.LinAlgError):
            jittered_cholesky(np.array([[np.nan]]))

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            jittered_cholesky(np.zeros((2, 3)))

    def test_hopeless_matrix_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            jittered_cholesky(np.array([[-1e12, 0.0], [0.0, -1e12]]))


class TestSolves:
    def test_cholesky_solve_matches_direct(self):
        rng = np.random.default_rng(1)
        K = random_spd(5, rng)
        b = rng.standard_normal(5)
        L, _ = jittered_cholesky(K)
        np.testing.assert_allclose(cholesky_solve(L, b), np.linalg.solve(K, b), atol=1e-8)

    def test_solve_lower(self):
        rng = np.random.default_rng(2)
        K = random_spd(4, rng)
        L, _ = jittered_cholesky(K)
        b = rng.standard_normal(4)
        np.testing.assert_allclose(L @ solve_lower(L, b), b, atol=1e-10)

    def test_log_det(self):
        rng = np.random.default_rng(3)
        K = random_spd(5, rng)
        L, _ = jittered_cholesky(K)
        expected = np.linalg.slogdet(K)[1]
        assert log_det_from_cholesky(L) == pytest.approx(expected, rel=1e-10)


class TestCholeskyUpdate:
    def test_matches_full_factorization(self):
        rng = np.random.default_rng(4)
        K = random_spd(6, rng)
        L_small, _ = jittered_cholesky(K[:5, :5])
        L_updated = cholesky_update(L_small, K[:5, 5], K[5, 5])
        L_full, _ = jittered_cholesky(K)
        np.testing.assert_allclose(L_updated @ L_updated.T, L_full @ L_full.T, atol=1e-8)

    def test_from_empty(self):
        L = cholesky_update(np.zeros((0, 0)), np.zeros(0), 4.0)
        assert L.shape == (1, 1)
        assert L[0, 0] == pytest.approx(2.0)

    def test_degenerate_corner_clamped(self):
        # New point identical to existing one: Schur complement is ~0.
        K = np.array([[1.0]])
        L, _ = jittered_cholesky(K)
        L2 = cholesky_update(L, np.array([1.0]), 1.0)
        assert np.isfinite(L2).all()
        assert L2[1, 1] > 0

    def test_wrong_cross_length(self):
        L, _ = jittered_cholesky(np.eye(3))
        with pytest.raises(ValueError):
            cholesky_update(L, np.zeros(2), 1.0)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 8), seed=st.integers(0, 10_000))
def test_property_jittered_cholesky_reconstructs(n, seed):
    rng = np.random.default_rng(seed)
    K = random_spd(n, rng, eig_floor=1e-2)
    L, jitter = jittered_cholesky(K)
    np.testing.assert_allclose(L @ L.T, K + jitter * np.eye(n), atol=1e-7)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 7), seed=st.integers(0, 10_000))
def test_property_incremental_update_consistent(n, seed):
    rng = np.random.default_rng(seed)
    K = random_spd(n + 1, rng, eig_floor=1e-2)
    L, _ = jittered_cholesky(K[:n, :n])
    L_up = cholesky_update(L, K[:n, n], K[n, n])
    np.testing.assert_allclose(L_up @ L_up.T, K, atol=1e-6)
