"""Tests for repro.gp.kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp.kernels import Matern52, SquaredExponential

KERNELS = [SquaredExponential, Matern52]


@pytest.fixture(params=KERNELS, ids=lambda k: k.__name__)
def kernel_cls(request):
    return request.param


class TestConstruction:
    def test_default_lengthscales(self, kernel_cls):
        k = kernel_cls(3)
        np.testing.assert_array_equal(k.lengthscales, np.ones(3))

    def test_scalar_lengthscale_broadcast(self, kernel_cls):
        k = kernel_cls(4, lengthscales=0.5)
        np.testing.assert_array_equal(k.lengthscales, np.full(4, 0.5))

    def test_rejects_bad_dim(self, kernel_cls):
        with pytest.raises(ValueError):
            kernel_cls(0)

    def test_rejects_negative_lengthscale(self, kernel_cls):
        with pytest.raises(ValueError):
            kernel_cls(2, lengthscales=[-1.0, 1.0])

    def test_rejects_wrong_lengthscale_shape(self, kernel_cls):
        with pytest.raises(ValueError):
            kernel_cls(2, lengthscales=[1.0, 1.0, 1.0])


class TestEvaluation:
    def test_diagonal_is_variance(self, kernel_cls):
        k = kernel_cls(2, variance=2.5)
        X = np.random.default_rng(0).uniform(size=(5, 2))
        np.testing.assert_allclose(np.diag(k(X)), 2.5)
        np.testing.assert_allclose(k.diag(X), 2.5)

    def test_symmetry(self, kernel_cls):
        X = np.random.default_rng(1).uniform(size=(6, 3))
        K = kernel_cls(3)(X)
        np.testing.assert_allclose(K, K.T, atol=1e-12)

    def test_psd(self, kernel_cls):
        X = np.random.default_rng(2).uniform(size=(10, 2))
        K = kernel_cls(2)(X)
        eigs = np.linalg.eigvalsh(K)
        assert eigs.min() > -1e-10

    def test_cross_covariance_shape(self, kernel_cls):
        rng = np.random.default_rng(3)
        k = kernel_cls(2)
        K = k(rng.uniform(size=(4, 2)), rng.uniform(size=(7, 2)))
        assert K.shape == (4, 7)

    def test_decays_with_distance(self, kernel_cls):
        k = kernel_cls(1)
        x = np.array([[0.0]])
        near = k(x, np.array([[0.1]]))[0, 0]
        far = k(x, np.array([[3.0]]))[0, 0]
        assert near > far

    def test_se_matches_closed_form(self):
        k = SquaredExponential(2, lengthscales=[0.5, 2.0], variance=3.0)
        xi = np.array([0.3, 1.0])
        xj = np.array([0.7, -0.5])
        expected = 3.0 * np.exp(
            -0.5 * ((0.4 / 0.5) ** 2 + (1.5 / 2.0) ** 2)
        )
        got = k(xi.reshape(1, -1), xj.reshape(1, -1))[0, 0]
        assert got == pytest.approx(expected, rel=1e-12)


class TestTheta:
    def test_roundtrip(self, kernel_cls):
        k = kernel_cls(3, lengthscales=[0.1, 1.0, 5.0], variance=2.0)
        theta = k.get_theta()
        k2 = kernel_cls(3)
        k2.set_theta(theta)
        np.testing.assert_allclose(k2.lengthscales, k.lengthscales)
        assert k2.variance == pytest.approx(k.variance)

    def test_set_theta_shape_check(self, kernel_cls):
        with pytest.raises(ValueError):
            kernel_cls(2).set_theta(np.zeros(5))

    def test_n_params(self, kernel_cls):
        assert kernel_cls(4).n_params == 5


class TestGradients:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_finite_differences(self, kernel_cls, seed):
        rng = np.random.default_rng(seed)
        k = kernel_cls(3, lengthscales=rng.uniform(0.3, 2.0, 3), variance=1.7)
        X = rng.uniform(size=(6, 3))
        grads = k.gradients(X)
        theta0 = k.get_theta()
        eps = 1e-6
        for i, analytic in enumerate(grads):
            tp, tm = theta0.copy(), theta0.copy()
            tp[i] += eps
            tm[i] -= eps
            kp, km = kernel_cls(3), kernel_cls(3)
            kp.set_theta(tp)
            km.set_theta(tm)
            numeric = (kp(X) - km(X)) / (2 * eps)
            np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_gradient_count(self, kernel_cls):
        X = np.random.default_rng(0).uniform(size=(4, 2))
        assert len(kernel_cls(2).gradients(X)) == 3


def test_copy_is_independent(kernel_cls=SquaredExponential):
    k = kernel_cls(2, lengthscales=[1.0, 2.0])
    k2 = k.copy()
    k2.lengthscales[0] = 99.0
    assert k.lengthscales[0] == 1.0


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 8),
    d=st.integers(1, 4),
)
def test_property_kernel_matrix_psd_and_bounded(seed, n, d):
    rng = np.random.default_rng(seed)
    for cls in KERNELS:
        k = cls(d, lengthscales=rng.uniform(0.2, 3.0, d), variance=rng.uniform(0.5, 4.0))
        X = rng.uniform(-2, 2, size=(n, d))
        K = k(X)
        assert np.all(K <= k.variance + 1e-10)
        assert np.linalg.eigvalsh(K).min() > -1e-8
