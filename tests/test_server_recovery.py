"""Server crash recovery and idempotent RPC: kill -9, restart, retry.

These tests exercise the robustness tentpole end to end, in-process:
``CampaignServer.abort()`` is the kill -9 stand-in (it drops every socket
with *zero* suspend/journal bookkeeping — exactly the on-disk state a
SIGKILL leaves), and a second server started on the same ``journal_dir``
must recover from the manifest alone.  Determinism is checked the same way
as in ``test_campaign_server.py``: a local "twin" campaign with the same
seed must see byte-identical points through kills, restarts, and retried
requests.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.circuits.benchmarks import sphere
from repro.core import make_campaign
from repro.core.journal import JournalError
from repro.distributed import (
    CampaignClient,
    CampaignServerError,
    serve,
)
from repro.distributed.manifest import (
    ServerManifest,
    manifest_state,
    read_manifest,
)
from repro.distributed.protocol import result_to_dict
from repro.distributed.transport import connect
from repro.obs import MetricsRegistry, Observability

pytestmark = pytest.mark.server

CONFIG = dict(n_init=3, max_evals=6, acq_candidates=32, acq_restarts=1)


def _serve(journal_dir):
    return serve(journal_dir=journal_dir, max_workers=4,
                 obs=Observability(metrics=MetricsRegistry()),
                 background=True)


def _kill(server):
    """kill -9: no suspends, no journal writes, sockets just vanish."""
    server.abort()
    server._thread.join(timeout=5.0)
    assert not server._thread.is_alive()


def _twin(seed):
    return make_campaign("EasyBO-2", sphere(2), rng=seed, **CONFIG)


def _drive(client, cid, twin, problem, rounds):
    """``rounds`` ask/tell iterations, asserting bit-exactness vs the twin."""
    for _ in range(rounds):
        x = client.ask(cid)[0]
        np.testing.assert_array_equal(x, twin.ask())
        result = problem.evaluate(x)
        client.tell(cid, x, result)
        twin.tell(x, result)


def _finish(client, cid, twin, problem):
    while True:
        try:
            x = client.ask(cid)[0]
        except CampaignServerError:
            break
        np.testing.assert_array_equal(x, twin.ask())
        result = problem.evaluate(x)
        reply = client.tell(cid, x, result)
        twin.tell(x, result)
        if reply["done"]:
            break


class TestRestartRecovery:
    def test_kill9_mid_campaign_restart_is_bit_exact(self, tmp_path):
        """Kill -9 with a point in flight; the restarted server answers
        status/ask/tell as if nothing happened."""
        problem, twin = sphere(2), _twin(41)
        old = _serve(tmp_path)
        client = CampaignClient(port=old.port)
        cid = client.create("EasyBO-2", "sphere2",
                            config=dict(rng=41, **CONFIG))
        _drive(client, cid, twin, problem, rounds=2)
        in_flight = client.ask(cid)[0]  # asked, never told
        np.testing.assert_array_equal(in_flight, twin.ask())
        # kill -9 while the client is still connected: no suspend is ever
        # journaled, the campaign dies "active".
        _kill(old)
        client.close()

        new = _serve(tmp_path)
        try:
            assert new.recoveries == 1
            with CampaignClient(port=new.port) as client:
                status = client.status(cid)
                assert status["state"] == "active"
                assert status["issued"] == 3
                assert status["n_pending"] == 1
                result = problem.evaluate(in_flight)
                client.tell(cid, in_flight, result)
                twin.tell(in_flight, result)
                _finish(client, cid, twin, problem)
                assert client.status(cid)["state"] == "finished"
                assert twin.done
        finally:
            new.stop()

    def test_clean_stop_then_retry_revives_transparently(self, tmp_path):
        """A clean shutdown suspends campaigns as auto-resumable: after a
        restart, a retried ask revives the campaign without the client ever
        issuing an explicit resume."""
        problem, twin = sphere(2), _twin(42)
        old = _serve(tmp_path)
        with CampaignClient(port=old.port) as client:
            cid = client.create("EasyBO-2", "sphere2",
                                config=dict(rng=42, **CONFIG))
            _drive(client, cid, twin, problem, rounds=2)
        old.stop()
        old._thread.join(timeout=5.0)

        new = _serve(tmp_path)
        try:
            with CampaignClient(port=new.port) as client:
                assert client.status(cid)["state"] == "suspended"
                _finish(client, cid, twin, problem)  # first ask auto-revives
                assert client.status(cid)["state"] == "finished"
        finally:
            new.stop()

    def test_explicit_suspend_stays_suspended_across_restart(self, tmp_path):
        """A suspend the client *asked for* is not auto-revived: after a
        restart, ask still refuses until an explicit resume."""
        problem, twin = sphere(2), _twin(43)
        old = _serve(tmp_path)
        with CampaignClient(port=old.port) as client:
            cid = client.create("EasyBO-2", "sphere2",
                                config=dict(rng=43, **CONFIG))
            _drive(client, cid, twin, problem, rounds=1)
            assert client.suspend(cid) == "suspended"
        _kill(old)

        new = _serve(tmp_path)
        try:
            with CampaignClient(port=new.port) as client:
                assert client.status(cid)["state"] == "suspended"
                with pytest.raises(CampaignServerError, match="active"):
                    client.ask(cid)
                client.resume(cid)
                _finish(client, cid, twin, problem)
        finally:
            new.stop()

    def test_finished_campaigns_stay_finished(self, tmp_path):
        problem, twin = sphere(2), _twin(44)
        old = _serve(tmp_path)
        with CampaignClient(port=old.port) as client:
            cid = client.create("EasyBO-2", "sphere2",
                                config=dict(rng=44, **CONFIG))
            _finish(client, cid, twin, problem)
        _kill(old)

        new = _serve(tmp_path)
        try:
            assert new.recoveries == 0
            with CampaignClient(port=new.port) as client:
                status = client.status(cid)
                assert status["state"] == "finished"
                assert status["done"] is True
                # New ids keep climbing: no reuse of a recovered id space.
                other = client.create("LCB", "sphere2",
                                      config=dict(rng=45, **CONFIG))
                assert other != cid
        finally:
            new.stop()

    def test_server_evaluated_campaign_recovers_and_finishes(self, tmp_path):
        """Kill -9 under a server-evaluated campaign: the restarted server
        re-leases workers, resubmits the in-flight points, and drives the
        campaign to completion on its own."""
        old = _serve(tmp_path)
        client = CampaignClient(port=old.port)
        cid = client.create(
            "EasyBO-2", "sphere2",
            config=dict(rng=46, n_init=3, max_evals=10,
                        acq_candidates=32, acq_restarts=1),
            evaluate=True, n_workers=2,
        )
        deadline = time.monotonic() + 10.0
        while client.status(cid)["issued"] < 4:
            assert time.monotonic() < deadline
            time.sleep(0.02)
        _kill(old)
        client.close()

        new = _serve(tmp_path)
        try:
            assert new.recoveries == 1
            with CampaignClient(port=new.port) as client:
                assert client.metrics()["workers_leased"] == 2
                deadline = time.monotonic() + 20.0
                while client.status(cid)["state"] != "finished":
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                assert client.status(cid)["issued"] == 10
        finally:
            new.stop()

    def test_recovery_metrics_surface(self, tmp_path):
        old = _serve(tmp_path)
        client = CampaignClient(port=old.port)
        cid = client.create("LCB", "sphere2", config=dict(rng=47, **CONFIG))
        client.ask(cid)
        _kill(old)
        client.close()

        new = _serve(tmp_path)
        try:
            with CampaignClient(port=new.port) as client:
                metrics = client.metrics()
                assert metrics["recoveries"] == 1
                assert metrics["uptime_seconds"] > 0.0
                assert metrics["rpc_retries"] == 0
                assert "server.recoveries" in metrics["registry"]["counters"]
        finally:
            new.stop()


class TestIdempotentRPC:
    """Raw-frame tests: drive the wire protocol directly so the tests pick
    the request ids (the client generates fresh ones per logical call)."""

    def _rpc(self, conn, seq, verb, **payload):
        conn.send({"verb": verb, "seq": seq, **payload})
        reply = conn.recv(timeout=10.0)
        assert reply is not None and reply["seq"] == seq
        return reply

    def test_retried_ask_replays_same_points(self, tmp_path):
        server = _serve(tmp_path)
        try:
            conn = connect("127.0.0.1", server.port)
            create = self._rpc(conn, 0, "create", request_id="rid-create",
                               label="LCB", problem="sphere2",
                               config=dict(rng=51, **CONFIG))
            cid = create["campaign"]
            first = self._rpc(conn, 1, "ask", request_id="rid-ask",
                              campaign=cid)
            retry = self._rpc(conn, 2, "ask", request_id="rid-ask",
                              attempt=1, campaign=cid)
            assert retry["replayed"] is True
            assert retry["points"] == first["points"]
            # One logical ask -> one issued point, not two.
            status = self._rpc(conn, 3, "status", campaign=cid)["status"]
            assert status["issued"] == len(first["points"])
            assert status["n_pending"] == len(first["points"])
            conn.close()
        finally:
            server.stop()

    def test_retried_tell_not_double_counted(self, tmp_path):
        problem = sphere(2)
        server = _serve(tmp_path)
        try:
            conn = connect("127.0.0.1", server.port)
            cid = self._rpc(conn, 0, "create", label="LCB", problem="sphere2",
                            config=dict(rng=52, **CONFIG))["campaign"]
            x = self._rpc(conn, 1, "ask", request_id="rid-a",
                          campaign=cid)["points"][0]
            result = result_to_dict(problem.evaluate(np.asarray(x)))
            first = self._rpc(conn, 2, "tell", request_id="rid-t",
                              campaign=cid, x=x, result=result)
            retry = self._rpc(conn, 3, "tell", request_id="rid-t", attempt=1,
                              campaign=cid, x=x, result=result)
            assert retry["replayed"] is True
            assert retry["action"] == first["action"]
            assert retry["done"] == first["done"]
            status = self._rpc(conn, 4, "status", campaign=cid)["status"]
            assert status["n_observations"] == 1
            assert status["n_pending"] == 0
            conn.close()
        finally:
            server.stop()

    def test_retried_create_returns_same_campaign(self, tmp_path):
        server = _serve(tmp_path)
        try:
            conn = connect("127.0.0.1", server.port)
            first = self._rpc(conn, 0, "create", request_id="rid-c",
                              label="LCB", problem="sphere2",
                              config=dict(rng=53, **CONFIG))
            retry = self._rpc(conn, 1, "create", request_id="rid-c",
                              attempt=1, label="LCB", problem="sphere2",
                              config=dict(rng=53, **CONFIG))
            assert retry["replayed"] is True
            assert retry["campaign"] == first["campaign"]
            campaigns = self._rpc(conn, 2, "list")["campaigns"]
            assert len(campaigns) == 1
            conn.close()
        finally:
            server.stop()

    def test_retried_ask_replays_across_restart(self, tmp_path):
        """The reply cache is journaled, not in-memory: a retry that lands
        on a *restarted* server still replays the original points."""
        old = _serve(tmp_path)
        conn = connect("127.0.0.1", old.port)
        create = self._rpc(conn, 0, "create", request_id="rid-c",
                           label="LCB", problem="sphere2",
                           config=dict(rng=54, **CONFIG))
        cid = create["campaign"]
        first = self._rpc(conn, 1, "ask", request_id="rid-a", campaign=cid)
        _kill(old)  # before the client disconnects: the campaign dies live
        conn.close()

        new = _serve(tmp_path)
        try:
            conn = connect("127.0.0.1", new.port)
            retried_create = self._rpc(conn, 0, "create", request_id="rid-c",
                                       attempt=1, label="LCB",
                                       problem="sphere2",
                                       config=dict(rng=54, **CONFIG))
            assert retried_create["replayed"] is True
            assert retried_create["campaign"] == cid
            retry = self._rpc(conn, 1, "ask", request_id="rid-a", attempt=1,
                              campaign=cid)
            assert retry["replayed"] is True
            assert retry["points"] == first["points"]
            metrics = self._rpc(conn, 2, "metrics")["metrics"]
            assert metrics["rpc_replayed_replies"] == 2
            assert metrics["rpc_retries"] == 2
            conn.close()
        finally:
            new.stop()


class TestDegradedRecovery:
    def _two_campaigns(self, tmp_path):
        server = _serve(tmp_path)
        client = CampaignClient(port=server.port)
        cids = [
            client.create("LCB", "sphere2", config=dict(rng=s, **CONFIG))
            for s in (61, 62)
        ]
        for cid in cids:
            client.ask(cid)
        _kill(server)  # both campaigns die live (no suspend journaled)
        client.close()
        return cids

    def test_manifest_torn_tail_is_truncated_and_recovery_proceeds(
            self, tmp_path):
        cids = self._two_campaigns(tmp_path)
        manifest = tmp_path / "server.manifest"
        with open(manifest, "ab") as f:
            f.write(b"J1 000000ff deadbeef {\"type\": \"torn")  # no newline
        server = _serve(tmp_path)
        try:
            assert server.recoveries == 2
            with CampaignClient(port=server.port) as client:
                states = {c["campaign"]: c["state"] for c in client.list()}
                assert all(states[cid] == "active" for cid in cids)
            # The torn tail was truncated in place, so the *next* append
            # produces a manifest every reader parses cleanly.
            assert read_manifest(manifest)[-1].get("event") != "torn"
        finally:
            server.stop()

    def test_corrupt_journal_degrades_that_campaign_only(self, tmp_path):
        cids = self._two_campaigns(tmp_path)
        victim = tmp_path / f"{cids[0]}.journal"
        data = victim.read_bytes()
        victim.write_bytes(b"\x00" * 16 + data[16:])  # first frame destroyed
        server = _serve(tmp_path)
        try:
            assert server.recoveries == 1
            with CampaignClient(port=server.port) as client:
                broken = client.status(cids[0])
                assert broken["state"] == "failed"
                assert "unrecoverable journal" in broken["error"]
                with pytest.raises(CampaignServerError, match="failed"):
                    client.ask(cids[0])
                # The healthy tenant is untouched and drivable.
                assert client.status(cids[1])["state"] == "active"
                assert len(client.ask(cids[1])) == 1
        finally:
            server.stop()

    def test_missing_journal_degrades_that_campaign_only(self, tmp_path):
        cids = self._two_campaigns(tmp_path)
        (tmp_path / f"{cids[0]}.journal").unlink()
        server = _serve(tmp_path)
        try:
            assert server.recoveries == 1
            with CampaignClient(port=server.port) as client:
                assert client.status(cids[0])["state"] == "failed"
                assert client.status(cids[1])["state"] == "active"
        finally:
            server.stop()


class TestManifest:
    def test_state_folding_carries_creation_fields_forward(self, tmp_path):
        path = tmp_path / "m.manifest"
        with ServerManifest(path) as manifest:
            manifest.record("created", "c0000", label="LCB", problem="sphere2",
                            config={"rng": 1}, n_workers=2)
            manifest.record("started", "c0000")
            manifest.record("suspended", "c0000", error="client disconnected",
                            auto=True)
            manifest.record("created", "c0001", label="EasyBO-2",
                            problem="sphere2", config={"rng": 2})
        state = manifest_state(read_manifest(path))
        assert state["c0000"]["state"] == "suspended"
        assert state["c0000"]["label"] == "LCB"  # sticky through suspend
        assert state["c0000"]["config"] == {"rng": 1}
        assert state["c0000"]["auto"] is True
        assert state["c0001"]["state"] == "created"

    def test_missing_manifest_reads_as_first_boot(self, tmp_path):
        assert read_manifest(tmp_path / "absent.manifest") == []

    def test_newer_manifest_version_refuses_to_misparse(self, tmp_path):
        path = tmp_path / "m.manifest"
        from repro.core.journal import JournalWriter

        with JournalWriter(path) as writer:
            writer.append({"type": "manifest_start", "manifest_version": 99})
        with pytest.raises(JournalError, match="newer"):
            read_manifest(path)
