"""Tests for process-variation (corner / Monte-Carlo) analysis."""

import numpy as np
import pytest

from repro.circuits.variation import (
    CORNERS,
    ProcessShift,
    RobustOpAmpProblem,
    evaluate_opamp_at_corner,
    monte_carlo_foms,
    shift_params,
)
from repro.spice import nmos_180


NOMINAL_SIZING = {
    "w12": 20e-6, "l12": 0.5e-6, "w34": 10e-6, "l34": 0.5e-6, "w5": 8e-6,
    "w6": 50e-6, "l6": 0.35e-6, "w7": 30e-6, "rz": 2e3, "cc": 2e-12,
}


class TestShiftParams:
    def test_shifts_applied(self):
        base = nmos_180()
        shifted = shift_params(base, dvt=0.05, kp_scale=0.9)
        assert shifted.vt0 == pytest.approx(base.vt0 + 0.05)
        assert shifted.kp == pytest.approx(base.kp * 0.9)
        # Untouched fields carried over.
        assert shifted.cox == base.cox

    def test_kp_scale_validated(self):
        with pytest.raises(ValueError):
            shift_params(nmos_180(), 0.0, 0.0)

    def test_corner_table(self):
        names = [c.name for c in CORNERS]
        assert names == ["TT", "FF", "SS", "FS", "SF"]
        tt = CORNERS[0]
        assert tt.nmos_dvt == 0.0 and tt.nmos_kp_scale == 1.0


class TestCornerEvaluation:
    def test_tt_matches_nominal_problem(self):
        from repro.circuits import OpAmpProblem
        from repro.spice import pmos_180

        fom_tt, metrics = evaluate_opamp_at_corner(
            NOMINAL_SIZING, nmos_180(), pmos_180()
        )
        problem = OpAmpProblem()
        nominal = problem.evaluate(problem.space.to_vector(NOMINAL_SIZING))
        assert fom_tt == pytest.approx(nominal.fom, rel=1e-9)

    def test_corners_spread_the_fom(self):
        foms = {}
        for corner in CORNERS:
            nmos = shift_params(nmos_180(), corner.nmos_dvt, corner.nmos_kp_scale)
            from repro.spice import pmos_180

            pmos = shift_params(pmos_180(), corner.pmos_dvt, corner.pmos_kp_scale)
            foms[corner.name], _ = evaluate_opamp_at_corner(NOMINAL_SIZING, nmos, pmos)
        assert len(set(round(v, 3) for v in foms.values())) > 1
        assert all(np.isfinite(v) for v in foms.values())


class TestRobustProblem:
    @pytest.fixture(scope="class")
    def problem(self):
        return RobustOpAmpProblem()

    def test_worst_corner_is_min(self, problem):
        x = problem.space.to_vector(NOMINAL_SIZING)
        r = problem.evaluate(x)
        corner_foms = [r.metrics[f"fom_{c.name}"] for c in CORNERS]
        assert r.fom == pytest.approx(min(corner_foms))

    def test_cost_scales_with_corners(self, problem):
        x = problem.space.to_vector(NOMINAL_SIZING)
        single = RobustOpAmpProblem(corners=CORNERS[:1])
        r_all = problem.evaluate(x)
        r_one = single.evaluate(x)
        assert r_all.cost == pytest.approx(5 * r_one.cost)

    def test_robust_fom_never_exceeds_nominal(self, problem):
        from repro.circuits import OpAmpProblem

        nominal_problem = OpAmpProblem()
        rng = np.random.default_rng(0)
        for x in problem.space.sample(3, rng):
            robust = problem.evaluate(x).fom
            nominal = nominal_problem.evaluate(x).fom
            assert robust <= nominal + 1e-9

    def test_needs_corners(self):
        with pytest.raises(ValueError):
            RobustOpAmpProblem(corners=())


class TestMonteCarlo:
    def test_distribution_properties(self):
        foms = monte_carlo_foms(NOMINAL_SIZING, n_runs=8, rng=0)
        assert foms.shape == (8,)
        assert np.all(np.isfinite(foms))
        assert foms.std() > 0  # variation actually moves the FOM

    def test_reproducible(self):
        a = monte_carlo_foms(NOMINAL_SIZING, n_runs=4, rng=7)
        b = monte_carlo_foms(NOMINAL_SIZING, n_runs=4, rng=7)
        np.testing.assert_array_equal(a, b)

    def test_n_runs_validated(self):
        with pytest.raises(ValueError):
            monte_carlo_foms(NOMINAL_SIZING, n_runs=0)
