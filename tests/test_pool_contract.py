"""One contract, three backends.

Every evaluation pool — the simulated-clock :class:`VirtualWorkerPool`, the
:class:`ThreadWorkerPool`, and the OS-process :class:`ProcessWorkerPool` —
must present the same protocol to the drivers: ``submit`` rejects work when
full, ``wait_next`` returns every issued point exactly once and never raises
on evaluation failure, ``pending_points``/``task_info`` expose in-flight
state, traces record one row per completion, leases arm only after the first
completed duration, and ``restore``/``restore_task`` rebuild journaled state.
These tests run the identical scenario through all three, so a behavioural
drift in any backend fails by name.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.circuits.benchmarks import sphere
from repro.core.faults import FailurePolicy
from repro.distributed import ProcessWorkerPool
from repro.sched.executor import ThreadWorkerPool
from repro.sched.trace import EvalRecord
from repro.sched.workers import VirtualWorkerPool

#: The pool size used throughout; small so process spawns stay cheap.
N_WORKERS = 2

#: Named-resolvable problem ("sphere2") so it reaches worker processes too.
PROBLEM = sphere(dim=2)


def make_pool(backend: str, policy: FailurePolicy | None = None,
              n_workers: int = N_WORKERS):
    if backend == "virtual":
        return VirtualWorkerPool(PROBLEM, n_workers, policy=policy)
    if backend == "thread":
        return ThreadWorkerPool(PROBLEM, n_workers, policy=policy,
                                poll_interval=0.02)
    return ProcessWorkerPool(PROBLEM, n_workers, policy=policy,
                             heartbeat_interval=0.1, poll_interval=0.05)


BACKENDS = ("virtual", "thread", "process")


def points(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(PROBLEM.bounds[:, 0], PROBLEM.bounds[:, 1],
                       size=(n, PROBLEM.dim))


@pytest.mark.parametrize("backend", BACKENDS)
class TestPoolContract:
    def test_submit_to_capacity_then_reject(self, backend):
        with make_pool(backend) as pool:
            X = points(N_WORKERS + 1)
            for i in range(N_WORKERS):
                pool.submit(X[i])
            assert pool.idle_count == 0
            assert pool.busy_count == N_WORKERS
            with pytest.raises(RuntimeError):
                pool.submit(X[N_WORKERS])
            pool.wait_all()

    def test_wait_next_returns_each_index_once(self, backend):
        with make_pool(backend) as pool:
            X = points(5)
            submitted = []
            seen = []
            for x in X[:N_WORKERS]:
                submitted.append(pool.submit(x))
            for x in X[N_WORKERS:]:
                seen.append(pool.wait_next())
                submitted.append(pool.submit(x))
            seen.extend(pool.wait_all())
            assert sorted(c.index for c in seen) == sorted(submitted)
            for completion in seen:
                assert completion.result.ok
                assert completion.finish_time >= completion.issue_time
                i = submitted.index(completion.index)
                np.testing.assert_allclose(completion.x, X[i])

    def test_wait_next_on_empty_pool_raises(self, backend):
        with make_pool(backend) as pool:
            with pytest.raises(RuntimeError, match="nothing is running"):
                pool.wait_next()

    def test_pending_points_shape_and_order(self, backend):
        with make_pool(backend) as pool:
            assert pool.pending_points().shape == (0, PROBLEM.dim)
            X = points(N_WORKERS)
            for x in X:
                pool.submit(x)
            pending = pool.pending_points()
            assert pending.shape == (N_WORKERS, PROBLEM.dim)
            np.testing.assert_allclose(pending, X)  # issue (= index) order
            pool.wait_all()
            assert pool.pending_points().shape == (0, PROBLEM.dim)

    def test_task_info_exposes_issue_metadata(self, backend):
        with make_pool(backend) as pool:
            index = pool.submit(points(1)[0], batch=7)
            info = pool.task_info(index)
            assert set(info) == {"worker", "issue_time", "batch", "lease"}
            assert info["batch"] == 7
            assert info["lease"] is None  # no completed durations yet
            pool.wait_all()
            with pytest.raises(KeyError):
                pool.task_info(index)

    def test_lease_arms_after_first_completion(self, backend):
        policy = FailurePolicy(lease_slack=5.0)
        with make_pool(backend, policy=policy) as pool:
            first = pool.submit(points(1)[0])
            assert pool.task_info(first)["lease"] is None
            pool.wait_next()
            second = pool.submit(points(1, seed=1)[0])
            assert pool.task_info(second)["lease"] is not None
            pool.wait_all()

    def test_trace_invariants(self, backend):
        with make_pool(backend) as pool:
            X = points(6, seed=3)
            for x in X[:N_WORKERS]:
                pool.submit(x)
            for x in X[N_WORKERS:]:
                pool.wait_next()
                pool.submit(x)
            pool.wait_all()
            trace = pool.trace
            assert len(trace) == len(X)
            assert sorted(r.index for r in trace.records) == list(range(len(X)))
            assert all(0 <= r.worker < N_WORKERS for r in trace.records)
            assert all(r.finish_time >= r.issue_time for r in trace.records)
            assert all(r.status == "ok" for r in trace.records)
            best = trace.best_record()
            assert best.fom == max(r.fom for r in trace.records)

    def test_restore_continues_clock_and_indices(self, backend):
        record = EvalRecord(
            index=0, worker=0, x=np.array([0.5, 0.5]), fom=-0.5,
            issue_time=0.0, finish_time=4.0, feasible=True,
        )
        with make_pool(backend, policy=FailurePolicy(lease_slack=5.0)) as pool:
            pool.restore(now=100.0, next_index=3, records=[record])
            assert pool.now >= 100.0
            assert len(pool.trace) == 1
            index = pool.submit(points(1)[0])
            assert index == 3  # indices continue after the journaled ones
            # The replayed duration armed the lease statistics immediately.
            assert pool.task_info(index)["lease"] is not None
            completion = pool.wait_next()
            assert completion.index == 3
            assert completion.issue_time >= 100.0

    def test_restore_task_reissues_at_chosen_worker(self, backend):
        with make_pool(backend) as pool:
            pool.restore(now=50.0, next_index=9, records=())
            x = points(1, seed=5)[0]
            index = pool.restore_task(7, 1, x, batch=2, issue_time=44.0)
            assert index == 7
            info = pool.task_info(7)
            assert info["worker"] == 1
            assert info["issue_time"] == pytest.approx(44.0)
            completion = pool.wait_next()
            assert completion.index == 7
            assert completion.worker == 1
            assert completion.result.ok
            # next_index accounts for the restored task
            assert pool.submit(points(1, seed=6)[0]) == 9

    def test_telemetry_snapshot(self, backend):
        with make_pool(backend) as pool:
            for x in points(N_WORKERS):
                pool.submit(x)
            pool.wait_all()
            telemetry = pool.telemetry()
            assert telemetry.backend == backend
            assert telemetry.n_workers == N_WORKERS
            assert telemetry.n_tasks == N_WORKERS
            assert len(telemetry.worker_tasks) == N_WORKERS
            assert sum(telemetry.worker_tasks) == N_WORKERS
            assert telemetry.summary_line()  # human-readable, never raises

    def test_metrics_parity_across_backends(self, backend):
        """Every backend feeds the registry the same metric names with
        counters consistent with its trace — the cross-backend half of the
        observability contract (the fold itself is covered in test_obs)."""
        from repro.obs import MetricsRegistry, Observability

        registry = MetricsRegistry()
        with make_pool(backend) as pool:
            pool.bind_observability(Observability(metrics=registry))
            for x in points(N_WORKERS, seed=11):
                pool.submit(x)
            pool.wait_all()
            registry.fold_pool_telemetry(pool.telemetry())

        # Live counters tick once per pool event, on every backend.
        assert registry.counter("pool.submits") == N_WORKERS
        assert registry.counter("pool.completions") == N_WORKERS
        assert registry.histogram("pool.task_seconds")["count"] == N_WORKERS
        # Folded counters agree with the live ones and with the trace.
        assert registry.counter("pool.tasks") == N_WORKERS
        assert registry.gauge("pool.workers") == N_WORKERS
        # The full name set is backend-independent: queue waits exist as a
        # (possibly empty) histogram even where no backend samples them.
        assert "pool.queue_wait_seconds" in registry.names()
        expected = {
            "pool.submits", "pool.completions", "pool.task_seconds",
            "pool.tasks", "pool.respawns", "pool.heartbeat_expiries",
            "pool.timeout_kills", "pool.workers", "pool.utilization",
            "pool.elapsed_seconds", "pool.busy_seconds",
            "pool.queue_wait_seconds",
        }
        assert expected <= set(registry.names())

    def test_unbound_pool_records_no_metrics(self, backend):
        """Without bind_observability the pool must not require (or touch)
        any registry — observability is strictly opt-in."""
        with make_pool(backend) as pool:
            pool.submit(points(1, seed=12)[0])
            assert pool.wait_next().result.ok

    def test_close_is_idempotent_and_reentrant(self, backend):
        pool = make_pool(backend)
        pool.submit(points(1)[0])
        try:
            pool.wait_next()
        finally:
            pool.close()
        pool.close()  # second close must be a no-op, not an error


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_lease_expiry_orphans_hung_evaluation(backend):
    """A worker hung far past the mean duration is expired, not waited on.

    Only the real backends are exercised: on the virtual clock a hang is
    just a large simulated cost, so leases there are covered by the
    recovery tests instead.  The hang triggers on the *point* (not the
    call count), so it fires identically inside worker processes, and the
    inner op-amp problem is picklable so the wrapper survives the trip.
    """
    from repro.circuits import OpAmpProblem
    from repro.core.faults import HangProblem

    policy = FailurePolicy(lease_slack=10.0, on_orphan="impute")
    inner = OpAmpProblem()
    lo, hi = inner.bounds[:, 0], inner.bounds[:, 1]
    trigger = lo[0] + 0.9 * (hi[0] - lo[0])
    hang = HangProblem(inner, hang_above=trigger, hang_seconds=60.0)
    rng = np.random.default_rng(9)

    def point(hangs: bool):
        x = rng.uniform(lo, hi)
        x[0] = hi[0] if hangs else lo[0]
        return x

    if backend == "thread":
        pool = ThreadWorkerPool(hang, 2, policy=policy, poll_interval=0.02)
    else:
        pool = ProcessWorkerPool(hang, 2, policy=policy,
                                 heartbeat_interval=0.1, poll_interval=0.05)
    with pool:
        pool.submit(point(hangs=False))
        pool.submit(point(hangs=False))
        assert pool.wait_next().result.ok
        assert pool.wait_next().result.ok
        start = time.monotonic()
        index = pool.submit(point(hangs=True))  # hangs for 60 s
        completion = pool.wait_next()
        assert completion.index == index
        assert completion.result.status == "orphaned"
        assert time.monotonic() - start < 30
        # The slot is reclaimed: the pool keeps serving evaluations.
        pool.submit(point(hangs=False))
        assert pool.wait_next().result.ok
