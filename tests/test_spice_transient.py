"""Tests for the transient analysis."""

import numpy as np
import pytest

from repro.spice import (
    Circuit,
    PulseWave,
    SinWave,
    nmos_180,
    pmos_180,
    transient_analysis,
)
from repro.spice.analysis import average_power, fundamental_phasor, fundamental_power


class TestLinearTransient:
    def test_rc_step_response(self):
        R, C = 1000.0, 1e-6
        tau = R * C
        c = Circuit("rc step")
        c.V("vin", "in", "0", waveform=PulseWave(0, 1, delay=tau / 100,
                                                 rise=1e-9, fall=1e-9,
                                                 width=100 * tau, period=200 * tau))
        c.R("r", "in", "out", R)
        c.C("c", "out", "0", C)
        res = transient_analysis(c, 5 * tau, tau / 100)
        v = res.v("out")
        t_rel = res.t - tau / 100
        expected = np.where(t_rel > 0, 1 - np.exp(-t_rel / tau), 0.0)
        assert np.max(np.abs(v - expected)) < 0.01

    def test_rl_current_ramp(self):
        L, R = 1e-3, 10.0
        tau = L / R
        c = Circuit("rl")
        c.V("vin", "in", "0", waveform=PulseWave(0, 1, delay=0, rise=1e-9,
                                                 fall=1e-9, width=100 * tau,
                                                 period=200 * tau))
        c.R("r", "in", "a", R)
        c.L("l", "a", "0", L)
        res = transient_analysis(c, 5 * tau, tau / 200)
        i = res.i("l")
        expected = (1.0 / R) * (1 - np.exp(-res.t / tau))
        assert np.max(np.abs(i - expected)) < 0.01 / R + 5e-3

    def test_lc_oscillation_energy_conserved(self):
        """Trapezoidal integration must not damp a lossless LC tank."""
        L, C = 1e-6, 1e-9
        c = Circuit("lc")
        # Start from a charged capacitor via an initial current source pulse.
        c.I("ikick", "0", "top", waveform=PulseWave(0, 1e-3, delay=0, rise=1e-12,
                                                    fall=1e-12, width=5e-9,
                                                    period=1.0))
        c.C("c", "top", "0", C)
        c.L("l", "top", "0", L)
        f0 = 1 / (2 * np.pi * np.sqrt(L * C))
        period = 1 / f0
        res = transient_analysis(c, 20 * period, period / 200)
        v = res.v("top")
        # Compare oscillation envelope at the start and end.
        n = len(v)
        early = np.max(np.abs(v[n // 10: 2 * n // 10]))
        late = np.max(np.abs(v[-n // 10:]))
        assert late == pytest.approx(early, rel=0.02)

    def test_sin_source_steady_state(self):
        c = Circuit("sin")
        c.V("vin", "in", "0", waveform=SinWave(0.0, 1.0, 1e3))
        c.R("r", "in", "out", 1000)
        c.R("r2", "out", "0", 1000)
        res = transient_analysis(c, 2e-3, 1e-6)
        expected = 0.5 * np.sin(2 * np.pi * 1e3 * res.t)
        assert np.max(np.abs(res.v("out") - expected)) < 1e-6


class TestNonlinearTransient:
    def test_cmos_inverter_switches(self):
        c = Circuit("inv tran")
        c.V("vdd", "vdd", "0", dc=1.8)
        c.V("vin", "in", "0", waveform=PulseWave(0, 1.8, delay=1e-9, rise=0.1e-9,
                                                 fall=0.1e-9, width=5e-9, period=10e-9))
        c.M("mn", "out", "in", "0", "0", nmos_180(), w=2e-6, l=0.18e-6)
        c.M("mp", "out", "in", "vdd", "vdd", pmos_180(), w=4e-6, l=0.18e-6)
        c.C("cl", "out", "0", 10e-15)
        res = transient_analysis(c, 10e-9, 0.02e-9)
        v = res.v("out")
        assert v[0] == pytest.approx(1.8, abs=0.01)  # input low -> output high
        mid = np.searchsorted(res.t, 4e-9)
        assert v[mid] == pytest.approx(0.0, abs=0.01)  # input high -> output low
        assert v[-1] == pytest.approx(1.8, abs=0.05)  # input back low

    def test_nmos_switch_with_rl_load(self):
        """A crude class-D-like stage: switching must stay convergent."""
        c = Circuit("switcher")
        c.V("vdd", "vdd", "0", dc=1.8)
        c.V("vg", "g", "0", waveform=PulseWave(0, 1.8, rise=1e-9, fall=1e-9,
                                               width=48e-9, period=100e-9))
        c.R("rl", "vdd", "d", 100)
        c.M("m1", "d", "g", "0", "0", nmos_180(), w=50e-6, l=0.18e-6)
        res = transient_analysis(c, 500e-9, 1e-9)
        v = res.v("d")
        assert v.max() > 1.7  # off state reaches supply
        assert v.min() < 0.3  # on state pulls low


class TestValidation:
    def test_rejects_bad_dt(self):
        c = Circuit()
        c.V("v", "a", "0", dc=1.0)
        c.R("r", "a", "0", 1)
        with pytest.raises(ValueError):
            transient_analysis(c, 1.0, 0.0)
        with pytest.raises(ValueError):
            transient_analysis(c, 1.0, 2.0)
        with pytest.raises(ValueError):
            transient_analysis(c, 1.0, 0.1, method="rk4")

    def test_window_mask(self):
        c = Circuit()
        c.V("v", "a", "0", dc=1.0)
        c.R("r", "a", "0", 1)
        res = transient_analysis(c, 1e-3, 1e-4)
        mask = res.window(5e-4)
        assert res.t[mask][0] == pytest.approx(5e-4)
        assert mask.sum() == 6


class TestFourierMeasurements:
    def test_fundamental_phasor_pure_tone(self):
        f0 = 1e6
        t = np.arange(0, 4 / f0, 1 / (200 * f0))
        sig = 3.0 * np.cos(2 * np.pi * f0 * t - 0.5)
        phasor = fundamental_phasor(t, sig, f0)
        assert abs(phasor) == pytest.approx(3.0, rel=1e-6)
        assert np.angle(phasor) == pytest.approx(-0.5, abs=1e-6)

    def test_fundamental_rejects_harmonics(self):
        f0 = 1e6
        t = np.arange(0, 4 / f0, 1 / (200 * f0))
        sig = 2.0 * np.cos(2 * np.pi * f0 * t) + 1.0 * np.cos(2 * np.pi * 3 * f0 * t)
        assert abs(fundamental_phasor(t, sig, f0)) == pytest.approx(2.0, rel=1e-6)

    def test_fundamental_power_into_load(self):
        f0, R = 1e6, 50.0
        t = np.arange(0, 2 / f0, 1 / (100 * f0))
        v = 10.0 * np.sin(2 * np.pi * f0 * t)
        assert fundamental_power(t, v, f0, R) == pytest.approx(1.0, rel=1e-6)

    def test_window_must_cover_integer_periods(self):
        f0 = 1e6
        t = np.arange(0, 1.37 / f0, 1 / (100 * f0))
        with pytest.raises(ValueError, match="integer number"):
            fundamental_phasor(t, np.sin(2 * np.pi * f0 * t), f0)

    def test_average_power_dc(self):
        t = np.linspace(0, 1, 100)
        v = np.full_like(t, 2.0)
        i = np.full_like(t, 3.0)
        assert average_power(t, v, i) == pytest.approx(6.0)

    def test_average_power_orthogonal_tone(self):
        t = np.linspace(0, 1, 10_001)
        v = np.sin(2 * np.pi * 5 * t)
        i = np.cos(2 * np.pi * 5 * t)
        assert average_power(t, v, i) == pytest.approx(0.0, abs=1e-6)

    def test_pae(self):
        from repro.spice.analysis import power_added_efficiency

        assert power_added_efficiency(1.0, 0.1, 2.0) == pytest.approx(0.45)
        assert power_added_efficiency(0.05, 0.1, 2.0) == 0.0
        with pytest.raises(ValueError):
            power_added_efficiency(1.0, 0.1, 0.0)
