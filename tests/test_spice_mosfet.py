"""Tests for the level-1 MOSFET model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice.mosfet import Mosfet, MosfetParams, nmos_180, pmos_180


@pytest.fixture
def nmos():
    return Mosfet("m1", "d", "g", "s", "b", nmos_180(), w=10e-6, l=0.18e-6)


@pytest.fixture
def pmos():
    return Mosfet("m2", "d", "g", "s", "b", pmos_180(), w=20e-6, l=0.18e-6)


class TestRegions:
    def test_cutoff(self, nmos):
        op = nmos.evaluate(1.0, 0.2, 0.0, 0.0)
        assert op.region == "cutoff"
        assert op.ids == 0.0
        assert op.gm == 0.0

    def test_saturation(self, nmos):
        op = nmos.evaluate(1.8, 1.0, 0.0, 0.0)
        assert op.region == "saturation"
        assert op.ids > 0
        assert op.gm > 0
        assert op.gds > 0

    def test_triode(self, nmos):
        op = nmos.evaluate(0.05, 1.2, 0.0, 0.0)
        assert op.region == "triode"
        assert op.ids > 0

    def test_saturation_current_square_law(self, nmos):
        vov = 0.4
        op = nmos.evaluate(1.8, nmos.params.vt0 + vov, 0.0, 0.0)
        expected = 0.5 * nmos.beta * vov**2 * (1 + nmos.lam * 1.8)
        assert op.ids == pytest.approx(expected, rel=1e-12)

    def test_region_boundary_continuity(self, nmos):
        vgs = 1.0
        vov = vgs - nmos.params.vt0
        below = nmos.evaluate(vov - 1e-9, vgs, 0.0, 0.0)
        above = nmos.evaluate(vov + 1e-9, vgs, 0.0, 0.0)
        assert below.ids == pytest.approx(above.ids, rel=1e-6)
        assert below.gm == pytest.approx(above.gm, rel=1e-5)

    def test_pmos_conducts_negative_current(self, pmos):
        # Source at vdd, gate low: PMOS on, current flows source->drain,
        # so drain current (into drain) is negative.
        op = pmos.evaluate(0.0, 0.0, 1.8, 1.8)
        assert op.region == "saturation"
        assert op.ids < 0

    def test_pmos_cutoff(self, pmos):
        op = pmos.evaluate(0.0, 1.8, 1.8, 1.8)
        assert op.region == "cutoff"
        assert op.ids == 0.0


class TestBodyEffect:
    def test_reverse_bias_raises_vth(self, nmos):
        op0 = nmos.evaluate(1.8, 1.0, 0.0, 0.0)
        op1 = nmos.evaluate(1.8, 1.0, 0.0, -0.5)  # vbs = -0.5
        assert op1.vth > op0.vth
        assert op1.ids < op0.ids

    def test_gamma_zero_no_body_effect(self):
        params = MosfetParams(
            polarity=+1, vt0=0.45, kp=280e-6, clm=0.018e-6, gamma=0.0,
            phi=0.85, cox=8.6e-3, cov=0.35e-9, cj=1e-3, ldiff=0.5e-6,
        )
        m = Mosfet("m", "d", "g", "s", "b", params, 1e-6, 1e-6)
        op = m.evaluate(1.8, 1.0, 0.0, -1.0)
        assert op.vth == pytest.approx(0.45)
        assert op.gmb == 0.0

    def test_forward_bias_clamped(self, nmos):
        # Strongly forward-biased bulk must not produce NaN.
        op = nmos.evaluate(1.8, 1.0, 0.0, 2.0)
        assert np.isfinite(op.ids)


class TestDerivatives:
    @pytest.mark.parametrize(
        "bias",
        [
            (1.2, 0.9, 0.1, 0.0),  # saturation
            (0.1, 1.5, 0.0, 0.0),  # triode
            (-0.3, 0.8, 0.0, 0.0),  # reversed drain/source
            (1.8, 1.0, 0.2, -0.3),  # body effect active
        ],
    )
    def test_finite_difference(self, nmos, bias):
        vd, vg, vs, vb = bias
        eps = 1e-7
        op = nmos.evaluate(vd, vg, vs, vb)
        num_gm = (nmos.evaluate(vd, vg + eps, vs, vb).ids
                  - nmos.evaluate(vd, vg - eps, vs, vb).ids) / (2 * eps)
        num_gds = (nmos.evaluate(vd + eps, vg, vs, vb).ids
                   - nmos.evaluate(vd - eps, vg, vs, vb).ids) / (2 * eps)
        num_gmb = (nmos.evaluate(vd, vg, vs, vb + eps).ids
                   - nmos.evaluate(vd, vg, vs, vb - eps).ids) / (2 * eps)
        assert op.gm == pytest.approx(num_gm, abs=1e-8)
        assert op.gds == pytest.approx(num_gds, abs=1e-8)
        assert op.gmb == pytest.approx(num_gmb, abs=1e-8)

    def test_pmos_finite_difference(self, pmos):
        vd, vg, vs, vb = 0.3, 0.2, 1.8, 1.8
        eps = 1e-7
        op = pmos.evaluate(vd, vg, vs, vb)
        num_gm = (pmos.evaluate(vd, vg + eps, vs, vb).ids
                  - pmos.evaluate(vd, vg - eps, vs, vb).ids) / (2 * eps)
        assert op.gm == pytest.approx(num_gm, abs=1e-8)

    def test_ieq_linearization_exact(self, nmos):
        op = nmos.evaluate(1.2, 0.9, 0.1, 0.0)
        reconstructed = op.gm * op.vgs + op.gds * op.vds + op.gmb * op.vbs + op.ieq
        assert reconstructed == pytest.approx(op.ids, abs=1e-15)


class TestSymmetry:
    def test_drain_source_antisymmetry(self, nmos):
        """Swapping D and S negates the current of a symmetric device."""
        fwd = nmos.evaluate(0.3, 1.2, 0.0, 0.0)
        rev = nmos.evaluate(0.0, 1.2, 0.3, 0.0)
        assert fwd.ids == pytest.approx(-rev.ids, rel=1e-12)

    def test_zero_vds_zero_current(self, nmos):
        op = nmos.evaluate(0.0, 1.5, 0.0, 0.0)
        assert op.ids == pytest.approx(0.0, abs=1e-18)


class TestCapacitances:
    def test_regions_have_expected_ordering(self, nmos):
        cut = nmos.capacitances(nmos.evaluate(1.0, 0.0, 0.0, 0.0))
        sat = nmos.capacitances(nmos.evaluate(1.8, 1.0, 0.0, 0.0))
        tri = nmos.capacitances(nmos.evaluate(0.05, 1.5, 0.0, 0.0))
        c_area = nmos.params.cox * nmos.w * nmos.l
        assert sat["cgs"] == pytest.approx(2 / 3 * c_area + nmos.params.cov * nmos.w)
        assert tri["cgs"] == pytest.approx(0.5 * c_area + nmos.params.cov * nmos.w)
        assert cut["cgb"] == pytest.approx(c_area)
        assert sat["cgd"] < sat["cgs"]

    def test_all_positive(self, nmos):
        for bias in [(1.8, 1.0, 0, 0), (0.05, 1.5, 0, 0), (1.0, 0.0, 0, 0)]:
            caps = nmos.capacitances(nmos.evaluate(*bias))
            assert all(v >= 0 for v in caps.values())


class TestValidation:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Mosfet("m", "d", "g", "s", "b", nmos_180(), w=0, l=1e-6)
        with pytest.raises(ValueError):
            Mosfet("m", "d", "g", "s", "b", nmos_180(), w=1e-6, l=-1)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            MosfetParams(polarity=2, vt0=0.4, kp=1e-4, clm=0, gamma=0, phi=0.8,
                         cox=8e-3, cov=0, cj=0, ldiff=0)
        with pytest.raises(ValueError):
            MosfetParams(polarity=1, vt0=0.4, kp=-1, clm=0, gamma=0, phi=0.8,
                         cox=8e-3, cov=0, cj=0, ldiff=0)

    def test_describe(self, nmos):
        text = nmos.describe()
        assert "NMOS" in text and "W=10u" in text


@settings(max_examples=60, deadline=None)
@given(
    vd=st.floats(-2.0, 2.0),
    vg=st.floats(-2.0, 2.0),
    vs=st.floats(-2.0, 2.0),
    vb=st.floats(-2.0, 0.0),
)
def test_property_nmos_evaluate_finite_and_consistent(vd, vg, vs, vb):
    m = Mosfet("m1", "d", "g", "s", "b", nmos_180(), w=5e-6, l=0.36e-6)
    op = m.evaluate(vd, vg, vs, vb)
    assert np.isfinite(op.ids)
    assert np.isfinite(op.gm) and np.isfinite(op.gds) and np.isfinite(op.gmb)
    recon = op.gm * op.vgs + op.gds * op.vds + op.gmb * op.vbs + op.ieq
    assert recon == pytest.approx(op.ids, abs=1e-12, rel=1e-9)
