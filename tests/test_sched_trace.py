"""Tests for execution traces."""

import numpy as np
import pytest

from repro.sched.trace import EvalRecord, ExecutionTrace


def record(index, worker, fom, issue, finish, **kw):
    return EvalRecord(
        index=index,
        worker=worker,
        x=np.array([float(index)]),
        fom=fom,
        issue_time=issue,
        finish_time=finish,
        **kw,
    )


@pytest.fixture
def trace():
    t = ExecutionTrace(n_workers=2)
    t.add(record(0, 0, 1.0, 0.0, 10.0))
    t.add(record(1, 1, 3.0, 0.0, 4.0))
    t.add(record(2, 1, 2.0, 4.0, 12.0))
    return t


class TestBasics:
    def test_makespan(self, trace):
        assert trace.makespan == 12.0

    def test_total_busy_time(self, trace):
        assert trace.total_busy_time == pytest.approx(10 + 4 + 8)

    def test_utilization(self, trace):
        assert trace.utilization() == pytest.approx(22.0 / 24.0)

    def test_empty_trace(self):
        t = ExecutionTrace(1)
        assert t.makespan == 0.0
        assert t.utilization() == 1.0
        with pytest.raises(ValueError):
            t.best_record()
        with pytest.raises(ValueError):
            t.as_dataset()

    def test_record_validation(self):
        with pytest.raises(ValueError):
            record(0, 0, 1.0, 5.0, 4.0)

    def test_n_workers_validation(self):
        with pytest.raises(ValueError):
            ExecutionTrace(0)


class TestCurves:
    def test_best_fom_curve_monotone(self, trace):
        times, best = trace.best_fom_curve()
        np.testing.assert_array_equal(times, [4.0, 10.0, 12.0])
        np.testing.assert_array_equal(best, [3.0, 3.0, 3.0])

    def test_best_fom_curve_orders_by_finish(self):
        t = ExecutionTrace(1)
        t.add(record(0, 0, 5.0, 0, 10))
        t.add(record(1, 0, 1.0, 10, 11))
        _, best = t.best_fom_curve()
        np.testing.assert_array_equal(best, [5.0, 5.0])

    def test_time_to_reach(self, trace):
        assert trace.time_to_reach(2.5) == 4.0
        assert trace.time_to_reach(3.0) == 4.0
        assert trace.time_to_reach(99.0) == float("inf")

    def test_best_record(self, trace):
        assert trace.best_record().index == 1


class TestGantt:
    def test_rows_per_worker(self, trace):
        rows = trace.gantt_rows()
        assert rows[0] == [(0.0, 10.0)]
        assert rows[1] == [(0.0, 4.0), (4.0, 12.0)]


class TestDataset:
    def test_completion_order(self, trace):
        X, y = trace.as_dataset()
        np.testing.assert_array_equal(y, [3.0, 1.0, 2.0])
        np.testing.assert_array_equal(X.ravel(), [1.0, 0.0, 2.0])


class TestSurrogateStats:
    def test_dict_roundtrip(self):
        from repro.sched.trace import SurrogateStats

        stats = SurrogateStats(
            n_refits=5, n_full_fits=1, n_incremental_updates=4,
            n_hallucinated_views=5, refit_seconds=[0.1, 0.2],
            hallucination_seconds=[0.05],
        )
        restored = SurrogateStats.from_dict(stats.as_dict())
        assert restored == stats

    def test_from_dict_ignores_unknown_keys(self):
        from repro.sched.trace import SurrogateStats

        restored = SurrogateStats.from_dict({"n_refits": 3, "future_field": 7})
        assert restored.n_refits == 3

    def test_timing_aggregates(self):
        from repro.sched.trace import SurrogateStats

        stats = SurrogateStats()
        assert stats.mean_event_seconds == 0.0
        stats.refit_seconds.extend([0.2, 0.4])
        stats.hallucination_seconds.extend([0.1, 0.1])
        assert stats.total_seconds == pytest.approx(0.8)
        assert stats.mean_event_seconds == pytest.approx(0.4)
