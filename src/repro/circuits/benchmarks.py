"""Synthetic optimization benchmarks with heterogeneous evaluation costs.

These stand in for the circuit testbenches in fast tests, examples, and
algorithm-level benchmarks.  All functions are expressed as *maximization*
problems (the standard minimization forms are negated) on their canonical
domains, and each problem carries a design-dependent lognormal cost model so
the asynchronous scheduling machinery can be exercised cheaply.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.problem import EvaluationResult, Problem
from repro.sched.durations import CostModel, LognormalCostModel
from repro.utils.validation import check_bounds

__all__ = [
    "SyntheticProblem",
    "RepeatedProblem",
    "branin",
    "hartmann6",
    "ackley",
    "rastrigin",
    "levy",
    "sphere",
    "by_name",
]


class SyntheticProblem(Problem):
    """A closed-form test function with known optimum.

    Attributes
    ----------
    optimum:
        The known global maximum value (for regret computations).
    """

    def __init__(self, name, func, bounds, optimum, *, cost_model: CostModel | None = None):
        self.name = name
        self._func = func
        self._bounds = check_bounds(bounds)
        self.optimum = float(optimum)
        self.cost_model = (
            cost_model
            if cost_model is not None
            else LognormalCostModel(mean_seconds=10.0, sigma=0.3, seed=7)
        )

    @property
    def bounds(self) -> np.ndarray:
        return self._bounds

    def evaluate(self, x: np.ndarray) -> EvaluationResult:
        x = self.validate_point(x)
        return EvaluationResult(
            fom=float(self._func(x)), cost=self.cost_model.duration(x)
        )

    def regret(self, best_fom: float) -> float:
        """Simple regret ``optimum - best_fom`` (non-negative near zero)."""
        return self.optimum - best_fom


def branin(cost_model: CostModel | None = None) -> SyntheticProblem:
    """Branin-Hoo on [-5,10]x[0,15]; maximum 0 after negation is -0.397887."""

    def f(x):
        a, b, c = 1.0, 5.1 / (4 * np.pi**2), 5.0 / np.pi
        r, s, t = 6.0, 10.0, 1.0 / (8 * np.pi)
        val = a * (x[1] - b * x[0] ** 2 + c * x[0] - r) ** 2
        val += s * (1 - t) * np.cos(x[0]) + s
        return -val

    return SyntheticProblem(
        "branin", f, [[-5.0, 10.0], [0.0, 15.0]], optimum=-0.397887, cost_model=cost_model
    )


def hartmann6(cost_model: CostModel | None = None) -> SyntheticProblem:
    """6-D Hartmann on [0,1]^6; maximum 3.32237."""
    A = np.array(
        [
            [10, 3, 17, 3.5, 1.7, 8],
            [0.05, 10, 17, 0.1, 8, 14],
            [3, 3.5, 1.7, 10, 17, 8],
            [17, 8, 0.05, 10, 0.1, 14],
        ]
    )
    P = 1e-4 * np.array(
        [
            [1312, 1696, 5569, 124, 8283, 5886],
            [2329, 4135, 8307, 3736, 1004, 9991],
            [2348, 1451, 3522, 2883, 3047, 6650],
            [4047, 8828, 8732, 5743, 1091, 381],
        ]
    )
    alpha = np.array([1.0, 1.2, 3.0, 3.2])

    def f(x):
        inner = np.sum(A * (x[None, :] - P) ** 2, axis=1)
        return float(np.sum(alpha * np.exp(-inner)))

    return SyntheticProblem(
        "hartmann6", f, [[0.0, 1.0]] * 6, optimum=3.32237, cost_model=cost_model
    )


def ackley(dim: int = 5, cost_model: CostModel | None = None) -> SyntheticProblem:
    """d-D Ackley on [-32.768, 32.768]^d; maximum 0 at the origin."""

    def f(x):
        n = len(x)
        term1 = -20.0 * np.exp(-0.2 * np.sqrt(np.sum(x**2) / n))
        term2 = -np.exp(np.sum(np.cos(2 * np.pi * x)) / n)
        return -(term1 + term2 + 20.0 + np.e)

    return SyntheticProblem(
        f"ackley{dim}", f, [[-32.768, 32.768]] * dim, optimum=0.0, cost_model=cost_model
    )


def rastrigin(dim: int = 4, cost_model: CostModel | None = None) -> SyntheticProblem:
    """d-D Rastrigin on [-5.12, 5.12]^d; maximum 0 at the origin."""

    def f(x):
        return -float(10 * len(x) + np.sum(x**2 - 10 * np.cos(2 * np.pi * x)))

    return SyntheticProblem(
        f"rastrigin{dim}", f, [[-5.12, 5.12]] * dim, optimum=0.0, cost_model=cost_model
    )


def levy(dim: int = 4, cost_model: CostModel | None = None) -> SyntheticProblem:
    """d-D Levy on [-10, 10]^d; maximum 0 at x = 1."""

    def f(x):
        w = 1 + (x - 1) / 4
        term1 = np.sin(np.pi * w[0]) ** 2
        term3 = (w[-1] - 1) ** 2 * (1 + np.sin(2 * np.pi * w[-1]) ** 2)
        middle = np.sum((w[:-1] - 1) ** 2 * (1 + 10 * np.sin(np.pi * w[:-1] + 1) ** 2))
        return -float(term1 + middle + term3)

    return SyntheticProblem(
        f"levy{dim}", f, [[-10.0, 10.0]] * dim, optimum=0.0, cost_model=cost_model
    )


def sphere(dim: int = 3, cost_model: CostModel | None = None) -> SyntheticProblem:
    """d-D sphere on [-5, 5]^d; maximum 0 at the origin (sanity baseline)."""

    def f(x):
        return -float(np.sum(x**2))

    return SyntheticProblem(
        f"sphere{dim}", f, [[-5.0, 5.0]] * dim, optimum=0.0, cost_model=cost_model
    )


class RepeatedProblem(Problem):
    """Inflate a problem's real evaluation cost: repeat it, then sleep.

    The inner problem is evaluated ``repeat`` times per call (pure CPU
    work; the first result is returned) and ``latency`` adds a real
    ``time.sleep`` — modelling the wait on a remote simulator licence or
    farm.  Parallel-speedup benchmarks use it to dial evaluation cost up
    to where process-level parallelism is measurable: CPU repeats scale
    with cores, sleeps overlap across workers regardless of core count.

    Lives in the library (not in a benchmark script) so that instances
    pickle by module reference into worker processes.
    """

    def __init__(self, problem: Problem, *, repeat: int = 1, latency: float = 0.0):
        if repeat < 1:
            raise ValueError("repeat must be >= 1")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.problem = problem
        self.repeat = int(repeat)
        self.latency = float(latency)
        self.name = problem.name

    @property
    def bounds(self) -> np.ndarray:
        return self.problem.bounds

    def evaluate(self, x: np.ndarray) -> EvaluationResult:
        result = self.problem.evaluate(x)
        for _ in range(self.repeat - 1):
            self.problem.evaluate(x)
        if self.latency > 0:
            time.sleep(self.latency)
        return result


_FACTORIES = {
    "branin": branin,
    "hartmann6": hartmann6,
    "ackley": ackley,
    "rastrigin": rastrigin,
    "levy": levy,
    "sphere": sphere,
}


def by_name(name: str, **kwargs) -> SyntheticProblem:
    """Look up a synthetic benchmark factory by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory(**kwargs)
