"""Five-transistor OTA testbench — the small third benchmark circuit.

A single-stage operational transconductance amplifier: NMOS differential
pair, PMOS current-mirror load, NMOS tail source mirrored from a bias leg.
Six design variables (pair and load geometries, tail width, bias current)
under the same Eq. 10-style figure of merit as the two-stage op-amp.

It is included as a fast, well-conditioned sizing problem: a single AC sweep
per evaluation and a landscape gentle enough that every optimizer in the
library makes visible progress within tens of simulations — handy for demos,
tutorials, and algorithm debugging, where the paper's 10-variable op-amp is
overkill.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.spec import DesignSpace, Parameter
from repro.core.problem import EvaluationResult, Problem
from repro.sched.durations import CostModel, LognormalCostModel
from repro.spice import (
    Circuit,
    SpiceError,
    ac_analysis,
    bode_metrics,
    dc_operating_point,
    logspace_frequencies,
    nmos_180,
    pmos_180,
)

__all__ = ["OtaProblem", "build_ota", "ota_design_space", "FAILURE_FOM"]

#: FOM assigned to failed simulations.
FAILURE_FOM = 0.0

#: Supply, common mode, and load for the testbench.
VDD = 1.8
VCM = 0.9
CLOAD = 1e-12

#: Lighter cost model than the op-amp (single-stage AC is quick in HSPICE).
DEFAULT_COST = LognormalCostModel(mean_seconds=12.0, sigma=0.15, seed=3)


def ota_design_space() -> DesignSpace:
    """The 6-variable OTA sizing space."""
    return DesignSpace(
        [
            Parameter("w12", 2e-6, 60e-6, unit="m", log=True),    # input pair
            Parameter("l12", 0.18e-6, 1.5e-6, unit="m", log=True),
            Parameter("w34", 2e-6, 60e-6, unit="m", log=True),    # mirror load
            Parameter("l34", 0.18e-6, 1.5e-6, unit="m", log=True),
            Parameter("w5", 2e-6, 80e-6, unit="m", log=True),     # tail source
            Parameter("ibias", 5e-6, 100e-6, unit="A", log=True),  # bias leg
        ]
    )


def build_ota(values: dict[str, float]) -> Circuit:
    """Construct the 5T OTA netlist for one set of physical sizes."""
    nmos = nmos_180()
    pmos = pmos_180()
    c = Circuit("five-transistor OTA")
    c.V("vdd", "vdd", "0", dc=VDD)
    c.V("vip", "ip", "0", dc=VCM, ac=+0.5)
    c.V("vim", "im", "0", dc=VCM, ac=-0.5)
    c.I("ibias", "vdd", "bn", dc=values["ibias"])
    c.M("m6", "bn", "bn", "0", "0", nmos, w=4e-6, l=0.5e-6)
    c.M("m5", "tail", "bn", "0", "0", nmos, w=values["w5"], l=0.5e-6)
    c.M("m1", "x", "ip", "tail", "0", nmos, w=values["w12"], l=values["l12"])
    c.M("m2", "out", "im", "tail", "0", nmos, w=values["w12"], l=values["l12"])
    c.M("m3", "x", "x", "vdd", "vdd", pmos, w=values["w34"], l=values["l34"])
    c.M("m4", "out", "x", "vdd", "vdd", pmos, w=values["w34"], l=values["l34"])
    c.C("cl", "out", "0", CLOAD)
    return c


class OtaProblem(Problem):
    """OTA sizing with ``FOM = 1.2 GAIN + 10 UGF(10 MHz) + 1.6 PM``.

    A single-stage OTA is unconditionally stable into a capacitive load, so
    no phase-margin gate is needed; PM simply contributes its term.
    """

    name = "ota"

    def __init__(self, *, cost_model: CostModel | None = None):
        self.space = ota_design_space()
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST
        self.freqs = logspace_frequencies(10.0, 10e9, 12)

    @property
    def bounds(self) -> np.ndarray:
        return self.space.bounds

    def evaluate(self, x: np.ndarray) -> EvaluationResult:
        x = self.validate_point(x)
        cost = self.cost_model.duration(x)
        values = self.space.to_values(x)
        try:
            circuit = build_ota(values)
            op = dc_operating_point(circuit)
            ac = ac_analysis(circuit, self.freqs, op=op)
            metrics = bode_metrics(ac.freqs, ac.v("out"))
        except SpiceError:
            return EvaluationResult(fom=FAILURE_FOM, metrics={}, cost=cost, feasible=False)
        gain_db = metrics.dc_gain_db
        ugf_mhz = metrics.ugf_hz / 1e6
        pm_deg = metrics.phase_margin_deg
        fom = 1.2 * gain_db + 10.0 * (ugf_mhz / 10.0) + 1.6 * min(max(pm_deg, 0.0), 120.0)
        return EvaluationResult(
            fom=max(float(fom), FAILURE_FOM),
            metrics={"gain_db": gain_db, "ugf_mhz": ugf_mhz, "pm_deg": pm_deg},
            cost=cost,
        )
