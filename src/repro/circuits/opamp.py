"""Two-stage Miller-compensated operational amplifier testbench (paper §IV-A).

The paper optimizes a 180 nm op-amp with 10 design variables (transistor
geometries, a resistor, and a capacitor) under

    FOM = 1.2 * GAIN + 10 * UGF + 1.6 * PM            (Eq. 10)

Our stand-in is the canonical two-stage Miller op-amp: NMOS input pair with
PMOS mirror load, PMOS common-source second stage, and an Rz + Cc nulling
branch.  GAIN is the open-loop DC gain in dB, UGF the unity-gain frequency in
*tens of MHz*, and PM the phase margin in degrees — with these units the
three terms are balanced and the achievable FOM lands in the same
few-hundred range as the paper's Table I (whose own unit conventions are not
stated).

Designs with phase margin below 45 degrees are marked infeasible and pay a
graded penalty (our simulator's idealized device model otherwise rewards
near-oscillatory designs); designs that fail to bias, have sub-unity gain,
or never cross 0 dB receive ``FAILURE_FOM``.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import EvaluationResult, Problem
from repro.sched.durations import CostModel, LognormalCostModel
from repro.spice import (
    Circuit,
    SpiceError,
    ac_analysis,
    bode_metrics,
    dc_operating_point,
    logspace_frequencies,
    nmos_180,
    pmos_180,
)
from repro.circuits.spec import DesignSpace, Parameter

__all__ = ["OpAmpProblem", "build_opamp", "opamp_design_space", "FAILURE_FOM"]

#: FOM assigned to designs whose simulation fails (penalty, not NaN).
FAILURE_FOM = 0.0

#: Supply voltage of the 180 nm testbench.
VDD = 1.8

#: Input common-mode voltage.
VCM = 0.9

#: Bias reference current.
IBIAS = 20e-6

#: Load capacitance at the output.
CLOAD = 3e-12

#: Minimum acceptable phase margin (degrees) — designs below are infeasible.
MIN_PHASE_MARGIN = 45.0

#: FOM points lost per degree of phase-margin shortfall below the minimum.
PM_PENALTY_PER_DEG = 8.0

#: Paper-calibrated per-simulation HSPICE cost (see sched.durations).
DEFAULT_COST = LognormalCostModel(mean_seconds=38.8, sigma=0.10, seed=1)


def opamp_design_space() -> DesignSpace:
    """The 10-variable sizing space (paper: widths, lengths, R, C)."""
    return DesignSpace(
        [
            Parameter("w12", 2e-6, 80e-6, unit="m", log=True),   # input pair width
            Parameter("l12", 0.18e-6, 2e-6, unit="m", log=True),  # input pair length
            Parameter("w34", 2e-6, 80e-6, unit="m", log=True),   # mirror load width
            Parameter("l34", 0.18e-6, 2e-6, unit="m", log=True),  # mirror load length
            Parameter("w5", 2e-6, 100e-6, unit="m", log=True),   # tail source width
            Parameter("w6", 5e-6, 300e-6, unit="m", log=True),   # 2nd-stage PMOS width
            Parameter("l6", 0.18e-6, 1e-6, unit="m", log=True),  # 2nd-stage length
            Parameter("w7", 5e-6, 150e-6, unit="m", log=True),   # output sink width
            Parameter("rz", 100.0, 20e3, unit="Ohm", log=True),  # nulling resistor
            Parameter("cc", 0.5e-12, 10e-12, unit="F", log=True),  # Miller cap
        ]
    )


def build_opamp(values: dict[str, float]) -> Circuit:
    """Construct the op-amp netlist for one set of physical sizes.

    The testbench applies a +/- 0.5 V AC differential stimulus around the
    common mode, so ``v(out)`` *is* the differential open-loop transfer
    function.
    """
    nmos = nmos_180()
    pmos = pmos_180()
    c = Circuit("two-stage Miller op-amp (reproduction of paper Fig. 3)")
    c.V("vdd", "vdd", "0", dc=VDD)
    c.V("vip", "ip", "0", dc=VCM, ac=+0.5)
    c.V("vim", "im", "0", dc=VCM, ac=-0.5)
    c.I("ibias", "vdd", "bn", dc=IBIAS)
    # Bias mirror: M8 diode sets the gate line 'bn' for the tail and sink.
    c.M("m8", "bn", "bn", "0", "0", nmos, w=4e-6, l=0.5e-6)
    c.M("m5", "tail", "bn", "0", "0", nmos, w=values["w5"], l=0.5e-6)
    # First stage: NMOS differential pair with PMOS current-mirror load.
    c.M("m1", "x1", "ip", "tail", "0", nmos, w=values["w12"], l=values["l12"])
    c.M("m2", "x2", "im", "tail", "0", nmos, w=values["w12"], l=values["l12"])
    c.M("m3", "x1", "x1", "vdd", "vdd", pmos, w=values["w34"], l=values["l34"])
    c.M("m4", "x2", "x1", "vdd", "vdd", pmos, w=values["w34"], l=values["l34"])
    # Second stage: PMOS common source with NMOS current-sink load.
    c.M("m6", "out", "x2", "vdd", "vdd", pmos, w=values["w6"], l=values["l6"])
    c.M("m7", "out", "bn", "0", "0", nmos, w=values["w7"], l=0.5e-6)
    # Miller compensation with nulling resistor, plus the load.
    c.R("rz", "x2", "cz", values["rz"])
    c.C("cc", "cz", "out", values["cc"])
    c.C("cl", "out", "0", CLOAD)
    return c


class OpAmpProblem(Problem):
    """Op-amp sizing as a :class:`~repro.core.problem.Problem`.

    Parameters
    ----------
    cost_model:
        Duration model charged per evaluation (defaults to the
        paper-calibrated lognormal; see :mod:`repro.sched.durations`).
    f_start, f_stop, points_per_decade:
        AC sweep grid used for the Bode measurement.
    """

    name = "opamp"

    def __init__(
        self,
        *,
        cost_model: CostModel | None = None,
        f_start: float = 10.0,
        f_stop: float = 10e9,
        points_per_decade: int = 12,
    ):
        self.space = opamp_design_space()
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST
        self.freqs = logspace_frequencies(f_start, f_stop, points_per_decade)

    @property
    def bounds(self) -> np.ndarray:
        return self.space.bounds

    def evaluate(self, x: np.ndarray) -> EvaluationResult:
        x = self.validate_point(x)
        cost = self.cost_model.duration(x)
        values = self.space.to_values(x)
        try:
            circuit = build_opamp(values)
            op = dc_operating_point(circuit)
            ac = ac_analysis(circuit, self.freqs, op=op)
            metrics = bode_metrics(ac.freqs, ac.v("out"))
        except SpiceError:
            return EvaluationResult(
                fom=FAILURE_FOM, metrics={}, cost=cost, feasible=False
            )
        gain_db = metrics.dc_gain_db
        ugf_mhz = metrics.ugf_hz / 1e6
        pm_deg = metrics.phase_margin_deg
        # Eq. 10 with UGF expressed in tens of MHz, which balances the three
        # terms into the paper's few-hundred FOM range (see module docstring).
        fom = 1.2 * gain_db + 10.0 * (ugf_mhz / 10.0) + 1.6 * min(pm_deg, 120.0)
        feasible = pm_deg >= MIN_PHASE_MARGIN
        if not feasible:
            # Soft stability penalty: the idealized level-1 model otherwise
            # rewards near-oscillatory designs with huge UGF.  A graded
            # penalty keeps the response surface informative for the GP,
            # matching how mis-sized HSPICE designs degrade in the paper.
            fom -= PM_PENALTY_PER_DEG * (MIN_PHASE_MARGIN - max(pm_deg, 0.0))
        fom = max(float(fom), FAILURE_FOM)
        return EvaluationResult(
            fom=fom,
            metrics={"gain_db": gain_db, "ugf_mhz": ugf_mhz, "pm_deg": pm_deg},
            cost=cost,
            feasible=feasible,
        )
