"""Design-space plumbing for circuit sizing problems.

A :class:`DesignSpace` maps between the optimizer's coordinates and physical
component values.  Parameters that span decades (widths, capacitances,
inductances) are searched in log10 space — the standard trick that makes GP
lengthscales meaningful for sizing problems.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.utils.validation import check_vector

__all__ = ["Parameter", "DesignSpace"]


@dataclasses.dataclass(frozen=True)
class Parameter:
    """One sizing variable.

    Attributes
    ----------
    name:
        Identifier used in value dictionaries.
    low, high:
        Physical bounds (inclusive).
    unit:
        Display unit, e.g. ``"m"`` or ``"F"``.
    log:
        If True the optimizer searches log10(value) between log10(low) and
        log10(high).
    """

    name: str
    low: float
    high: float
    unit: str = ""
    log: bool = False

    def __post_init__(self):
        if not self.name:
            raise ValueError("parameter name must be non-empty")
        if not (math.isfinite(self.low) and math.isfinite(self.high)):
            raise ValueError(f"{self.name}: bounds must be finite")
        if self.low >= self.high:
            raise ValueError(f"{self.name}: low must be < high")
        if self.log and self.low <= 0:
            raise ValueError(f"{self.name}: log-scale parameters need low > 0")

    @property
    def optimizer_bounds(self) -> tuple[float, float]:
        """Bounds in the optimizer's coordinate for this parameter."""
        if self.log:
            return (math.log10(self.low), math.log10(self.high))
        return (self.low, self.high)

    def to_physical(self, coord: float) -> float:
        """Map an optimizer coordinate to the physical value (clipped)."""
        lo, hi = self.optimizer_bounds
        coord = min(max(coord, lo), hi)
        return 10.0**coord if self.log else coord

    def to_optimizer(self, value: float) -> float:
        """Map a physical value to the optimizer coordinate."""
        if self.log:
            if value <= 0:
                raise ValueError(f"{self.name}: log parameter needs positive value")
            return math.log10(value)
        return value


class DesignSpace:
    """Ordered collection of :class:`Parameter` with coordinate mapping."""

    def __init__(self, parameters):
        parameters = list(parameters)
        if not parameters:
            raise ValueError("design space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError("parameter names must be unique")
        self.parameters = parameters

    @property
    def dim(self) -> int:
        return len(self.parameters)

    @property
    def names(self) -> list[str]:
        return [p.name for p in self.parameters]

    @property
    def bounds(self) -> np.ndarray:
        """Optimizer-space box bounds, shape ``(d, 2)``."""
        return np.asarray([p.optimizer_bounds for p in self.parameters])

    def to_values(self, x) -> dict[str, float]:
        """Optimizer coordinates -> named physical values."""
        x = check_vector(x, "x", size=self.dim)
        return {p.name: p.to_physical(float(c)) for p, c in zip(self.parameters, x)}

    def to_vector(self, values: dict[str, float]) -> np.ndarray:
        """Named physical values -> optimizer coordinates."""
        missing = set(self.names) - set(values)
        if missing:
            raise KeyError(f"missing values for parameters: {sorted(missing)}")
        return np.asarray(
            [p.to_optimizer(float(values[p.name])) for p in self.parameters]
        )

    def sample(self, n: int, rng) -> np.ndarray:
        """Uniform random designs in optimizer space, shape ``(n, d)``."""
        bounds = self.bounds
        return rng.uniform(bounds[:, 0], bounds[:, 1], size=(n, self.dim))

    def describe(self) -> str:
        """Table of parameters and their physical ranges."""
        lines = [f"{'parameter':<12} {'low':>12} {'high':>12} scale"]
        for p in self.parameters:
            scale = "log10" if p.log else "linear"
            lines.append(
                f"{p.name:<12} {p.low:>12.4g} {p.high:>12.4g} {scale} {p.unit}"
            )
        return "\n".join(lines)
