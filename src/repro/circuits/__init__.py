"""Benchmark circuits and design-space plumbing (paper §IV).

* :class:`OpAmpProblem` — the 10-variable two-stage Miller op-amp (Eq. 10).
* :class:`ClassEProblem` — the 12-variable class-E power amplifier (Eq. 11).
* :mod:`repro.circuits.benchmarks` — synthetic test functions with
  heterogeneous cost models for fast experimentation.
"""

from repro.circuits.benchmarks import (
    SyntheticProblem,
    ackley,
    branin,
    by_name,
    hartmann6,
    levy,
    rastrigin,
    sphere,
)
from repro.circuits.classe import ClassEProblem, build_classe, classe_design_space
from repro.circuits.constrained_opamp import ConstrainedOpAmpProblem
from repro.circuits.opamp import OpAmpProblem, build_opamp, opamp_design_space
from repro.circuits.ota import OtaProblem, build_ota, ota_design_space
from repro.circuits.spec import DesignSpace, Parameter
from repro.circuits.variation import (
    CORNERS,
    ProcessShift,
    RobustOpAmpProblem,
    monte_carlo_foms,
    shift_params,
)

__all__ = [
    "DesignSpace",
    "Parameter",
    "OpAmpProblem",
    "ConstrainedOpAmpProblem",
    "build_opamp",
    "opamp_design_space",
    "ClassEProblem",
    "build_classe",
    "classe_design_space",
    "OtaProblem",
    "build_ota",
    "ota_design_space",
    "SyntheticProblem",
    "branin",
    "hartmann6",
    "ackley",
    "rastrigin",
    "levy",
    "sphere",
    "by_name",
    "CORNERS",
    "ProcessShift",
    "RobustOpAmpProblem",
    "monte_carlo_foms",
    "shift_params",
]
