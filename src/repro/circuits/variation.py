"""Process variation: corner and Monte-Carlo analysis of sized designs.

Sizing results are only useful if they survive process spread.  This module
models global process variation by perturbing the MOSFET model cards:

* **corners** — the classic FF/SS/FS/SF/TT grid, shifting threshold voltage
  and transconductance of NMOS/PMOS together (fast = lower vt0, higher kp);
* **Monte Carlo** — Gaussian perturbations of (vt0, kp) per run.

Both wrap any circuit problem whose netlist builder accepts model cards via
:func:`build_with_models`, and a :class:`RobustOpAmpProblem` is provided that
scores a design by its *worst-corner* FOM — turning EasyBO into a robust
(minimax) sizing loop.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuits.opamp import (
    CLOAD,
    DEFAULT_COST,
    FAILURE_FOM,
    IBIAS,
    MIN_PHASE_MARGIN,
    PM_PENALTY_PER_DEG,
    VCM,
    VDD,
    opamp_design_space,
)
from repro.core.problem import EvaluationResult, Problem
from repro.sched.durations import CostModel
from repro.spice import (
    Circuit,
    MosfetParams,
    SpiceError,
    ac_analysis,
    bode_metrics,
    dc_operating_point,
    logspace_frequencies,
    nmos_180,
    pmos_180,
)
from repro.utils.rng import as_generator

__all__ = [
    "ProcessShift",
    "CORNERS",
    "shift_params",
    "build_opamp_with_models",
    "evaluate_opamp_at_corner",
    "RobustOpAmpProblem",
    "monte_carlo_foms",
]


@dataclasses.dataclass(frozen=True)
class ProcessShift:
    """Multiplicative/additive shifts applied to a model card.

    ``dvt`` is added to vt0 (volts); ``kp_scale`` multiplies kp.
    """

    name: str
    nmos_dvt: float
    nmos_kp_scale: float
    pmos_dvt: float
    pmos_kp_scale: float


#: The standard five-corner set (fast/slow per device polarity).
CORNERS = (
    ProcessShift("TT", 0.0, 1.0, 0.0, 1.0),
    ProcessShift("FF", -0.05, 1.12, -0.05, 1.12),
    ProcessShift("SS", +0.05, 0.88, +0.05, 0.88),
    ProcessShift("FS", -0.05, 1.12, +0.05, 0.88),
    ProcessShift("SF", +0.05, 0.88, -0.05, 1.12),
)


def shift_params(base: MosfetParams, dvt: float, kp_scale: float) -> MosfetParams:
    """A model card with shifted threshold and transconductance."""
    if kp_scale <= 0:
        raise ValueError("kp_scale must be positive")
    return dataclasses.replace(base, vt0=base.vt0 + dvt, kp=base.kp * kp_scale)


def build_opamp_with_models(
    values: dict[str, float], nmos: MosfetParams, pmos: MosfetParams
) -> Circuit:
    """The op-amp netlist with explicit (possibly shifted) model cards.

    Mirrors :func:`repro.circuits.opamp.build_opamp`, which uses the nominal
    cards.
    """
    c = Circuit("two-stage Miller op-amp (process-shifted)")
    c.V("vdd", "vdd", "0", dc=VDD)
    c.V("vip", "ip", "0", dc=VCM, ac=+0.5)
    c.V("vim", "im", "0", dc=VCM, ac=-0.5)
    c.I("ibias", "vdd", "bn", dc=IBIAS)
    c.M("m8", "bn", "bn", "0", "0", nmos, w=4e-6, l=0.5e-6)
    c.M("m5", "tail", "bn", "0", "0", nmos, w=values["w5"], l=0.5e-6)
    c.M("m1", "x1", "ip", "tail", "0", nmos, w=values["w12"], l=values["l12"])
    c.M("m2", "x2", "im", "tail", "0", nmos, w=values["w12"], l=values["l12"])
    c.M("m3", "x1", "x1", "vdd", "vdd", pmos, w=values["w34"], l=values["l34"])
    c.M("m4", "x2", "x1", "vdd", "vdd", pmos, w=values["w34"], l=values["l34"])
    c.M("m6", "out", "x2", "vdd", "vdd", pmos, w=values["w6"], l=values["l6"])
    c.M("m7", "out", "bn", "0", "0", nmos, w=values["w7"], l=0.5e-6)
    c.R("rz", "x2", "cz", values["rz"])
    c.C("cc", "cz", "out", values["cc"])
    c.C("cl", "out", "0", CLOAD)
    return c


_FREQS = logspace_frequencies(10.0, 10e9, 12)


def evaluate_opamp_at_corner(
    values: dict[str, float], nmos: MosfetParams, pmos: MosfetParams
) -> tuple[float, dict[str, float]]:
    """Eq. 10 FOM of a sizing under the given model cards."""
    try:
        circuit = build_opamp_with_models(values, nmos, pmos)
        op = dc_operating_point(circuit)
        ac = ac_analysis(circuit, _FREQS, op=op)
        metrics = bode_metrics(ac.freqs, ac.v("out"))
    except SpiceError:
        return FAILURE_FOM, {}
    gain_db = metrics.dc_gain_db
    ugf_mhz = metrics.ugf_hz / 1e6
    pm_deg = metrics.phase_margin_deg
    fom = 1.2 * gain_db + 10.0 * (ugf_mhz / 10.0) + 1.6 * min(pm_deg, 120.0)
    if pm_deg < MIN_PHASE_MARGIN:
        fom -= PM_PENALTY_PER_DEG * (MIN_PHASE_MARGIN - max(pm_deg, 0.0))
    fom = max(float(fom), FAILURE_FOM)
    return fom, {"gain_db": gain_db, "ugf_mhz": ugf_mhz, "pm_deg": pm_deg}


class RobustOpAmpProblem(Problem):
    """Worst-corner op-amp sizing: maximize ``min over corners FOM``.

    Each evaluation simulates every corner (its cost scales accordingly,
    matching how a corner sweep multiplies HSPICE time).
    """

    name = "opamp-robust"

    def __init__(self, corners=CORNERS, *, cost_model: CostModel | None = None):
        corners = tuple(corners)
        if not corners:
            raise ValueError("need at least one corner")
        self.corners = corners
        self.space = opamp_design_space()
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST

    @property
    def bounds(self) -> np.ndarray:
        return self.space.bounds

    def evaluate(self, x: np.ndarray) -> EvaluationResult:
        x = self.validate_point(x)
        cost = self.cost_model.duration(x) * len(self.corners)
        values = self.space.to_values(x)
        foms = {}
        for corner in self.corners:
            nmos = shift_params(nmos_180(), corner.nmos_dvt, corner.nmos_kp_scale)
            pmos = shift_params(pmos_180(), corner.pmos_dvt, corner.pmos_kp_scale)
            foms[corner.name], _ = evaluate_opamp_at_corner(values, nmos, pmos)
        worst_corner = min(foms, key=foms.get)
        worst = foms[worst_corner]
        metrics = {f"fom_{name}": fom for name, fom in foms.items()}
        metrics["worst_corner_fom"] = worst
        return EvaluationResult(
            fom=float(worst),
            metrics=metrics,
            cost=cost,
            feasible=worst > FAILURE_FOM,
        )


def monte_carlo_foms(
    values: dict[str, float],
    n_runs: int,
    *,
    sigma_vt: float = 0.02,
    sigma_kp: float = 0.05,
    rng=None,
) -> np.ndarray:
    """Monte-Carlo FOM distribution of one op-amp sizing.

    Draws global Gaussian shifts (vt0 additive, kp lognormal-ish via a
    multiplicative factor) independently for NMOS and PMOS per run.
    """
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")
    rng = as_generator(rng)
    foms = np.empty(n_runs)
    for k in range(n_runs):
        nmos = shift_params(
            nmos_180(),
            rng.normal(0.0, sigma_vt),
            float(np.exp(rng.normal(0.0, sigma_kp))),
        )
        pmos = shift_params(
            pmos_180(),
            rng.normal(0.0, sigma_vt),
            float(np.exp(rng.normal(0.0, sigma_kp))),
        )
        foms[k], _ = evaluate_opamp_at_corner(values, nmos, pmos)
    return foms
