"""Class-E power amplifier testbench (paper §IV-B).

The paper sizes a 180 nm class-E PA with 12 design parameters under

    FOM = 3 * PAE + Pout                              (Eq. 11)

Our stand-in is the textbook class-E stage: an NMOS switch with pulse gate
drive through a small gate resistor, an RF choke from the supply, a shunt
capacitor at the drain, a series L0-C0 resonator, and an L-section match into
a 50-ohm load.  The carrier is 100 MHz (the topology scales with frequency;
only steps-per-period matters to the simulator).

Metrics from the switching transient (last ``measure_periods`` periods after
a settling run): Pout is the fundamental power delivered to the load, PAE is
``(Pout - Pin) / Pdc`` with Pin the gate-drive power.  In Eq. 11 Pout is
expressed in units of 100 mW so both terms share the paper's ~0-3 range and
the FOM lands in the same few-unit band as Table II.

Failed transients (non-convergent switching) and degenerate power draws are
penalized with ``FAILURE_FOM``.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.spec import DesignSpace, Parameter
from repro.core.problem import EvaluationResult, Problem
from repro.sched.durations import CostModel, LognormalCostModel
from repro.spice import (
    Circuit,
    PulseWave,
    SpiceError,
    average_power,
    fundamental_power,
    transient_analysis,
)
from repro.spice.mosfet import nmos_180

__all__ = ["ClassEProblem", "build_classe", "classe_design_space", "FAILURE_FOM", "F0"]

#: FOM assigned to designs whose simulation fails.
FAILURE_FOM = 0.0

#: Switching frequency of the testbench.
F0 = 100e6

#: Load resistance (fixed, as for a 50-ohm antenna).
RLOAD = 50.0

#: Series gate resistance modelling the driver output impedance.
RGATE = 2.0

#: Paper-calibrated per-simulation HSPICE cost (see sched.durations).
DEFAULT_COST = LognormalCostModel(mean_seconds=52.7, sigma=0.35, seed=2)


def classe_design_space() -> DesignSpace:
    """The 12-variable class-E sizing space."""
    return DesignSpace(
        [
            Parameter("w", 200e-6, 5000e-6, unit="m", log=True),      # switch width
            Parameter("l", 0.18e-6, 0.5e-6, unit="m", log=True),      # switch length
            Parameter("l_choke", 100e-9, 10e-6, unit="H", log=True),  # RF choke
            Parameter("c_shunt", 2e-12, 100e-12, unit="F", log=True),  # drain shunt
            Parameter("l0", 20e-9, 500e-9, unit="H", log=True),       # resonator L
            Parameter("c0", 2e-12, 100e-12, unit="F", log=True),      # resonator C
            Parameter("l_match", 2e-9, 100e-9, unit="H", log=True),   # match series L
            Parameter("c_match", 2e-12, 100e-12, unit="F", log=True),  # match shunt C
            Parameter("duty", 0.25, 0.75),                            # drive duty cycle
            Parameter("rise_frac", 0.02, 0.25),                       # edge / period
            Parameter("vdd", 1.0, 2.4, unit="V"),                     # supply
            Parameter("v_gate", 1.2, 2.0, unit="V"),                  # drive high level
        ]
    )


def build_classe(values: dict[str, float]) -> Circuit:
    """Construct the class-E PA netlist for one set of physical values."""
    period = 1.0 / F0
    rise = values["rise_frac"] * period
    # Keep rise + width + fall inside one period with a minimum on-time.
    width = period * max(values["duty"] - values["rise_frac"], 0.05)
    drive = PulseWave(
        v1=0.0, v2=values["v_gate"], delay=0.0, rise=rise, fall=rise,
        width=width, period=period,
    )
    c = Circuit("class-E power amplifier (reproduction of paper Fig. 5)")
    c.V("vdd", "vdd", "0", dc=values["vdd"])
    c.V("vg", "gdrv", "0", waveform=drive)
    c.R("rg", "gdrv", "g", RGATE)
    c.L("lchoke", "vdd", "drain", values["l_choke"])
    c.M("m1", "drain", "g", "0", "0", nmos_180(), w=values["w"], l=values["l"])
    c.C("csh", "drain", "0", values["c_shunt"])
    c.L("l0", "drain", "n1", values["l0"])
    c.C("c0", "n1", "n2", values["c0"])
    c.L("lm", "n2", "out", values["l_match"])
    c.C("cm", "out", "0", values["c_match"])
    c.R("rl", "out", "0", RLOAD)
    return c


class ClassEProblem(Problem):
    """Class-E PA sizing as a :class:`~repro.core.problem.Problem`.

    Parameters
    ----------
    cost_model:
        Duration model charged per evaluation.
    settle_periods / measure_periods:
        Transient length: the circuit runs ``settle + measure`` carrier
        periods and the power metrics integrate over the final window.
    steps_per_period:
        Fixed integration grid density.
    """

    name = "classe"

    def __init__(
        self,
        *,
        cost_model: CostModel | None = None,
        settle_periods: int = 20,
        measure_periods: int = 5,
        steps_per_period: int = 64,
    ):
        if settle_periods < 1 or measure_periods < 1:
            raise ValueError("settle_periods and measure_periods must be >= 1")
        self.space = classe_design_space()
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST
        self.settle_periods = int(settle_periods)
        self.measure_periods = int(measure_periods)
        self.steps_per_period = int(steps_per_period)

    @property
    def bounds(self) -> np.ndarray:
        return self.space.bounds

    def evaluate(self, x: np.ndarray) -> EvaluationResult:
        x = self.validate_point(x)
        cost = self.cost_model.duration(x)
        values = self.space.to_values(x)
        period = 1.0 / F0
        t_stop = (self.settle_periods + self.measure_periods) * period
        dt = period / self.steps_per_period
        try:
            circuit = build_classe(values)
            result = transient_analysis(circuit, t_stop, dt)
        except SpiceError:
            return EvaluationResult(fom=FAILURE_FOM, metrics={}, cost=cost, feasible=False)

        window = result.window(self.settle_periods * period)
        t = result.t[window]
        v_out = result.v("out")[window]
        p_out = fundamental_power(t, v_out, F0, RLOAD)
        # Source branch currents flow + -> - inside the source, so the power
        # *delivered* by a source is v * (-i).
        p_dc = average_power(t, np.full_like(t, values["vdd"]), -result.i("vdd")[window])
        v_drive = result.v("gdrv")[window]
        p_in = average_power(t, v_drive, -result.i("vg")[window])
        if p_dc <= 1e-9:
            return EvaluationResult(
                fom=FAILURE_FOM,
                metrics={"p_out_w": p_out, "p_dc_w": p_dc, "p_in_w": p_in},
                cost=cost,
                feasible=False,
            )
        pae = max(0.0, (p_out - max(p_in, 0.0)) / p_dc)
        # Drain efficiency cannot exceed 1; a PAE above 1 signals a transient
        # that has not reached steady state (energy still stored in the
        # resonator).  Clamp for bookkeeping.
        pae = min(pae, 1.0)
        fom = 3.0 * pae + p_out / 0.1
        return EvaluationResult(
            fom=float(fom),
            metrics={
                "pae": pae,
                "p_out_w": p_out,
                "p_dc_w": p_dc,
                "p_in_w": p_in,
            },
            cost=cost,
        )
