"""Constrained op-amp sizing: the spec-driven formulation (future work §II-A).

Industrial sizing is usually "maximize bandwidth subject to specs" rather
than a weighted sum.  This testbench reuses the two-stage Miller op-amp and
formulates:

    maximize  UGF (MHz)
    s.t.      GAIN >= 60 dB
              PM   >= 60 deg

for use with :class:`repro.core.constrained.ConstrainedEasyBO`.  Constraint
slacks are reported as ``metrics['slack_gain']`` / ``metrics['slack_pm']``
(positive = satisfied); failed simulations count as maximally infeasible.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.opamp import DEFAULT_COST, build_opamp, opamp_design_space
from repro.core.constrained import ConstrainedProblem, ConstraintSpec
from repro.core.problem import EvaluationResult
from repro.sched.durations import CostModel
from repro.spice import SpiceError, ac_analysis, bode_metrics, dc_operating_point, logspace_frequencies

__all__ = ["ConstrainedOpAmpProblem"]

#: Slack assigned to designs whose simulation fails outright.
FAILED_SLACK = -100.0

#: UGF value (MHz) assigned to failed simulations.
FAILED_UGF = 0.0


class ConstrainedOpAmpProblem(ConstrainedProblem):
    """Maximize UGF subject to gain and phase-margin specs."""

    name = "opamp-constrained"

    SPECS = (
        ConstraintSpec("gain", "DC gain >= 60 dB"),
        ConstraintSpec("pm", "phase margin >= 60 deg"),
    )

    GAIN_SPEC_DB = 60.0
    PM_SPEC_DEG = 60.0

    def __init__(self, *, cost_model: CostModel | None = None):
        self.space = opamp_design_space()
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST
        self.freqs = logspace_frequencies(10.0, 10e9, 12)

    @property
    def bounds(self) -> np.ndarray:
        return self.space.bounds

    @property
    def constraint_specs(self) -> tuple[ConstraintSpec, ...]:
        return self.SPECS

    def evaluate(self, x: np.ndarray) -> EvaluationResult:
        x = self.validate_point(x)
        cost = self.cost_model.duration(x)
        values = self.space.to_values(x)
        try:
            circuit = build_opamp(values)
            op = dc_operating_point(circuit)
            ac = ac_analysis(circuit, self.freqs, op=op)
            metrics = bode_metrics(ac.freqs, ac.v("out"))
        except SpiceError:
            return EvaluationResult(
                fom=FAILED_UGF,
                metrics={"slack_gain": FAILED_SLACK, "slack_pm": FAILED_SLACK},
                cost=cost,
                feasible=False,
            )
        ugf_mhz = metrics.ugf_hz / 1e6
        slack_gain = metrics.dc_gain_db - self.GAIN_SPEC_DB
        slack_pm = metrics.phase_margin_deg - self.PM_SPEC_DEG
        return EvaluationResult(
            fom=float(ugf_mhz),
            metrics={
                "gain_db": metrics.dc_gain_db,
                "ugf_mhz": ugf_mhz,
                "pm_deg": metrics.phase_margin_deg,
                "slack_gain": float(slack_gain),
                "slack_pm": float(slack_pm),
            },
            cost=cost,
            feasible=bool(slack_gain >= 0 and slack_pm >= 0),
        )
