"""EasyBO: Efficient Asynchronous Batch Bayesian Optimization for Analog
Circuit Synthesis — a full reproduction of Zhang et al., DAC 2020.

Quick start::

    from repro import EasyBO
    from repro.circuits import OpAmpProblem

    result = EasyBO(OpAmpProblem(), batch_size=5, rng=0).optimize()
    print(result.best_fom)

Subpackages
-----------
``repro.core``
    The BO algorithms: EasyBO (async, Alg. 1), synchronous batch variants
    (pBO, pHCBO, EasyBO-S/SP, BUCB, LP), sequential baselines (EI/LCB/PI).
``repro.gp``
    Gaussian-process regression built from scratch (SE-ARD kernel, ML-II).
``repro.spice``
    A from-scratch MNA circuit simulator (DC / AC / transient) standing in
    for HSPICE.
``repro.circuits``
    The paper's two testbenches (op-amp, class-E PA) and synthetic functions.
``repro.sched``
    Worker pools: deterministic simulated clock and real thread backend.
``repro.distributed``
    Process-based evaluation pool: one OS process per worker, socket RPC,
    heartbeats, crash supervision (``--pool process`` on the CLI).
``repro.baselines``
    Differential evolution and random search.
``repro.obs``
    Structured observability: hierarchical run tracing, the process-wide
    metrics registry, and profiling hooks (``tracer=`` / ``metrics=`` on
    the BO drivers; ``python -m repro trace`` to inspect).
"""

from repro.core import (
    AsynchronousBatchBO,
    Campaign,
    EasyBO,
    EvaluationResult,
    FailurePolicy,
    FaultInjectionProblem,
    Problem,
    RunResult,
    SequentialBO,
    SimulationError,
    SynchronousBatchBO,
    make_algorithm,
    make_campaign,
    resume,
    resume_campaign,
    summarize_runs,
)
from repro.distributed import ProcessWorkerPool
from repro.obs import MetricsRegistry, Observability, Tracer, render_trace

__version__ = "0.1.0"

__all__ = [
    "EasyBO",
    "make_algorithm",
    "Campaign",
    "make_campaign",
    "resume_campaign",
    "SequentialBO",
    "SynchronousBatchBO",
    "AsynchronousBatchBO",
    "Problem",
    "EvaluationResult",
    "FailurePolicy",
    "FaultInjectionProblem",
    "SimulationError",
    "RunResult",
    "resume",
    "summarize_runs",
    "ProcessWorkerPool",
    "MetricsRegistry",
    "Observability",
    "Tracer",
    "render_trace",
    "__version__",
]
