"""Pure random search — the sanity-check floor for every other algorithm."""

from __future__ import annotations

from repro.core.bo import shutdown_pool
from repro.core.doe import random_design
from repro.core.problem import Problem
from repro.core.results import RunResult
from repro.sched.workers import VirtualWorkerPool
from repro.utils.rng import as_generator

__all__ = ["RandomSearch"]


class RandomSearch:
    """Evaluate ``max_evals`` uniform points, ``n_workers`` at a time."""

    algorithm_name = "Random"

    def __init__(
        self,
        problem: Problem,
        *,
        max_evals: int,
        rng=None,
        n_workers: int = 1,
        pool_factory=None,
    ):
        if max_evals < 1:
            raise ValueError("max_evals must be >= 1")
        self.problem = problem
        self.max_evals = int(max_evals)
        self.rng = as_generator(rng)
        self.n_workers = int(n_workers)
        self.pool_factory = pool_factory or VirtualWorkerPool

    def run(self) -> RunResult:
        pool = self.pool_factory(self.problem, self.n_workers)
        try:
            return self._drive(pool)
        finally:
            shutdown_pool(pool)

    def _drive(self, pool) -> RunResult:
        X = random_design(self.problem.bounds, self.max_evals, self.rng)
        submitted = 0
        while submitted < self.max_evals and pool.idle_count > 0:
            pool.submit(X[submitted])
            submitted += 1
        done = 0
        while done < self.max_evals:
            pool.wait_next()
            done += 1
            if submitted < self.max_evals:
                pool.submit(X[submitted])
                submitted += 1
        best = pool.trace.best_record()
        return RunResult(
            algorithm=self.algorithm_name,
            problem=self.problem.name,
            trace=pool.trace,
            best_x=best.x.copy(),
            best_fom=best.fom,
            n_evaluations=len(pool.trace),
            wall_clock=pool.trace.makespan,
        )
