"""Non-BO baselines and batch-BO extensions used in the paper's tables."""

from repro.baselines.de import DifferentialEvolution
from repro.baselines.random_search import RandomSearch

__all__ = ["DifferentialEvolution", "RandomSearch"]
