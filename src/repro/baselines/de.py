"""Differential evolution (DE/rand/1/bin) — the paper's evolutionary baseline.

The paper compares against the DE-based sizing system of Liu et al. [13],
run for 20000 (op-amp) / 15000 (class-E) sequential simulations.  This is the
canonical DE: for each population member a mutant ``a + F (b - c)`` is built
from three distinct other members, binomially crossed over with rate CR, and
the trial replaces its parent only if it improves the FOM.
"""

from __future__ import annotations

import numpy as np

from repro.core.bo import shutdown_pool
from repro.core.problem import Problem
from repro.core.results import RunResult
from repro.sched.workers import VirtualWorkerPool
from repro.utils.rng import as_generator

__all__ = ["DifferentialEvolution"]


class DifferentialEvolution:
    """DE/rand/1/bin maximizer with optional parallel trial evaluation.

    Parameters
    ----------
    pop_size:
        Population size; defaults to ``max(15, 5 * dim)``.
    f:
        Differential weight F in [0, 2].
    cr:
        Crossover rate in [0, 1].
    n_workers:
        Evaluation parallelism (the paper runs DE sequentially: 1).
    """

    algorithm_name = "DE"

    def __init__(
        self,
        problem: Problem,
        *,
        max_evals: int,
        pop_size: int | None = None,
        f: float = 0.5,
        cr: float = 0.9,
        rng=None,
        n_workers: int = 1,
        pool_factory=None,
    ):
        if max_evals < 2:
            raise ValueError("max_evals must be >= 2")
        if not 0.0 <= f <= 2.0:
            raise ValueError(f"F must lie in [0, 2], got {f}")
        if not 0.0 <= cr <= 1.0:
            raise ValueError(f"CR must lie in [0, 1], got {cr}")
        self.problem = problem
        self.max_evals = int(max_evals)
        self.pop_size = int(pop_size) if pop_size else max(15, 5 * problem.dim)
        if self.pop_size < 4:
            raise ValueError("pop_size must be >= 4 (rand/1 needs 3 distinct donors)")
        self.f = float(f)
        self.cr = float(cr)
        self.rng = as_generator(rng)
        self.n_workers = int(n_workers)
        self.pool_factory = pool_factory or VirtualWorkerPool

    def run(self) -> RunResult:
        pool = self.pool_factory(self.problem, self.n_workers)
        try:
            return self._drive(pool)
        finally:
            shutdown_pool(pool)

    def _drive(self, pool) -> RunResult:
        bounds = self.problem.bounds
        d = self.problem.dim
        budget = self.max_evals

        def evaluate_all(X: np.ndarray) -> np.ndarray:
            """Evaluate rows of X through the pool; returns FOMs in order."""
            foms = np.empty(X.shape[0])
            submitted = 0
            done = 0
            index_of = {}
            while done < X.shape[0]:
                while submitted < X.shape[0] and pool.idle_count > 0:
                    idx = pool.submit(X[submitted])
                    index_of[idx] = submitted
                    submitted += 1
                completion = pool.wait_next()
                result = completion.result
                # Failed evaluations lose the selection tournament outright.
                foms[index_of.pop(completion.index)] = (
                    result.fom if result.ok else -np.inf
                )
                done += 1
            return foms

        n0 = min(self.pop_size, budget)
        population = self.rng.uniform(bounds[:, 0], bounds[:, 1], size=(n0, d))
        fitness = evaluate_all(population)
        evaluations = n0

        while evaluations < budget:
            n_trials = min(self.pop_size, budget - evaluations, len(population))
            trials = np.empty((n_trials, d))
            for i in range(n_trials):
                trials[i] = self._make_trial(population, i)
            trial_fit = evaluate_all(trials)
            evaluations += n_trials
            improved = trial_fit > fitness[:n_trials]
            population[:n_trials][improved] = trials[improved]
            fitness[:n_trials][improved] = trial_fit[improved]

        best = pool.trace.best_record()
        return RunResult(
            algorithm=self.algorithm_name,
            problem=self.problem.name,
            trace=pool.trace,
            best_x=best.x.copy(),
            best_fom=best.fom,
            n_evaluations=len(pool.trace),
            wall_clock=pool.trace.makespan,
            n_failures=pool.trace.n_failures,
            n_retries=pool.trace.n_retries,
        )

    def _make_trial(self, population: np.ndarray, i: int) -> np.ndarray:
        """rand/1 mutation + binomial crossover for member ``i``."""
        bounds = self.problem.bounds
        n, d = population.shape
        choices = [j for j in range(n) if j != i]
        a, b, c = self.rng.choice(choices, size=3, replace=False)
        mutant = population[a] + self.f * (population[b] - population[c])
        mutant = np.clip(mutant, bounds[:, 0], bounds[:, 1])
        cross = self.rng.uniform(size=d) < self.cr
        cross[self.rng.integers(d)] = True  # at least one mutant gene
        trial = np.where(cross, mutant, population[i])
        return trial
