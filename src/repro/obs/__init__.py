"""Structured observability: span tracing, metrics, profiling hooks.

Three pieces, one facade:

* :class:`~repro.obs.tracer.Tracer` — hierarchical span tracer (run →
  iteration → fit / hallucinate / acquisition-maximize / dispatch / wait)
  emitting CRC-framed JSONL beside the run journal; rendered by
  ``python -m repro trace <file>``.
* :class:`~repro.obs.metrics.MetricsRegistry` — process-wide counters /
  gauges / streaming histograms unifying ``SurrogateStats`` and
  ``PoolTelemetry`` behind one namespace; persisted as runs format v6.
* :class:`Observability` — the facade drivers, pools, and the surrogate
  session carry.  Its disabled form :data:`NULL_OBS` costs a couple of
  attribute lookups per hook (≤5 % of the cheapest surrogate event, gated
  by ``benchmarks/bench_surrogate_update.py``).

See ``docs/observability.md`` for the span model and the metric catalog.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.render import hotspots, load_trace, render_trace
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "MetricsRegistry",
    "NullTracer",
    "NULL_TRACER",
    "Observability",
    "NULL_OBS",
    "Span",
    "Tracer",
    "hotspots",
    "load_trace",
    "render_trace",
]


class Observability:
    """Tracer + optional metrics registry, behind no-op-able hooks.

    Instrumented code calls :meth:`profile` (a span context manager),
    :meth:`inc`, and :meth:`observe` unconditionally; with the default
    ``Observability()`` every hook is a no-op.
    """

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer=None, metrics: MetricsRegistry | None = None):
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics = metrics

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics is not None

    def span(self, name: str, **attrs):
        """Open a named span (context manager)."""
        return self.tracer.span(name, **attrs)

    #: ``obs.profile("fit")`` reads better at call sites that time a block.
    profile = span

    def inc(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, n)

    def observe(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.observe(name, value)


#: Shared disabled facade; the default for every driver, pool, and session.
NULL_OBS = Observability()
