"""Process-wide metrics registry: counters, gauges, and histograms.

One :class:`MetricsRegistry` per run unifies the surrogate's linear-algebra
counters (:class:`~repro.sched.trace.SurrogateStats`), the pool's operational
counters (:class:`~repro.sched.trace.PoolTelemetry`), and the driver/
acquisition counters behind a single flat namespace, so an operator reads
*one* table instead of three ad-hoc dataclasses.

Naming convention is ``subsystem.metric`` (``surrogate.refits``,
``pool.queue_wait_seconds``, ``acquisition.polish_restarts``).  Histograms
are streaming — count/total/min/max only, never the raw samples — so the
registry stays O(#metrics) no matter how long the run is.

Double-counting discipline
--------------------------
Counters that already have a durable source of truth (the execution trace,
``SurrogateStats``, ``PoolTelemetry``) are *derived once* at result-packaging
time via :meth:`MetricsRegistry.fold_surrogate_stats` /
:meth:`MetricsRegistry.fold_pool_telemetry` / the driver's trace fold, using
absolute assignment (:meth:`set_counter`) rather than increments.  Because a
resumed run replays its journal into those same sources, the folded values
are automatically replay-safe: a crash-and-resume run reports the same
totals as the uninterrupted run (enforced by
``tests/test_crash_resume.py``).  Only events with no other record —
acquisition polish restarts, live submit/completion ticks — are incremented
as they happen.
"""

from __future__ import annotations

import threading

__all__ = ["MetricsRegistry"]


def _new_histogram() -> dict:
    return {"count": 0, "total": 0.0, "min": None, "max": None}


class MetricsRegistry:
    """Flat namespace of counters, gauges, and streaming histograms.

    Thread-safe: pools may tick counters from their supervisor thread while
    the driver thread reads a snapshot.  All mutators are O(1).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, dict] = {}

    # ------------------------------------------------------------- mutators
    def inc(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(n)

    def set_counter(self, name: str, value: int) -> None:
        """Assign an absolute counter value (for fold-once derived totals)."""
        with self._lock:
            self._counters[name] = int(value)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold one sample into histogram ``name`` (streaming, O(1) memory)."""
        value = float(value)
        with self._lock:
            hist = self._histograms.setdefault(name, _new_histogram())
            hist["count"] += 1
            hist["total"] += value
            hist["min"] = value if hist["min"] is None else min(hist["min"], value)
            hist["max"] = value if hist["max"] is None else max(hist["max"], value)

    def declare_histogram(self, name: str) -> None:
        """Ensure ``name`` exists (zero samples) so metric *names* are stable
        across backends that never produce a sample for it."""
        with self._lock:
            self._histograms.setdefault(name, _new_histogram())

    # ------------------------------------------------------------- accessors
    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> dict:
        with self._lock:
            return dict(self._histograms.get(name, _new_histogram()))

    def names(self) -> list[str]:
        """Sorted union of every metric name in the registry."""
        with self._lock:
            return sorted(
                set(self._counters) | set(self._gauges) | set(self._histograms)
            )

    # ---------------------------------------------------------- aggregation
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters/histograms add, gauges overwrite."""
        snapshot = other.as_dict()
        with self._lock:
            for name, value in snapshot["counters"].items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(snapshot["gauges"])
            for name, theirs in snapshot["histograms"].items():
                hist = self._histograms.setdefault(name, _new_histogram())
                hist["count"] += theirs["count"]
                hist["total"] += theirs["total"]
                for key, pick in (("min", min), ("max", max)):
                    if theirs[key] is not None:
                        hist[key] = (
                            theirs[key]
                            if hist[key] is None
                            else pick(hist[key], theirs[key])
                        )

    # ------------------------------------------------------------ fold-once
    def fold_surrogate_stats(self, stats) -> None:
        """Derive the ``surrogate.*`` metrics from a
        :class:`~repro.sched.trace.SurrogateStats` (absolute, replay-safe)."""
        if stats is None:
            return
        self.set_counter("surrogate.refits", stats.n_refits)
        self.set_counter("surrogate.full_fits", stats.n_full_fits)
        self.set_counter("surrogate.refactorizations", stats.n_refactorizations)
        self.set_counter("surrogate.incremental_updates", stats.n_incremental_updates)
        self.set_counter("surrogate.fallbacks", stats.n_fallbacks)
        self.set_counter("surrogate.hallucinated_views", stats.n_hallucinated_views)
        self.set_counter(
            "surrogate.hallucinated_rebuilds", stats.n_hallucinated_rebuilds
        )
        for name, samples in (
            ("surrogate.refit_seconds", stats.refit_seconds),
            ("surrogate.hallucination_seconds", stats.hallucination_seconds),
        ):
            with self._lock:
                self._histograms[name] = _new_histogram()
            for value in samples:
                self.observe(name, value)

    def fold_pool_telemetry(self, telemetry) -> None:
        """Derive the ``pool.*`` metrics from a
        :class:`~repro.sched.trace.PoolTelemetry` (absolute, replay-safe).

        The queue-wait histogram is declared even when the backend records
        no samples (virtual/thread pools), so all three backends expose the
        same metric-name set.
        """
        if telemetry is None:
            return
        self.set_counter("pool.tasks", telemetry.n_tasks)
        self.set_counter("pool.respawns", telemetry.n_respawns)
        self.set_counter("pool.heartbeat_expiries", telemetry.n_heartbeat_expiries)
        self.set_counter("pool.timeout_kills", telemetry.n_timeout_kills)
        self.set_gauge("pool.workers", telemetry.n_workers)
        self.set_gauge("pool.utilization", telemetry.utilization)
        self.set_gauge("pool.elapsed_seconds", telemetry.elapsed_seconds)
        self.set_gauge(
            "pool.busy_seconds", float(sum(telemetry.worker_busy_seconds))
        )
        with self._lock:
            self._histograms["pool.queue_wait_seconds"] = _new_histogram()
        for value in telemetry.queue_wait_seconds:
            self.observe("pool.queue_wait_seconds", value)

    # ----------------------------------------------------------- persistence
    def as_dict(self) -> dict:
        """JSON-serializable snapshot (persisted as runs format v6)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: dict(v) for k, v in self._histograms.items()},
            }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        registry = cls()
        registry._counters = {str(k): int(v) for k, v in data.get("counters", {}).items()}
        registry._gauges = {str(k): float(v) for k, v in data.get("gauges", {}).items()}
        for name, hist in data.get("histograms", {}).items():
            restored = _new_histogram()
            restored.update(hist)
            registry._histograms[str(name)] = restored
        return registry

    # -------------------------------------------------------------- display
    def summary_rows(self) -> list[list[str]]:
        """``[name, kind, value]`` rows for :func:`repro.utils.tables.format_table`."""
        rows: list[list[str]] = []
        snapshot = self.as_dict()
        for name in sorted(snapshot["counters"]):
            rows.append([name, "counter", str(snapshot["counters"][name])])
        for name in sorted(snapshot["gauges"]):
            rows.append([name, "gauge", f"{snapshot['gauges'][name]:.3f}"])
        for name in sorted(snapshot["histograms"]):
            hist = snapshot["histograms"][name]
            if hist["count"]:
                mean = hist["total"] / hist["count"]
                value = (
                    f"n={hist['count']} mean={mean * 1e3:.2f}ms "
                    f"max={hist['max'] * 1e3:.2f}ms"
                )
            else:
                value = "n=0"
            rows.append([name, "histogram", value])
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snapshot = self.as_dict()
        return (
            f"MetricsRegistry({len(snapshot['counters'])} counters, "
            f"{len(snapshot['gauges'])} gauges, "
            f"{len(snapshot['histograms'])} histograms)"
        )
