"""Render a span trace: ASCII tree plus top-k hotspot table.

The ``python -m repro trace <file>`` verb calls :func:`render_trace`.  The
trace file is framed exactly like the run journal, so
:func:`repro.core.journal.read_journal` reads it — including the longest-
valid-prefix recovery for traces torn by a crash.
"""

from __future__ import annotations

from repro.core.journal import read_journal
from repro.utils.tables import format_table

__all__ = ["load_trace", "render_trace"]

#: Tree lines rendered before eliding the remainder (hotspots always print).
MAX_TREE_LINES = 400


def load_trace(path) -> list[dict]:
    """Read every span record of a trace file (header excluded)."""
    return [r for r in read_journal(path) if r.get("type") == "span"]


def _build_forest(spans: list[dict]) -> list[dict]:
    """Children-sorted roots of the span tree (orphans become roots)."""
    by_id = {span["id"]: dict(span, children=[]) for span in spans}
    roots = []
    for span in by_id.values():
        parent = by_id.get(span["parent"])
        if parent is None:
            roots.append(span)
        else:
            parent["children"].append(span)
    for span in by_id.values():
        span["children"].sort(key=lambda s: s["t_start"])
    roots.sort(key=lambda s: s["t_start"])
    return roots


def _format_attrs(span: dict) -> str:
    attrs = span.get("attrs") or {}
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return f" [{inner}]"


def _tree_lines(roots: list[dict]) -> list[str]:
    lines: list[str] = []

    def visit(span: dict, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        lines.append(
            f"{prefix}{connector}{span['name']}{_format_attrs(span)}"
            f"  wall={span['wall'] * 1e3:.1f}ms cpu={span['cpu'] * 1e3:.1f}ms"
        )
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
        children = span["children"]
        for i, child in enumerate(children):
            visit(child, child_prefix, i == len(children) - 1, False)

    for root in roots:
        visit(root, "", True, True)
    return lines


def hotspots(spans: list[dict], top: int = 10) -> list[dict]:
    """Aggregate spans by name; rank by total wall time, descending."""
    agg: dict[str, dict] = {}
    for span in spans:
        entry = agg.setdefault(
            span["name"], {"name": span["name"], "count": 0, "wall": 0.0, "cpu": 0.0}
        )
        entry["count"] += 1
        entry["wall"] += span["wall"]
        entry["cpu"] += span["cpu"]
    ranked = sorted(agg.values(), key=lambda e: e["wall"], reverse=True)
    return ranked[: max(1, top)]


def render_trace(path, *, top: int = 10) -> str:
    """Full human-readable report: span tree then top-k hotspots."""
    spans = load_trace(path)
    if not spans:
        return f"{path}: no spans recorded (empty or torn trace)"
    lines = [f"trace {path}: {len(spans)} spans", ""]
    tree = _tree_lines(_build_forest(spans))
    if len(tree) > MAX_TREE_LINES:
        elided = len(tree) - MAX_TREE_LINES
        tree = tree[:MAX_TREE_LINES] + [f"... ({elided} more spans elided)"]
    lines.extend(tree)
    lines.append("")
    rows = [
        [
            e["name"],
            str(e["count"]),
            f"{e['wall'] * 1e3:.1f}",
            f"{e['cpu'] * 1e3:.1f}",
            f"{e['wall'] / e['count'] * 1e3:.2f}",
        ]
        for e in hotspots(spans, top=top)
    ]
    lines.append(
        format_table(
            ["Span", "Count", "Wall ms", "CPU ms", "Mean ms"],
            rows,
            title=f"top {len(rows)} hotspots by total wall time",
        )
    )
    return "\n".join(lines)
