"""Hierarchical span tracer with CRC-framed JSONL output.

A :class:`Tracer` records a tree of timed spans — ``run`` at the root, one
``iteration`` per optimizer cycle, and ``fit`` / ``hallucinate`` /
``acquisition-maximize`` / ``dispatch`` / ``wait`` leaves — each with wall
time (``time.perf_counter``) and CPU time (``time.process_time``).  Closed
spans are appended to a sidecar file using the same self-validating framing
as the run journal (``J1 <len> <crc> <json>``), so ``repro.core.journal``'s
torn-tail recovery applies to traces too and a crash never leaves an
unreadable trace behind.

The disabled path is :data:`NULL_TRACER`: ``span()`` returns one shared
no-op context manager, so instrumented code pays two attribute lookups and
a method call per span — the ≤5 % overhead budget enforced by
``benchmarks/bench_surrogate_update.py``.
"""

from __future__ import annotations

import time

from repro.core.journal import JournalWriter

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "TRACE_VERSION"]

#: Version stamp embedded in every ``trace_start`` record.
TRACE_VERSION = 1


class Span:
    """One timed region; use as a context manager.

    Children must close before their parent (the usual ``with`` nesting
    guarantees it); the tracer assigns ids and depths from its live stack.
    """

    __slots__ = (
        "tracer", "name", "attrs", "span_id", "parent_id", "depth",
        "_t_wall", "_t_cpu", "t_start",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def annotate(self, **attrs) -> None:
        """Attach counters/attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.span_id, self.parent_id, self.depth = self.tracer._push(self)
        self.t_start = self.tracer._offset()
        self._t_wall = time.perf_counter()
        self._t_cpu = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._t_wall
        cpu = time.process_time() - self._t_cpu
        self.tracer._pop(self, wall, cpu, error=exc_type is not None)
        return False


class Tracer:
    """Emits one framed JSONL record per closed span.

    Parameters
    ----------
    sink:
        A path (a non-fsync :class:`~repro.core.journal.JournalWriter` is
        opened on it — traces are diagnostics, not the recovery source of
        truth, so they skip the per-record fsync) or any object with an
        ``append(record)`` method.
    meta:
        Optional JSON-safe dict stored in the ``trace_start`` header.
    """

    enabled = True

    def __init__(self, sink, *, meta: dict | None = None):
        if hasattr(sink, "append"):
            self._writer = sink
            self._owns_writer = False
        else:
            self._writer = JournalWriter(sink, fsync=False)
            self._owns_writer = True
        self._t0 = time.perf_counter()
        self._next_id = 0
        self._stack: list[Span] = []
        self._n_spans = 0
        self._writer.append(
            {
                "type": "trace_start",
                "trace_version": TRACE_VERSION,
                "meta": meta or {},
            }
        )

    # -------------------------------------------------------------- spans
    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def _offset(self) -> float:
        return time.perf_counter() - self._t0

    def _push(self, span: Span) -> tuple[int, int | None, int]:
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1].span_id if self._stack else None
        depth = len(self._stack)
        self._stack.append(span)
        return span_id, parent_id, depth

    def _pop(self, span: Span, wall: float, cpu: float, *, error: bool) -> None:
        # Tolerate out-of-order exits (a span leaked across an exception):
        # close everything above it rather than corrupting the stack.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        record = {
            "type": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "depth": span.depth,
            "t_start": round(span.t_start, 9),
            "wall": round(wall, 9),
            "cpu": round(cpu, 9),
        }
        if span.attrs:
            record["attrs"] = span.attrs
        if error:
            record["error"] = True
        self._n_spans += 1
        self._writer.append(record)

    @property
    def n_spans(self) -> int:
        return self._n_spans

    def close(self) -> None:
        """Close any spans still open (crash path) and release the sink."""
        while self._stack:
            span = self._stack[-1]
            wall = time.perf_counter() - span._t_wall
            cpu = time.process_time() - span._t_cpu
            self._pop(span, wall, cpu, error=False)
        if self._owns_writer:
            self._writer.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _NullSpan:
    """Shared no-op span: the entire cost of disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: ``span()`` returns one shared no-op singleton."""

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    @property
    def n_spans(self) -> int:
        return 0

    def close(self) -> None:
        pass


#: Process-wide disabled tracer; drivers default to it.
NULL_TRACER = NullTracer()
