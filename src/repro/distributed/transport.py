"""Framed-message transport over local TCP sockets.

:class:`FramedConnection` turns a stream socket into a message pipe using
the run journal's self-validating framing (:func:`repro.core.journal.
frame_record` / :func:`~repro.core.journal.parse_line`).  Both sides of the
RPC use the same object: the worker in blocking mode (``recv``), the
supervisor in selector-driven non-blocking mode (``receive_available``).

Everything binds to the loopback interface — the subsystem is a process
fleet on one host, not a network service; there is no authentication layer
because the socket never leaves the machine.
"""

from __future__ import annotations

import socket

from repro.core.journal import frame_error, frame_record, parse_line

from repro.distributed.protocol import ProtocolError

__all__ = [
    "ConnectionClosed",
    "FrameCorruptionError",
    "FramedConnection",
    "listen",
    "connect",
]

_CHUNK = 65536


class ConnectionClosed(ConnectionError):
    """The peer closed the socket (worker death or supervisor exit)."""


class FrameCorruptionError(ProtocolError):
    """A frame on the stream failed its length/CRC validation.

    Once a frame is corrupt the byte stream has no recoverable alignment —
    the connection must be dropped, but *only* that connection: the server
    keeps serving its other clients and a retrying client redials.  Carries
    the stream offset where corruption was detected and the framing detail
    (which invariant broke, expected vs computed CRC) for diagnosis.
    """

    def __init__(self, message: str, *, offset: int | None = None,
                 detail: str | None = None):
        super().__init__(message)
        self.offset = offset
        self.detail = detail


def listen(host: str = "127.0.0.1", port: int = 0) -> tuple[socket.socket, int]:
    """Open a listening socket; returns ``(socket, bound_port)``."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen()
    sock.setblocking(False)
    return sock, sock.getsockname()[1]


def connect(host: str, port: int, *, timeout: float | None = None) -> "FramedConnection":
    """Dial the supervisor (worker side)."""
    return FramedConnection(socket.create_connection((host, port), timeout=timeout))


class FramedConnection:
    """One journal-framed message stream over a connected socket."""

    def __init__(self, sock: socket.socket):
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._buffer = bytearray()
        self._closed = False
        self._consumed = 0  # bytes of valid frames already popped

    def fileno(self) -> int:
        return self._sock.fileno()

    @property
    def closed(self) -> bool:
        return self._closed

    # -------------------------------------------------------------- sending
    def send(self, record: dict) -> None:
        """Frame and send one record (blocking; raises on a dead peer)."""
        try:
            self._sock.sendall(frame_record(record))
        except OSError as exc:
            raise ConnectionClosed(f"peer gone while sending: {exc}") from exc

    # ------------------------------------------------------------ receiving
    def _pop_frame(self) -> dict | None:
        """Extract one complete frame from the buffer, if present."""
        newline = self._buffer.find(b"\n")
        if newline < 0:
            return None
        line = bytes(self._buffer[: newline + 1])
        del self._buffer[: newline + 1]
        record = parse_line(line)
        if record is None:
            detail = frame_error(line) or "unknown framing violation"
            raise FrameCorruptionError(
                f"corrupt frame at stream offset {self._consumed} "
                f"({detail}): {line[:64]!r}",
                offset=self._consumed,
                detail=detail,
            )
        self._consumed += len(line)
        return record

    def recv(self, timeout: float | None = None) -> dict | None:
        """Blocking receive of one message; ``None`` on clean EOF.

        With a ``timeout``, raises :class:`socket.timeout` if no complete
        frame arrives in time (partial bytes stay buffered).
        """
        while True:
            record = self._pop_frame()
            if record is not None:
                return record
            self._sock.settimeout(timeout)
            chunk = self._sock.recv(_CHUNK)
            if not chunk:
                self._closed = True
                return None
            self._buffer.extend(chunk)

    def receive_available(self) -> list[dict]:
        """Drain every readable frame without blocking (supervisor side).

        Call when a selector reports the socket readable.  Raises
        :class:`ConnectionClosed` on EOF *after* yielding any complete
        frames that preceded it.
        """
        self._sock.setblocking(False)
        eof = False
        try:
            while True:
                chunk = self._sock.recv(_CHUNK)
                if not chunk:
                    eof = True
                    break
                self._buffer.extend(chunk)
        except (BlockingIOError, InterruptedError):
            pass
        except OSError as exc:
            raise ConnectionClosed(f"peer gone while reading: {exc}") from exc
        frames = []
        while True:
            record = self._pop_frame()
            if record is None:
                break
            frames.append(record)
        if eof and not frames:
            self._closed = True
            raise ConnectionClosed("peer closed the connection")
        if eof:
            self._closed = True
        return frames

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass
