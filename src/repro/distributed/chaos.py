"""Network chaos proxy: manufacture the failures the RPC claims to survive.

:class:`ChaosProxy` is a tiny TCP proxy that sits between a
:class:`~repro.distributed.client.CampaignClient` (or worker connection)
and its server and injects faults *at frame granularity* — it splits the
byte stream on the journal framing's newline terminator and, per frame,
may:

* **drop** it (a lost request or reply — the retry path),
* **delay** it (reordering pressure on timeouts and stale-reply handling),
* **truncate** it (a torn frame: the next frame's bytes glue onto the
  stump and the receiver's CRC check raises
  :class:`~repro.distributed.transport.FrameCorruptionError`),
* **corrupt** it (flip a payload byte — same detection, different cause),
* **disconnect** mid-stream (both sides see a dead connection and must
  redial).

Faults are *seeded*: each proxied connection direction gets its own
``random.Random`` derived from ``(seed, connection index, direction)``, so
a chaos run is reproducible bit-for-bit — the property the chaos sweep in
``benchmarks/bench_campaign_server.py --chaos`` and the CI ``server-chaos``
job rely on.  With all probabilities at 0 the proxy is a transparent relay.

Server restarts are part of the repertoire: :meth:`ChaosProxy.set_upstream`
repoints *future* connections at a freshly restarted server's port while
existing (now dead) ones drain; while the upstream is down, dials fail and
the proxy closes the client socket immediately, which a retrying client
experiences as connection-refused-with-backoff.

The proxy speaks raw bytes, not frames-as-objects: it never parses JSON
and cannot "helpfully" repair what it forwards — what the receiver gets is
exactly what a hostile network would deliver.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass

__all__ = ["ChaosConfig", "ChaosProxy"]

_CHUNK = 65536


@dataclass
class ChaosConfig:
    """Per-frame fault probabilities (at most one fault per frame).

    ``delay_s`` is the hold applied to delayed frames — order within a
    direction is preserved (the pump sleeps), so a delay stresses timeouts,
    not reordering logic the framing never promised to handle.
    """

    drop: float = 0.0
    delay: float = 0.0
    truncate: float = 0.0
    corrupt: float = 0.0
    disconnect: float = 0.0
    delay_s: float = 0.02

    def total(self) -> float:
        return self.drop + self.delay + self.truncate + self.corrupt + self.disconnect


class _Disconnect(Exception):
    """Internal: the dice said kill this proxied connection now."""


class ChaosProxy:
    """Seeded fault-injecting TCP relay for one client<->server link.

    Parameters
    ----------
    upstream_port / upstream_host:
        Where the real server listens (repointable via :meth:`set_upstream`).
    config:
        The fault mix; defaults to a transparent relay.
    seed:
        Root of every per-connection RNG stream; same seed, same faults.
    """

    def __init__(self, upstream_port: int, *,
                 upstream_host: str = "127.0.0.1",
                 host: str = "127.0.0.1", port: int = 0,
                 config: ChaosConfig | None = None, seed: int = 0):
        self.config = config if config is not None else ChaosConfig()
        self.seed = int(seed)
        self._upstream = (upstream_host, int(upstream_port))
        self._lock = threading.Lock()
        self._conn_index = 0
        self._pairs: list[tuple[socket.socket, socket.socket]] = []
        self._stopping = False
        self.stats = {
            "connections": 0, "frames": 0, "dropped": 0, "delayed": 0,
            "truncated": 0, "corrupted": 0, "disconnects": 0,
            "failed_dials": 0,
        }
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen()
        self.host = host
        self.port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="chaos-proxy-accept"
        )
        self._accept_thread.start()

    # ------------------------------------------------------------- control
    def set_upstream(self, port: int, host: str | None = None) -> None:
        """Repoint future connections (e.g. at a restarted server)."""
        with self._lock:
            self._upstream = (host or self._upstream[0], int(port))

    def stop(self) -> None:
        """Close the listener and every live proxied pair."""
        self._stopping = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            pairs, self._pairs = self._pairs, []
        for a, b in pairs:
            for sock in (a, b):
                try:
                    sock.close()
                except OSError:
                    pass

    close = stop

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------ plumbing
    def _count(self, key: str, n: int = 1) -> None:
        with self._lock:
            self.stats[key] += n

    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            with self._lock:
                index = self._conn_index
                self._conn_index += 1
                upstream = self._upstream
            try:
                server = socket.create_connection(upstream, timeout=2.0)
            except OSError:
                # Upstream down (mid-restart): the client experiences an
                # immediate close and redials after backoff.
                self._count("failed_dials")
                try:
                    client.close()
                except OSError:
                    pass
                continue
            for sock in (client, server):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._pairs.append((client, server))
            self._count("connections")
            for direction, (src, dst) in enumerate(
                ((client, server), (server, client))
            ):
                # One independent, reproducible stream per connection
                # direction: same seed, same fault schedule.
                rng = random.Random(self.seed * 1_000_003 + index * 2 + direction)
                threading.Thread(
                    target=self._pump, args=(src, dst, rng),
                    daemon=True, name=f"chaos-pump-{index}-{direction}",
                ).start()

    def _pump(self, src: socket.socket, dst: socket.socket, rng: random.Random) -> None:
        buffer = bytearray()
        try:
            while True:
                chunk = src.recv(_CHUNK)
                if not chunk:
                    break
                buffer.extend(chunk)
                while True:
                    newline = buffer.find(b"\n")
                    if newline < 0:
                        break
                    frame = bytes(buffer[: newline + 1])
                    del buffer[: newline + 1]
                    mangled = self._mangle(frame, rng)
                    if mangled:
                        dst.sendall(mangled)
            if buffer:  # partial tail at EOF: the network would deliver it
                dst.sendall(bytes(buffer))
        except (_Disconnect, OSError):
            pass
        finally:
            for sock in (src, dst):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    def _mangle(self, frame: bytes, rng: random.Random) -> bytes | None:
        """Apply at most one fault to one frame; returns bytes to forward."""
        self._count("frames")
        cfg = self.config
        roll = rng.random()
        if roll < cfg.drop:
            self._count("dropped")
            return None
        roll -= cfg.drop
        if roll < cfg.delay:
            self._count("delayed")
            time.sleep(cfg.delay_s)
            return frame
        roll -= cfg.delay
        if roll < cfg.truncate:
            self._count("truncated")
            # Keep a newline-less stump: it glues onto the next frame and
            # the receiver's CRC catches the mess.
            return frame[: max(len(frame) // 2, 1)].rstrip(b"\n")
        roll -= cfg.truncate
        if roll < cfg.corrupt:
            self._count("corrupted")
            mutable = bytearray(frame)
            # Flip a byte strictly inside the line so framing still splits
            # on the newline but length/CRC validation fails.
            position = rng.randrange(0, max(len(mutable) - 1, 1))
            mutable[position] ^= 0xFF
            if mutable[position : position + 1] == b"\n":
                mutable[position] ^= 0x01  # never forge a frame boundary
            return bytes(mutable)
        roll -= cfg.corrupt
        if roll < cfg.disconnect:
            self._count("disconnects")
            raise _Disconnect
        return frame
