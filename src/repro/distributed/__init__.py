"""Distributed evaluation: process workers behind the shared pool contract.

The subsystem has six pieces:

* :mod:`~repro.distributed.protocol` — message vocabulary and portable
  problem specs;
* :mod:`~repro.distributed.transport` — journal-framed messages over
  loopback TCP;
* :mod:`~repro.distributed.worker` — the per-process evaluation daemon
  (``python -m repro.distributed.worker``);
* :mod:`~repro.distributed.pool` — :class:`ProcessWorkerPool`, the
  supervisor that presents the fleet through the same ``submit`` /
  ``wait_next`` contract as the virtual and thread pools;
* :mod:`~repro.distributed.server` — :class:`CampaignServer`, the
  multi-tenant ask/tell campaign host (``python -m repro serve``);
* :mod:`~repro.distributed.client` — :class:`CampaignClient`, the
  synchronous RPC client for the server.
"""

from repro.distributed.client import CampaignClient, CampaignServerError
from repro.distributed.pool import ProcessWorkerPool
from repro.distributed.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    load_problem,
    problem_spec,
)
from repro.distributed.server import CampaignServer, ServerError, WorkerLeaseRegistry, serve
from repro.distributed.transport import ConnectionClosed, FramedConnection

__all__ = [
    "ProcessWorkerPool",
    "CampaignServer",
    "CampaignClient",
    "CampaignServerError",
    "ServerError",
    "WorkerLeaseRegistry",
    "serve",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "problem_spec",
    "load_problem",
    "ConnectionClosed",
    "FramedConnection",
]
