"""Distributed evaluation: process workers behind the shared pool contract.

The subsystem's pieces:

* :mod:`~repro.distributed.protocol` — message vocabulary, portable
  problem specs, and idempotent request ids;
* :mod:`~repro.distributed.transport` — journal-framed messages over
  loopback TCP (corrupt frames raise :class:`FrameCorruptionError`);
* :mod:`~repro.distributed.worker` — the per-process evaluation daemon
  (``python -m repro.distributed.worker``);
* :mod:`~repro.distributed.pool` — :class:`ProcessWorkerPool`, the
  supervisor that presents the fleet through the same ``submit`` /
  ``wait_next`` contract as the virtual and thread pools;
* :mod:`~repro.distributed.server` — :class:`CampaignServer`, the
  multi-tenant ask/tell campaign host (``python -m repro serve``) that
  recovers every non-terminal campaign from its journals after a crash;
* :mod:`~repro.distributed.manifest` — the server-level lifecycle ledger
  that restart recovery replays;
* :mod:`~repro.distributed.client` — :class:`CampaignClient`, the
  retrying idempotent RPC client for the server;
* :mod:`~repro.distributed.chaos` — :class:`ChaosProxy`, the seeded
  fault-injecting TCP relay the robustness suite drives everything
  through.
"""

from repro.distributed.chaos import ChaosConfig, ChaosProxy
from repro.distributed.client import (
    CampaignClient,
    CampaignRetriesExhausted,
    CampaignServerError,
)
from repro.distributed.manifest import ServerManifest, manifest_state, read_manifest
from repro.distributed.pool import ProcessWorkerPool
from repro.distributed.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    load_problem,
    make_request_id,
    problem_spec,
)
from repro.distributed.server import CampaignServer, ServerError, WorkerLeaseRegistry, serve
from repro.distributed.transport import (
    ConnectionClosed,
    FrameCorruptionError,
    FramedConnection,
)

__all__ = [
    "ProcessWorkerPool",
    "CampaignServer",
    "CampaignClient",
    "CampaignServerError",
    "CampaignRetriesExhausted",
    "ServerError",
    "WorkerLeaseRegistry",
    "serve",
    "ServerManifest",
    "read_manifest",
    "manifest_state",
    "ChaosConfig",
    "ChaosProxy",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "make_request_id",
    "problem_spec",
    "load_problem",
    "ConnectionClosed",
    "FrameCorruptionError",
    "FramedConnection",
]
