"""Distributed evaluation: process workers behind the shared pool contract.

The subsystem has four pieces:

* :mod:`~repro.distributed.protocol` — message vocabulary and portable
  problem specs;
* :mod:`~repro.distributed.transport` — journal-framed messages over
  loopback TCP;
* :mod:`~repro.distributed.worker` — the per-process evaluation daemon
  (``python -m repro.distributed.worker``);
* :mod:`~repro.distributed.pool` — :class:`ProcessWorkerPool`, the
  supervisor that presents the fleet through the same ``submit`` /
  ``wait_next`` contract as the virtual and thread pools.
"""

from repro.distributed.pool import ProcessWorkerPool
from repro.distributed.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    load_problem,
    problem_spec,
)
from repro.distributed.transport import ConnectionClosed, FramedConnection

__all__ = [
    "ProcessWorkerPool",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "problem_spec",
    "load_problem",
    "ConnectionClosed",
    "FramedConnection",
]
