"""Multi-tenant campaign server: many ask/tell optimizations, one process.

The ask/tell extraction (:class:`repro.core.campaign.Campaign`) makes an
optimization a value instead of a loop, which means one process can host
*many* of them.  :class:`CampaignServer` does exactly that over the same
CRC-framed loopback socket RPC the process-worker fleet uses
(:mod:`repro.distributed.transport`):

* clients create campaigns by algorithm label + problem name and drive them
  with ``ask`` / ``tell`` round-trips (the client owns evaluation), or
* create them with ``evaluate=True`` and let the server lease workers from
  a shared :class:`WorkerLeaseRegistry` and run the evaluations itself,
  interleaving every campaign's pool through the non-blocking ``poll()``
  hook — no campaign ever blocks another.

Durability and supervision
--------------------------
Every campaign appends to its own write-ahead journal
(``journal_dir/<id>.journal``) and every lifecycle transition to the
server-level manifest (``journal_dir/server.manifest``, see
:mod:`repro.distributed.manifest`).  A killed client, a server crash
(kill -9 included), or an explicit ``suspend`` all leave durable journals:
on start with a ``journal_dir`` the server scans the manifest and replays
every non-terminal campaign via
:func:`~repro.core.campaign.resume_campaign` to bit-exact state (GP data,
hyperparameters, RNG stream, pending set), re-leasing workers for
server-evaluated campaigns — a restarted server answers ``status``/``ask``
as if nothing happened.  A campaign whose journal is missing or corrupt
degrades to ``failed`` while the rest recover.

A client disconnect mid-campaign suspends the campaigns it owns: their
pools are shut down (no leaked worker processes), their leases return to
the registry, and their journals stay resumable — and because the suspend
was not the client's choice, a *retried* ``ask``/``tell`` from a
reconnected client revives the campaign transparently.  A request that
raises inside ``ask``/``tell`` takes the failure path — the campaign is
failed with its pool reaped and the error is returned to the client
instead of wedging the server.  A corrupt frame
(:class:`~repro.distributed.transport.FrameCorruptionError`) drops only
the connection it arrived on.

Wire protocol
-------------
Requests and responses are journal-framed JSON records.  Every request
carries a client-chosen ``seq`` echoed in the response, so clients may
pipeline.  ``{"verb": ..., "seq": n, ...}`` -> ``{"seq": n, "ok": true,
...}`` or ``{"seq": n, "ok": false, "error": msg}``.

Requests may additionally carry a ``request_id`` (and an ``attempt``
retry counter).  State-changing verbs (``create``/``ask``/``tell``) are
then idempotent: the server keeps a bounded per-campaign reply cache —
rebuilt from the journals after a restart — and a retried request returns
the original reply (marked ``"replayed": true``) instead of double-issuing
points or double-counting observations.

Verbs: ``ping``, ``create``, ``ask``, ``tell``, ``status``, ``list``,
``metrics``, ``suspend``, ``resume``, ``close``, ``stop``.
"""

from __future__ import annotations

import collections
import os
import pathlib
import selectors
import threading
import time

import numpy as np

from repro.core.bo import shutdown_pool
from repro.core.campaign import (
    Campaign,
    CampaignExhausted,
    make_campaign,
    read_campaign_journal,
    resume_campaign,
)
from repro.distributed.manifest import (
    TERMINAL_EVENTS,
    ServerManifest,
    manifest_state,
    read_manifest,
)
from repro.distributed.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    load_problem,
    result_from_dict,
)
from repro.distributed.transport import ConnectionClosed, FramedConnection, listen
from repro.obs import NULL_OBS

__all__ = ["CampaignServer", "WorkerLeaseRegistry", "ServerError"]

#: Bound on each campaign's idempotent reply cache.  Retries arrive within a
#: client's backoff horizon — a handful of round-trips — so a few hundred
#: remembered replies is already generous; the bound keeps a long campaign's
#: memory O(1).
REPLY_CACHE_LIMIT = 256

#: Verbs with side effects whose replies are cached under ``request_id``.
_IDEMPOTENT_VERBS = frozenset(("create", "ask", "tell"))


class ServerError(RuntimeError):
    """A request the server understood but must refuse."""


class WorkerLeaseRegistry:
    """Caps the total number of evaluation workers leased across campaigns.

    The server hosts tens-to-hundreds of campaigns on one machine; letting
    each spin up its own full-size pool would oversubscribe it immediately.
    Each server-evaluated campaign leases workers here at creation and the
    lease returns on finish/suspend, so the sum of live pool sizes never
    exceeds ``capacity``.  A ``None`` capacity disables the cap.
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self._leases: dict[str, int] = {}

    @property
    def leased(self) -> int:
        return sum(self._leases.values())

    @property
    def available(self) -> int | None:
        if self.capacity is None:
            return None
        return max(self.capacity - self.leased, 0)

    def lease(self, campaign_id: str, requested: int) -> int:
        """Grant up to ``requested`` workers; raises when none are free."""
        if requested < 1:
            raise ValueError("requested must be >= 1")
        if campaign_id in self._leases:
            raise ServerError(f"campaign {campaign_id!r} already holds a lease")
        granted = requested if self.capacity is None else min(
            requested, self.available
        )
        if granted < 1:
            raise ServerError(
                f"no worker capacity available ({self.leased}/{self.capacity} "
                "leased); retry after a campaign finishes"
            )
        self._leases[campaign_id] = granted
        return granted

    def release(self, campaign_id: str) -> None:
        """Return a campaign's lease (idempotent)."""
        self._leases.pop(campaign_id, None)


class _ReplyCache:
    """Bounded ``request_id -> reply payload`` map (insertion-evicting)."""

    def __init__(self, limit: int = REPLY_CACHE_LIMIT):
        self.limit = int(limit)
        self._replies: "collections.OrderedDict[str, dict]" = (
            collections.OrderedDict()
        )

    def get(self, request_id: str) -> dict | None:
        return self._replies.get(request_id)

    def put(self, request_id: str, payload: dict) -> None:
        self._replies[request_id] = payload
        while len(self._replies) > self.limit:
            self._replies.popitem(last=False)

    def __len__(self) -> int:
        return len(self._replies)


class _Hosted:
    """One campaign under management: state, owner, and (optionally) a pool.

    ``campaign`` may be ``None`` for a *stub* — a campaign the restarted
    server knows about from the manifest but has not (re)loaded: suspended
    campaigns await their revival, failed/finished ones only answer
    ``status``.
    """

    def __init__(self, campaign_id: str, campaign: Campaign | None, *,
                 label: str, problem_name: str,
                 owner: FramedConnection | None):
        self.id = campaign_id
        self.campaign = campaign
        self.label = label
        self.problem_name = problem_name
        self.owner = owner
        self.pool = None
        self.n_workers = 0
        self.state = "active"  # active | finished | suspended | failed
        self.error: str | None = None
        #: Suspension the campaign's client did not ask for (disconnect,
        #: server shutdown): a retried ask/tell revives it transparently.
        self.auto_resumable = False
        self.replies = _ReplyCache()
        #: Manifest-derived creation context for stubs, so a later revival
        #: can rebuild worker leases/pools without the client re-sending them.
        self.manifest_info: dict | None = None

    @property
    def evaluating(self) -> bool:
        return self.pool is not None


class CampaignServer:
    """Serve many concurrent ask/tell campaigns over the framed socket RPC.

    Parameters
    ----------
    host / port:
        Listening address; port 0 binds an ephemeral port, read it back
        from :attr:`port`.
    journal_dir:
        Directory for per-campaign write-ahead journals and the server
        manifest.  On start the manifest is scanned and every non-terminal
        campaign is recovered to bit-exact state (see
        :mod:`repro.distributed.manifest`).  ``None`` disables journaling
        (campaigns are then not crash-resumable).
    max_workers:
        Capacity of the shared :class:`WorkerLeaseRegistry` for
        server-evaluated campaigns.
    obs:
        Optional :class:`~repro.obs.Observability` facade; the server feeds
        the ``campaign.*`` counters (creates, asks, tells, suspends,
        resumes, finishes, errors), the ``rpc.*`` idempotency counters
        (retries, replayed_replies), and the ``server.*`` gauges (uptime,
        recoveries, frame_corruptions), and hands itself to hosted
        campaigns.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        journal_dir=None,
        max_workers: int | None = None,
        obs=None,
    ):
        self.journal_dir = None if journal_dir is None else pathlib.Path(journal_dir)
        if self.journal_dir is not None:
            self.journal_dir.mkdir(parents=True, exist_ok=True)
        self.leases = WorkerLeaseRegistry(max_workers)
        self.obs = obs if obs is not None else NULL_OBS
        self._campaigns: dict[str, _Hosted] = {}
        self._next_id = 0
        self._stopping = False
        self._aborted = False
        self._started_at = time.monotonic()
        self.recoveries = 0
        self.rpc_retries = 0
        self.rpc_replayed_replies = 0
        self.frame_corruptions = 0
        self._create_replies = _ReplyCache(limit=4 * REPLY_CACHE_LIMIT)
        self.manifest = (
            None
            if self.journal_dir is None
            else ServerManifest(self.journal_dir / "server.manifest")
        )
        if self.manifest is not None:
            self._recover()
        self._selector = selectors.DefaultSelector()
        self._listener, self.port = listen(host, port)
        self.host = host
        self._selector.register(self._listener, selectors.EVENT_READ, "accept")
        self._connections: list[FramedConnection] = []

    # ------------------------------------------------------------- lifecycle
    def serve_forever(self, poll_interval: float = 0.05) -> None:
        """Run the event loop until :meth:`stop` (or a ``stop`` verb)."""
        while not self._stopping:
            self.step(poll_interval)
        self._shutdown()

    def step(self, timeout: float = 0.0) -> None:
        """One event-loop pass: socket events, then server-side evaluation."""
        try:
            events = self._selector.select(max(timeout, 0.0))
        except OSError:  # pragma: no cover - selector raced a close
            events = []
        for key, _mask in events:
            if key.data == "accept":
                self._accept()
            else:
                self._read_client(key.data)
        self._drive_evaluating()

    def stop(self) -> None:
        """Ask the event loop to exit after the current pass."""
        self._stopping = True

    def abort(self) -> None:
        """Simulate kill -9: exit *without* any suspend/journal bookkeeping.

        On-disk journals and the manifest stay exactly as the crash left
        them — no suspend events, no campaign_end records — which is what a
        SIGKILL'd process leaves behind; a new server on the same
        ``journal_dir`` must recover from that state alone.  (Unlike a real
        kill -9 the worker pools *are* reaped, purely so tests and the
        chaos bench never leak OS processes; pool shutdown touches no
        journal.)
        """
        self._aborted = True
        self._stopping = True

    def _shutdown(self) -> None:
        """Suspend every campaign and release every socket (idempotent)."""
        if self._aborted:
            for hosted in self._campaigns.values():
                shutdown_pool(hosted.pool)
                hosted.pool = None
        else:
            for hosted in list(self._campaigns.values()):
                if hosted.state == "active":
                    self._suspend(hosted, reason="server shutdown", auto=True)
        for conn in list(self._connections):
            if self._aborted:
                conn.close()
            else:
                self._drop_client(conn)
        self._connections.clear()
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._listener.close()
        self._selector.close()
        if self.manifest is not None and not self._aborted:
            self.manifest.close()

    close = stop

    # --------------------------------------------------------------- recovery
    def _recover(self) -> None:
        """Replay the manifest: reload every non-terminal campaign.

        Campaigns whose last event is terminal become status-only stubs;
        suspended ones become resumable stubs (revived on demand); everything
        else — including campaigns the crash caught mid-``ask`` — is replayed
        from its journal to bit-exact state, with leases re-registered and
        in-flight points resubmitted for server-evaluated campaigns.  A
        campaign whose journal is missing or corrupt degrades to ``failed``
        without taking the rest down.
        """
        state = manifest_state(read_manifest(self.manifest.path))
        for campaign_id in sorted(state):
            info = state[campaign_id]
            try:
                self._next_id = max(
                    self._next_id, int(campaign_id.lstrip("c")) + 1
                )
            except ValueError:
                pass
            last = info.get("state")
            if info.get("request_id"):
                self._create_replies.put(
                    info["request_id"],
                    {"ok": True, "campaign": campaign_id,
                     "n_workers": int(info.get("n_workers") or 0)},
                )
            if last in TERMINAL_EVENTS:
                stub = self._stub(campaign_id, info, "finished")
                stub.campaign = None
                continue
            if last == "failed":
                self._stub(campaign_id, info, "failed",
                           error=info.get("error"))
                continue
            if last == "suspended":
                stub = self._stub(campaign_id, info, "suspended",
                                  error=info.get("error"))
                stub.auto_resumable = bool(info.get("auto", False))
                continue
            # created / started / resumed / recovered: the crash caught it
            # live.
            try:
                path = self._journal_path(campaign_id)
                if (
                    path is not None
                    and not os.path.exists(path)
                    and last == "created"
                    and isinstance(info.get("config"), dict)
                ):
                    # Killed inside create, after the manifest append but
                    # before the journal materialized: rebuild fresh from
                    # the recorded config — same seed, same trajectory.
                    # (Once ``started`` was recorded the journal existed;
                    # a missing file then is data loss and degrades below.)
                    self._rebuild_created(campaign_id, info)
                else:
                    self._load_campaign(campaign_id, info, owner=None)
                self.recoveries += 1
            except Exception as exc:  # noqa: BLE001 — degrade this one only
                stub = self._stub(
                    campaign_id, info, "failed",
                    error=f"unrecoverable journal: {type(exc).__name__}: {exc}",
                )
                self._record("failed", campaign_id, error=stub.error)
                self.obs.inc("campaign.errors")
        if self.recoveries:
            self.obs.inc("campaign.resumes", self.recoveries)

    def _stub(self, campaign_id: str, info: dict, state: str, *,
              error: str | None = None) -> _Hosted:
        hosted = _Hosted(
            campaign_id, None,
            label=str(info.get("label", "?")),
            problem_name=str(info.get("problem", "?")),
            owner=None,
        )
        hosted.state = state
        hosted.error = error
        hosted.manifest_info = dict(info)
        self._campaigns[campaign_id] = hosted
        return hosted

    def _load_campaign(self, campaign_id: str, info: dict | None, *,
                       owner: FramedConnection | None) -> _Hosted:
        """Resume a campaign from its journal into the active table.

        The shared path behind startup recovery, the ``resume`` verb, and
        the transparent revival of auto-resumable suspensions: replays the
        journal to bit-exact state, rebuilds the idempotent reply cache from
        the journaled request ids, re-leases workers for server-evaluated
        campaigns, and records the transition in the manifest.
        """
        path = self._journal_path(campaign_id)
        if path is None or not os.path.exists(path):
            raise ServerError(
                f"campaign {campaign_id!r} has no journal to resume from"
            )
        campaign = resume_campaign(path)
        campaign.obs = self.obs
        prior = self._campaigns.get(campaign_id)
        if info is None:
            info = prior.manifest_info if prior is not None else None
        if info is None:
            info = {}
        label = str(
            info.get("label")
            or (prior.label if prior is not None else campaign.algorithm)
        )
        hosted = _Hosted(
            campaign_id, campaign, label=label,
            problem_name=campaign.problem.name, owner=owner,
        )
        self._rebuild_replies(hosted, path)
        self._campaigns[campaign_id] = hosted
        if info.get("evaluate"):
            requested = int(info.get("n_workers") or campaign.batch_size)
            granted = self.leases.lease(campaign_id, requested)
            hosted.pool = self._make_pool(
                campaign.problem, granted, campaign,
                backend=info.get("pool", "virtual"),
            )
            hosted.n_workers = granted
            # Points the crash caught in flight go straight back to workers;
            # the drive loop only feeds *fresh* asks.
            for point in campaign.pending:
                hosted.pool.submit(point)
        self._record(
            "recovered", campaign_id,
            label=label, problem=hosted.problem_name,
            evaluate=bool(info.get("evaluate", False)),
            pool=info.get("pool", "virtual"),
            n_workers=hosted.n_workers,
        )
        return hosted

    def _rebuild_created(self, campaign_id: str, info: dict) -> _Hosted:
        """Rebuild a campaign the crash caught between create and first write."""
        if "problem_spec" in info:
            problem = load_problem(info["problem_spec"])
        else:
            from repro.core.recovery import resolve_problem

            problem = resolve_problem(str(info.get("problem", "")))
        label = str(info.get("label", "EasyBO"))
        campaign = make_campaign(
            label,
            problem,
            journal=self._journal_path(campaign_id),
            obs=self.obs,
            **dict(info.get("config") or {}),
        )
        campaign.start()
        hosted = _Hosted(
            campaign_id, campaign, label=label,
            problem_name=getattr(problem, "name", str(problem)), owner=None,
        )
        self._campaigns[campaign_id] = hosted
        if info.get("evaluate"):
            granted = self.leases.lease(
                campaign_id, int(info.get("n_workers") or campaign.batch_size)
            )
            hosted.pool = self._make_pool(
                problem, granted, campaign, backend=info.get("pool", "virtual")
            )
            hosted.n_workers = granted
        self._record(
            "recovered", campaign_id,
            label=label, problem=hosted.problem_name,
            evaluate=bool(info.get("evaluate", False)),
            pool=info.get("pool", "virtual"),
            n_workers=hosted.n_workers,
        )
        return hosted

    def _rebuild_replies(self, hosted: _Hosted, path) -> None:
        """Rebuild the reply cache from the journaled request ids.

        The journal *is* the durable reply cache: every ask/tell that was
        applied carries its ``request_id``, so a retry that raced a server
        crash still replays the original answer instead of hitting a
        "not pending" error or double-issuing points.
        """
        try:
            events = read_campaign_journal(path)
        except Exception:  # noqa: BLE001 — cache rebuild is best-effort
            return
        for event in events:
            request_id = event.get("request_id")
            if not request_id:
                continue
            kind = event.get("type")
            if kind == "ask":
                hosted.replies.put(
                    request_id, {"ok": True, "points": event["points"]}
                )
            elif kind == "tell":
                hosted.replies.put(
                    request_id,
                    {"ok": True, "action": event.get("action"),
                     "done": bool(event.get("done", False))},
                )

    def _record(self, event: str, campaign_id: str, **fields) -> None:
        if self.manifest is not None:
            self.manifest.record(event, campaign_id, **fields)

    # ----------------------------------------------------------- connections
    def _accept(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            conn = FramedConnection(sock)
            self._connections.append(conn)
            self._selector.register(conn, selectors.EVENT_READ, conn)

    def _drop_client(self, conn: FramedConnection) -> None:
        """Remove a client; suspend the campaigns it owned (pool reaped)."""
        try:
            self._selector.unregister(conn)
        except (KeyError, ValueError):
            pass
        conn.close()
        if conn in self._connections:
            self._connections.remove(conn)
        for hosted in self._campaigns.values():
            if hosted.owner is conn:
                hosted.owner = None
                if hosted.state == "active":
                    self._suspend(hosted, reason="client disconnected",
                                  auto=True)

    def _read_client(self, conn: FramedConnection) -> None:
        try:
            frames = conn.receive_available()
        except ProtocolError:
            # A corrupt frame poisons only this connection's byte stream:
            # drop the client, keep serving everyone else.
            self.frame_corruptions += 1
            self.obs.inc("server.frame_corruptions")
            self._drop_client(conn)
            return
        except (ConnectionClosed, OSError):
            self._drop_client(conn)
            return
        for frame in frames:
            self._handle_request(conn, frame)
        if conn.closed:
            self._drop_client(conn)

    # -------------------------------------------------------------- requests
    def _handle_request(self, conn: FramedConnection, request: dict) -> None:
        seq = request.get("seq")
        verb = request.get("verb")
        request_id = request.get("request_id")
        if request.get("attempt"):
            self.rpc_retries += 1
            self.obs.inc("rpc.retries")
        handler = getattr(self, f"_verb_{verb}", None)
        try:
            if verb in ("ask", "tell"):
                # Revive before the cache lookup: the revival *rebuilds* the
                # reply cache from the journal, and a retry whose original
                # ask raced a crash must find its cached answer there.
                self._revive_if_needed(request.get("campaign"), conn)
            cached = self._cached_reply(verb, request_id, request)
            if cached is not None:
                self.rpc_replayed_replies += 1
                self.obs.inc("rpc.replayed_replies")
                payload = {**cached, "replayed": True}
            else:
                if handler is None:
                    raise ServerError(f"unknown verb {verb!r}")
                payload = handler(conn, request)
                payload = {"ok": True, **(payload or {})}
                self._store_reply(verb, request_id, request, payload)
        except Exception as exc:  # noqa: BLE001 — every failure becomes a response
            self.obs.inc("campaign.errors")
            payload = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        payload["seq"] = seq
        if request_id is not None:
            payload["request_id"] = request_id
        try:
            conn.send(payload)
        except (ConnectionClosed, OSError):
            self._drop_client(conn)

    def _cached_reply(self, verb, request_id, request) -> dict | None:
        if request_id is None or verb not in _IDEMPOTENT_VERBS:
            return None
        if verb == "create":
            return self._create_replies.get(request_id)
        hosted = self._campaigns.get(request.get("campaign"))
        if hosted is None:
            return None
        return hosted.replies.get(request_id)

    def _store_reply(self, verb, request_id, request, payload: dict) -> None:
        if request_id is None or verb not in _IDEMPOTENT_VERBS:
            return
        if verb == "create":
            self._create_replies.put(request_id, dict(payload))
            return
        hosted = self._campaigns.get(request.get("campaign"))
        if hosted is not None:
            hosted.replies.put(request_id, dict(payload))

    def _get(self, campaign_id, *, state: str | None = "active") -> _Hosted:
        hosted = self._campaigns.get(campaign_id)
        if hosted is None:
            raise ServerError(f"unknown campaign {campaign_id!r}")
        if state is not None and hosted.state != state:
            raise ServerError(
                f"campaign {campaign_id!r} is {hosted.state}, not {state}"
            )
        return hosted

    def _revive_if_needed(self, campaign_id, conn) -> None:
        """Transparently resume a campaign suspended *on* (not *by*) its client.

        Disconnect- and shutdown-suspensions are bookkeeping, not intent: a
        reconnected client retrying an ``ask``/``tell`` should find its
        campaign exactly where it left it, without knowing the server
        suspended (or restarted) in between.
        """
        hosted = self._campaigns.get(campaign_id)
        if (
            hosted is not None
            and hosted.state == "suspended"
            and hosted.auto_resumable
        ):
            self._load_campaign(campaign_id, None, owner=conn)
            self.obs.inc("campaign.resumes")

    def _journal_path(self, campaign_id: str):
        if self.journal_dir is None:
            return None
        return self.journal_dir / f"{campaign_id}.journal"

    # ----------------------------------------------------------------- verbs
    def _verb_ping(self, conn, request) -> dict:
        return {"pong": True, "protocol": PROTOCOL_VERSION}

    def _verb_create(self, conn, request) -> dict:
        label = request.get("label", "EasyBO")
        if "problem_spec" in request:
            problem = load_problem(request["problem_spec"])
        else:
            from repro.core.recovery import resolve_problem

            problem = resolve_problem(request.get("problem", ""))
        campaign_id = f"c{self._next_id:04d}"
        self._next_id += 1
        config = dict(request.get("config", {}))
        # Top-level convenience mirroring the CLI flag; an explicit config
        # entry wins.  The policy also rides along in the campaign journal,
        # so a resumed campaign keeps it without the client re-sending it.
        if "pending_policy" in request:
            config.setdefault("pending_policy", request["pending_policy"])
        journal_path = self._journal_path(campaign_id)
        campaign = make_campaign(
            label,
            problem,
            journal=journal_path,
            obs=self.obs,
            **config,
        )
        hosted = _Hosted(
            campaign_id, campaign, label=label,
            problem_name=getattr(problem, "name", str(problem)), owner=conn,
        )
        self._campaigns[campaign_id] = hosted
        granted = 0
        if request.get("evaluate"):
            requested = int(request.get("n_workers", campaign.batch_size))
            try:
                granted = self.leases.lease(campaign_id, requested)
                hosted.pool = self._make_pool(
                    problem, granted, campaign, backend=request.get("pool", "virtual")
                )
                hosted.n_workers = granted
            except Exception:
                self.leases.release(campaign_id)
                shutdown_pool(hosted.pool)
                campaign.close()
                del self._campaigns[campaign_id]
                raise
        created = {
            "label": str(label),
            "problem": hosted.problem_name,
            "journal": None if journal_path is None else str(journal_path),
            "config": config,
            "evaluate": bool(request.get("evaluate", False)),
            "pool": request.get("pool", "virtual"),
            "n_workers": granted,
        }
        if "problem_spec" in request:
            created["problem_spec"] = request["problem_spec"]
        if request.get("request_id") is not None:
            created["request_id"] = request["request_id"]
        # Manifest first, then journal: a kill between the two appends leaves
        # a ``created`` record whose config rebuilds the campaign fresh
        # (:meth:`_rebuild_created`); the reverse order would orphan a
        # journal the manifest never heard of.
        self._record("created", campaign_id, **created)
        if journal_path is not None:
            # Materialize the campaign journal (campaign_start + doe) before
            # the client hears the id.  start() is idempotent, so the first
            # ask sees the same design and RNG stream either way.  The
            # ``started`` event marks the journal as existing: from here on
            # a *missing* journal is data loss, not a creation crash, and
            # recovery degrades the campaign instead of silently rebuilding
            # a fresh one whose replies would diverge.
            campaign.start()
            self._record("started", campaign_id)
        self.obs.inc("campaign.creates")
        return {"campaign": campaign_id, "n_workers": granted}

    def _make_pool(self, problem, n_workers: int, campaign: Campaign, *,
                   backend: str = "virtual"):
        if backend == "virtual":
            from repro.sched.workers import VirtualWorkerPool

            return VirtualWorkerPool(
                problem, n_workers, policy=campaign.failure_policy
            )
        if backend == "thread":
            from repro.sched.executor import ThreadWorkerPool

            return ThreadWorkerPool(
                problem, n_workers, policy=campaign.failure_policy
            )
        if backend == "process":
            from repro.distributed.pool import ProcessWorkerPool

            return ProcessWorkerPool(
                problem, n_workers, policy=campaign.failure_policy
            )
        raise ServerError(f"unknown pool backend {backend!r}")

    def _verb_ask(self, conn, request) -> dict:
        hosted = self._get(request.get("campaign"))
        if hosted.evaluating:
            raise ServerError(
                f"campaign {hosted.id!r} is server-evaluated; poll status "
                "instead of asking"
            )
        n = request.get("n")
        request_id = request.get("request_id")
        try:
            if n is None:
                points = [hosted.campaign.ask(request_id=request_id)]
            else:
                points = hosted.campaign.ask(int(n), request_id=request_id)
        except CampaignExhausted as exc:
            raise ServerError(str(exc)) from None
        except Exception as exc:
            hosted.error = f"{type(exc).__name__}: {exc}"
            self._fail(hosted)
            raise
        return {"points": [[float(v) for v in p] for p in points]}

    def _verb_tell(self, conn, request) -> dict:
        hosted = self._get(request.get("campaign"))
        x = np.asarray(request["x"], dtype=float)
        result = result_from_dict(request["result"])
        try:
            action = hosted.campaign.tell(
                x, result, request_id=request.get("request_id")
            )
        except Exception as exc:
            hosted.error = f"{type(exc).__name__}: {exc}"
            self._fail(hosted)
            raise
        if hosted.campaign.done:
            self._finish(hosted)
        return {"action": action, "done": hosted.state == "finished"}

    def _verb_status(self, conn, request) -> dict:
        hosted = self._get(request.get("campaign"), state=None)
        return {"status": self._status(hosted)}

    def _verb_list(self, conn, request) -> dict:
        return {
            "campaigns": [self._status(h) for h in self._campaigns.values()]
        }

    def _verb_metrics(self, conn, request) -> dict:
        states = [h.state for h in self._campaigns.values()]
        uptime = time.monotonic() - self._started_at
        registry = self.obs.metrics
        if registry is not None:
            registry.set_gauge("server.uptime_seconds", uptime)
            registry.set_counter("server.recoveries", self.recoveries)
        metrics = {
            "campaigns": len(self._campaigns),
            "active": states.count("active"),
            "finished": states.count("finished"),
            "suspended": states.count("suspended"),
            "failed": states.count("failed"),
            "workers_leased": self.leases.leased,
            "worker_capacity": self.leases.capacity,
            "uptime_seconds": uptime,
            "recoveries": self.recoveries,
            "rpc_retries": self.rpc_retries,
            "rpc_replayed_replies": self.rpc_replayed_replies,
            "frame_corruptions": self.frame_corruptions,
        }
        if registry is not None:
            metrics["registry"] = registry.as_dict()
        return {"metrics": metrics}

    def _verb_suspend(self, conn, request) -> dict:
        hosted = self._get(request.get("campaign"), state=None)
        if hosted.state == "suspended":
            return {"state": hosted.state}  # idempotent for retries
        if hosted.state != "active":
            raise ServerError(
                f"campaign {hosted.id!r} is {hosted.state}, not active"
            )
        self._suspend(hosted, reason="suspended by client", auto=False)
        return {"state": hosted.state}

    def _verb_resume(self, conn, request) -> dict:
        campaign_id = request.get("campaign")
        hosted = self._campaigns.get(campaign_id)
        if hosted is None or hosted.state != "active":
            hosted = self._load_campaign(campaign_id, None, owner=conn)
            self.obs.inc("campaign.resumes")
        else:
            # Idempotent: a retried resume whose reply was lost finds the
            # campaign already active and just reads it back.
            hosted.owner = conn
        # Keep ids monotonic across resumes of journals from a prior server.
        try:
            self._next_id = max(self._next_id, int(campaign_id.lstrip("c")) + 1)
        except ValueError:
            pass
        return {
            "campaign": campaign_id,
            "pending": [[float(v) for v in p] for p in hosted.campaign.pending],
            "status": self._status(hosted),
        }

    def _verb_close(self, conn, request) -> dict:
        hosted = self._get(request.get("campaign"), state=None)
        if hosted.state == "active":
            self._finish(hosted)
        return {"state": hosted.state}

    def _verb_stop(self, conn, request) -> dict:
        self.stop()
        return {"stopping": True}

    # ----------------------------------------------------- state transitions
    def _status(self, hosted: _Hosted) -> dict:
        campaign = hosted.campaign
        if campaign is None:
            # A stub: known from the manifest, not (re)loaded.  Budget
            # numbers live in the journal; state and identity suffice here.
            return {
                "campaign": hosted.id,
                "label": hosted.label,
                "algorithm": None,
                "problem": hosted.problem_name,
                "state": hosted.state,
                "issued": None,
                "max_evals": None,
                "n_pending": None,
                "n_observations": None,
                "exhausted": None,
                "done": hosted.state == "finished",
                "evaluating": False,
                "n_workers": 0,
                "best_fom": None,
                "error": hosted.error,
            }
        best = campaign.best()
        return {
            "campaign": hosted.id,
            "label": hosted.label,
            "algorithm": campaign.algorithm,
            "problem": hosted.problem_name,
            "state": hosted.state,
            "issued": int(campaign.issued),
            "max_evals": int(campaign.max_evals),
            "n_pending": campaign.n_pending,
            "n_observations": campaign.n_observations,
            "exhausted": campaign.exhausted,
            "done": campaign.done,
            "evaluating": hosted.evaluating,
            "n_workers": hosted.n_workers,
            "best_fom": None if best is None else float(best[1]),
            "error": hosted.error,
        }

    def _release_pool(self, hosted: _Hosted) -> None:
        """Reap the pool and return the lease — the no-leak choke point."""
        shutdown_pool(hosted.pool)
        hosted.pool = None
        self.leases.release(hosted.id)

    def _suspend(self, hosted: _Hosted, *, reason: str, auto: bool) -> None:
        self._release_pool(hosted)
        hosted.state = "suspended"
        hosted.error = reason
        hosted.auto_resumable = auto
        hosted.campaign.close()  # journal stays on disk, resumable
        self._record("suspended", hosted.id, error=reason, auto=auto)
        self.obs.inc("campaign.suspends")

    def _finish(self, hosted: _Hosted) -> None:
        self._release_pool(hosted)
        hosted.state = "finished"
        hosted.campaign.finish()
        self._record("finished", hosted.id)
        self.obs.inc("campaign.finishes")

    def _fail(self, hosted: _Hosted) -> None:
        """An ask/tell blew up: reap the pool, keep the journal for triage."""
        self._release_pool(hosted)
        hosted.state = "failed"
        hosted.campaign.close()
        self._record("failed", hosted.id, error=hosted.error)

    # -------------------------------------------------- server-side driving
    def _drive_evaluating(self) -> None:
        """Advance every server-evaluated campaign without blocking.

        For each active campaign with a pool: keep idle workers fed with
        ``ask()`` points, fold at most a handful of ``poll()`` completions
        back via ``tell()``.  Work is bounded per pass so one campaign
        cannot starve the socket loop.
        """
        for hosted in list(self._campaigns.values()):
            if hosted.state != "active" or not hosted.evaluating:
                continue
            campaign, pool = hosted.campaign, hosted.pool
            try:
                while not campaign.exhausted and pool.idle_count > 0:
                    pool.submit(campaign.ask())
                for _ in range(hosted.n_workers):
                    completion = pool.poll()
                    if completion is None:
                        break
                    action = campaign.tell(completion.x, completion.result)
                    if action == "reissued":
                        pool.submit(completion.x)
                if campaign.done:
                    self._finish(hosted)
            except Exception as exc:  # noqa: BLE001 — isolate per campaign
                hosted.error = f"{type(exc).__name__}: {exc}"
                self._fail(hosted)
                self.obs.inc("campaign.errors")


def serve(host: str = "127.0.0.1", port: int = 0, *, journal_dir=None,
          max_workers: int | None = None, obs=None,
          background: bool = False):
    """Start a :class:`CampaignServer`; optionally on a daemon thread.

    Foreground (default): blocks in ``serve_forever`` until stopped.
    ``background=True`` returns the running server after its thread is up —
    the form the tests and the benchmark use.
    """
    server = CampaignServer(host=host, port=port, journal_dir=journal_dir,
                            max_workers=max_workers, obs=obs)
    if not background:
        server.serve_forever()
        return server
    thread = threading.Thread(target=server.serve_forever, daemon=True,
                              name="campaign-server")
    thread.start()
    server._thread = thread
    # Give the loop a beat to enter select() before callers dial in.
    time.sleep(0.01)
    return server
