"""Multi-tenant campaign server: many ask/tell optimizations, one process.

The ask/tell extraction (:class:`repro.core.campaign.Campaign`) makes an
optimization a value instead of a loop, which means one process can host
*many* of them.  :class:`CampaignServer` does exactly that over the same
CRC-framed loopback socket RPC the process-worker fleet uses
(:mod:`repro.distributed.transport`):

* clients create campaigns by algorithm label + problem name and drive them
  with ``ask`` / ``tell`` round-trips (the client owns evaluation), or
* create them with ``evaluate=True`` and let the server lease workers from
  a shared :class:`WorkerLeaseRegistry` and run the evaluations itself,
  interleaving every campaign's pool through the non-blocking ``poll()``
  hook — no campaign ever blocks another.

Durability and supervision
--------------------------
Every campaign appends to its own write-ahead journal
(``journal_dir/<id>.journal``); a killed client, a server crash, or an
explicit ``suspend`` all leave a journal from which ``resume`` rebuilds the
bit-exact campaign state (GP data, hyperparameters, RNG stream, pending
set).  A client disconnect mid-campaign suspends the campaigns it owns:
their pools are shut down (no leaked worker processes), their leases
return to the registry, and their journals stay resumable.  A request that
raises inside ``ask``/``tell`` takes the same path — the campaign is
suspended with its pool reaped and the error is returned to the client
instead of wedging the server.

Wire protocol
-------------
Requests and responses are journal-framed JSON records.  Every request
carries a client-chosen ``seq`` echoed in the response, so clients may
pipeline.  ``{"verb": ..., "seq": n, ...}`` -> ``{"seq": n, "ok": true,
...}`` or ``{"seq": n, "ok": false, "error": msg}``.

Verbs: ``ping``, ``create``, ``ask``, ``tell``, ``status``, ``list``,
``metrics``, ``suspend``, ``resume``, ``close``, ``stop``.
"""

from __future__ import annotations

import os
import pathlib
import selectors
import threading
import time

import numpy as np

from repro.core.bo import shutdown_pool
from repro.core.campaign import Campaign, CampaignExhausted, make_campaign, resume_campaign
from repro.distributed.protocol import (
    PROTOCOL_VERSION,
    load_problem,
    result_from_dict,
)
from repro.distributed.transport import ConnectionClosed, FramedConnection, listen
from repro.obs import NULL_OBS

__all__ = ["CampaignServer", "WorkerLeaseRegistry", "ServerError"]


class ServerError(RuntimeError):
    """A request the server understood but must refuse."""


class WorkerLeaseRegistry:
    """Caps the total number of evaluation workers leased across campaigns.

    The server hosts tens-to-hundreds of campaigns on one machine; letting
    each spin up its own full-size pool would oversubscribe it immediately.
    Each server-evaluated campaign leases workers here at creation and the
    lease returns on finish/suspend, so the sum of live pool sizes never
    exceeds ``capacity``.  A ``None`` capacity disables the cap.
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self._leases: dict[str, int] = {}

    @property
    def leased(self) -> int:
        return sum(self._leases.values())

    @property
    def available(self) -> int | None:
        if self.capacity is None:
            return None
        return max(self.capacity - self.leased, 0)

    def lease(self, campaign_id: str, requested: int) -> int:
        """Grant up to ``requested`` workers; raises when none are free."""
        if requested < 1:
            raise ValueError("requested must be >= 1")
        if campaign_id in self._leases:
            raise ServerError(f"campaign {campaign_id!r} already holds a lease")
        granted = requested if self.capacity is None else min(
            requested, self.available
        )
        if granted < 1:
            raise ServerError(
                f"no worker capacity available ({self.leased}/{self.capacity} "
                "leased); retry after a campaign finishes"
            )
        self._leases[campaign_id] = granted
        return granted

    def release(self, campaign_id: str) -> None:
        """Return a campaign's lease (idempotent)."""
        self._leases.pop(campaign_id, None)


class _Hosted:
    """One campaign under management: state, owner, and (optionally) a pool."""

    def __init__(self, campaign_id: str, campaign: Campaign, *, label: str,
                 problem_name: str, owner: FramedConnection | None):
        self.id = campaign_id
        self.campaign = campaign
        self.label = label
        self.problem_name = problem_name
        self.owner = owner
        self.pool = None
        self.n_workers = 0
        self.state = "active"  # active | finished | suspended | failed
        self.error: str | None = None

    @property
    def evaluating(self) -> bool:
        return self.pool is not None


class CampaignServer:
    """Serve many concurrent ask/tell campaigns over the framed socket RPC.

    Parameters
    ----------
    host / port:
        Listening address; port 0 binds an ephemeral port, read it back
        from :attr:`port`.
    journal_dir:
        Directory for per-campaign write-ahead journals.  ``None`` disables
        journaling (campaigns are then not crash-resumable).
    max_workers:
        Capacity of the shared :class:`WorkerLeaseRegistry` for
        server-evaluated campaigns.
    obs:
        Optional :class:`~repro.obs.Observability` facade; the server feeds
        the ``campaign.*`` counters (creates, asks, tells, suspends,
        resumes, finishes, errors) and hands itself to hosted campaigns.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        journal_dir=None,
        max_workers: int | None = None,
        obs=None,
    ):
        self.journal_dir = None if journal_dir is None else pathlib.Path(journal_dir)
        if self.journal_dir is not None:
            self.journal_dir.mkdir(parents=True, exist_ok=True)
        self.leases = WorkerLeaseRegistry(max_workers)
        self.obs = obs if obs is not None else NULL_OBS
        self._campaigns: dict[str, _Hosted] = {}
        self._next_id = 0
        self._stopping = False
        self._selector = selectors.DefaultSelector()
        self._listener, self.port = listen(host, port)
        self.host = host
        self._selector.register(self._listener, selectors.EVENT_READ, "accept")
        self._connections: list[FramedConnection] = []

    # ------------------------------------------------------------- lifecycle
    def serve_forever(self, poll_interval: float = 0.05) -> None:
        """Run the event loop until :meth:`stop` (or a ``stop`` verb)."""
        while not self._stopping:
            self.step(poll_interval)
        self._shutdown()

    def step(self, timeout: float = 0.0) -> None:
        """One event-loop pass: socket events, then server-side evaluation."""
        try:
            events = self._selector.select(max(timeout, 0.0))
        except OSError:  # pragma: no cover - selector raced a close
            events = []
        for key, _mask in events:
            if key.data == "accept":
                self._accept()
            else:
                self._read_client(key.data)
        self._drive_evaluating()

    def stop(self) -> None:
        """Ask the event loop to exit after the current pass."""
        self._stopping = True

    def _shutdown(self) -> None:
        """Suspend every campaign and release every socket (idempotent)."""
        for hosted in list(self._campaigns.values()):
            if hosted.state == "active":
                self._suspend(hosted, reason="server shutdown")
        for conn in list(self._connections):
            self._drop_client(conn)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._listener.close()
        self._selector.close()

    close = stop

    # ----------------------------------------------------------- connections
    def _accept(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            conn = FramedConnection(sock)
            self._connections.append(conn)
            self._selector.register(conn, selectors.EVENT_READ, conn)

    def _drop_client(self, conn: FramedConnection) -> None:
        """Remove a client; suspend the campaigns it owned (pool reaped)."""
        try:
            self._selector.unregister(conn)
        except (KeyError, ValueError):
            pass
        conn.close()
        if conn in self._connections:
            self._connections.remove(conn)
        for hosted in self._campaigns.values():
            if hosted.owner is conn:
                hosted.owner = None
                if hosted.state == "active":
                    self._suspend(hosted, reason="client disconnected")

    def _read_client(self, conn: FramedConnection) -> None:
        try:
            frames = conn.receive_available()
        except (ConnectionClosed, OSError):
            self._drop_client(conn)
            return
        for frame in frames:
            self._handle_request(conn, frame)
        if conn.closed:
            self._drop_client(conn)

    # -------------------------------------------------------------- requests
    def _handle_request(self, conn: FramedConnection, request: dict) -> None:
        seq = request.get("seq")
        verb = request.get("verb")
        handler = getattr(self, f"_verb_{verb}", None)
        try:
            if handler is None:
                raise ServerError(f"unknown verb {verb!r}")
            payload = handler(conn, request)
        except Exception as exc:  # noqa: BLE001 — every failure becomes a response
            self.obs.inc("campaign.errors")
            payload = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        else:
            payload = {"ok": True, **(payload or {})}
        payload["seq"] = seq
        try:
            conn.send(payload)
        except (ConnectionClosed, OSError):
            self._drop_client(conn)

    def _get(self, campaign_id, *, state: str | None = "active") -> _Hosted:
        hosted = self._campaigns.get(campaign_id)
        if hosted is None:
            raise ServerError(f"unknown campaign {campaign_id!r}")
        if state is not None and hosted.state != state:
            raise ServerError(
                f"campaign {campaign_id!r} is {hosted.state}, not {state}"
            )
        return hosted

    def _journal_path(self, campaign_id: str):
        if self.journal_dir is None:
            return None
        return self.journal_dir / f"{campaign_id}.journal"

    # ----------------------------------------------------------------- verbs
    def _verb_ping(self, conn, request) -> dict:
        return {"pong": True, "protocol": PROTOCOL_VERSION}

    def _verb_create(self, conn, request) -> dict:
        label = request.get("label", "EasyBO")
        if "problem_spec" in request:
            problem = load_problem(request["problem_spec"])
        else:
            from repro.core.recovery import resolve_problem

            problem = resolve_problem(request.get("problem", ""))
        campaign_id = f"c{self._next_id:04d}"
        self._next_id += 1
        config = dict(request.get("config", {}))
        # Top-level convenience mirroring the CLI flag; an explicit config
        # entry wins.  The policy also rides along in the campaign journal,
        # so a resumed campaign keeps it without the client re-sending it.
        if "pending_policy" in request:
            config.setdefault("pending_policy", request["pending_policy"])
        campaign = make_campaign(
            label,
            problem,
            journal=self._journal_path(campaign_id),
            obs=self.obs,
            **config,
        )
        hosted = _Hosted(
            campaign_id, campaign, label=label,
            problem_name=getattr(problem, "name", str(problem)), owner=conn,
        )
        self._campaigns[campaign_id] = hosted
        granted = 0
        if request.get("evaluate"):
            requested = int(request.get("n_workers", campaign.batch_size))
            try:
                granted = self.leases.lease(campaign_id, requested)
                hosted.pool = self._make_pool(
                    problem, granted, campaign, backend=request.get("pool", "virtual")
                )
                hosted.n_workers = granted
            except Exception:
                self.leases.release(campaign_id)
                shutdown_pool(hosted.pool)
                campaign.close()
                del self._campaigns[campaign_id]
                raise
        self.obs.inc("campaign.creates")
        return {"campaign": campaign_id, "n_workers": granted}

    def _make_pool(self, problem, n_workers: int, campaign: Campaign, *,
                   backend: str = "virtual"):
        if backend == "virtual":
            from repro.sched.workers import VirtualWorkerPool

            return VirtualWorkerPool(
                problem, n_workers, policy=campaign.failure_policy
            )
        if backend == "thread":
            from repro.sched.executor import ThreadWorkerPool

            return ThreadWorkerPool(
                problem, n_workers, policy=campaign.failure_policy
            )
        if backend == "process":
            from repro.distributed.pool import ProcessWorkerPool

            return ProcessWorkerPool(
                problem, n_workers, policy=campaign.failure_policy
            )
        raise ServerError(f"unknown pool backend {backend!r}")

    def _verb_ask(self, conn, request) -> dict:
        hosted = self._get(request.get("campaign"))
        if hosted.evaluating:
            raise ServerError(
                f"campaign {hosted.id!r} is server-evaluated; poll status "
                "instead of asking"
            )
        n = request.get("n")
        try:
            if n is None:
                points = [hosted.campaign.ask()]
            else:
                points = hosted.campaign.ask(int(n))
        except CampaignExhausted as exc:
            raise ServerError(str(exc)) from None
        except Exception:
            self._fail(hosted)
            raise
        return {"points": [[float(v) for v in p] for p in points]}

    def _verb_tell(self, conn, request) -> dict:
        hosted = self._get(request.get("campaign"))
        x = np.asarray(request["x"], dtype=float)
        result = result_from_dict(request["result"])
        try:
            action = hosted.campaign.tell(x, result)
        except Exception:
            self._fail(hosted)
            raise
        if hosted.campaign.done:
            self._finish(hosted)
        return {"action": action, "done": hosted.state == "finished"}

    def _verb_status(self, conn, request) -> dict:
        hosted = self._get(request.get("campaign"), state=None)
        return {"status": self._status(hosted)}

    def _verb_list(self, conn, request) -> dict:
        return {
            "campaigns": [self._status(h) for h in self._campaigns.values()]
        }

    def _verb_metrics(self, conn, request) -> dict:
        states = [h.state for h in self._campaigns.values()]
        return {
            "metrics": {
                "campaigns": len(self._campaigns),
                "active": states.count("active"),
                "finished": states.count("finished"),
                "suspended": states.count("suspended"),
                "failed": states.count("failed"),
                "workers_leased": self.leases.leased,
                "worker_capacity": self.leases.capacity,
            }
        }

    def _verb_suspend(self, conn, request) -> dict:
        hosted = self._get(request.get("campaign"))
        self._suspend(hosted, reason="suspended by client")
        return {"state": hosted.state}

    def _verb_resume(self, conn, request) -> dict:
        campaign_id = request.get("campaign")
        hosted = self._campaigns.get(campaign_id)
        if hosted is not None and hosted.state == "active":
            raise ServerError(f"campaign {campaign_id!r} is already active")
        path = self._journal_path(campaign_id)
        if path is None or not os.path.exists(path):
            raise ServerError(
                f"campaign {campaign_id!r} has no journal to resume from"
            )
        campaign = resume_campaign(path)
        campaign.obs = self.obs
        label = hosted.label if hosted is not None else campaign.algorithm
        hosted = _Hosted(
            campaign_id, campaign, label=label,
            problem_name=campaign.problem.name, owner=conn,
        )
        self._campaigns[campaign_id] = hosted
        # Keep ids monotonic across resumes of journals from a prior server.
        try:
            self._next_id = max(self._next_id, int(campaign_id.lstrip("c")) + 1)
        except ValueError:
            pass
        self.obs.inc("campaign.resumes")
        return {
            "campaign": campaign_id,
            "pending": [[float(v) for v in p] for p in campaign.pending],
            "status": self._status(hosted),
        }

    def _verb_close(self, conn, request) -> dict:
        hosted = self._get(request.get("campaign"), state=None)
        if hosted.state == "active":
            self._finish(hosted)
        return {"state": hosted.state}

    def _verb_stop(self, conn, request) -> dict:
        self.stop()
        return {"stopping": True}

    # ----------------------------------------------------- state transitions
    def _status(self, hosted: _Hosted) -> dict:
        campaign = hosted.campaign
        best = campaign.best()
        return {
            "campaign": hosted.id,
            "label": hosted.label,
            "algorithm": campaign.algorithm,
            "problem": hosted.problem_name,
            "state": hosted.state,
            "issued": int(campaign.issued),
            "max_evals": int(campaign.max_evals),
            "n_pending": campaign.n_pending,
            "n_observations": campaign.n_observations,
            "exhausted": campaign.exhausted,
            "done": campaign.done,
            "evaluating": hosted.evaluating,
            "n_workers": hosted.n_workers,
            "best_fom": None if best is None else float(best[1]),
            "error": hosted.error,
        }

    def _release_pool(self, hosted: _Hosted) -> None:
        """Reap the pool and return the lease — the no-leak choke point."""
        shutdown_pool(hosted.pool)
        hosted.pool = None
        self.leases.release(hosted.id)

    def _suspend(self, hosted: _Hosted, *, reason: str) -> None:
        self._release_pool(hosted)
        hosted.state = "suspended"
        hosted.error = reason
        hosted.campaign.close()  # journal stays on disk, resumable
        self.obs.inc("campaign.suspends")

    def _finish(self, hosted: _Hosted) -> None:
        self._release_pool(hosted)
        hosted.state = "finished"
        hosted.campaign.finish()
        self.obs.inc("campaign.finishes")

    def _fail(self, hosted: _Hosted) -> None:
        """An ask/tell blew up: reap the pool, keep the journal for triage."""
        self._release_pool(hosted)
        hosted.state = "failed"
        hosted.campaign.close()

    # -------------------------------------------------- server-side driving
    def _drive_evaluating(self) -> None:
        """Advance every server-evaluated campaign without blocking.

        For each active campaign with a pool: keep idle workers fed with
        ``ask()`` points, fold at most a handful of ``poll()`` completions
        back via ``tell()``.  Work is bounded per pass so one campaign
        cannot starve the socket loop.
        """
        for hosted in list(self._campaigns.values()):
            if hosted.state != "active" or not hosted.evaluating:
                continue
            campaign, pool = hosted.campaign, hosted.pool
            try:
                while not campaign.exhausted and pool.idle_count > 0:
                    pool.submit(campaign.ask())
                for _ in range(hosted.n_workers):
                    completion = pool.poll()
                    if completion is None:
                        break
                    action = campaign.tell(completion.x, completion.result)
                    if action == "reissued":
                        pool.submit(completion.x)
                if campaign.done:
                    self._finish(hosted)
            except Exception as exc:  # noqa: BLE001 — isolate per campaign
                hosted.error = f"{type(exc).__name__}: {exc}"
                self._fail(hosted)
                self.obs.inc("campaign.errors")


def serve(host: str = "127.0.0.1", port: int = 0, *, journal_dir=None,
          max_workers: int | None = None, obs=None,
          background: bool = False):
    """Start a :class:`CampaignServer`; optionally on a daemon thread.

    Foreground (default): blocks in ``serve_forever`` until stopped.
    ``background=True`` returns the running server after its thread is up —
    the form the tests and the benchmark use.
    """
    server = CampaignServer(host=host, port=port, journal_dir=journal_dir,
                            max_workers=max_workers, obs=obs)
    if not background:
        server.serve_forever()
        return server
    thread = threading.Thread(target=server.serve_forever, daemon=True,
                              name="campaign-server")
    thread.start()
    server._thread = thread
    # Give the loop a beat to enter select() before callers dial in.
    time.sleep(0.01)
    return server
