"""Server-level manifest journal: the campaign ledger that survives kill -9.

Per-campaign journals make each *optimization* crash-safe, but the server
process itself was a single point of failure: after a crash nothing knew
which campaigns existed, which were mid-flight, or where their journals
lived.  The manifest closes that gap.  It is a write-ahead journal (same
CRC+length framing as :mod:`repro.core.journal`, same torn-tail recovery)
under ``journal_dir/server.manifest`` recording every campaign lifecycle
transition::

    {"type": "manifest_start", "manifest_version": 1}
    {"type": "campaign", "event": "created",  "campaign": "c0000",
     "label": ..., "problem": ..., "journal": ..., "config": {...},
     "evaluate": ..., "pool": ..., "n_workers": ..., "request_id": ...}
    {"type": "campaign", "event": "suspended", "campaign": "c0000", ...}
    ...

Events: ``created``, ``started`` (the campaign journal materialized — a
missing journal after this point is data loss, not a creation crash),
``suspended``, ``resumed``, ``recovered``, ``finished``, ``closed``,
``failed``.  :func:`manifest_state` folds the
event stream into the latest per-campaign state; a restarting
:class:`~repro.distributed.server.CampaignServer` scans it and replays
every non-terminal campaign from its journal
(:func:`repro.core.campaign.resume_campaign`) to bit-exact state, so a
server killed mid-``ask`` answers ``status``/``ask`` after restart as if
nothing happened.

The ``created`` event carries the full (JSON) campaign config, which makes
*creation itself* crash-safe: a campaign whose journal never materialized
(killed before the first ``ask``) is rebuilt fresh from the manifest with
its original seed.
"""

from __future__ import annotations

import os
import pathlib

from repro.core.journal import JournalError, JournalWriter, recover_journal

__all__ = [
    "MANIFEST_VERSION",
    "ServerManifest",
    "read_manifest",
    "manifest_state",
    "TERMINAL_EVENTS",
]

#: Version stamp in the ``manifest_start`` record.  Bump when the event
#: schema changes incompatibly.
MANIFEST_VERSION = 1

#: Lifecycle events after which a campaign needs no recovery.
TERMINAL_EVENTS = frozenset(("finished", "closed"))

#: Creation/context fields carried forward by :func:`manifest_state` — later
#: events overwrite only the keys they actually set.
_STICKY_FIELDS = (
    "label",
    "problem",
    "problem_spec",
    "journal",
    "config",
    "evaluate",
    "pool",
    "n_workers",
    "request_id",
    "auto",
    "error",
)


class ServerManifest:
    """Append-only lifecycle ledger for one server's ``journal_dir``.

    Appends are fsync'd before the server replies to the client, mirroring
    the campaign journals: any transition a client was told about is
    durable.  Creating a manifest on an existing file continues it — a
    restarted server keeps appending to the same ledger.
    """

    def __init__(self, path: str | os.PathLike, *, fsync: bool = True):
        self.path = pathlib.Path(path)
        self._writer = JournalWriter(self.path, fsync=fsync)
        self._started = self.path.exists() and self.path.stat().st_size > 0

    def record(self, event: str, campaign_id: str, **fields) -> None:
        """Append one lifecycle transition (durably)."""
        if not self._started:
            self._writer.append(
                {"type": "manifest_start", "manifest_version": MANIFEST_VERSION}
            )
            self._started = True
        self._writer.append(
            {"type": "campaign", "event": str(event),
             "campaign": str(campaign_id), **fields}
        )

    @property
    def n_appends(self) -> int:
        return self._writer.n_appends

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "ServerManifest":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_manifest(path: str | os.PathLike) -> list[dict]:
    """Recover the manifest event stream (torn tail truncated in place).

    A missing file reads as an empty manifest — a first boot.  A manifest
    written by a *newer* format raises :class:`JournalError` instead of
    misparsing, matching the campaign-journal and saved-runs readers.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return []
    events = recover_journal(path)
    if events and events[0].get("type") == "manifest_start":
        version = events[0].get("manifest_version")
        if not isinstance(version, int) or version > MANIFEST_VERSION:
            raise JournalError(
                f"server manifest format v{version} is newer than supported "
                f"v{MANIFEST_VERSION}; upgrade this installation to read it"
            )
    return events


def manifest_state(events: list[dict]) -> dict[str, dict]:
    """Fold the event stream into the latest state per campaign.

    Returns ``{campaign_id: info}`` where ``info["state"]`` is the last
    lifecycle event seen and the creation/context fields (label, problem,
    journal path, config, lease size, ...) are carried forward from
    whichever event last set them.
    """
    state: dict[str, dict] = {}
    for event in events:
        if event.get("type") != "campaign":
            continue
        campaign_id = event.get("campaign")
        if not campaign_id:
            continue
        info = state.setdefault(campaign_id, {"campaign": campaign_id})
        for key in _STICKY_FIELDS:
            if key in event:
                info[key] = event[key]
        info["state"] = event.get("event")
    return state
