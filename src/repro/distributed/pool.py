"""Process-based evaluation pool: real OS workers behind the pool contract.

:class:`ProcessWorkerPool` speaks the same protocol as
:class:`~repro.sched.workers.VirtualWorkerPool` and
:class:`~repro.sched.executor.ThreadWorkerPool` — ``submit`` / ``wait_next``
/ ``wait_all`` / ``pending_points`` / ``task_info`` / ``restore`` /
``restore_task`` — but each of its B workers is a separate OS process
(``python -m repro.distributed.worker``) connected over a loopback socket
RPC, so CPU-bound simulations genuinely run in parallel instead of taking
turns on the GIL.

Supervision model
-----------------
The pool owns B *slots*.  A slot is always submittable while its process is
alive or respawning (a dispatched task waits in the slot until the fresh
process completes its handshake), so the driver sees the same
``n_workers``-capacity semantics as the other backends.  Per slot the
supervisor tracks:

* **heartbeats** — workers send one every ``heartbeat_interval`` seconds,
  even mid-evaluation.  A slot silent past ``heartbeat_timeout`` is
  presumed dead or frozen: its process is killed, its in-flight point comes
  back through ``wait_next`` as a :data:`~repro.core.problem.STATUS_ORPHANED`
  completion (feeding the driver's ``FailurePolicy.on_orphan`` path), and
  the slot respawns with linear backoff.
* **death** — a closed connection (crash, SIGKILL) takes the same orphan +
  respawn path immediately, without waiting out the heartbeat window.
* **wedging** — with ``policy.timeout`` set, a task over its wall-clock
  deadline gets its worker killed (unlike a thread, a process *can* be
  reclaimed) and surfaces as a ``timeout`` completion.
* **leases** — ``policy.lease_slack`` arms the same mean-duration leases as
  the other pools; an expired lease is treated like a heartbeat expiry.

``respawn_limit`` consecutive failed respawns mark the slot permanently
dead; the run continues on the surviving slots and fails loudly only when
none remain.  ``close()`` (also the context-manager exit and a GC
finalizer) shuts workers down and reaps every child process — no zombies,
also on the exception path.
"""

from __future__ import annotations

import collections
import dataclasses
import os
import selectors
import subprocess
import sys
import time
import weakref

import numpy as np

from repro.core.faults import FailurePolicy
from repro.core.problem import STATUS_ORPHANED, STATUS_TIMEOUT, EvaluationResult
from repro.distributed.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    problem_spec,
    result_from_dict,
)
from repro.distributed.transport import ConnectionClosed, FramedConnection, listen
from repro.obs import NULL_OBS
from repro.sched.trace import EvalRecord, ExecutionTrace, PoolTelemetry
from repro.sched.workers import Completion, _problem_dim

__all__ = ["ProcessWorkerPool"]


@dataclasses.dataclass
class _Slot:
    """One worker slot: the process behind it and its supervision state."""

    worker_id: int
    proc: subprocess.Popen | None = None
    conn: FramedConnection | None = None
    state: str = "spawning"  # spawning | ready | dead
    task: int | None = None  # index of the in-flight/pending evaluation
    last_heartbeat: float = 0.0
    respawns: int = 0  # consecutive failures; reset on a delivered result
    respawn_at: float = 0.0  # pool clock: earliest next spawn attempt
    spawn_deadline: float = 0.0
    busy_seconds: float = 0.0
    n_tasks: int = 0

    @property
    def alive(self) -> bool:
        return self.state != "dead"


def _reap(procs: list) -> None:
    """GC/exit safety net: kill and reap any still-running child process."""
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        try:
            proc.wait(timeout=5)
        except Exception:  # noqa: BLE001 — best effort at interpreter teardown
            pass


class ProcessWorkerPool:
    """Evaluation pool of ``n_workers`` supervised OS processes.

    Parameters
    ----------
    problem:
        The problem to evaluate.  It must transfer to the worker processes:
        picklable, or rebuildable by name through the crash-recovery
        registry (see :func:`repro.distributed.protocol.problem_spec`).
    n_workers:
        Batch size B of the paper — the number of worker processes.
    policy:
        Shared :class:`~repro.core.faults.FailurePolicy`.  Retries run
        *inside* the worker; ``timeout`` and ``lease_slack`` are enforced
        by the supervisor on the real clock.
    heartbeat_interval:
        Seconds between worker heartbeat frames.
    heartbeat_timeout:
        Silence on a connected worker longer than this expires it
        (default: ``10 * heartbeat_interval``).
    respawn_limit:
        Consecutive failed (re)spawns before a slot is declared
        permanently dead.
    respawn_backoff:
        Base backoff in seconds; attempt ``k`` waits ``k * respawn_backoff``.
    spawn_timeout:
        Seconds a freshly started process gets to complete its handshake
        (covers the Python/NumPy import storm on loaded machines).
    poll_interval:
        Upper bound on any single blocking wait inside ``wait_next`` —
        KeyboardInterrupt stays prompt even if every worker goes silent.
    """

    def __init__(
        self,
        problem,
        n_workers: int,
        *,
        policy: FailurePolicy | None = None,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float | None = None,
        respawn_limit: int = 3,
        respawn_backoff: float = 0.5,
        spawn_timeout: float = 60.0,
        poll_interval: float = 0.5,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.problem = problem
        self.n_workers = int(n_workers)
        self.policy = policy or FailurePolicy()
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = (
            10.0 * self.heartbeat_interval
            if heartbeat_timeout is None
            else float(heartbeat_timeout)
        )
        self.respawn_limit = int(respawn_limit)
        self.respawn_backoff = float(respawn_backoff)
        self.spawn_timeout = float(spawn_timeout)
        self.poll_interval = float(poll_interval)
        self.trace = ExecutionTrace(n_workers)
        self._obs = NULL_OBS

        self._init_frame = {
            "type": "init",
            "protocol": PROTOCOL_VERSION,
            "problem": problem_spec(problem),
            "policy": dataclasses.asdict(self.policy),
            "heartbeat_interval": self.heartbeat_interval,
        }
        self._t0 = time.monotonic()
        self._next_index = 0
        self._tasks: dict[int, dict] = {}
        self._ready: collections.deque = collections.deque()
        self._cost_total = 0.0
        self._cost_count = 0
        self._closed = False
        self._last_worker_error: str | None = None

        # Telemetry counters beyond the per-slot ones.
        self._n_respawns = 0
        self._n_heartbeat_expiries = 0
        self._n_timeout_kills = 0
        self._queue_waits: list[float] = []

        self._selector = selectors.DefaultSelector()
        self._listener, self._port = listen()
        self._selector.register(self._listener, selectors.EVENT_READ, "accept")
        #: Accepted connections whose hello frame has not arrived yet.
        self._unidentified: dict[FramedConnection, float] = {}
        self._slots = [_Slot(worker_id=k) for k in range(self.n_workers)]
        #: Every Popen ever created, shared with the GC-time reaper below.
        self._all_procs: list[subprocess.Popen] = []
        self._finalizer = weakref.finalize(self, _reap, self._all_procs)
        for slot in self._slots:
            self._spawn(slot)

    def bind_observability(self, obs) -> None:
        """Attach an :class:`~repro.obs.Observability` facade (live counters:
        ``pool.submits`` / ``pool.completions`` / ``pool.task_seconds``)."""
        self._obs = obs if obs is not None else NULL_OBS

    # ------------------------------------------------------------ inspection
    @property
    def now(self) -> float:
        """Seconds since pool creation (real time)."""
        return time.monotonic() - self._t0

    @property
    def idle_count(self) -> int:
        return sum(1 for s in self._slots if s.alive and s.task is None)

    @property
    def busy_count(self) -> int:
        return len(self._tasks)

    def pending_points(self) -> np.ndarray:
        """In-flight design points in issue order; shape ``(n_busy, dim)``."""
        metas = sorted(self._tasks.values(), key=lambda m: m["index"])
        if not metas:
            return np.empty((0, _problem_dim(self.problem)))
        return np.vstack([m["x"] for m in metas])

    def task_info(self, index: int) -> dict:
        """Issue metadata for an in-flight evaluation (for the run journal)."""
        meta = self._tasks[index]
        return {
            "worker": meta["worker"],
            "issue_time": meta["issue_time"],
            "batch": meta["batch"],
            "lease": meta["lease"],
        }

    def _lease_deadline(self, issue_time: float) -> float | None:
        """Lease expiry (mean completed duration x slack); ``None`` if unleased."""
        slack = self.policy.lease_slack
        if slack is None or self._cost_count == 0:
            return None
        return issue_time + (self._cost_total / self._cost_count) * slack

    def telemetry(self) -> PoolTelemetry:
        """Live operational counters (snapshot)."""
        now = self.now
        return PoolTelemetry(
            backend="process",
            n_workers=self.n_workers,
            n_tasks=len(self.trace.records),
            n_respawns=self._n_respawns,
            n_heartbeat_expiries=self._n_heartbeat_expiries,
            n_timeout_kills=self._n_timeout_kills,
            elapsed_seconds=now,
            worker_busy_seconds=[s.busy_seconds for s in self._slots],
            worker_tasks=[s.n_tasks for s in self._slots],
            queue_wait_seconds=list(self._queue_waits),
            heartbeat_age_seconds=[
                max(now - s.last_heartbeat, 0.0) if s.state == "ready" else 0.0
                for s in self._slots
            ],
        )

    # -------------------------------------------------------------- spawning
    def _spawn(self, slot: _Slot) -> None:
        """Start (or restart) the worker process behind ``slot``."""
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        slot.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.distributed.worker",
                "--connect",
                f"127.0.0.1:{self._port}",
                "--worker-id",
                str(slot.worker_id),
            ],
            env=env,
            stdin=subprocess.DEVNULL,
        )
        self._all_procs.append(slot.proc)
        slot.state = "spawning"
        slot.conn = None
        slot.spawn_deadline = self.now + self.spawn_timeout

    def _schedule_respawn(self, slot: _Slot) -> None:
        """Back off and retry, or give the slot up after ``respawn_limit``."""
        slot.respawns += 1
        self._n_respawns += 1
        if slot.respawns > self.respawn_limit:
            slot.state = "dead"
            slot.conn = None
            return
        slot.state = "spawning"
        slot.conn = None
        slot.proc = None
        slot.respawn_at = self.now + self.respawn_backoff * slot.respawns

    def _kill_slot(self, slot: _Slot) -> None:
        """Tear down the slot's process and connection (no reassignment)."""
        if slot.conn is not None:
            try:
                self._selector.unregister(slot.conn)
            except (KeyError, ValueError):
                pass
            slot.conn.close()
            slot.conn = None
        if slot.proc is not None and slot.proc.poll() is None:
            slot.proc.kill()
            try:
                slot.proc.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover - kernel stall
                pass

    def _worker_failed(self, slot: _Slot, reason: str) -> None:
        """A worker died / went silent / wedged: orphan its task, respawn."""
        self._kill_slot(slot)
        if slot.task is not None:
            index = slot.task
            failure = EvaluationResult.failed(
                f"worker {slot.worker_id} {reason} with evaluation {index} "
                "in flight",
                status=STATUS_ORPHANED,
            )
            self._ready.append((index, failure, 1))
        self._schedule_respawn(slot)

    # ------------------------------------------------------------ handshakes
    def _accept(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except BlockingIOError:
                return
            conn = FramedConnection(sock)
            self._unidentified[conn] = self.now + self.spawn_timeout
            self._selector.register(conn, selectors.EVENT_READ, "hello")

    def _identify(self, conn: FramedConnection, hello: dict) -> None:
        """Bind a fresh connection to its slot and dispatch pending work."""
        worker_id = int(hello.get("worker_id", -1))
        self._unidentified.pop(conn, None)
        if not (0 <= worker_id < self.n_workers):
            self._selector.unregister(conn)
            conn.close()
            return
        slot = self._slots[worker_id]
        if slot.state == "ready" or not slot.alive:
            # A stale process from before a kill, or a permanently dead
            # slot coming back: this connection has no slot to serve.
            self._selector.unregister(conn)
            conn.close()
            return
        slot.conn = conn
        slot.state = "ready"
        slot.last_heartbeat = self.now
        self._selector.modify(conn, selectors.EVENT_READ, slot)
        conn.send(self._init_frame)
        if slot.task is not None:
            meta = self._tasks[slot.task]
            if meta.get("dispatch_time") is None:
                self._dispatch(slot, meta)

    def _dispatch(self, slot: _Slot, meta: dict) -> None:
        meta["dispatch_time"] = self.now
        slot.conn.send(
            {
                "type": "task",
                "index": meta["index"],
                "x": [float(v) for v in meta["x"]],
            }
        )

    # ----------------------------------------------------------- event loop
    def _service(self, timeout: float) -> None:
        """One supervision step: spawns due, socket events, liveness checks."""
        now = self.now
        for slot in self._slots:
            if slot.state == "spawning" and slot.proc is None and now >= slot.respawn_at:
                self._spawn(slot)
        try:
            events = self._selector.select(max(timeout, 0.0))
        except OSError:  # pragma: no cover - selector raced a close
            events = []
        for key, _mask in events:
            data = key.data
            if data == "accept":
                self._accept()
            elif data == "hello":
                self._read_hello(key.fileobj)
            else:
                self._read_worker(data)
        self._check_liveness()

    def _read_hello(self, conn: FramedConnection) -> None:
        try:
            frames = conn.receive_available()
        except (ConnectionClosed, ProtocolError, OSError):
            # ProtocolError covers a corrupt hello frame: an unidentifiable
            # worker is indistinguishable from a dead one.
            self._selector.unregister(conn)
            self._unidentified.pop(conn, None)
            conn.close()
            return
        for frame in frames:
            if frame.get("type") == "hello":
                self._identify(conn, frame)
                return

    def _read_worker(self, slot: _Slot) -> None:
        try:
            frames = slot.conn.receive_available()
        except ProtocolError as exc:
            # A corrupt frame leaves the stream unrecoverable: treat it as
            # that worker dying, not as a supervisor-crashing event.
            self._worker_failed(slot, f"sent a corrupt frame ({exc})")
            return
        except (ConnectionClosed, OSError):
            self._worker_failed(slot, "closed its connection")
            return
        for frame in frames:
            self._handle_frame(slot, frame)
        if slot.conn is not None and slot.conn.closed:
            self._worker_failed(slot, "closed its connection")

    def _handle_frame(self, slot: _Slot, frame: dict) -> None:
        slot.last_heartbeat = self.now
        kind = frame.get("type")
        if kind == "heartbeat":
            return
        if kind == "started":
            index = frame.get("index")
            meta = self._tasks.get(index)
            if meta is not None and meta.get("queue_wait") is None:
                meta["queue_wait"] = max(self.now - meta["queued_at"], 0.0)
                self._queue_waits.append(meta["queue_wait"])
            return
        if kind == "result":
            index = int(frame["index"])
            if index != slot.task or index not in self._tasks:
                return  # stale result of an already-expired task
            slot.respawns = 0  # a delivered result proves the worker healthy
            self._ready.append(
                (index, result_from_dict(frame["result"]),
                 int(frame.get("attempts", 1)))
            )
            return
        if kind == "error":
            self._last_worker_error = str(frame.get("message"))
            self._worker_failed(
                slot, f"reported a fatal error ({self._last_worker_error})"
            )

    def _check_liveness(self) -> None:
        now = self.now
        for conn, deadline in list(self._unidentified.items()):
            if now >= deadline:
                self._selector.unregister(conn)
                self._unidentified.pop(conn, None)
                conn.close()
        for slot in self._slots:
            if slot.state == "spawning" and slot.proc is not None:
                if slot.proc.poll() is not None:
                    self._worker_failed(
                        slot,
                        f"exited with code {slot.proc.returncode} before "
                        "its handshake",
                    )
                elif now >= slot.spawn_deadline:
                    self._worker_failed(slot, "missed its spawn deadline")
            elif slot.state == "ready":
                if now - slot.last_heartbeat > self.heartbeat_timeout:
                    self._n_heartbeat_expiries += 1
                    self._worker_failed(
                        slot,
                        f"went silent for {now - slot.last_heartbeat:.2f}s "
                        f"(heartbeat timeout {self.heartbeat_timeout:g}s)",
                    )
        for index, meta in list(self._tasks.items()):
            slot = self._slots[meta["worker"]]
            if meta["deadline"] is not None and now >= meta["deadline"]:
                if slot.task == index:
                    self._n_timeout_kills += 1
                    self._kill_slot(slot)
                    self._schedule_respawn(slot)
                self._ready.append(
                    (
                        index,
                        EvaluationResult.failed(
                            f"evaluation exceeded timeout of "
                            f"{self.policy.timeout:g}s",
                            status=STATUS_TIMEOUT,
                            cost=self.policy.timeout,
                        ),
                        1,
                    )
                )
                meta["deadline"] = None  # fire once
            elif meta["lease"] is not None and now >= meta["lease"]:
                if slot.task == index:
                    self._kill_slot(slot)
                    self._schedule_respawn(slot)
                self._ready.append(
                    (
                        index,
                        EvaluationResult.failed(
                            "worker lease expired with the evaluation still "
                            "in flight (worker presumed dead)",
                            status=STATUS_ORPHANED,
                        ),
                        1,
                    )
                )
                meta["lease"] = None  # fire once

    # ------------------------------------------------------------- operation
    def _assign(self, index: int, worker: int, x: np.ndarray, *,
                batch, issue_time: float, queued_at: float) -> int:
        slot = self._slots[worker]
        start = self.now
        meta = {
            "index": int(index),
            "worker": int(worker),
            "x": np.asarray(x, dtype=float).copy(),
            "issue_time": float(issue_time),
            "batch": batch,
            "deadline": None if self.policy.timeout is None
            else start + self.policy.timeout,
            "lease": self._lease_deadline(start),
            "queued_at": float(queued_at),
            "dispatch_time": None,
            "queue_wait": None,
        }
        self._tasks[meta["index"]] = meta
        slot.task = meta["index"]
        if slot.state == "ready":
            try:
                self._dispatch(slot, meta)
            except (ConnectionClosed, OSError):
                self._worker_failed(slot, "died during task dispatch")
        return meta["index"]

    def submit(self, x: np.ndarray, *, batch: int | None = None) -> int:
        """Dispatch ``x`` to a free worker slot; returns the index.

        Raises if every slot is busy — the driver must ``wait_next()``
        first.  A slot whose process is mid-respawn is still submittable:
        the task is queued in the slot and dispatched the moment the fresh
        worker completes its handshake (the delay shows up in the
        queue-wait telemetry, not as a protocol difference).
        """
        self._require_open()
        self._service(0.0)
        free = [s for s in self._slots if s.alive and s.task is None]
        if not free:
            if not any(s.alive for s in self._slots):
                raise RuntimeError(self._all_dead_message())
            raise RuntimeError("no idle worker; call wait_next() first")
        slot = min(free, key=lambda s: s.worker_id)
        index = self._next_index
        self._next_index += 1
        now = self.now
        index = self._assign(index, slot.worker_id, x, batch=batch,
                             issue_time=now, queued_at=now)
        self._obs.inc("pool.submits")
        return index

    def wait_next(self) -> Completion:
        """Block until an in-flight evaluation finishes, dies, or times out.

        Never raises on evaluation failure: crashed workers, heartbeat
        expiries, and timeouts come back as completions whose ``result``
        carries the failure status, after the outcome has been traced and
        the slot freed.
        """
        self._require_open()
        if not self._tasks and not self._ready:
            raise RuntimeError("nothing is running")
        while True:
            while self._ready:
                index, result, attempts = self._ready.popleft()
                if index in self._tasks:
                    return self._complete(index, result, attempts)
            if not self._tasks:
                raise RuntimeError("nothing is running")
            if not any(s.alive for s in self._slots):
                raise RuntimeError(self._all_dead_message())
            self._service(min(self.poll_interval, self._next_deadline_in()))

    def _next_deadline_in(self) -> float:
        """Seconds until the earliest supervision deadline (capped at poll)."""
        now = self.now
        horizon = now + self.poll_interval
        for slot in self._slots:
            if slot.state == "spawning":
                horizon = min(horizon, slot.spawn_deadline
                              if slot.proc is not None else slot.respawn_at)
            elif slot.state == "ready":
                horizon = min(horizon, slot.last_heartbeat + self.heartbeat_timeout)
        for meta in self._tasks.values():
            if meta["deadline"] is not None:
                horizon = min(horizon, meta["deadline"])
            if meta["lease"] is not None:
                horizon = min(horizon, meta["lease"])
        return max(horizon - now, 0.0)

    def _all_dead_message(self) -> str:
        message = (
            f"all {self.n_workers} worker processes failed permanently "
            f"(respawn limit {self.respawn_limit} exceeded)"
        )
        if self._last_worker_error:
            message += f"; last worker error: {self._last_worker_error}"
        return message

    def _complete(self, index: int, result: EvaluationResult,
                  attempts: int) -> Completion:
        """Resolve one task: trace it, free its slot, hand it back."""
        finish_time = self.now
        meta = self._tasks.pop(index)
        slot = self._slots[meta["worker"]]
        if slot.task == index:
            slot.task = None
        busy_since = meta["dispatch_time"]
        if busy_since is not None:
            slot.busy_seconds += max(finish_time - busy_since, 0.0)
        slot.n_tasks += 1
        self._cost_total += max(finish_time - meta["issue_time"], 0.0)
        self._cost_count += 1
        completion = Completion(
            index=meta["index"],
            worker=meta["worker"],
            x=meta["x"],
            result=result,
            issue_time=meta["issue_time"],
            finish_time=finish_time,
            batch=meta["batch"],
            attempts=attempts,
        )
        self.trace.add(
            EvalRecord(
                index=meta["index"],
                worker=meta["worker"],
                x=meta["x"],
                fom=result.fom,
                issue_time=meta["issue_time"],
                finish_time=finish_time,
                feasible=result.feasible,
                batch=meta["batch"],
                status=result.status,
                error=result.error,
                attempts=attempts,
            )
        )
        self._obs.inc("pool.completions")
        self._obs.observe(
            "pool.task_seconds", max(finish_time - meta["issue_time"], 0.0)
        )
        return completion

    def poll(self) -> Completion | None:
        """Non-blocking :meth:`wait_next`: a ready completion or ``None``.

        Runs one zero-timeout supervision step (accepting handshakes,
        draining sockets, expiring deadlines) and resolves at most one
        finished task.  The campaign server calls this to interleave many
        independent pools from a single thread.
        """
        self._require_open()
        if not self._tasks and not self._ready:
            return None
        self._service(0.0)
        while self._ready:
            index, result, attempts = self._ready.popleft()
            if index in self._tasks:
                return self._complete(index, result, attempts)
        return None

    def wait_all(self) -> list[Completion]:
        """Drain every outstanding evaluation (synchronous barrier)."""
        completions = []
        while self.busy_count:
            completions.append(self.wait_next())
        return completions

    # -------------------------------------------------------------- recovery
    def restore(self, *, now: float, next_index: int, records=()) -> None:
        """Rewind a fresh pool to a journaled state (crash recovery).

        Shifts the pool epoch so ``self.now`` continues from the journaled
        clock, sets the next evaluation index, and replays completed
        records into the trace (rebuilding the duration statistics behind
        leases).
        """
        if self._tasks or self.trace.records:
            raise RuntimeError("restore() requires a fresh pool")
        self._t0 = time.monotonic() - float(now)
        self._next_index = int(next_index)
        for record in records:
            self.trace.add(record)
            self._cost_total += max(record.duration, 0.0)
            self._cost_count += 1

    def restore_task(
        self,
        index: int,
        worker: int,
        x: np.ndarray,
        *,
        batch: int | None = None,
        issue_time: float | None = None,
        attempts_offset: int = 0,
    ) -> int:
        """Re-issue an orphaned in-flight evaluation at a chosen slot.

        Keeps the journaled ``issue_time`` for the trace while timeout and
        lease deadlines restart from the current real time (clocks cannot
        be rewound per-task).  ``attempts_offset`` is accepted for pool-
        protocol compatibility; the worker-side retry loop reports its own
        attempt count.
        """
        self._require_open()
        if not (0 <= worker < self.n_workers):
            raise RuntimeError(f"worker {worker} does not exist")
        slot = self._slots[worker]
        if not slot.alive:
            raise RuntimeError(f"worker {worker} is permanently dead")
        if slot.task is not None:
            raise RuntimeError(f"worker {worker} is not idle")
        if index in self._tasks:
            raise RuntimeError(f"evaluation {index} is already running")
        now = self.now
        self._assign(
            int(index), worker, x, batch=batch,
            issue_time=now if issue_time is None else float(issue_time),
            queued_at=now,
        )
        self._next_index = max(self._next_index, int(index) + 1)
        self._obs.inc("pool.submits")
        return int(index)

    # --------------------------------------------------------------- closing
    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("pool is closed")

    def close(self) -> None:
        """Shut the fleet down and reap every child process (idempotent).

        Connected workers get a ``shutdown`` frame and a short grace
        period; anything still alive after it — including wedged or frozen
        processes — is killed and waited on, so no zombies survive the
        pool, also when closing on an exception path mid-run.
        """
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            if slot.conn is not None:
                try:
                    slot.conn.send({"type": "shutdown"})
                except (ConnectionClosed, OSError):
                    pass
        deadline = time.monotonic() + 1.0
        for proc in self._all_procs:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=max(deadline - time.monotonic(), 0.0))
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        for slot in self._slots:
            if slot.conn is not None:
                try:
                    self._selector.unregister(slot.conn)
                except (KeyError, ValueError):
                    pass
                slot.conn.close()
                slot.conn = None
        for conn in list(self._unidentified):
            try:
                self._selector.unregister(conn)
            except (KeyError, ValueError):
                pass
            conn.close()
        self._unidentified.clear()
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._listener.close()
        self._selector.close()
        self._finalizer.detach()

    def shutdown(self, wait: bool = True) -> None:  # noqa: ARG002 - parity
        """Alias for :meth:`close` (thread-pool API parity)."""
        self.close()

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
