"""Retrying synchronous client for the campaign server.

One :class:`CampaignClient` is one framed-socket connection; its methods
map one-to-one onto the server verbs (see :mod:`repro.distributed.server`).
Calls are synchronous — each sends one request and blocks for its response
— which is all the drivers of tens-to-hundreds of campaigns need: the
*server* multiplexes, clients stay dumb.

    with CampaignClient(port=server.port) as client:
        cid = client.create("EasyBO-3", "branin", config={"n_init": 5,
                                                          "max_evals": 20})
        while True:
            x = client.ask(cid)[0]
            result = problem.evaluate(x)
            if client.tell(cid, x, result)["done"]:
                break

Failure semantics
-----------------
The client assumes the link can lose, delay, truncate, or corrupt frames
and that the server can restart mid-conversation (see
:mod:`repro.distributed.chaos` for the proxy that manufactures exactly
those conditions).  Every logical call carries one
:func:`~repro.distributed.protocol.make_request_id` for its whole lifetime:

* a **receive timeout** resends the same request on the same connection —
  the request frame may simply have been dropped;
* a **dead or corrupt connection** (:class:`ConnectionClosed`,
  :class:`FrameCorruptionError`, ``OSError``) redials with capped
  exponential backoff and resends;
* **responses are matched by** ``request_id``, so a late reply to a call
  that already timed out is discarded instead of being parsed as the next
  call's answer (the classic desync bug of seq-only matching);
* retries carry an ``attempt`` counter and the server's idempotent reply
  cache guarantees a retried ``create``/``ask``/``tell`` replays the
  original answer — the client never double-issues or double-counts.

An ``ok: false`` response is *not* retried: the server heard the request
and refused it; that answer would not change.
"""

from __future__ import annotations

import itertools
import socket
import time

import numpy as np

from repro.core.problem import EvaluationResult
from repro.distributed.protocol import make_request_id, result_to_dict
from repro.distributed.transport import (
    ConnectionClosed,
    FrameCorruptionError,
    connect,
)

__all__ = ["CampaignClient", "CampaignServerError", "CampaignRetriesExhausted"]

#: Verbs that deserve more (or less) patience than the blanket timeout:
#: ``create`` may spin up a worker pool, ``resume`` replays a whole journal.
DEFAULT_VERB_TIMEOUTS = {"create": 60.0, "resume": 60.0}


class CampaignServerError(RuntimeError):
    """The server refused or failed a request (its message is preserved)."""


class CampaignRetriesExhausted(CampaignServerError):
    """Every attempt of one logical call failed; the last cause is kept."""


class CampaignClient:
    """Synchronous RPC client: one connection, retried idempotent calls.

    Parameters
    ----------
    timeout:
        Blanket per-attempt receive timeout in seconds (``None`` blocks
        forever, disabling timeout-driven resends).
    retries:
        Extra attempts per logical call after the first (0 restores the
        fail-fast client).
    backoff / backoff_max:
        Reconnect delay after a dead connection: ``backoff * 2**attempt``
        seconds, capped at ``backoff_max`` — long enough for a restarted
        server to come back, short enough to not stall a campaign.
    verb_timeouts:
        Per-verb overrides merged over :data:`DEFAULT_VERB_TIMEOUTS`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float | None = 30.0, retries: int = 5,
                 backoff: float = 0.05, backoff_max: float = 2.0,
                 verb_timeouts: dict | None = None):
        self.host = host
        self.port = port
        self._timeout = timeout
        self._retries = max(int(retries), 0)
        self._backoff = float(backoff)
        self._backoff_max = float(backoff_max)
        self._verb_timeouts = dict(DEFAULT_VERB_TIMEOUTS)
        if verb_timeouts:
            self._verb_timeouts.update(verb_timeouts)
        self._seq = itertools.count()
        #: Telemetry for tests and the chaos bench.
        self.n_retries = 0
        self.n_reconnects = 0
        self._conn = connect(host, port, timeout=timeout)

    # ------------------------------------------------------------------ RPC
    def call(self, verb: str, **payload) -> dict:
        """One logical request: send, await its reply, retry through faults."""
        request = {
            "verb": verb,
            "seq": next(self._seq),
            "request_id": make_request_id(),
            **payload,
        }
        timeout = self._verb_timeouts.get(verb, self._timeout)
        last_cause = "no attempt made"
        for attempt in range(self._retries + 1):
            if attempt:
                self.n_retries += 1
                request["attempt"] = attempt
            try:
                if self._conn is None or self._conn.closed:
                    self._redial(attempt)
                self._conn.send(request)
                response = self._await_reply(request, timeout)
            except (socket.timeout, TimeoutError):
                # The request (or its reply) may be sitting in a dropped
                # frame; the connection itself still looks healthy, so
                # resend on it rather than churning through reconnects.
                last_cause = f"timed out after {timeout}s"
                continue
            except (ConnectionClosed, FrameCorruptionError, OSError) as exc:
                last_cause = f"{type(exc).__name__}: {exc}"
                self._teardown()
                self._sleep_backoff(attempt)
                continue
            if not response.get("ok"):
                raise CampaignServerError(str(response.get("error")))
            return response
        raise CampaignRetriesExhausted(
            f"{verb!r} failed after {self._retries + 1} attempts; "
            f"last cause: {last_cause}"
        )

    def _await_reply(self, request: dict, timeout: float | None) -> dict:
        """Receive until the reply to *this* request arrives.

        The deadline covers the whole wait, not each frame: a stream of
        stale frames cannot keep a dead call alive.  Frames answering other
        request ids — late replies to calls that already timed out — are
        discarded, never returned.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise socket.timeout(f"no reply within {timeout}s")
            response = self._conn.recv(timeout=remaining)
            if response is None:
                raise ConnectionClosed("server closed the connection")
            echoed = response.get("request_id")
            if echoed is not None:
                if echoed == request["request_id"]:
                    return response
                continue  # stale reply to an earlier, abandoned call
            if response.get("seq") == request["seq"]:
                return response  # request_id-less server (compat path)

    # ---------------------------------------------------------- connection
    def _teardown(self) -> None:
        if self._conn is not None:
            self._conn.close()
        self._conn = None

    def _sleep_backoff(self, attempt: int) -> None:
        time.sleep(min(self._backoff * (2 ** attempt), self._backoff_max))

    def _redial(self, attempt: int) -> None:
        self._conn = connect(self.host, self.port, timeout=self._timeout)
        self.n_reconnects += 1

    # ----------------------------------------------------------------- verbs
    def ping(self) -> dict:
        return self.call("ping")

    def create(self, label: str, problem: str, *, config: dict | None = None,
               evaluate: bool = False, n_workers: int | None = None,
               pool: str = "virtual", pending_policy: str | None = None) -> str:
        """Create a campaign; returns its id.

        ``problem`` is a benchmark name the server resolves through the
        crash-recovery registry.  ``evaluate=True`` asks the server to lease
        workers and run the evaluations itself.  ``pending_policy`` picks
        the asynchronous pending-point policy (``"hallucinate"`` / ``"lp"``
        / ``"pessimistic"`` / ``"none"``, see ``docs/pending_policies.md``)
        — shorthand for putting it in ``config``.
        """
        payload: dict = {"label": label, "problem": problem,
                         "config": config or {}}
        if pending_policy is not None:
            payload["pending_policy"] = pending_policy
        if evaluate:
            payload.update(evaluate=True, pool=pool)
            if n_workers is not None:
                payload["n_workers"] = int(n_workers)
        return self.call("create", **payload)["campaign"]

    def ask(self, campaign: str, n: int | None = None) -> list[np.ndarray]:
        """Next point(s) to evaluate; always a list, even for ``n=None``."""
        payload = {"campaign": campaign}
        if n is not None:
            payload["n"] = int(n)
        points = self.call("ask", **payload)["points"]
        return [np.asarray(p, dtype=float) for p in points]

    def tell(self, campaign: str, x, result) -> dict:
        """Report one evaluation; returns ``{"action": ..., "done": ...}``.

        ``result`` may be an :class:`EvaluationResult` or an already
        serialized dict.
        """
        if isinstance(result, EvaluationResult):
            result = result_to_dict(result)
        return self.call(
            "tell", campaign=campaign,
            x=[float(v) for v in np.asarray(x, dtype=float).ravel()],
            result=result,
        )

    def status(self, campaign: str) -> dict:
        return self.call("status", campaign=campaign)["status"]

    def list(self) -> list[dict]:
        return self.call("list")["campaigns"]

    def metrics(self) -> dict:
        return self.call("metrics")["metrics"]

    def suspend(self, campaign: str) -> str:
        return self.call("suspend", campaign=campaign)["state"]

    def resume(self, campaign: str) -> dict:
        """Rebuild a suspended/crashed campaign from its server-side journal."""
        return self.call("resume", campaign=campaign)

    def close_campaign(self, campaign: str) -> str:
        return self.call("close", campaign=campaign)["state"]

    def stop_server(self) -> None:
        self.call("stop")

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "CampaignClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
