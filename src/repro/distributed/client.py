"""Small synchronous client for the campaign server.

One :class:`CampaignClient` is one framed-socket connection; its methods
map one-to-one onto the server verbs (see :mod:`repro.distributed.server`).
Calls are synchronous — each sends one request and blocks for the matching
``seq`` response — which is all the drivers of tens-to-hundreds of
campaigns need: the *server* multiplexes, clients stay dumb.

    with CampaignClient(port=server.port) as client:
        cid = client.create("EasyBO-3", "branin", config={"n_init": 5,
                                                          "max_evals": 20})
        while True:
            x = client.ask(cid)[0]
            result = problem.evaluate(x)
            if client.tell(cid, x, result)["done"]:
                break
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.problem import EvaluationResult
from repro.distributed.protocol import result_to_dict
from repro.distributed.transport import connect

__all__ = ["CampaignClient", "CampaignServerError"]


class CampaignServerError(RuntimeError):
    """The server refused or failed a request (its message is preserved)."""


class CampaignClient:
    """Synchronous RPC client; one connection, sequential seq-correlated calls."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float | None = 30.0):
        self._conn = connect(host, port, timeout=timeout)
        self._timeout = timeout
        self._seq = itertools.count()

    def call(self, verb: str, **payload) -> dict:
        """Send one request; block for its response; raise on ``ok: false``."""
        seq = next(self._seq)
        self._conn.send({"verb": verb, "seq": seq, **payload})
        while True:
            response = self._conn.recv(timeout=self._timeout)
            if response is None:
                raise CampaignServerError("server closed the connection")
            if response.get("seq") != seq:
                continue  # a stale response from a pipelined/aborted call
            if not response.get("ok"):
                raise CampaignServerError(str(response.get("error")))
            return response

    # ----------------------------------------------------------------- verbs
    def ping(self) -> dict:
        return self.call("ping")

    def create(self, label: str, problem: str, *, config: dict | None = None,
               evaluate: bool = False, n_workers: int | None = None,
               pool: str = "virtual", pending_policy: str | None = None) -> str:
        """Create a campaign; returns its id.

        ``problem`` is a benchmark name the server resolves through the
        crash-recovery registry.  ``evaluate=True`` asks the server to lease
        workers and run the evaluations itself.  ``pending_policy`` picks
        the asynchronous pending-point policy (``"hallucinate"`` / ``"lp"``
        / ``"pessimistic"`` / ``"none"``, see ``docs/pending_policies.md``)
        — shorthand for putting it in ``config``.
        """
        payload: dict = {"label": label, "problem": problem,
                         "config": config or {}}
        if pending_policy is not None:
            payload["pending_policy"] = pending_policy
        if evaluate:
            payload.update(evaluate=True, pool=pool)
            if n_workers is not None:
                payload["n_workers"] = int(n_workers)
        return self.call("create", **payload)["campaign"]

    def ask(self, campaign: str, n: int | None = None) -> list[np.ndarray]:
        """Next point(s) to evaluate; always a list, even for ``n=None``."""
        payload = {"campaign": campaign}
        if n is not None:
            payload["n"] = int(n)
        points = self.call("ask", **payload)["points"]
        return [np.asarray(p, dtype=float) for p in points]

    def tell(self, campaign: str, x, result) -> dict:
        """Report one evaluation; returns ``{"action": ..., "done": ...}``.

        ``result`` may be an :class:`EvaluationResult` or an already
        serialized dict.
        """
        if isinstance(result, EvaluationResult):
            result = result_to_dict(result)
        return self.call(
            "tell", campaign=campaign,
            x=[float(v) for v in np.asarray(x, dtype=float).ravel()],
            result=result,
        )

    def status(self, campaign: str) -> dict:
        return self.call("status", campaign=campaign)["status"]

    def list(self) -> list[dict]:
        return self.call("list")["campaigns"]

    def metrics(self) -> dict:
        return self.call("metrics")["metrics"]

    def suspend(self, campaign: str) -> str:
        return self.call("suspend", campaign=campaign)["state"]

    def resume(self, campaign: str) -> dict:
        """Rebuild a suspended/crashed campaign from its server-side journal."""
        return self.call("resume", campaign=campaign)

    def close_campaign(self, campaign: str) -> str:
        return self.call("close", campaign=campaign)["state"]

    def stop_server(self) -> None:
        self.call("stop")

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
