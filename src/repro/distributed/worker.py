"""Worker daemon: ``python -m repro.distributed.worker --connect HOST:PORT``.

One worker process hosts one evaluation slot.  On startup it dials the
supervisor, identifies itself (``hello``), receives the problem spec and
failure policy (``init``), and then loops: receive a ``task``, evaluate it
under the shared retry loop (:func:`repro.core.faults.run_with_policy` —
crashes and NaN outputs are contained and retried *inside* the worker, so
only genuine process death costs a respawn), and send the ``result`` back.

A background thread emits a ``heartbeat`` frame every
``heartbeat_interval`` seconds for the whole life of the process — also in
the middle of a long evaluation.  The supervisor therefore distinguishes a
*slow* worker (heartbeats flowing) from a *dead or frozen* one (silence),
and only the latter is expired into the orphan path.

The worker's lifetime is tied to its supervisor: any failure to read from
or write to the socket — including the supervisor process dying — ends the
daemon, so an abandoned fleet reaps itself instead of leaving zombies.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time

import numpy as np

from repro.core.faults import FailurePolicy, run_with_policy
from repro.distributed.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    load_problem,
    result_to_dict,
)
from repro.distributed.transport import ConnectionClosed, FramedConnection, connect

__all__ = ["run_worker", "main"]


class _Heartbeat(threading.Thread):
    """Emit heartbeat frames until stopped; die with the supervisor."""

    def __init__(self, conn: FramedConnection, send_lock: threading.Lock,
                 worker_id: int, interval: float):
        super().__init__(daemon=True, name=f"heartbeat-{worker_id}")
        self.conn = conn
        self.send_lock = send_lock
        self.worker_id = worker_id
        self.interval = interval
        self.busy_index: int | None = None
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                with self.send_lock:
                    self.conn.send(
                        {
                            "type": "heartbeat",
                            "worker_id": self.worker_id,
                            "index": self.busy_index,
                        }
                    )
            except (ConnectionClosed, OSError):
                # Supervisor is gone.  The main thread may be deep inside a
                # long evaluation; exit the whole process rather than letting
                # an orphaned simulation burn CPU for nobody.
                os._exit(0)

    def stop(self) -> None:
        self._stop.set()


def run_worker(host: str, port: int, worker_id: int) -> int:
    """Daemon body; returns a process exit code."""
    conn = connect(host, port)
    send_lock = threading.Lock()
    conn.send({"type": "hello", "worker_id": worker_id, "pid": os.getpid(),
               "protocol": PROTOCOL_VERSION})
    init = conn.recv()
    if init is None:
        return 0  # supervisor vanished before the handshake completed
    if init.get("type") != "init":
        raise ProtocolError(f"expected init, got {init.get('type')!r}")
    if init.get("protocol") != PROTOCOL_VERSION:
        conn.send({"type": "error",
                   "message": f"protocol mismatch: supervisor "
                              f"{init.get('protocol')}, worker {PROTOCOL_VERSION}"})
        return 1
    try:
        problem = load_problem(init["problem"])
        policy = FailurePolicy(**init.get("policy", {}))
    except Exception as exc:  # noqa: BLE001 — report load failures, don't die silently
        with send_lock:
            conn.send({"type": "error",
                       "message": f"{type(exc).__name__}: {exc}"})
        return 1

    heartbeat = _Heartbeat(conn, send_lock, worker_id,
                           float(init.get("heartbeat_interval", 0.5)))
    heartbeat.start()
    try:
        while True:
            try:
                message = conn.recv()
            except (ConnectionClosed, OSError):
                return 0
            if message is None or message.get("type") == "shutdown":
                return 0
            if message.get("type") != "task":
                continue  # future-proofing: ignore unknown frames
            index = int(message["index"])
            heartbeat.busy_index = index
            with send_lock:
                conn.send({"type": "started", "index": index,
                           "worker_id": worker_id})
            x = np.asarray(message["x"], dtype=float)
            result, attempts, elapsed = run_with_policy(
                problem, x, policy, sleep=time.sleep
            )
            heartbeat.busy_index = None
            with send_lock:
                conn.send(
                    {
                        "type": "result",
                        "index": index,
                        "worker_id": worker_id,
                        "result": result_to_dict(result),
                        "attempts": int(attempts),
                        "elapsed": float(elapsed),
                    }
                )
    finally:
        heartbeat.stop()
        conn.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.distributed.worker", description=__doc__
    )
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="supervisor RPC endpoint")
    parser.add_argument("--worker-id", type=int, required=True)
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    try:
        return run_worker(host or "127.0.0.1", int(port), args.worker_id)
    except (ConnectionClosed, ConnectionError, OSError):
        return 0  # supervisor gone; a clean death, not an error


if __name__ == "__main__":
    sys.exit(main())
