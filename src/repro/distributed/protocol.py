"""Wire protocol of the process-worker RPC.

Supervisor and workers exchange JSON records framed exactly like the run
journal (``J1 <length> <crc32> <payload>\\n`` — see
:mod:`repro.core.journal`): the length+CRC framing turns a byte stream into
self-validating messages, so a half-written frame from a dying worker is
detected instead of being parsed as garbage.  This module defines the
message vocabulary and the problem *spec* — the portable description a
worker daemon uses to rebuild the evaluation problem in its own process.

Message types
-------------
``hello``      worker -> supervisor, once per connection: worker id + pid.
``init``       supervisor -> worker: problem spec, failure policy,
               heartbeat interval.
``task``       supervisor -> worker: evaluation index + design point.
``started``    worker -> supervisor: evaluation has begun (queue-wait
               telemetry).
``heartbeat``  worker -> supervisor, every ``heartbeat_interval`` seconds
               from a background thread — flows even while an evaluation
               is grinding, so a *silent* worker is a dead or frozen one.
``result``     worker -> supervisor: the evaluation outcome (never an
               exception — the worker runs the shared retry loop
               :func:`repro.core.faults.run_with_policy`).
``error``      worker -> supervisor: fatal worker-side failure (e.g. the
               problem spec would not load).
``shutdown``   supervisor -> worker: exit the daemon loop.

Problem specs
-------------
``problem_spec`` prefers pickling the problem instance (full fidelity:
custom cost models, fault-injection state, wrapped problems) and falls back
to the by-name registry used by crash recovery
(:func:`repro.core.recovery.resolve_problem`) for problems that cannot be
pickled, such as the synthetic benchmarks built around closures.  Named
specs rebuild the problem with constructor defaults — pass a picklable
problem when non-default construction matters.

Idempotent requests
-------------------
The campaign RPC (:mod:`repro.distributed.server` /
:mod:`~repro.distributed.client`) additionally tags every request with a
client-generated ``request_id`` (:func:`make_request_id`) and an ``attempt``
counter.  The server keeps a bounded per-campaign reply cache keyed by
``request_id`` — journaled alongside the campaign events, so it survives a
server restart — and a retried state-changing verb (``create`` / ``ask`` /
``tell``) returns the *original* reply instead of re-executing: a dropped
response frame never double-issues a point or double-counts an observation.
Replayed responses carry ``"replayed": true``.
"""

from __future__ import annotations

import base64
import pickle
import uuid

import numpy as np

from repro.core.problem import EvaluationResult

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "make_request_id",
    "problem_spec",
    "load_problem",
    "result_to_dict",
    "result_from_dict",
]

#: Bumped when the message vocabulary changes incompatibly; the supervisor
#: stamps it into ``init`` and workers refuse a mismatch.
PROTOCOL_VERSION = 1


class ProtocolError(RuntimeError):
    """A malformed or out-of-order message on a worker connection."""


def make_request_id() -> str:
    """Globally unique id for one logical request (stable across retries).

    Uniqueness must hold across client restarts — a resurrected client must
    never collide with an id the server already cached — so this is a UUID,
    not a counter.  The id identifies the *logical* call: every retry of the
    same call resends the same id with a bumped ``attempt``.
    """
    return uuid.uuid4().hex


def problem_spec(problem) -> dict:
    """Portable description of ``problem`` for a worker process.

    Prefers a pickle spec (exact state transfer).  Classes defined in
    ``__main__`` pickle by reference to a module the worker does not have,
    so those — and anything else unpicklable — fall back to a named spec
    resolved through the crash-recovery problem registry.
    """
    pickled = None
    if type(problem).__module__ != "__main__":
        try:
            pickled = pickle.dumps(problem)
        except Exception:  # noqa: BLE001 — closures et al.; fall through to named
            pickled = None
    if pickled is not None:
        return {
            "kind": "pickle",
            "data": base64.b64encode(pickled).decode("ascii"),
            "name": getattr(problem, "name", "problem"),
        }
    name = getattr(problem, "name", None)
    if name:
        from repro.core.recovery import resolve_problem

        try:
            rebuilt = resolve_problem(name)
        except Exception:  # noqa: BLE001 — registry probing only
            rebuilt = None
        if rebuilt is not None and np.array_equal(rebuilt.bounds, problem.bounds):
            return {"kind": "named", "name": str(name)}
    raise ValueError(
        f"problem {getattr(problem, 'name', problem)!r} is neither picklable "
        "nor resolvable by name; process workers cannot load it"
    )


def load_problem(spec: dict):
    """Rebuild a problem from a :func:`problem_spec` dict (worker side)."""
    kind = spec.get("kind")
    if kind == "pickle":
        return pickle.loads(base64.b64decode(spec["data"]))
    if kind == "named":
        from repro.core.recovery import resolve_problem

        return resolve_problem(spec["name"])
    raise ProtocolError(f"unknown problem spec kind {kind!r}")


def result_to_dict(result: EvaluationResult) -> dict:
    """JSON-framable form of an evaluation outcome.

    Non-finite floats survive the trip: the journal framing serializes with
    Python's JSON dialect (``NaN``/``Infinity`` tokens), which round-trips
    symmetrically between supervisor and worker.
    """
    return {
        "fom": float(result.fom),
        "metrics": {k: float(v) for k, v in result.metrics.items()},
        "cost": float(result.cost),
        "feasible": bool(result.feasible),
        "status": result.status,
        "error": result.error,
    }


def result_from_dict(data: dict) -> EvaluationResult:
    """Inverse of :func:`result_to_dict` (supervisor side)."""
    return EvaluationResult(
        fom=float(data["fom"]),
        metrics=dict(data.get("metrics", {})),
        cost=float(data.get("cost", 0.0)),
        feasible=bool(data.get("feasible", True)),
        status=data.get("status", "ok"),
        error=data.get("error"),
    )
