"""Random-number-generator plumbing.

Every stochastic component in this library accepts either a seed or a
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps the
behaviour uniform: passing ``None`` yields a fresh nondeterministic generator,
passing an integer yields a deterministic one, and passing a generator uses it
as-is (so callers can share a stream).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_generator",
    "spawn_generators",
    "rng_state_to_dict",
    "set_rng_state",
    "generator_from_state",
]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a deterministic stream, or an
        existing generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | np.random.Generator | None, count: int
) -> list[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Children are derived through :class:`numpy.random.SeedSequence` spawning,
    so repeated runs with the same ``seed`` produce the same family of streams
    while the streams themselves do not overlap.  Used to give each repetition
    of an experiment (or each parallel worker) its own reproducible stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = as_generator(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def _jsonify(value):
    """Recursively coerce a bit-generator state dict into JSON-safe types.

    PCG64 states are plain Python big ints already; other bit generators (e.g.
    MT19937) carry numpy arrays and numpy scalars, which ``json`` rejects.
    """
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def rng_state_to_dict(rng: np.random.Generator) -> dict:
    """Snapshot the exact state of ``rng`` as a JSON-serializable dict.

    The snapshot round-trips bit-for-bit through :func:`set_rng_state`: a
    generator restored from it produces the identical stream of draws the
    original would have produced.
    """
    return _jsonify(rng.bit_generator.state)


def set_rng_state(rng: np.random.Generator, state: dict) -> np.random.Generator:
    """Restore a state snapshot from :func:`rng_state_to_dict` in place."""
    kind = state.get("bit_generator")
    current = type(rng.bit_generator).__name__
    if kind is not None and kind != current:
        raise ValueError(
            f"state was captured from a {kind!r} bit generator but the "
            f"target uses {current!r}"
        )
    rng.bit_generator.state = state
    return rng


def generator_from_state(state: dict) -> np.random.Generator:
    """Build a fresh generator positioned at a saved state snapshot."""
    return set_rng_state(np.random.default_rng(0), state)
