"""Random-number-generator plumbing.

Every stochastic component in this library accepts either a seed or a
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps the
behaviour uniform: passing ``None`` yields a fresh nondeterministic generator,
passing an integer yields a deterministic one, and passing a generator uses it
as-is (so callers can share a stream).
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_generators"]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a deterministic stream, or an
        existing generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | np.random.Generator | None, count: int
) -> list[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Children are derived through :class:`numpy.random.SeedSequence` spawning,
    so repeated runs with the same ``seed`` produce the same family of streams
    while the streams themselves do not overlap.  Used to give each repetition
    of an experiment (or each parallel worker) its own reproducible stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = as_generator(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
