"""Plain-text table and duration formatting for the benchmark harness.

The paper reports simulation time as ``216h40m51s``-style strings and results
in Best/Worst/Mean/Std tables; these helpers render the same layout so the
bench output can be compared against the paper side by side.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_duration", "format_table"]


def format_duration(seconds: float) -> str:
    """Render seconds in the paper's ``XhYmZs`` notation.

    ``>= 1 hour`` -> ``216h40m51s``; ``>= 1 minute`` -> ``21m19s``;
    otherwise ``42s``.  Fractional seconds are rounded to the nearest second,
    matching the table granularity in the paper.
    """
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    total = int(round(seconds))
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    if hours:
        return f"{hours}h{minutes}m{secs}s"
    if minutes:
        return f"{minutes}m{secs}s"
    return f"{secs}s"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table.

    Every cell is stringified; columns are left-aligned for text and
    right-aligned for numbers, which matches how the paper's tables read.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    ncols = len(headers)
    for i, row in enumerate(str_rows):
        if len(row) != ncols:
            raise ValueError(f"row {i} has {len(row)} cells, expected {ncols}")
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(ncols)
    ]
    numeric = [
        bool(str_rows) and all(_is_numberish(r[c]) for r in str_rows) for c in range(ncols)
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for c, cell in enumerate(cells):
            parts.append(cell.rjust(widths[c]) if numeric[c] else cell.ljust(widths[c]))
        return "| " + " | ".join(parts) + " |"

    sep = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _is_numberish(s: str) -> bool:
    try:
        float(s)
    except ValueError:
        return False
    return True
