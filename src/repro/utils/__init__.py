"""Shared utilities: RNG plumbing, validation helpers, table formatting."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.tables import format_duration, format_table
from repro.utils.validation import (
    check_bounds,
    check_finite,
    check_matrix,
    check_vector,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "check_bounds",
    "check_finite",
    "check_matrix",
    "check_vector",
    "format_duration",
    "format_table",
]
