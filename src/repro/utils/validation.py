"""Input-validation helpers shared across the library.

These functions normalize user input into well-shaped ``float64`` arrays and
raise uniform, descriptive errors.  They are deliberately strict: silent
broadcasting of mis-shaped design matrices is a classic source of wrong-answer
bugs in optimization code.
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_vector", "check_matrix", "check_bounds", "check_finite"]


def check_vector(x, name: str = "x", size: int | None = None) -> np.ndarray:
    """Coerce ``x`` to a 1-D float array, optionally enforcing its length."""
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if size is not None and arr.shape[0] != size:
        raise ValueError(f"{name} must have length {size}, got {arr.shape[0]}")
    return arr


def check_matrix(x, name: str = "X", cols: int | None = None) -> np.ndarray:
    """Coerce ``x`` to a 2-D float array, optionally enforcing its width.

    A 1-D input of length ``cols`` is promoted to a single-row matrix, which
    lets callers pass a single design point where a batch is expected.
    """
    arr = np.asarray(x, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if cols is not None and arr.shape[1] != cols:
        raise ValueError(f"{name} must have {cols} columns, got {arr.shape[1]}")
    return arr


def check_bounds(bounds, dim: int | None = None) -> np.ndarray:
    """Validate box bounds and return them as a ``(d, 2)`` float array."""
    arr = np.asarray(bounds, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"bounds must have shape (d, 2), got {arr.shape}")
    if dim is not None and arr.shape[0] != dim:
        raise ValueError(f"bounds must have {dim} rows, got {arr.shape[0]}")
    if not np.all(np.isfinite(arr)):
        raise ValueError("bounds must be finite")
    if np.any(arr[:, 0] >= arr[:, 1]):
        bad = int(np.argmax(arr[:, 0] >= arr[:, 1]))
        raise ValueError(
            f"lower bound must be < upper bound in every dimension; "
            f"dimension {bad} has [{arr[bad, 0]}, {arr[bad, 1]}]"
        )
    return arr


def check_finite(arr: np.ndarray, name: str = "array") -> np.ndarray:
    """Raise if ``arr`` contains NaN or infinity; return it unchanged."""
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr
