"""Minimal discrete-event machinery.

A stable priority queue of timestamped events.  Ties are broken by insertion
order, which makes every simulation in this package fully deterministic.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Any

__all__ = ["Event", "EventQueue"]


@dataclasses.dataclass(frozen=True)
class Event:
    """A payload scheduled at a simulated time."""

    time: float
    payload: Any


class EventQueue:
    """Stable min-heap of :class:`Event`."""

    def __init__(self):
        self._heap: list[tuple[float, int, Any]] = []
        self._counter = itertools.count()

    def push(self, time: float, payload) -> None:
        """Schedule ``payload`` at ``time`` (must be finite)."""
        time = float(time)
        if not (time == time and abs(time) != float("inf")):  # NaN/inf guard
            raise ValueError(f"event time must be finite, got {time}")
        heapq.heappush(self._heap, (time, next(self._counter), payload))

    def pop(self) -> Event:
        """Remove and return the earliest event (FIFO among ties)."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        time, _, payload = heapq.heappop(self._heap)
        return Event(time, payload)

    def peek_time(self) -> float:
        """Time of the earliest event without removing it."""
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
