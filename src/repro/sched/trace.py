"""Execution traces: what ran where, when, and how well.

Every scheduler (virtual or real) produces an :class:`ExecutionTrace`, from
which the benches derive all of the paper's wall-clock quantities: total
simulation time (Table I/II "Time" columns), best-FOM-versus-time curves
(Figs. 4 and 6), worker utilization, and Gantt rows (Fig. 1).
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["EvalRecord", "ExecutionTrace", "PoolTelemetry", "SurrogateStats"]


@dataclasses.dataclass
class SurrogateStats:
    """Counters for the surrogate's linear-algebra work during one run.

    ``n_full_fits`` counts ML-II hyperparameter fits (each is many internal
    factorizations inside L-BFGS); ``n_refactorizations`` counts from-scratch
    O(n^3) rebuilds at frozen hyperparameters (the "full" update mode and
    every PD-loss fallback); ``n_incremental_updates`` counts rank-k factor
    appends; ``n_fallbacks`` counts automatic falls from the incremental to
    the full path; ``n_mode_switches`` counts exact<->sparse posterior
    transitions (the ``surrogate="auto"`` threshold crossing); the
    hallucination counters split pending-point posteriors
    between the factored :class:`~repro.core.surrogate.HallucinatedView` and
    the rebuild-per-point legacy path.  ``refit_seconds`` and
    ``hallucination_seconds`` hold per-event wall-clock seconds.
    """

    n_refits: int = 0
    n_full_fits: int = 0
    n_refactorizations: int = 0
    n_incremental_updates: int = 0
    n_fallbacks: int = 0
    n_mode_switches: int = 0
    n_hallucinated_views: int = 0
    n_hallucinated_rebuilds: int = 0
    refit_seconds: list = dataclasses.field(default_factory=list)
    hallucination_seconds: list = dataclasses.field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return float(sum(self.refit_seconds) + sum(self.hallucination_seconds))

    @property
    def mean_event_seconds(self) -> float:
        """Mean surrogate cost per refit event (hallucination included)."""
        if not self.refit_seconds:
            return 0.0
        return self.total_seconds / len(self.refit_seconds)

    def as_dict(self) -> dict:
        """JSON-serializable representation (used by persistence v3)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SurrogateStats":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclasses.dataclass
class PoolTelemetry:
    """Operational counters for one evaluation pool over one run.

    Every pool backend reports the same schema so runs on the virtual clock,
    the thread pool, and the process pool compare side by side:

    ``worker_busy_seconds`` / ``worker_tasks`` are per-worker (index =
    worker id); ``queue_wait_seconds`` holds one entry per dispatched task —
    the delay between ``submit()`` and the worker actually starting the
    evaluation (socket latency plus any wait for a respawning process);
    ``heartbeat_age_seconds`` is the per-worker time since the last
    heartbeat frame at snapshot time (empty for backends without
    heartbeats).  ``n_respawns`` / ``n_heartbeat_expiries`` /
    ``n_timeout_kills`` only move on the process backend, where a worker is
    a real OS process that can die, go silent, or wedge.
    """

    backend: str = "virtual"
    n_workers: int = 0
    n_tasks: int = 0
    n_respawns: int = 0
    n_heartbeat_expiries: int = 0
    n_timeout_kills: int = 0
    elapsed_seconds: float = 0.0
    worker_busy_seconds: list = dataclasses.field(default_factory=list)
    worker_tasks: list = dataclasses.field(default_factory=list)
    queue_wait_seconds: list = dataclasses.field(default_factory=list)
    heartbeat_age_seconds: list = dataclasses.field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Busy fraction of ``n_workers * elapsed_seconds`` (1.0 = no idle)."""
        if self.n_workers <= 0 or self.elapsed_seconds <= 0:
            return 1.0
        busy = float(sum(self.worker_busy_seconds))
        return busy / (self.n_workers * self.elapsed_seconds)

    @property
    def mean_queue_wait(self) -> float:
        if not self.queue_wait_seconds:
            return 0.0
        return float(sum(self.queue_wait_seconds)) / len(self.queue_wait_seconds)

    @property
    def max_heartbeat_age(self) -> float:
        if not self.heartbeat_age_seconds:
            return 0.0
        return float(max(self.heartbeat_age_seconds))

    def summary_line(self) -> str:
        """One-line operator view (printed by the ``summary`` CLI verb)."""
        parts = [
            f"{self.backend} pool, {self.n_workers} workers",
            f"{self.n_tasks} tasks",
            f"{self.utilization:.0%} utilization",
        ]
        if self.queue_wait_seconds:
            parts.append(f"mean queue wait {self.mean_queue_wait * 1e3:.1f} ms")
        if self.heartbeat_age_seconds:
            parts.append(f"max heartbeat age {self.max_heartbeat_age:.2f} s")
        if self.n_respawns:
            parts.append(f"{self.n_respawns} respawns")
        if self.n_heartbeat_expiries:
            parts.append(f"{self.n_heartbeat_expiries} heartbeat expiries")
        if self.n_timeout_kills:
            parts.append(f"{self.n_timeout_kills} timeout kills")
        return ", ".join(parts)

    def as_dict(self) -> dict:
        """JSON-serializable representation (used by persistence v5)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "PoolTelemetry":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def from_trace(cls, trace: "ExecutionTrace", *, backend: str,
                   elapsed: float | None = None) -> "PoolTelemetry":
        """Derive the trace-computable subset (virtual/thread backends)."""
        busy = [0.0] * trace.n_workers
        tasks = [0] * trace.n_workers
        for record in trace.records:
            busy[record.worker] += max(record.duration, 0.0)
            tasks[record.worker] += 1
        return cls(
            backend=backend,
            n_workers=trace.n_workers,
            n_tasks=len(trace.records),
            elapsed_seconds=float(trace.makespan if elapsed is None else elapsed),
            worker_busy_seconds=busy,
            worker_tasks=tasks,
        )


@dataclasses.dataclass
class EvalRecord:
    """One completed evaluation (successful or failed).

    Failed evaluations (``status != "ok"``) carry a NaN ``fom``; every
    derived statistic that consumes FOMs filters them out, while time-based
    statistics (makespan, utilization, Gantt rows) keep them — the worker
    was genuinely occupied.
    """

    index: int
    worker: int
    x: np.ndarray
    fom: float
    issue_time: float
    finish_time: float
    feasible: bool = True
    batch: int | None = None
    status: str = "ok"
    error: str | None = None
    attempts: int = 1

    @property
    def duration(self) -> float:
        return self.finish_time - self.issue_time

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def __post_init__(self):
        if self.finish_time < self.issue_time:
            raise ValueError(
                f"finish_time {self.finish_time} earlier than issue {self.issue_time}"
            )
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")

    def as_dict(self) -> dict:
        """JSON-serializable form shared by persistence and the run journal.

        A non-finite ``fom`` (failed evaluation) is stored as ``None`` since
        JSON has no NaN.
        """
        return {
            "index": int(self.index),
            "worker": int(self.worker),
            "x": [float(v) for v in np.asarray(self.x).ravel()],
            "fom": float(self.fom) if np.isfinite(self.fom) else None,
            "issue_time": float(self.issue_time),
            "finish_time": float(self.finish_time),
            "feasible": bool(self.feasible),
            "batch": None if self.batch is None else int(self.batch),
            "status": self.status,
            "error": self.error,
            "attempts": int(self.attempts),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EvalRecord":
        fom = data.get("fom")
        return cls(
            index=int(data["index"]),
            worker=int(data["worker"]),
            x=np.asarray(data["x"], dtype=float),
            fom=float("nan") if fom is None else float(fom),
            issue_time=float(data["issue_time"]),
            finish_time=float(data["finish_time"]),
            feasible=bool(data.get("feasible", True)),
            batch=data.get("batch"),
            status=data.get("status", "ok"),
            error=data.get("error"),
            attempts=int(data.get("attempts", 1)),
        )


class ExecutionTrace:
    """Ordered collection of :class:`EvalRecord` with derived statistics."""

    def __init__(self, n_workers: int):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        self.records: list[EvalRecord] = []
        #: Filled in by BO drivers at packaging time; None for model-free
        #: algorithms (random search, DE) and hand-built traces.
        self.surrogate_stats: SurrogateStats | None = None
        #: Pool operational counters, filled in at packaging time from the
        #: pool that produced this trace; None for hand-built traces.
        self.pool_telemetry: PoolTelemetry | None = None

    def add(self, record: EvalRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------- failures
    def successes(self) -> list[EvalRecord]:
        """Records of evaluations that produced a usable observation."""
        return [r for r in self.records if r.ok]

    def failure_records(self) -> list[EvalRecord]:
        """Records of failed evaluations (crashed / NaN / timed out)."""
        return [r for r in self.records if not r.ok]

    @property
    def n_failures(self) -> int:
        return sum(1 for r in self.records if not r.ok)

    @property
    def n_retries(self) -> int:
        """Extra evaluation attempts beyond the first, across all records."""
        return sum(r.attempts - 1 for r in self.records)

    @property
    def n_orphaned(self) -> int:
        """Points abandoned because their worker died or its lease expired."""
        return sum(1 for r in self.records if r.status == "orphaned")

    @property
    def has_success(self) -> bool:
        return any(r.ok for r in self.records)

    @property
    def makespan(self) -> float:
        """Wall-clock span from first issue to last finish."""
        if not self.records:
            return 0.0
        start = min(r.issue_time for r in self.records)
        end = max(r.finish_time for r in self.records)
        return end - start

    @property
    def total_busy_time(self) -> float:
        """Sum of evaluation durations across all workers."""
        return float(sum(r.duration for r in self.records))

    def utilization(self) -> float:
        """Busy fraction of ``n_workers * makespan`` (1.0 = no idle time)."""
        span = self.makespan
        if span <= 0:
            return 1.0
        return self.total_busy_time / (self.n_workers * span)

    def best_fom_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """Step curve of the best FOM seen versus completion time.

        Returns ``(times, best)`` sorted by completion time; ``best[i]`` is
        the running maximum after the evaluation finishing at ``times[i]``.
        This is the data behind the paper's Figs. 4 and 6.  Failed
        evaluations contribute no FOM and are excluded.
        """
        if not self.has_success:
            return np.empty(0), np.empty(0)
        order = sorted(self.successes(), key=lambda r: r.finish_time)
        times = np.asarray([r.finish_time for r in order])
        best = np.maximum.accumulate(np.asarray([r.fom for r in order]))
        return times, best

    def time_to_reach(self, target_fom: float) -> float:
        """Earliest completion time at which the best FOM reaches ``target``.

        Returns ``inf`` if the target is never reached — callers compare
        algorithms by this number, and infinity orders correctly.
        """
        times, best = self.best_fom_curve()
        hit = np.nonzero(best >= target_fom)[0]
        if len(hit) == 0:
            return float("inf")
        return float(times[hit[0]])

    def best_record(self) -> EvalRecord:
        if not self.records:
            raise ValueError("trace is empty")
        successes = self.successes()
        if not successes:
            raise ValueError("trace has no successful evaluations")
        return max(successes, key=lambda r: r.fom)

    def gantt_rows(self) -> list[list[tuple[float, float]]]:
        """Per-worker lists of (issue, finish) intervals (Fig. 1 data)."""
        rows: list[list[tuple[float, float]]] = [[] for _ in range(self.n_workers)]
        for record in sorted(self.records, key=lambda r: r.issue_time):
            rows[record.worker].append((record.issue_time, record.finish_time))
        return rows

    def as_dataset(self) -> tuple[np.ndarray, np.ndarray]:
        """Successful points and FOMs in completion order: ``(X, y)``."""
        if not self.has_success:
            raise ValueError("trace has no successful evaluations")
        order = sorted(self.successes(), key=lambda r: r.finish_time)
        X = np.vstack([r.x for r in order])
        y = np.asarray([r.fom for r in order])
        return X, y
