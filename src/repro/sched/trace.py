"""Execution traces: what ran where, when, and how well.

Every scheduler (virtual or real) produces an :class:`ExecutionTrace`, from
which the benches derive all of the paper's wall-clock quantities: total
simulation time (Table I/II "Time" columns), best-FOM-versus-time curves
(Figs. 4 and 6), worker utilization, and Gantt rows (Fig. 1).
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["EvalRecord", "ExecutionTrace"]


@dataclasses.dataclass
class EvalRecord:
    """One completed evaluation (successful or failed).

    Failed evaluations (``status != "ok"``) carry a NaN ``fom``; every
    derived statistic that consumes FOMs filters them out, while time-based
    statistics (makespan, utilization, Gantt rows) keep them — the worker
    was genuinely occupied.
    """

    index: int
    worker: int
    x: np.ndarray
    fom: float
    issue_time: float
    finish_time: float
    feasible: bool = True
    batch: int | None = None
    status: str = "ok"
    error: str | None = None
    attempts: int = 1

    @property
    def duration(self) -> float:
        return self.finish_time - self.issue_time

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def __post_init__(self):
        if self.finish_time < self.issue_time:
            raise ValueError(
                f"finish_time {self.finish_time} earlier than issue {self.issue_time}"
            )
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")


class ExecutionTrace:
    """Ordered collection of :class:`EvalRecord` with derived statistics."""

    def __init__(self, n_workers: int):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        self.records: list[EvalRecord] = []

    def add(self, record: EvalRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------- failures
    def successes(self) -> list[EvalRecord]:
        """Records of evaluations that produced a usable observation."""
        return [r for r in self.records if r.ok]

    def failure_records(self) -> list[EvalRecord]:
        """Records of failed evaluations (crashed / NaN / timed out)."""
        return [r for r in self.records if not r.ok]

    @property
    def n_failures(self) -> int:
        return sum(1 for r in self.records if not r.ok)

    @property
    def n_retries(self) -> int:
        """Extra evaluation attempts beyond the first, across all records."""
        return sum(r.attempts - 1 for r in self.records)

    @property
    def has_success(self) -> bool:
        return any(r.ok for r in self.records)

    @property
    def makespan(self) -> float:
        """Wall-clock span from first issue to last finish."""
        if not self.records:
            return 0.0
        start = min(r.issue_time for r in self.records)
        end = max(r.finish_time for r in self.records)
        return end - start

    @property
    def total_busy_time(self) -> float:
        """Sum of evaluation durations across all workers."""
        return float(sum(r.duration for r in self.records))

    def utilization(self) -> float:
        """Busy fraction of ``n_workers * makespan`` (1.0 = no idle time)."""
        span = self.makespan
        if span <= 0:
            return 1.0
        return self.total_busy_time / (self.n_workers * span)

    def best_fom_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """Step curve of the best FOM seen versus completion time.

        Returns ``(times, best)`` sorted by completion time; ``best[i]`` is
        the running maximum after the evaluation finishing at ``times[i]``.
        This is the data behind the paper's Figs. 4 and 6.  Failed
        evaluations contribute no FOM and are excluded.
        """
        if not self.has_success:
            return np.empty(0), np.empty(0)
        order = sorted(self.successes(), key=lambda r: r.finish_time)
        times = np.asarray([r.finish_time for r in order])
        best = np.maximum.accumulate(np.asarray([r.fom for r in order]))
        return times, best

    def time_to_reach(self, target_fom: float) -> float:
        """Earliest completion time at which the best FOM reaches ``target``.

        Returns ``inf`` if the target is never reached — callers compare
        algorithms by this number, and infinity orders correctly.
        """
        times, best = self.best_fom_curve()
        hit = np.nonzero(best >= target_fom)[0]
        if len(hit) == 0:
            return float("inf")
        return float(times[hit[0]])

    def best_record(self) -> EvalRecord:
        if not self.records:
            raise ValueError("trace is empty")
        successes = self.successes()
        if not successes:
            raise ValueError("trace has no successful evaluations")
        return max(successes, key=lambda r: r.fom)

    def gantt_rows(self) -> list[list[tuple[float, float]]]:
        """Per-worker lists of (issue, finish) intervals (Fig. 1 data)."""
        rows: list[list[tuple[float, float]]] = [[] for _ in range(self.n_workers)]
        for record in sorted(self.records, key=lambda r: r.issue_time):
            rows[record.worker].append((record.issue_time, record.finish_time))
        return rows

    def as_dataset(self) -> tuple[np.ndarray, np.ndarray]:
        """Successful points and FOMs in completion order: ``(X, y)``."""
        if not self.has_success:
            raise ValueError("trace has no successful evaluations")
        order = sorted(self.successes(), key=lambda r: r.finish_time)
        X = np.vstack([r.x for r in order])
        y = np.asarray([r.fom for r in order])
        return X, y
