"""Virtual worker pool — the simulated-clock evaluation backend.

The paper's "Time" columns count only simulator (HSPICE) time; given each
evaluation's duration, synchronous/asynchronous wall-clock is a deterministic
scheduling computation.  :class:`VirtualWorkerPool` performs it exactly:

* ``submit(x, result)`` starts an evaluation on a free worker at the current
  simulated time; the evaluation occupies the worker for ``result.cost``
  seconds of simulated time.
* ``wait_next()`` advances the clock to the earliest completion and returns
  it — the heartbeat of the asynchronous BO loop (Alg. 1 line 3).
* ``wait_all()`` drains every outstanding evaluation — the synchronous batch
  barrier.

The BO drivers use one pool per run; the pool records an
:class:`~repro.sched.trace.ExecutionTrace` as it goes.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.problem import EvaluationResult
from repro.sched.events import EventQueue
from repro.sched.trace import EvalRecord, ExecutionTrace

__all__ = ["Completion", "VirtualWorkerPool"]


@dataclasses.dataclass(frozen=True)
class Completion:
    """A finished evaluation handed back to the driver."""

    index: int
    worker: int
    x: np.ndarray
    result: EvaluationResult
    issue_time: float
    finish_time: float


@dataclasses.dataclass
class _Running:
    index: int
    worker: int
    x: np.ndarray
    result: EvaluationResult
    issue_time: float
    batch: int | None


class VirtualWorkerPool:
    """Deterministic simulated pool of ``n_workers`` identical workers.

    Parameters
    ----------
    problem:
        The problem whose ``evaluate`` supplies FOM and duration.  The
        evaluation itself runs inline (it is cheap); only its *visibility* is
        delayed on the simulated clock by ``result.cost`` seconds.
    n_workers:
        Batch size B of the paper.
    """

    def __init__(self, problem, n_workers: int):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.problem = problem
        self.n_workers = int(n_workers)
        self.now = 0.0
        self.trace = ExecutionTrace(n_workers)
        self._events = EventQueue()
        self._free = list(range(n_workers - 1, -1, -1))  # pop() yields worker 0 first
        self._running: dict[int, _Running] = {}
        self._next_index = 0

    # ------------------------------------------------------------ inspection
    @property
    def idle_count(self) -> int:
        return len(self._free)

    @property
    def busy_count(self) -> int:
        return len(self._running)

    def pending_points(self) -> np.ndarray:
        """Design points currently under evaluation, in issue order.

        This is the ``X-hat`` of the paper's penalization scheme (§III-C).
        Returns an empty ``(0, d?)`` array when nothing is running.
        """
        if not self._running:
            return np.empty((0, 0))
        running = sorted(self._running.values(), key=lambda r: r.index)
        return np.vstack([r.x for r in running])

    # ------------------------------------------------------------- operation
    def submit(self, x: np.ndarray, *, batch: int | None = None) -> int:
        """Start evaluating ``x`` on a free worker at the current time.

        Returns the evaluation index.  Raises if every worker is busy — the
        driver must ``wait_next()`` first (Alg. 1 line 3).
        """
        result = self.problem.evaluate(np.asarray(x, dtype=float))
        return self.submit_result(x, result, batch=batch)

    def submit_result(
        self, x: np.ndarray, result: EvaluationResult, *, batch: int | None = None
    ) -> int:
        """Like :meth:`submit` but with a precomputed evaluation outcome."""
        if not self._free:
            raise RuntimeError("no idle worker; call wait_next() first")
        worker = self._free.pop()
        index = self._next_index
        self._next_index += 1
        task = _Running(
            index=index,
            worker=worker,
            x=np.asarray(x, dtype=float).copy(),
            result=result,
            issue_time=self.now,
            batch=batch,
        )
        self._running[index] = task
        self._events.push(self.now + max(result.cost, 0.0), index)
        return index

    def wait_next(self) -> Completion:
        """Advance the clock to the earliest completion and return it."""
        if not self._events:
            raise RuntimeError("nothing is running")
        event = self._events.pop()
        self.now = max(self.now, event.time)
        task = self._running.pop(event.payload)
        self._free.append(task.worker)
        # Keep worker reuse deterministic: lowest-numbered worker first.
        self._free.sort(reverse=True)
        completion = Completion(
            index=task.index,
            worker=task.worker,
            x=task.x,
            result=task.result,
            issue_time=task.issue_time,
            finish_time=event.time,
        )
        self.trace.add(
            EvalRecord(
                index=task.index,
                worker=task.worker,
                x=task.x,
                fom=task.result.fom,
                issue_time=task.issue_time,
                finish_time=event.time,
                feasible=task.result.feasible,
                batch=task.batch,
            )
        )
        return completion

    def wait_all(self) -> list[Completion]:
        """Drain all outstanding evaluations (synchronous batch barrier).

        The clock ends at the *latest* completion — the waiting-for-the-
        slowest effect the paper's asynchronous scheme removes.
        """
        completions = []
        while self._events:
            completions.append(self.wait_next())
        return completions
