"""Virtual worker pool — the simulated-clock evaluation backend.

The paper's "Time" columns count only simulator (HSPICE) time; given each
evaluation's duration, synchronous/asynchronous wall-clock is a deterministic
scheduling computation.  :class:`VirtualWorkerPool` performs it exactly:

* ``submit(x, result)`` starts an evaluation on a free worker at the current
  simulated time; the evaluation occupies the worker for ``result.cost``
  seconds of simulated time.
* ``wait_next()`` advances the clock to the earliest completion and returns
  it — the heartbeat of the asynchronous BO loop (Alg. 1 line 3).
* ``wait_all()`` drains every outstanding evaluation — the synchronous batch
  barrier.

The BO drivers use one pool per run; the pool records an
:class:`~repro.sched.trace.ExecutionTrace` as it goes.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.faults import FailurePolicy, run_with_policy
from repro.core.problem import EvaluationResult
from repro.obs import NULL_OBS
from repro.sched.events import EventQueue
from repro.sched.trace import EvalRecord, ExecutionTrace, PoolTelemetry

__all__ = ["Completion", "VirtualWorkerPool"]


def _problem_dim(problem) -> int:
    """Design-space dimension for empty pending arrays; 0 if unknowable."""
    dim = getattr(problem, "dim", None)
    return int(dim) if dim is not None else 0


@dataclasses.dataclass(frozen=True)
class Completion:
    """A finished evaluation handed back to the driver."""

    index: int
    worker: int
    x: np.ndarray
    result: EvaluationResult
    issue_time: float
    finish_time: float
    batch: int | None = None
    attempts: int = 1


@dataclasses.dataclass
class _Running:
    index: int
    worker: int
    x: np.ndarray
    result: EvaluationResult
    issue_time: float
    batch: int | None
    attempts: int = 1
    lease: float | None = None


class VirtualWorkerPool:
    """Deterministic simulated pool of ``n_workers`` identical workers.

    Parameters
    ----------
    problem:
        The problem whose ``evaluate`` supplies FOM and duration.  The
        evaluation itself runs inline (it is cheap); only its *visibility* is
        delayed on the simulated clock by ``result.cost`` seconds.
    n_workers:
        Batch size B of the paper.
    policy:
        :class:`~repro.core.faults.FailurePolicy` governing retries,
        timeouts, and failure costs.  Evaluation exceptions and NaN outputs
        never escape ``submit``; they come back through ``wait_next`` as
        failed completions after the policy's retries are exhausted.
    """

    def __init__(self, problem, n_workers: int, *, policy: FailurePolicy | None = None):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.problem = problem
        self.n_workers = int(n_workers)
        self.policy = policy or FailurePolicy()
        self.now = 0.0
        self.trace = ExecutionTrace(n_workers)
        self._obs = NULL_OBS
        self._events = EventQueue()
        self._free = list(range(n_workers - 1, -1, -1))  # pop() yields worker 0 first
        self._running: dict[int, _Running] = {}
        self._next_index = 0
        # Completed-duration statistics feeding lease deadlines.
        self._cost_total = 0.0
        self._cost_count = 0

    def bind_observability(self, obs) -> None:
        """Attach an :class:`~repro.obs.Observability` facade (live counters:
        ``pool.submits`` / ``pool.completions`` / ``pool.task_seconds``)."""
        self._obs = obs if obs is not None else NULL_OBS

    # ------------------------------------------------------------ inspection
    @property
    def idle_count(self) -> int:
        return len(self._free)

    @property
    def busy_count(self) -> int:
        return len(self._running)

    def task_info(self, index: int) -> dict:
        """Issue metadata for an in-flight evaluation (for the run journal)."""
        task = self._running[index]
        return {
            "worker": task.worker,
            "issue_time": task.issue_time,
            "batch": task.batch,
            "lease": task.lease,
        }

    def _lease_deadline(self, issue_time: float) -> float | None:
        """Lease expiry for a point issued at ``issue_time``.

        The lease is ``mean completed duration x policy.lease_slack``; before
        any evaluation has completed there is no basis for an expectation and
        the point is unleased.
        """
        slack = self.policy.lease_slack
        if slack is None or self._cost_count == 0:
            return None
        return issue_time + (self._cost_total / self._cost_count) * slack

    def pending_points(self) -> np.ndarray:
        """Design points currently under evaluation, in issue order.

        This is the ``X-hat`` of the paper's penalization scheme (§III-C).
        Always returns shape ``(n_busy, dim)`` — in particular ``(0, dim)``
        when nothing is running, so callers can vstack/hallucinate it
        unconditionally.
        """
        if not self._running:
            return np.empty((0, _problem_dim(self.problem)))
        running = sorted(self._running.values(), key=lambda r: r.index)
        return np.vstack([r.x for r in running])

    # ------------------------------------------------------------- operation
    def submit(self, x: np.ndarray, *, batch: int | None = None) -> int:
        """Start evaluating ``x`` on a free worker at the current time.

        Returns the evaluation index.  Raises if every worker is busy — the
        driver must ``wait_next()`` first (Alg. 1 line 3) — *before* the
        evaluation runs, so a full pool never burns a simulation.

        The evaluation runs under the pool's :class:`FailurePolicy`: crashes
        and NaN outputs are retried in place, timeouts are charged at the
        limit, and the worker stays occupied for the *total* simulated time
        of every attempt plus backoff gaps.
        """
        if not self._free:
            raise RuntimeError("no idle worker; call wait_next() first")
        x = np.asarray(x, dtype=float)
        result, attempts, elapsed = run_with_policy(
            self.problem, x, self.policy, cost_timeout=True
        )
        result = dataclasses.replace(result, cost=elapsed)
        return self.submit_result(x, result, batch=batch, attempts=attempts)

    def submit_result(
        self,
        x: np.ndarray,
        result: EvaluationResult,
        *,
        batch: int | None = None,
        attempts: int = 1,
    ) -> int:
        """Like :meth:`submit` but with a precomputed evaluation outcome.

        The outcome is taken as-is (no policy retries) — this is the raw
        injection point used by tests and replay tooling.
        """
        if not self._free:
            raise RuntimeError("no idle worker; call wait_next() first")
        worker = self._free.pop()
        index = self._next_index
        self._next_index += 1
        task = _Running(
            index=index,
            worker=worker,
            x=np.asarray(x, dtype=float).copy(),
            result=result,
            issue_time=self.now,
            batch=batch,
            attempts=attempts,
            lease=self._lease_deadline(self.now),
        )
        self._running[index] = task
        self._events.push(self.now + max(result.cost, 0.0), index)
        self._obs.inc("pool.submits")
        return index

    def wait_next(self) -> Completion:
        """Advance the clock to the earliest completion and return it."""
        if not self._events:
            raise RuntimeError("nothing is running")
        event = self._events.pop()
        self.now = max(self.now, event.time)
        task = self._running.pop(event.payload)
        self._free.append(task.worker)
        # Keep worker reuse deterministic: lowest-numbered worker first.
        self._free.sort(reverse=True)
        self._cost_total += max(event.time - task.issue_time, 0.0)
        self._cost_count += 1
        completion = Completion(
            index=task.index,
            worker=task.worker,
            x=task.x,
            result=task.result,
            issue_time=task.issue_time,
            finish_time=event.time,
            batch=task.batch,
            attempts=task.attempts,
        )
        self.trace.add(
            EvalRecord(
                index=task.index,
                worker=task.worker,
                x=task.x,
                fom=task.result.fom,
                issue_time=task.issue_time,
                finish_time=event.time,
                feasible=task.result.feasible,
                batch=task.batch,
                status=task.result.status,
                error=task.result.error,
                attempts=task.attempts,
            )
        )
        self._obs.inc("pool.completions")
        self._obs.observe("pool.task_seconds", max(event.time - task.issue_time, 0.0))
        return completion

    def poll(self) -> Completion | None:
        """Non-blocking :meth:`wait_next`: a completion if any task is running.

        On the simulated clock every in-flight evaluation is immediately
        completable (time is free to advance), so ``poll`` only returns
        ``None`` on an idle pool.  This is the hook the campaign server uses
        to interleave many campaigns without blocking on any one of them.
        """
        if not self._events:
            return None
        return self.wait_next()

    def wait_all(self) -> list[Completion]:
        """Drain all outstanding evaluations (synchronous batch barrier).

        The clock ends at the *latest* completion — the waiting-for-the-
        slowest effect the paper's asynchronous scheme removes.
        """
        completions = []
        while self._events:
            completions.append(self.wait_next())
        return completions

    def telemetry(self) -> PoolTelemetry:
        """Operational counters for this pool (simulated-clock subset)."""
        return PoolTelemetry.from_trace(self.trace, backend="virtual", elapsed=self.now)

    def close(self) -> None:
        """No-op (nothing to release); part of the shared pool contract."""

    def __enter__(self) -> "VirtualWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- recovery
    def restore(self, *, now: float, next_index: int, records=()) -> None:
        """Rewind a fresh pool to a journaled state (crash recovery).

        Sets the simulated clock and the next evaluation index, and replays
        completed :class:`EvalRecord` rows into the trace (also rebuilding the
        duration statistics that drive lease deadlines).  Only valid on a pool
        that has not run anything yet.
        """
        if self._running or self.trace.records:
            raise RuntimeError("restore() requires a fresh pool")
        self.now = float(now)
        self._next_index = int(next_index)
        for record in records:
            self.trace.add(record)
            self._cost_total += max(record.duration, 0.0)
            self._cost_count += 1

    def restore_task(
        self,
        index: int,
        worker: int,
        x: np.ndarray,
        *,
        batch: int | None = None,
        issue_time: float | None = None,
        attempts_offset: int = 0,
    ) -> int:
        """Re-issue an orphaned in-flight evaluation at its original slot.

        Unlike :meth:`submit`, the caller chooses the evaluation index, the
        worker, and the (past) issue time, so on a deterministic problem the
        re-run completes at exactly the moment the original would have — the
        resumed trajectory is indistinguishable from the uninterrupted one.
        ``attempts_offset`` adds the attempts already burned before the crash.
        """
        if worker not in self._free:
            raise RuntimeError(f"worker {worker} is not idle")
        if index in self._running:
            raise RuntimeError(f"evaluation {index} is already running")
        x = np.asarray(x, dtype=float)
        result, attempts, elapsed = run_with_policy(
            self.problem, x, self.policy, cost_timeout=True
        )
        result = dataclasses.replace(result, cost=elapsed)
        issue_time = self.now if issue_time is None else float(issue_time)
        self._free.remove(worker)
        task = _Running(
            index=int(index),
            worker=int(worker),
            x=x.copy(),
            result=result,
            issue_time=issue_time,
            batch=batch,
            attempts=attempts + int(attempts_offset),
            lease=self._lease_deadline(issue_time),
        )
        self._running[task.index] = task
        self._events.push(issue_time + max(result.cost, 0.0), task.index)
        self._next_index = max(self._next_index, task.index + 1)
        self._obs.inc("pool.submits")
        return task.index
