"""Real thread-pool evaluation backend.

Same protocol as :class:`~repro.sched.workers.VirtualWorkerPool` — ``submit``
/ ``wait_next`` / ``wait_all`` / ``pending_points`` — but evaluations run
concurrently in OS threads and the trace records real wall-clock timestamps.

This is the backend to use when the evaluation function releases the GIL or
performs genuine I/O (e.g. shelling out to an external simulator).  The pure-
Python testbenches in this repository are GIL-bound, so for *experiments* the
virtual pool is both faster and deterministic; the thread pool exists to
demonstrate the asynchronous mechanism end to end and to host user problems
that wrap real simulators.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time

import numpy as np

from repro.sched.trace import EvalRecord, ExecutionTrace
from repro.sched.workers import Completion

__all__ = ["ThreadWorkerPool"]


class ThreadWorkerPool:
    """Concurrent evaluation pool backed by ``ThreadPoolExecutor``."""

    def __init__(self, problem, n_workers: int):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.problem = problem
        self.n_workers = int(n_workers)
        self.trace = ExecutionTrace(n_workers)
        self._executor = concurrent.futures.ThreadPoolExecutor(max_workers=n_workers)
        self._lock = threading.Lock()
        self._t0 = time.monotonic()
        self._next_index = 0
        self._futures: dict[concurrent.futures.Future, dict] = {}
        self._free_workers = list(range(n_workers - 1, -1, -1))

    # ------------------------------------------------------------ inspection
    @property
    def now(self) -> float:
        """Seconds since pool creation (real time)."""
        return time.monotonic() - self._t0

    @property
    def idle_count(self) -> int:
        with self._lock:
            return len(self._free_workers)

    @property
    def busy_count(self) -> int:
        with self._lock:
            return len(self._futures)

    def pending_points(self) -> np.ndarray:
        with self._lock:
            metas = sorted(self._futures.values(), key=lambda m: m["index"])
        if not metas:
            return np.empty((0, 0))
        return np.vstack([m["x"] for m in metas])

    # ------------------------------------------------------------- operation
    def submit(self, x: np.ndarray, *, batch: int | None = None) -> int:
        """Dispatch ``x`` to a free worker thread; returns the index."""
        with self._lock:
            if not self._free_workers:
                raise RuntimeError("no idle worker; call wait_next() first")
            worker = self._free_workers.pop()
            index = self._next_index
            self._next_index += 1
        x = np.asarray(x, dtype=float).copy()
        issue_time = self.now
        future = self._executor.submit(self.problem.evaluate, x)
        with self._lock:
            self._futures[future] = {
                "index": index,
                "worker": worker,
                "x": x,
                "issue_time": issue_time,
                "batch": batch,
            }
        return index

    def wait_next(self) -> Completion:
        """Block until any in-flight evaluation finishes and return it."""
        with self._lock:
            futures = list(self._futures)
        if not futures:
            raise RuntimeError("nothing is running")
        done, _ = concurrent.futures.wait(
            futures, return_when=concurrent.futures.FIRST_COMPLETED
        )
        # Among simultaneously-done futures pick the lowest issue index so
        # behaviour is reproducible.
        with self._lock:
            future = min(done, key=lambda f: self._futures[f]["index"])
            meta = self._futures.pop(future)
            self._free_workers.append(meta["worker"])
            self._free_workers.sort(reverse=True)
        result = future.result()  # propagate evaluation exceptions
        finish_time = self.now
        completion = Completion(
            index=meta["index"],
            worker=meta["worker"],
            x=meta["x"],
            result=result,
            issue_time=meta["issue_time"],
            finish_time=finish_time,
        )
        self.trace.add(
            EvalRecord(
                index=meta["index"],
                worker=meta["worker"],
                x=meta["x"],
                fom=result.fom,
                issue_time=meta["issue_time"],
                finish_time=finish_time,
                feasible=result.feasible,
                batch=meta["batch"],
            )
        )
        return completion

    def wait_all(self) -> list[Completion]:
        """Drain every outstanding evaluation (synchronous barrier)."""
        completions = []
        while self.busy_count:
            completions.append(self.wait_next())
        return completions

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ThreadWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
