"""Real thread-pool evaluation backend.

Same protocol as :class:`~repro.sched.workers.VirtualWorkerPool` — ``submit``
/ ``wait_next`` / ``wait_all`` / ``pending_points`` — but evaluations run
concurrently in OS threads and the trace records real wall-clock timestamps.

This is the backend to use when the evaluation function releases the GIL or
performs genuine I/O (e.g. shelling out to an external simulator).  The pure-
Python testbenches in this repository are GIL-bound, so for *experiments* the
virtual pool is both faster and deterministic; the thread pool exists to
demonstrate the asynchronous mechanism end to end and to host user problems
that wrap real simulators.

Failure containment
-------------------
Each evaluation runs in its own daemon thread under the pool's
:class:`~repro.core.faults.FailurePolicy`:

* An exception or NaN output is retried in the worker thread (with real
  backoff sleeps) and, once retries are exhausted, surfaces through
  ``wait_next`` as a failed :class:`Completion` — it never raises into the
  driver, and the worker is only freed *after* the outcome is resolved and
  traced.
* When ``policy.timeout`` is set, ``wait_next`` enforces it on the real
  clock: a hung evaluation is *abandoned* — its logical worker slot is
  freed immediately and a ``"timeout"`` completion returned — while the
  orphaned daemon thread finishes (or hangs) harmlessly in the background;
  its late result, if any, is discarded.  Because threads are per-task
  rather than a fixed executor, an abandoned job cannot starve the
  remaining B-1 workers.
"""

from __future__ import annotations

import queue
import threading
import time

import numpy as np

from repro.core.faults import FailurePolicy, run_with_policy
from repro.core.problem import STATUS_ORPHANED, STATUS_TIMEOUT, EvaluationResult
from repro.obs import NULL_OBS
from repro.sched.trace import EvalRecord, ExecutionTrace, PoolTelemetry
from repro.sched.workers import Completion, _problem_dim

__all__ = ["ThreadWorkerPool"]


class ThreadWorkerPool:
    """Concurrent evaluation pool with one daemon thread per in-flight task.

    ``wait_next`` never blocks unboundedly: queue waits are capped at
    ``poll_interval`` seconds, so a ``KeyboardInterrupt`` surfaces promptly
    and lease/timeout deadlines are checked on every poll even when no
    completion ever arrives.
    """

    def __init__(
        self,
        problem,
        n_workers: int,
        *,
        policy: FailurePolicy | None = None,
        poll_interval: float = 0.5,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.problem = problem
        self.n_workers = int(n_workers)
        self.policy = policy or FailurePolicy()
        self.poll_interval = float(poll_interval)
        self.trace = ExecutionTrace(n_workers)
        self._obs = NULL_OBS
        self._lock = threading.Lock()
        self._results: queue.SimpleQueue = queue.SimpleQueue()
        self._t0 = time.monotonic()
        self._next_index = 0
        self._tasks: dict[int, dict] = {}
        self._abandoned: set[int] = set()
        self._free_workers = list(range(n_workers - 1, -1, -1))
        self._cost_total = 0.0
        self._cost_count = 0

    def bind_observability(self, obs) -> None:
        """Attach an :class:`~repro.obs.Observability` facade (live counters:
        ``pool.submits`` / ``pool.completions`` / ``pool.task_seconds``)."""
        self._obs = obs if obs is not None else NULL_OBS

    # ------------------------------------------------------------ inspection
    @property
    def now(self) -> float:
        """Seconds since pool creation (real time)."""
        return time.monotonic() - self._t0

    @property
    def idle_count(self) -> int:
        with self._lock:
            return len(self._free_workers)

    @property
    def busy_count(self) -> int:
        with self._lock:
            return len(self._tasks)

    def pending_points(self) -> np.ndarray:
        """In-flight design points in issue order; shape ``(n_busy, dim)``.

        Always two-dimensional — ``(0, dim)`` when idle — so the pending-
        point hallucination can consume it without special cases.
        """
        with self._lock:
            metas = sorted(self._tasks.values(), key=lambda m: m["index"])
        if not metas:
            return np.empty((0, _problem_dim(self.problem)))
        return np.vstack([m["x"] for m in metas])

    # ------------------------------------------------------------- operation
    def submit(self, x: np.ndarray, *, batch: int | None = None) -> int:
        """Dispatch ``x`` to a free worker thread; returns the index."""
        with self._lock:
            if not self._free_workers:
                raise RuntimeError("no idle worker; call wait_next() first")
            worker = self._free_workers.pop()
            index = self._next_index
            self._next_index += 1
        x = np.asarray(x, dtype=float).copy()
        issue_time = self.now
        deadline = None if self.policy.timeout is None else issue_time + self.policy.timeout
        lease = self._lease_deadline(issue_time)
        thread = threading.Thread(
            target=self._run_task, args=(index, x), daemon=True, name=f"eval-{index}"
        )
        with self._lock:
            self._tasks[index] = {
                "index": index,
                "worker": worker,
                "x": x,
                "issue_time": issue_time,
                "batch": batch,
                "deadline": deadline,
                "lease": lease,
                "thread": thread,
            }
        thread.start()
        self._obs.inc("pool.submits")
        return index

    def _lease_deadline(self, issue_time: float) -> float | None:
        """Lease expiry (mean completed duration x slack); ``None`` if unleased."""
        slack = self.policy.lease_slack
        with self._lock:
            if slack is None or self._cost_count == 0:
                return None
            return issue_time + (self._cost_total / self._cost_count) * slack

    def task_info(self, index: int) -> dict:
        """Issue metadata for an in-flight evaluation (for the run journal)."""
        with self._lock:
            meta = self._tasks[index]
            return {
                "worker": meta["worker"],
                "issue_time": meta["issue_time"],
                "batch": meta["batch"],
                "lease": meta["lease"],
            }

    def _run_task(self, index: int, x: np.ndarray) -> None:
        """Worker-thread body: evaluate under the policy, post the outcome."""
        result, attempts, _ = run_with_policy(
            self.problem, x, self.policy, sleep=time.sleep
        )
        self._results.put((index, result, attempts))

    def wait_next(self) -> Completion:
        """Block until an in-flight evaluation finishes or times out.

        Never raises on evaluation failure: crashed, NaN, and timed-out
        evaluations come back as completions whose ``result`` carries the
        failure status, after the outcome has been recorded in the trace
        and the worker freed — in that order, so the pool stays consistent
        even for failures.
        """
        while True:
            with self._lock:
                if not self._tasks:
                    raise RuntimeError("nothing is running")
                deadlines = [
                    (m["deadline"], i, "timeout")
                    for i, m in self._tasks.items()
                    if m["deadline"] is not None
                ] + [
                    (m["lease"], i, "lease")
                    for i, m in self._tasks.items()
                    if m["lease"] is not None
                ]
            # Never block unboundedly: cap every wait at poll_interval so
            # KeyboardInterrupt is honored promptly and deadlines are polled
            # even when no completion ever arrives.
            block = self.poll_interval
            if deadlines:
                block = min(block, max(min(deadlines)[0] - self.now, 0.0))
            try:
                index, result, attempts = self._results.get(timeout=block)
            except KeyboardInterrupt:
                raise
            except queue.Empty:
                # No completion yet; expire the earliest overdue deadline, if
                # any, abandoning its (possibly hung or dead) thread.
                expired = min(
                    (entry for entry in deadlines if entry[0] <= self.now),
                    default=None,
                )
                if expired is None:
                    continue
                _, task_index, kind = expired
                if kind == "timeout":
                    failure = EvaluationResult.failed(
                        f"evaluation exceeded timeout of {self.policy.timeout:g}s",
                        status=STATUS_TIMEOUT,
                        cost=self.policy.timeout,
                    )
                else:
                    failure = EvaluationResult.failed(
                        "worker lease expired with the evaluation still in "
                        "flight (worker presumed dead)",
                        status=STATUS_ORPHANED,
                    )
                return self._complete(task_index, failure, attempts=1, abandon=True)
            with self._lock:
                stale = index in self._abandoned
                if stale:
                    self._abandoned.discard(index)
            if stale:
                continue  # late result of a timed-out, abandoned task
            return self._complete(index, result, attempts)

    def _complete(
        self, index: int, result: EvaluationResult, attempts: int, *, abandon: bool = False
    ) -> Completion:
        """Resolve one task: trace it, free its worker, hand it back."""
        finish_time = self.now
        with self._lock:
            meta = self._tasks.pop(index)
            if abandon:
                self._abandoned.add(index)
            self._free_workers.append(meta["worker"])
            self._free_workers.sort(reverse=True)
            self._cost_total += max(finish_time - meta["issue_time"], 0.0)
            self._cost_count += 1
        completion = Completion(
            index=meta["index"],
            worker=meta["worker"],
            x=meta["x"],
            result=result,
            issue_time=meta["issue_time"],
            finish_time=finish_time,
            batch=meta["batch"],
            attempts=attempts,
        )
        self.trace.add(
            EvalRecord(
                index=meta["index"],
                worker=meta["worker"],
                x=meta["x"],
                fom=result.fom,
                issue_time=meta["issue_time"],
                finish_time=finish_time,
                feasible=result.feasible,
                batch=meta["batch"],
                status=result.status,
                error=result.error,
                attempts=attempts,
            )
        )
        self._obs.inc("pool.completions")
        self._obs.observe(
            "pool.task_seconds", max(finish_time - meta["issue_time"], 0.0)
        )
        return completion

    def poll(self) -> Completion | None:
        """Non-blocking :meth:`wait_next`: a ready completion or ``None``.

        Drains at most one finished evaluation (expiring an overdue
        timeout/lease deadline counts); returns ``None`` when nothing has
        finished yet so a caller multiplexing many pools — the campaign
        server — never blocks on one of them.
        """
        while True:
            try:
                index, result, attempts = self._results.get_nowait()
            except queue.Empty:
                with self._lock:
                    if not self._tasks:
                        return None
                    deadlines = [
                        (m["deadline"], i, "timeout")
                        for i, m in self._tasks.items()
                        if m["deadline"] is not None
                    ] + [
                        (m["lease"], i, "lease")
                        for i, m in self._tasks.items()
                        if m["lease"] is not None
                    ]
                expired = min(
                    (entry for entry in deadlines if entry[0] <= self.now),
                    default=None,
                )
                if expired is None:
                    return None
                _, task_index, kind = expired
                if kind == "timeout":
                    failure = EvaluationResult.failed(
                        f"evaluation exceeded timeout of {self.policy.timeout:g}s",
                        status=STATUS_TIMEOUT,
                        cost=self.policy.timeout,
                    )
                else:
                    failure = EvaluationResult.failed(
                        "worker lease expired with the evaluation still in "
                        "flight (worker presumed dead)",
                        status=STATUS_ORPHANED,
                    )
                return self._complete(task_index, failure, attempts=1, abandon=True)
            with self._lock:
                stale = index in self._abandoned
                if stale:
                    self._abandoned.discard(index)
            if stale:
                continue  # late result of a timed-out, abandoned task
            return self._complete(index, result, attempts)

    def wait_all(self) -> list[Completion]:
        """Drain every outstanding evaluation (synchronous barrier)."""
        completions = []
        while self.busy_count:
            completions.append(self.wait_next())
        return completions

    # -------------------------------------------------------------- recovery
    def restore(self, *, now: float, next_index: int, records=()) -> None:
        """Rewind a fresh pool to a journaled state (crash recovery).

        Shifts the pool epoch so ``self.now`` continues from the journaled
        clock, sets the next evaluation index, and replays completed records
        into the trace (rebuilding the duration statistics behind leases).
        """
        with self._lock:
            if self._tasks or self.trace.records:
                raise RuntimeError("restore() requires a fresh pool")
            self._t0 = time.monotonic() - float(now)
            self._next_index = int(next_index)
            for record in records:
                self.trace.add(record)
                self._cost_total += max(record.duration, 0.0)
                self._cost_count += 1

    def restore_task(
        self,
        index: int,
        worker: int,
        x: np.ndarray,
        *,
        batch: int | None = None,
        issue_time: float | None = None,
        attempts_offset: int = 0,
    ) -> int:
        """Re-issue an orphaned in-flight evaluation at a chosen slot.

        Real clocks cannot be rewound per-task, so the journaled
        ``issue_time`` is kept for the trace (the point *was* first issued
        then) while timeout/lease deadlines restart from the current time —
        the re-run gets a full fresh allowance.  ``attempts_offset`` is unused
        here (the retry loop reports its own attempt count) but accepted for
        pool-protocol compatibility.
        """
        x = np.asarray(x, dtype=float).copy()
        start = self.now
        issue_time = start if issue_time is None else float(issue_time)
        deadline = None if self.policy.timeout is None else start + self.policy.timeout
        lease = self._lease_deadline(start)
        thread = threading.Thread(
            target=self._run_task, args=(index, x), daemon=True, name=f"eval-{index}"
        )
        with self._lock:
            if worker not in self._free_workers:
                raise RuntimeError(f"worker {worker} is not idle")
            if index in self._tasks:
                raise RuntimeError(f"evaluation {index} is already running")
            self._free_workers.remove(worker)
            self._tasks[index] = {
                "index": int(index),
                "worker": int(worker),
                "x": x,
                "issue_time": issue_time,
                "batch": batch,
                "deadline": deadline,
                "lease": lease,
                "thread": thread,
            }
            self._next_index = max(self._next_index, int(index) + 1)
        thread.start()
        self._obs.inc("pool.submits")
        return int(index)

    def telemetry(self) -> PoolTelemetry:
        """Operational counters for this pool (trace-derived subset)."""
        return PoolTelemetry.from_trace(self.trace, backend="thread", elapsed=self.now)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; optionally join live (non-abandoned) threads."""
        if wait:
            with self._lock:
                threads = [m["thread"] for m in self._tasks.values()]
            for thread in threads:
                thread.join()

    def close(self) -> None:
        """Release the pool without blocking on in-flight work.

        Worker threads are daemons and cannot be cancelled from Python, so
        a close on the exception path simply abandons them — they die with
        the interpreter instead of wedging the caller the way a joining
        shutdown would on a hung evaluation.
        """
        self.shutdown(wait=False)

    def __enter__(self) -> "ThreadWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
