"""Per-evaluation simulation-duration models.

The paper's wall-clock results hinge on one physical fact: *different design
points take different amounts of HSPICE time*, so synchronous batches leave
workers idle waiting for the slowest member.  We cannot re-run HSPICE, so the
testbenches charge each evaluation a duration drawn from a deterministic,
design-dependent lognormal model calibrated to the paper's own tables:

* op-amp: mean 38.8 s/sim (150 sims in ~1h37m sequential), small spread —
  the paper's sync/async gap at B=15 is ~13.7%, matching sigma ~ 0.10;
* class-E PA: mean 52.7 s/sim (450 sims in ~6h35m), large spread — the
  paper's 40% gap at B=15 implies max-of-15/mean ~ 1.67, i.e. sigma ~ 0.35.

The draw is a pure function of the design vector (hash-seeded), so a given
design always costs the same and whole experiments are reproducible.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["CostModel", "ConstantCostModel", "LognormalCostModel"]


class CostModel:
    """Base class mapping a design vector to a simulation duration (s)."""

    def duration(self, x: np.ndarray) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> float:
        return self.duration(x)


class ConstantCostModel(CostModel):
    """Every evaluation costs the same — the degenerate case where
    synchronous and asynchronous batching have identical wall-clock."""

    def __init__(self, seconds: float):
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        self.seconds = float(seconds)

    def duration(self, x: np.ndarray) -> float:
        return self.seconds


class LognormalCostModel(CostModel):
    """Deterministic design-dependent lognormal duration.

    ``duration(x) = mean * exp(sigma * z(x) - sigma^2 / 2)`` where ``z(x)``
    is a standard-normal deviate derived from a SHA-256 hash of the design
    vector (and ``seed``), so E[duration] = mean exactly and the same design
    always costs the same.
    """

    def __init__(self, mean_seconds: float, sigma: float, seed: int = 0):
        if mean_seconds <= 0:
            raise ValueError("mean_seconds must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.mean_seconds = float(mean_seconds)
        self.sigma = float(sigma)
        self.seed = int(seed)

    def duration(self, x: np.ndarray) -> float:
        z = self._deviate(np.asarray(x, dtype=float))
        return self.mean_seconds * float(
            np.exp(self.sigma * z - 0.5 * self.sigma**2)
        )

    def _deviate(self, x: np.ndarray) -> float:
        """Standard-normal deviate that is a pure function of ``x``."""
        payload = x.astype(np.float64).tobytes() + self.seed.to_bytes(8, "little")
        digest = hashlib.sha256(payload).digest()
        # Two 64-bit uniforms -> one Gaussian via Box-Muller.
        u1 = (int.from_bytes(digest[:8], "little") + 1) / (2**64 + 2)
        u2 = int.from_bytes(digest[8:16], "little") / 2**64
        return float(np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2))
