"""Evaluation scheduling: the wall-clock side of the reproduction.

* :class:`VirtualWorkerPool` — deterministic simulated-clock pool; the
  backend behind every Table/Figure bench (see DESIGN.md §2 for why).
* :class:`ThreadWorkerPool` — real concurrent backend with the same protocol.
* :class:`~repro.distributed.ProcessWorkerPool` — real OS-process backend
  (socket RPC, heartbeats), reachable here via :func:`pool_factory_by_name`.
* :class:`ExecutionTrace` — per-evaluation records and derived statistics
  (makespan, utilization, best-FOM-versus-time, Gantt rows).
* Cost models calibrated to the paper's tables (:mod:`repro.sched.durations`).
"""

from repro.sched.durations import ConstantCostModel, CostModel, LognormalCostModel
from repro.sched.events import Event, EventQueue
from repro.sched.executor import ThreadWorkerPool
from repro.sched.trace import EvalRecord, ExecutionTrace, PoolTelemetry, SurrogateStats
from repro.sched.workers import Completion, VirtualWorkerPool

__all__ = [
    "CostModel",
    "ConstantCostModel",
    "LognormalCostModel",
    "Event",
    "EventQueue",
    "EvalRecord",
    "ExecutionTrace",
    "PoolTelemetry",
    "SurrogateStats",
    "Completion",
    "VirtualWorkerPool",
    "ThreadWorkerPool",
    "POOL_BACKENDS",
    "pool_factory_by_name",
]

#: Names accepted by :func:`pool_factory_by_name` (and the CLI ``--pool``).
POOL_BACKENDS = ("virtual", "thread", "process")


def pool_factory_by_name(name: str):
    """Resolve a pool backend name to a driver-compatible factory.

    The returned callable has the ``(problem, n_workers, *, policy=None)``
    signature every driver's ``pool_factory`` hook expects.  ``"process"``
    imports the distributed subsystem lazily — the other backends stay
    import-light.
    """
    name = str(name).lower()
    if name == "virtual":
        return VirtualWorkerPool
    if name == "thread":
        return ThreadWorkerPool
    if name == "process":
        from repro.distributed import ProcessWorkerPool

        return ProcessWorkerPool
    raise ValueError(f"unknown pool backend {name!r}; choose from {POOL_BACKENDS}")
