"""Evaluation scheduling: the wall-clock side of the reproduction.

* :class:`VirtualWorkerPool` — deterministic simulated-clock pool; the
  backend behind every Table/Figure bench (see DESIGN.md §2 for why).
* :class:`ThreadWorkerPool` — real concurrent backend with the same protocol.
* :class:`ExecutionTrace` — per-evaluation records and derived statistics
  (makespan, utilization, best-FOM-versus-time, Gantt rows).
* Cost models calibrated to the paper's tables (:mod:`repro.sched.durations`).
"""

from repro.sched.durations import ConstantCostModel, CostModel, LognormalCostModel
from repro.sched.events import Event, EventQueue
from repro.sched.executor import ThreadWorkerPool
from repro.sched.trace import EvalRecord, ExecutionTrace, SurrogateStats
from repro.sched.workers import Completion, VirtualWorkerPool

__all__ = [
    "CostModel",
    "ConstantCostModel",
    "LognormalCostModel",
    "Event",
    "EventQueue",
    "EvalRecord",
    "ExecutionTrace",
    "SurrogateStats",
    "Completion",
    "VirtualWorkerPool",
    "ThreadWorkerPool",
]
