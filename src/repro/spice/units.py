"""SPICE-style engineering-unit parsing and formatting.

Accepts the classic SPICE suffixes (case-insensitive): ``f p n u m k meg g t``
plus ``mil``.  ``1.5u`` -> 1.5e-6, ``2meg`` -> 2e6, ``10k`` -> 1e4.  Trailing
unit letters after the suffix (``10pF``, ``1kOhm``) are ignored, as in SPICE.
"""

from __future__ import annotations

import re

__all__ = ["parse_value", "format_eng"]

_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "mil": 25.4e-6,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

_NUMBER_RE = re.compile(
    r"^\s*([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)\s*([a-zA-Z]*)\s*$"
)

_ENG_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
]


def parse_value(text: str | float | int) -> float:
    """Parse a SPICE-style value such as ``"2.2k"`` or ``"0.18u"``.

    Numeric input is passed through as ``float``.  Raises :class:`ValueError`
    on anything unparseable.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _NUMBER_RE.match(text)
    if not match:
        raise ValueError(f"cannot parse value {text!r}")
    number = float(match.group(1))
    tail = match.group(2).lower()
    if not tail:
        return number
    # Longest-suffix first so "meg"/"mil" win over "m".
    for suffix in ("meg", "mil"):
        if tail.startswith(suffix):
            return number * _SUFFIXES[suffix]
    if tail[0] in _SUFFIXES:
        return number * _SUFFIXES[tail[0]]
    # Bare unit letters with no scale ("V", "Ohm") mean scale 1.
    return number


def format_eng(value: float, unit: str = "", digits: int = 3) -> str:
    """Format a value with an engineering prefix: ``2.2e3 -> "2.2k"``."""
    if value == 0:
        return f"0{unit}"
    mag = abs(value)
    for scale, prefix in _ENG_PREFIXES:
        if mag >= scale:
            return f"{value / scale:.{digits}g}{prefix}{unit}"
    scale, prefix = _ENG_PREFIXES[-1]
    return f"{value / scale:.{digits}g}{prefix}{unit}"
