"""Post-processing measurements on simulation results.

These are the "`.measure`" statements of the reproduction: Bode metrics
(DC gain, unity-gain frequency, phase margin) for the op-amp, and Fourier
power metrics (output power at the fundamental, DC supply power, PAE) for the
class-E power amplifier.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.spice.exceptions import AnalysisError

__all__ = [
    "BodeMetrics",
    "bode_metrics",
    "fundamental_phasor",
    "fundamental_power",
    "harmonic_amplitudes",
    "total_harmonic_distortion",
    "average_power",
    "power_added_efficiency",
]


@dataclasses.dataclass
class BodeMetrics:
    """Open-loop frequency-response summary of an amplifier."""

    dc_gain_db: float
    ugf_hz: float
    phase_margin_deg: float

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.dc_gain_db, self.ugf_hz, self.phase_margin_deg)


def bode_metrics(freqs: np.ndarray, response: np.ndarray) -> BodeMetrics:
    """Extract gain / UGF / phase margin from a complex transfer function.

    ``response`` is H(jw) sampled at ``freqs`` (ascending).  The unity-gain
    frequency is found by log-log interpolation of |H|; the phase margin is
    ``180 + phase(H(UGF))`` with the phase unwrapped from the low-frequency
    end.  Raises :class:`AnalysisError` if |H| never crosses unity (the sweep
    must extend beyond the UGF) or if the DC gain is below unity.
    """
    freqs = np.asarray(freqs, dtype=float)
    response = np.asarray(response, dtype=complex)
    if freqs.ndim != 1 or freqs.shape != response.shape:
        raise ValueError("freqs and response must be 1-D arrays of equal length")
    if len(freqs) < 2:
        raise ValueError("need at least two frequency points")
    mag = np.abs(response)
    if np.any(mag <= 0):
        raise AnalysisError("response magnitude is zero at some frequency")
    gain_db = 20.0 * np.log10(mag)
    dc_gain_db = float(gain_db[0])
    if dc_gain_db <= 0.0:
        raise AnalysisError(f"DC gain {dc_gain_db:.2f} dB is below unity")

    below = np.nonzero(gain_db <= 0.0)[0]
    if len(below) == 0:
        raise AnalysisError("gain never crosses 0 dB within the sweep")
    k = int(below[0])
    if k == 0:
        raise AnalysisError("gain is below unity at the first frequency point")
    # Log-frequency linear interpolation of the 0 dB crossing.
    f1, f2 = freqs[k - 1], freqs[k]
    g1, g2 = gain_db[k - 1], gain_db[k]
    frac = g1 / (g1 - g2)
    ugf = float(10 ** (np.log10(f1) + frac * (np.log10(f2) - np.log10(f1))))

    phase = np.unwrap(np.angle(response))
    phase_deg = np.degrees(phase)
    phase_at_ugf = float(np.interp(np.log10(ugf), np.log10(freqs), phase_deg))
    # Reference the phase to the low-frequency value so an inverting amplifier
    # (H(0) < 0, i.e. -180 deg) is handled the same as a non-inverting one.
    phase_rel = phase_at_ugf - float(phase_deg[0])
    margin = 180.0 + phase_rel
    return BodeMetrics(dc_gain_db=dc_gain_db, ugf_hz=ugf, phase_margin_deg=margin)


def fundamental_phasor(t: np.ndarray, signal: np.ndarray, f0: float) -> complex:
    """Complex Fourier coefficient of ``signal`` at frequency ``f0``.

    The samples must cover an integer number of periods of ``f0`` (the
    trailing sample closing the window is optional).  Uses the rectangle rule
    on the open interval, which is spectrally exact for periodic band-limited
    signals.
    """
    t = np.asarray(t, dtype=float)
    signal = np.asarray(signal, dtype=float)
    if t.shape != signal.shape or t.ndim != 1:
        raise ValueError("t and signal must be 1-D arrays of equal length")
    if len(t) < 4:
        raise ValueError("need at least four samples")
    span = t[-1] - t[0]
    periods = span * f0
    dt = t[1] - t[0]
    # Accept a window of n periods sampled at either n*T or n*T - dt length.
    closed = abs(periods - round(periods)) < 1e-6 and round(periods) >= 1
    open_periods = (span + dt) * f0
    open_ok = abs(open_periods - round(open_periods)) < 1e-6 and round(open_periods) >= 1
    if not (closed or open_ok):
        raise ValueError(
            f"window must span an integer number of 1/f0 periods, got {periods:.4f}"
        )
    if closed:
        # Drop the final sample: it duplicates the first point of the next
        # period and would bias the rectangle rule.
        t = t[:-1]
        signal = signal[:-1]
    phase = np.exp(-2j * np.pi * f0 * t)
    return complex(2.0 * np.mean(signal * phase))


def fundamental_power(
    t: np.ndarray, v: np.ndarray, f0: float, resistance: float
) -> float:
    """Average power delivered at the fundamental into a resistive load."""
    if resistance <= 0:
        raise ValueError("resistance must be positive")
    amplitude = abs(fundamental_phasor(t, v, f0))
    return 0.5 * amplitude**2 / resistance


def average_power(t: np.ndarray, v: np.ndarray, i: np.ndarray) -> float:
    """Mean of ``v * i`` over the window (trapezoidal average)."""
    t = np.asarray(t, dtype=float)
    v = np.asarray(v, dtype=float)
    i = np.asarray(i, dtype=float)
    if not (t.shape == v.shape == i.shape):
        raise ValueError("t, v, i must have equal shapes")
    span = t[-1] - t[0]
    if span <= 0:
        raise ValueError("time window must have positive span")
    return float(np.trapezoid(v * i, t) / span)


def harmonic_amplitudes(
    t: np.ndarray, signal: np.ndarray, f0: float, n_harmonics: int = 5
) -> np.ndarray:
    """Amplitudes of the first ``n_harmonics`` multiples of ``f0``.

    Index 0 is the fundamental.  Same integer-period window requirement as
    :func:`fundamental_phasor`.
    """
    if n_harmonics < 1:
        raise ValueError("n_harmonics must be >= 1")
    return np.asarray(
        [abs(fundamental_phasor(t, signal, k * f0)) for k in range(1, n_harmonics + 1)]
    )


def total_harmonic_distortion(
    t: np.ndarray, signal: np.ndarray, f0: float, n_harmonics: int = 5
) -> float:
    """THD = sqrt(sum of harmonic powers) / fundamental amplitude.

    The standard distortion figure for power-amplifier outputs; uses the
    first ``n_harmonics`` components.
    """
    amplitudes = harmonic_amplitudes(t, signal, f0, n_harmonics)
    floor = 1e-9 * max(float(np.max(amplitudes)), 1e-300)
    if amplitudes[0] <= floor:
        raise AnalysisError("no fundamental component present")
    return float(np.sqrt(np.sum(amplitudes[1:] ** 2)) / amplitudes[0])


def power_added_efficiency(p_out: float, p_in: float, p_dc: float) -> float:
    """PAE = (Pout - Pin) / Pdc, clamped below at 0 for bookkeeping.

    A design whose output power is below its drive power is simply a failed
    amplifier; reporting negative efficiency adds nothing downstream.
    """
    if p_dc <= 0:
        raise ValueError("DC power must be positive")
    return max(0.0, (p_out - p_in) / p_dc)
