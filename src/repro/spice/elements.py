"""Circuit elements and source waveforms.

Elements are plain data holders; the analysis modules (:mod:`repro.spice.dc`,
:mod:`repro.spice.ac`, :mod:`repro.spice.transient`) know how to stamp each
kind into the MNA system.  This keeps each analysis explicit and readable at
the cost of an ``isinstance`` dispatch, which for netlists of tens of elements
is irrelevant.

Two-terminal element node order is ``(n_plus, n_minus)``; positive branch
current flows from ``n_plus`` through the element to ``n_minus``.
"""

from __future__ import annotations

import dataclasses
import math

from repro.spice.units import format_eng, parse_value

__all__ = [
    "Element",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "Vcvs",
    "Vccs",
    "Waveform",
    "DcWave",
    "SinWave",
    "PulseWave",
]


# --------------------------------------------------------------------- waves
class Waveform:
    """Base class for time-dependent source values."""

    def __call__(self, t: float) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def dc(self) -> float:
        """Value at t <= 0, used for the DC operating point."""
        return self(0.0)


@dataclasses.dataclass
class DcWave(Waveform):
    """Constant value."""

    value: float

    def __call__(self, t: float) -> float:
        return self.value


@dataclasses.dataclass
class SinWave(Waveform):
    """``offset + amplitude * sin(2 pi freq (t - delay))`` (SPICE SIN)."""

    offset: float
    amplitude: float
    freq: float
    delay: float = 0.0

    def __call__(self, t: float) -> float:
        if t < self.delay:
            return self.offset
        return self.offset + self.amplitude * math.sin(
            2.0 * math.pi * self.freq * (t - self.delay)
        )


@dataclasses.dataclass
class PulseWave(Waveform):
    """SPICE PULSE(v1 v2 delay rise fall width period) waveform.

    Used as the gate drive of the class-E power amplifier's switch.
    """

    v1: float
    v2: float
    delay: float = 0.0
    rise: float = 1e-12
    fall: float = 1e-12
    width: float = 0.5
    period: float = 1.0

    def __post_init__(self):
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.rise <= 0 or self.fall <= 0:
            raise ValueError("rise/fall must be positive")
        if self.width < 0:
            raise ValueError("width must be non-negative")
        if self.rise + self.width + self.fall > self.period:
            raise ValueError("rise + width + fall must fit within the period")

    def __call__(self, t: float) -> float:
        if t < self.delay:
            return self.v1
        tau = (t - self.delay) % self.period
        if tau < self.rise:
            return self.v1 + (self.v2 - self.v1) * tau / self.rise
        tau -= self.rise
        if tau < self.width:
            return self.v2
        tau -= self.width
        if tau < self.fall:
            return self.v2 + (self.v1 - self.v2) * tau / self.fall
        return self.v1


# ------------------------------------------------------------------ elements
class Element:
    """Base circuit element: a name plus named terminal connections."""

    def __init__(self, name: str, nodes: tuple[str, ...]):
        if not name:
            raise ValueError("element name must be non-empty")
        self.name = str(name)
        self.nodes = tuple(str(n) for n in nodes)

    def describe(self) -> str:
        """One-line netlist-style description."""
        return f"{self.name} {' '.join(self.nodes)}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class _TwoTerminal(Element):
    def __init__(self, name: str, n_plus: str, n_minus: str, value):
        super().__init__(name, (n_plus, n_minus))
        self.value = parse_value(value)

    @property
    def n_plus(self) -> str:
        return self.nodes[0]

    @property
    def n_minus(self) -> str:
        return self.nodes[1]


class Resistor(_TwoTerminal):
    """Linear resistor; ``value`` is the resistance in ohms."""

    def __init__(self, name, n_plus, n_minus, resistance):
        super().__init__(name, n_plus, n_minus, resistance)
        if self.value <= 0:
            raise ValueError(f"resistance must be positive, got {self.value}")

    @property
    def resistance(self) -> float:
        return self.value

    @property
    def conductance(self) -> float:
        return 1.0 / self.value

    def describe(self) -> str:
        return f"{self.name} {self.n_plus} {self.n_minus} {format_eng(self.value, 'Ohm')}"


class Capacitor(_TwoTerminal):
    """Linear capacitor; ``value`` is the capacitance in farads."""

    def __init__(self, name, n_plus, n_minus, capacitance):
        super().__init__(name, n_plus, n_minus, capacitance)
        if self.value <= 0:
            raise ValueError(f"capacitance must be positive, got {self.value}")

    @property
    def capacitance(self) -> float:
        return self.value

    def describe(self) -> str:
        return f"{self.name} {self.n_plus} {self.n_minus} {format_eng(self.value, 'F')}"


class Inductor(_TwoTerminal):
    """Linear inductor; ``value`` is the inductance in henries.

    Modelled as an MNA group-2 element (its branch current is a solution
    variable), which makes the DC short-circuit behaviour exact.
    """

    def __init__(self, name, n_plus, n_minus, inductance):
        super().__init__(name, n_plus, n_minus, inductance)
        if self.value <= 0:
            raise ValueError(f"inductance must be positive, got {self.value}")

    @property
    def inductance(self) -> float:
        return self.value

    def describe(self) -> str:
        return f"{self.name} {self.n_plus} {self.n_minus} {format_eng(self.value, 'H')}"


class _Source(_TwoTerminal):
    def __init__(self, name, n_plus, n_minus, dc=0.0, ac=0.0, waveform: Waveform | None = None):
        super().__init__(name, n_plus, n_minus, dc)
        self.ac = parse_value(ac)
        self.waveform = waveform

    def value_at(self, t: float) -> float:
        """Instantaneous source value for transient analysis."""
        if self.waveform is not None:
            return self.waveform(t)
        return self.value

    @property
    def dc_value(self) -> float:
        """Value used for the operating point (waveform at t=0 if present)."""
        if self.waveform is not None:
            return self.waveform.dc
        return self.value


class VoltageSource(_Source):
    """Independent voltage source (MNA group-2: adds a branch current)."""

    def describe(self) -> str:
        parts = [f"{self.name} {self.n_plus} {self.n_minus} DC {format_eng(self.value, 'V')}"]
        if self.ac:
            parts.append(f"AC {format_eng(self.ac, 'V')}")
        if self.waveform is not None:
            parts.append(type(self.waveform).__name__)
        return " ".join(parts)


class CurrentSource(_Source):
    """Independent current source (current flows n_plus -> n_minus inside)."""

    def describe(self) -> str:
        parts = [f"{self.name} {self.n_plus} {self.n_minus} DC {format_eng(self.value, 'A')}"]
        if self.ac:
            parts.append(f"AC {format_eng(self.ac, 'A')}")
        return " ".join(parts)


class Vcvs(Element):
    """Voltage-controlled voltage source (SPICE E element), group-2."""

    def __init__(self, name, n_plus, n_minus, ctrl_plus, ctrl_minus, gain):
        super().__init__(name, (n_plus, n_minus, ctrl_plus, ctrl_minus))
        self.gain = parse_value(gain)

    @property
    def n_plus(self):
        return self.nodes[0]

    @property
    def n_minus(self):
        return self.nodes[1]

    @property
    def ctrl_plus(self):
        return self.nodes[2]

    @property
    def ctrl_minus(self):
        return self.nodes[3]

    def describe(self) -> str:
        return (
            f"{self.name} {self.n_plus} {self.n_minus} "
            f"({self.ctrl_plus},{self.ctrl_minus}) gain={self.gain:g}"
        )


class Vccs(Element):
    """Voltage-controlled current source (SPICE G element)."""

    def __init__(self, name, n_plus, n_minus, ctrl_plus, ctrl_minus, gm):
        super().__init__(name, (n_plus, n_minus, ctrl_plus, ctrl_minus))
        self.gm = parse_value(gm)

    @property
    def n_plus(self):
        return self.nodes[0]

    @property
    def n_minus(self):
        return self.nodes[1]

    @property
    def ctrl_plus(self):
        return self.nodes[2]

    @property
    def ctrl_minus(self):
        return self.nodes[3]

    def describe(self) -> str:
        return (
            f"{self.name} {self.n_plus} {self.n_minus} "
            f"({self.ctrl_plus},{self.ctrl_minus}) gm={format_eng(self.gm, 'S')}"
        )
