"""Hierarchical netlists: subcircuit definition and instantiation.

A :class:`SubCircuit` is a reusable circuit fragment with named ports.
Instantiating it into a parent :class:`Circuit` flattens the fragment —
internal nodes and element names are prefixed with the instance name
(``x1.node``), ports are spliced onto the parent's nodes — which keeps every
analysis engine unchanged (they only ever see flat circuits, as in SPICE).
"""

from __future__ import annotations

import copy

from repro.spice.elements import Element
from repro.spice.exceptions import TopologyError
from repro.spice.netlist import GROUND_NAMES, Circuit

__all__ = ["SubCircuit"]


class SubCircuit:
    """A circuit fragment with declared ports.

    Parameters
    ----------
    name:
        Definition name (like a SPICE ``.SUBCKT`` name).
    ports:
        Ordered terminal names exposed to the parent circuit.

    Build the body with the same ``R``/``C``/``M``... helpers as
    :class:`Circuit`, then call :meth:`instantiate`.
    """

    def __init__(self, name: str, ports):
        if not name:
            raise ValueError("subcircuit name must be non-empty")
        ports = [str(p) for p in ports]
        if not ports:
            raise ValueError("subcircuit needs at least one port")
        if len(set(ports)) != len(ports):
            raise ValueError("port names must be unique")
        for port in ports:
            if port in GROUND_NAMES:
                raise ValueError(
                    f"port {port!r} is a ground alias; ground is global and "
                    f"must not be a port"
                )
        self.name = str(name)
        self.ports = ports
        self.body = Circuit(title=f"subckt {name}")

    # Delegate the element-builder helpers to the body circuit.
    def add(self, element: Element) -> Element:
        return self.body.add(element)

    def __getattr__(self, attr):
        # R, C, L, V, I, M, E, G builder shorthands live on Circuit.
        if attr in ("R", "C", "L", "V", "I", "M", "E", "G", "extend"):
            return getattr(self.body, attr)
        raise AttributeError(f"{type(self).__name__!r} has no attribute {attr!r}")

    def instantiate(self, parent: Circuit, instance: str, connections) -> None:
        """Flatten this fragment into ``parent``.

        Parameters
        ----------
        instance:
            Instance name; internal nodes/elements become ``instance.x``.
        connections:
            Mapping of port name -> parent node name (or a sequence in port
            order).
        """
        if isinstance(connections, dict):
            mapping = {str(k): str(v) for k, v in connections.items()}
        else:
            values = [str(v) for v in connections]
            if len(values) != len(self.ports):
                raise TopologyError(
                    f"{self.name}: expected {len(self.ports)} connections, "
                    f"got {len(values)}"
                )
            mapping = dict(zip(self.ports, values))
        missing = set(self.ports) - set(mapping)
        if missing:
            raise TopologyError(f"{self.name}: unconnected ports {sorted(missing)}")
        extra = set(mapping) - set(self.ports)
        if extra:
            raise TopologyError(f"{self.name}: unknown ports {sorted(extra)}")

        def map_node(node: str) -> str:
            if node in GROUND_NAMES:
                return node  # ground is global
            if node in mapping:
                return mapping[node]
            return f"{instance}.{node}"

        for element in self.body.elements:
            clone = copy.deepcopy(element)
            clone.name = f"{instance}.{element.name}"
            clone.nodes = tuple(map_node(n) for n in element.nodes)
            parent.add(clone)
