"""Netlist container and MNA variable layout.

A :class:`Circuit` owns the elements and assigns solution-variable indices:
node voltages first (every node except ground), then one branch current per
group-2 element (voltage sources, VCVS, inductors).  The analysis modules
consume this layout when stamping.
"""

from __future__ import annotations

import networkx as nx

from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.exceptions import TopologyError
from repro.spice.mosfet import Mosfet

__all__ = ["Circuit", "GROUND_NAMES"]

#: Node names treated as the ground reference.
GROUND_NAMES = frozenset({"0", "gnd", "GND", "vss!", "gnd!"})

#: Element kinds that carry an MNA branch-current variable.
_GROUP2 = (VoltageSource, Vcvs, Inductor)


class Circuit:
    """A flat netlist with named nodes.

    Elements are added with :meth:`add`; node names are created on first use.
    Ground may be written as any name in :data:`GROUND_NAMES` and is not a
    solution variable.
    """

    def __init__(self, title: str = "untitled"):
        self.title = str(title)
        self.elements: list[Element] = []
        self._names: set[str] = set()

    # ------------------------------------------------------------- building
    def add(self, element: Element) -> Element:
        """Add an element; element names must be unique within the circuit."""
        if not isinstance(element, Element):
            raise TypeError(f"expected an Element, got {type(element).__name__}")
        if element.name in self._names:
            raise TopologyError(f"duplicate element name {element.name!r}")
        self._names.add(element.name)
        self.elements.append(element)
        return element

    def extend(self, elements) -> None:
        for element in elements:
            self.add(element)

    # ------------------------------------------------------------- topology
    @staticmethod
    def is_ground(node: str) -> bool:
        return node in GROUND_NAMES

    @property
    def nodes(self) -> list[str]:
        """Non-ground node names in first-use order."""
        seen: list[str] = []
        seen_set: set[str] = set()
        for element in self.elements:
            for node in element.nodes:
                if not self.is_ground(node) and node not in seen_set:
                    seen.append(node)
                    seen_set.add(node)
        return seen

    @property
    def group2_elements(self) -> list[Element]:
        """Elements carrying a branch-current variable, in netlist order."""
        return [e for e in self.elements if isinstance(e, _GROUP2)]

    def node_index(self) -> dict[str, int]:
        """Map node name -> solution-vector index."""
        return {name: i for i, name in enumerate(self.nodes)}

    def branch_index(self) -> dict[str, int]:
        """Map group-2 element name -> solution-vector index."""
        n = len(self.nodes)
        return {e.name: n + i for i, e in enumerate(self.group2_elements)}

    @property
    def n_unknowns(self) -> int:
        return len(self.nodes) + len(self.group2_elements)

    def mosfets(self) -> list[Mosfet]:
        return [e for e in self.elements if isinstance(e, Mosfet)]

    def elements_of(self, kind) -> list[Element]:
        """All elements of a given class, in netlist order."""
        return [e for e in self.elements if isinstance(e, kind)]

    def find(self, name: str) -> Element:
        """Look up an element by name."""
        for element in self.elements:
            if element.name == name:
                return element
        raise KeyError(f"no element named {name!r}")

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Check structural sanity before analysis.

        Raises :class:`TopologyError` if the circuit has no elements, has no
        ground reference, or contains nodes with no conductive path to ground
        (which would make the MNA matrix singular even with gmin).
        """
        if not self.elements:
            raise TopologyError("circuit has no elements")
        graph = nx.Graph()
        graph.add_node("0")
        has_ground = False
        for element in self.elements:
            normalized = ["0" if self.is_ground(n) else n for n in element.nodes]
            if any(n == "0" for n in normalized):
                has_ground = True
            # Controlled-source control pins sense voltage only; they do not
            # provide a conductive path.  All other element pins do.
            if isinstance(element, (Vcvs, Vccs)):
                conductive = normalized[:2]
            else:
                conductive = normalized
            for a in conductive:
                for b in conductive:
                    if a != b:
                        graph.add_edge(a, b, element=element.name)
            for n in normalized:
                graph.add_node(n)
        if not has_ground:
            raise TopologyError("circuit has no ground node")
        connected = nx.node_connected_component(graph, "0")
        floating = [n for n in graph.nodes if n not in connected]
        if floating:
            raise TopologyError(f"nodes with no path to ground: {sorted(floating)}")

    # ------------------------------------------------------------- reporting
    def summary(self) -> str:
        """Netlist-style, human-readable circuit description.

        Used by the Fig. 3 / Fig. 5 benches to stand in for the paper's
        schematic figures.
        """
        counts: dict[str, int] = {}
        for element in self.elements:
            key = type(element).__name__
            counts[key] = counts.get(key, 0) + 1
        lines = [f"* {self.title}"]
        lines.extend(element.describe() for element in self.elements)
        lines.append(
            f"* {len(self.nodes)} nodes, {len(self.elements)} elements: "
            + ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
        )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Circuit {self.title!r}: {len(self.elements)} elements, {len(self.nodes)} nodes>"

    # Convenience constructors ------------------------------------------------
    def R(self, name, n1, n2, value) -> Resistor:
        return self.add(Resistor(name, n1, n2, value))

    def C(self, name, n1, n2, value) -> Capacitor:
        return self.add(Capacitor(name, n1, n2, value))

    def L(self, name, n1, n2, value) -> Inductor:
        return self.add(Inductor(name, n1, n2, value))

    def V(self, name, n1, n2, dc=0.0, ac=0.0, waveform=None) -> VoltageSource:
        return self.add(VoltageSource(name, n1, n2, dc=dc, ac=ac, waveform=waveform))

    def I(self, name, n1, n2, dc=0.0, ac=0.0, waveform=None) -> CurrentSource:  # noqa: E743
        return self.add(CurrentSource(name, n1, n2, dc=dc, ac=ac, waveform=waveform))

    def M(self, name, d, g, s, b, params, w, l) -> Mosfet:
        return self.add(Mosfet(name, d, g, s, b, params, w, l))

    def D(self, name, anode, cathode, params=None):
        from repro.spice.diode import Diode

        return self.add(Diode(name, anode, cathode, params))

    def E(self, name, n1, n2, c1, c2, gain) -> Vcvs:
        return self.add(Vcvs(name, n1, n2, c1, c2, gain))

    def G(self, name, n1, n2, c1, c2, gm) -> Vccs:
        return self.add(Vccs(name, n1, n2, c1, c2, gm))
