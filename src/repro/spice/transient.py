"""Transient analysis with trapezoidal (or backward-Euler) integration.

Each time step replaces the reactive elements with their companion models and
runs a Newton solve for the nonlinear devices — the textbook SPICE loop.  The
step size is fixed on a global grid (deterministic results for a given
``dt``), but a step that fails to converge is retried with local sub-steps
before the analysis gives up.

The class-E power-amplifier testbench drives this module hard: a switching
MOSFET with pulse gate drive, an RF choke, and a resonant load network.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.spice.dc import MAX_STEP, OperatingPoint, assemble_dc, dc_operating_point
from repro.spice.elements import Capacitor, CurrentSource, Inductor, VoltageSource
from repro.spice.exceptions import ConvergenceError, SingularMatrixError
from repro.spice.netlist import Circuit

__all__ = ["TransientResult", "transient_analysis"]

#: Newton iterations per time step.
MAX_NEWTON = 60

#: Node-voltage convergence tolerance per step (volts).
VTOL = 1e-7

#: How many times a non-converging step is split in half.
MAX_HALVINGS = 6


@dataclasses.dataclass
class TransientResult:
    """Waveforms on the global time grid."""

    t: np.ndarray
    node_index: dict[str, int]
    branch_index: dict[str, int]
    solution: np.ndarray  # (n_steps + 1, n_unknowns)
    op0: OperatingPoint

    def v(self, node: str) -> np.ndarray:
        """Voltage waveform at ``node``."""
        if Circuit.is_ground(node):
            return np.zeros(len(self.t))
        return self.solution[:, self.node_index[node]]

    def i(self, branch_element: str) -> np.ndarray:
        """Current waveform through a group-2 element (V source, inductor)."""
        return self.solution[:, self.branch_index[branch_element]]

    def window(self, t_from: float, t_to: float | None = None) -> np.ndarray:
        """Boolean mask selecting samples with ``t_from <= t <= t_to``."""
        t_to = self.t[-1] if t_to is None else t_to
        return (self.t >= t_from - 1e-18) & (self.t <= t_to + 1e-18)


@dataclasses.dataclass(frozen=True)
class _CapBranch:
    """A two-terminal capacitance tracked by the integrator.

    Covers both explicit :class:`Capacitor` elements and the effective
    MOSFET capacitances (see :meth:`Mosfet.transient_capacitances`).
    """

    name: str
    n_plus: str
    n_minus: str
    capacitance: float


def _collect_capacitances(circuit: Circuit) -> list[_CapBranch]:
    branches = [
        _CapBranch(c.name, c.n_plus, c.n_minus, c.capacitance)
        for c in circuit.elements_of(Capacitor)
    ]
    for m in circuit.mosfets():
        caps = m.transient_capacitances()
        for label, (na, nb) in (
            ("cgs", (m.gate, m.source)),
            ("cgd", (m.gate, m.drain)),
            ("cdb", (m.drain, m.bulk)),
            ("csb", (m.source, m.bulk)),
        ):
            value = caps[label]
            if value > 0.0 and na != nb:
                branches.append(_CapBranch(f"{m.name}.{label}", na, nb, value))
    from repro.spice.diode import Diode

    for d in circuit.elements_of(Diode):
        if d.params.cj0 > 0.0 and d.anode != d.cathode:
            branches.append(_CapBranch(f"{d.name}.cj", d.anode, d.cathode, d.params.cj0))
    return branches


class _ReactiveState:
    """Companion-model state: capacitor currents and last node voltages."""

    def __init__(self, circuit: Circuit, x0: np.ndarray, node_idx, branch_idx):
        self.caps = _collect_capacitances(circuit)
        self.inds = circuit.elements_of(Inductor)
        self.node_idx = node_idx
        self.branch_idx = branch_idx
        # At the DC operating point capacitor current is zero.
        self.cap_current = {c.name: 0.0 for c in self.caps}
        self.x = x0.copy()

    def voltage_across(self, element, x: np.ndarray) -> float:
        vp = 0.0 if Circuit.is_ground(element.n_plus) else x[self.node_idx[element.n_plus]]
        vm = 0.0 if Circuit.is_ground(element.n_minus) else x[self.node_idx[element.n_minus]]
        return float(vp - vm)

    def advance(self, x_new: np.ndarray, dt: float, method: str) -> None:
        """Update stored state after a successful step."""
        for cap in self.caps:
            geq = self._cap_geq(cap, dt, method)
            ieq = self._cap_ieq(cap, dt, method)
            self.cap_current[cap.name] = geq * self.voltage_across(cap, x_new) + ieq
        self.x = x_new.copy()

    def _cap_geq(self, cap, dt: float, method: str) -> float:
        return (2.0 if method == "trap" else 1.0) * cap.capacitance / dt

    def _cap_ieq(self, cap, dt: float, method: str) -> float:
        v_old = self.voltage_across(cap, self.x)
        geq = self._cap_geq(cap, dt, method)
        if method == "trap":
            return -(geq * v_old + self.cap_current[cap.name])
        return -geq * v_old

    def stamp(self, asm, dt: float, method: str, idx) -> None:
        """Add companion stamps for all reactive elements."""
        for cap in self.caps:
            geq = self._cap_geq(cap, dt, method)
            ieq = self._cap_ieq(cap, dt, method)
            asm.conductance(idx(cap.n_plus), idx(cap.n_minus), geq)
            asm.current_source(idx(cap.n_plus), idx(cap.n_minus), ieq)
        for ind in self.inds:
            branch = self.branch_idx[ind.name]
            scale = 2.0 if method == "trap" else 1.0
            zeq = scale * ind.inductance / dt
            i_old = float(self.x[branch])
            v_old = self.voltage_across(ind, self.x)
            # Branch row already holds v(n+) - v(n-) - zeq * i = rhs.
            asm.add_A(idx(ind.n_plus), branch, 1.0)
            asm.add_A(idx(ind.n_minus), branch, -1.0)
            asm.add_A(branch, idx(ind.n_plus), 1.0)
            asm.add_A(branch, idx(ind.n_minus), -1.0)
            asm.add_A(branch, branch, -zeq)
            if method == "trap":
                asm.add_z(branch, -v_old - zeq * i_old)
            else:
                asm.add_z(branch, -zeq * i_old)


def transient_analysis(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    *,
    op0: OperatingPoint | None = None,
    method: str = "trap",
    gmin: float = 1e-12,
) -> TransientResult:
    """Simulate ``circuit`` from t=0 to ``t_stop`` with fixed step ``dt``.

    The initial state is the DC operating point with every waveform source at
    its t=0 value (computed automatically when ``op0`` is omitted).
    """
    if method not in ("trap", "be"):
        raise ValueError(f"method must be 'trap' or 'be', got {method!r}")
    if dt <= 0 or t_stop <= 0:
        raise ValueError("dt and t_stop must be positive")
    if dt > t_stop:
        raise ValueError("dt must not exceed t_stop")
    circuit.validate()
    if op0 is None:
        op0 = dc_operating_point(circuit, gmin=gmin)

    node_idx = circuit.node_index()
    branch_idx = circuit.branch_index()
    n = circuit.n_unknowns

    x0 = np.zeros(n)
    for name, i in node_idx.items():
        x0[i] = op0.node_voltages[name]
    for name, i in branch_idx.items():
        x0[i] = op0.branch_currents[name]

    n_steps = int(round(t_stop / dt))
    t_grid = np.arange(n_steps + 1) * dt
    solution = np.zeros((n_steps + 1, n))
    solution[0] = x0

    state = _ReactiveState(circuit, x0, node_idx, branch_idx)
    x = x0.copy()
    for step in range(1, n_steps + 1):
        t_new = t_grid[step]
        x = _advance_to(circuit, state, x, t_new - dt, dt, method, node_idx, branch_idx, gmin)
        solution[step] = x
    return TransientResult(t_grid, node_idx, branch_idx, solution, op0)


# ------------------------------------------------------------------ internals
def _advance_to(
    circuit, state, x, t_old, dt, method, node_idx, branch_idx, gmin, depth: int = 0
):
    """Advance the state by ``dt`` (splitting the step on Newton failure)."""
    x_new = _solve_step(circuit, state, x, t_old + dt, dt, method, node_idx, branch_idx, gmin)
    if x_new is not None:
        state.advance(x_new, dt, method)
        return x_new
    if depth >= MAX_HALVINGS:
        raise ConvergenceError(
            f"transient step at t={t_old + dt:g}s did not converge in "
            f"{circuit.title!r} (after {depth} halvings)"
        )
    half = dt / 2.0
    x_mid = _advance_to(
        circuit, state, x, t_old, half, method, node_idx, branch_idx, gmin, depth + 1
    )
    return _advance_to(
        circuit, state, x_mid, t_old + half, half, method, node_idx, branch_idx, gmin, depth + 1
    )


def _solve_step(circuit, state, x_guess, t_new, dt, method, node_idx, branch_idx, gmin):
    """Newton solve for one time point; returns the solution or ``None``."""
    from repro.spice.diode import Diode

    n_nodes = len(node_idx)
    nonlinear = bool(circuit.mosfets()) or bool(circuit.elements_of(Diode))
    x = x_guess.copy()
    for _ in range(MAX_NEWTON):
        asm = assemble_dc(
            circuit, x, node_idx, branch_idx, gmin, source_scale=1.0, skip_reactive=True
        )
        _override_time_sources(circuit, asm, t_new, node_idx, branch_idx)
        state.stamp(asm, dt, method, lambda node: -1 if Circuit.is_ground(node) else node_idx[node])
        try:
            x_new = np.linalg.solve(asm.A, asm.z)
        except np.linalg.LinAlgError:
            raise SingularMatrixError(
                f"singular transient MNA matrix at t={t_new:g}s in {circuit.title!r}"
            ) from None
        if not np.all(np.isfinite(x_new)):
            return None
        dx = x_new - x
        max_dv = float(np.max(np.abs(dx[:n_nodes]))) if n_nodes else 0.0
        if nonlinear and max_dv > MAX_STEP:
            x = x + dx * (MAX_STEP / max_dv)
        else:
            x = x_new
            if max_dv < VTOL:
                return x
    return None


def _override_time_sources(circuit, asm, t_new, node_idx, branch_idx):
    """Replace DC source values stamped by assemble_dc with values at t_new.

    ``assemble_dc`` stamps ``dc_value`` (the t=0 waveform value); here we add
    the difference so the net stamp equals the waveform value at ``t_new``.
    """
    for element in circuit.elements_of(VoltageSource):
        if element.waveform is not None:
            delta = element.value_at(t_new) - element.dc_value
            asm.add_z(branch_idx[element.name], delta)
    for element in circuit.elements_of(CurrentSource):
        if element.waveform is not None:
            delta = element.value_at(t_new) - element.dc_value
            n_plus = -1 if Circuit.is_ground(element.n_plus) else node_idx[element.n_plus]
            n_minus = -1 if Circuit.is_ground(element.n_minus) else node_idx[element.n_minus]
            asm.current_source(n_plus, n_minus, delta)
