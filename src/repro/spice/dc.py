"""DC operating-point analysis.

Newton–Raphson on the MNA equations with two convergence aids used by every
production SPICE: *gmin stepping* (start with a large conductance from every
node to ground and relax it) and *source stepping* (ramp all independent
sources from zero).  A plain Newton attempt from the supplied guess is tried
first because it is the cheapest and usually succeeds for well-biased
circuits.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.diode import Diode
from repro.spice.exceptions import ConvergenceError, SingularMatrixError
from repro.spice.mosfet import Mosfet, MosfetOp
from repro.spice.netlist import Circuit
from repro.spice.stamps import MnaAssembler

__all__ = ["OperatingPoint", "dc_operating_point"]

#: Default Newton iteration limit per solve.
MAX_ITER = 120

#: Maximum per-iteration voltage step (volts) — Newton damping.
MAX_STEP = 0.5

#: Node-voltage convergence tolerance (volts).
VTOL = 1e-9

#: Residual (KCL) convergence tolerance (amperes).
ITOL = 1e-9

#: Final gmin left in the system (SPICE default).
GMIN = 1e-12


@dataclasses.dataclass
class OperatingPoint:
    """Solved DC state of a circuit."""

    node_voltages: dict[str, float]
    branch_currents: dict[str, float]
    mosfet_ops: dict[str, MosfetOp]
    iterations: int

    def v(self, node: str) -> float:
        """Voltage at ``node`` (ground aliases return 0)."""
        if Circuit.is_ground(node):
            return 0.0
        return self.node_voltages[node]

    def i(self, branch_element: str) -> float:
        """Branch current through a group-2 element (V source or inductor)."""
        return self.branch_currents[branch_element]


def dc_operating_point(
    circuit: Circuit,
    *,
    v_guess: np.ndarray | None = None,
    max_iter: int = MAX_ITER,
    gmin: float = GMIN,
) -> OperatingPoint:
    """Solve the DC operating point of ``circuit``.

    Raises :class:`ConvergenceError` if Newton fails even with gmin and
    source stepping, and :class:`SingularMatrixError` for structurally
    singular systems.
    """
    circuit.validate()
    n_nodes = len(circuit.nodes)
    n = circuit.n_unknowns
    x = np.zeros(n) if v_guess is None else np.asarray(v_guess, dtype=float).copy()
    if x.shape != (n,):
        raise ValueError(f"v_guess must have shape ({n},), got {x.shape}")

    # Attempt 1: plain Newton.
    solution = _newton(circuit, x, gmin=gmin, source_scale=1.0, max_iter=max_iter)
    if solution is None:
        # Attempt 2: gmin stepping.
        solution = _gmin_stepping(circuit, x, gmin_final=gmin, max_iter=max_iter)
    if solution is None:
        # Attempt 3: source stepping.
        solution = _source_stepping(circuit, x, gmin=gmin, max_iter=max_iter)
    if solution is None:
        raise ConvergenceError(
            f"DC operating point of {circuit.title!r} did not converge"
        )
    x, iterations = solution
    return _package(circuit, x, iterations, n_nodes)


# ------------------------------------------------------------------ internals
def _package(circuit: Circuit, x: np.ndarray, iterations: int, n_nodes: int) -> OperatingPoint:
    node_idx = circuit.node_index()
    branch_idx = circuit.branch_index()
    voltages = {name: float(x[i]) for name, i in node_idx.items()}
    currents = {name: float(x[i]) for name, i in branch_idx.items()}
    mosfet_ops = {}
    for mosfet in circuit.mosfets():
        vd, vg, vs, vb = (
            _node_voltage(x, node_idx, mosfet.drain),
            _node_voltage(x, node_idx, mosfet.gate),
            _node_voltage(x, node_idx, mosfet.source),
            _node_voltage(x, node_idx, mosfet.bulk),
        )
        mosfet_ops[mosfet.name] = mosfet.evaluate(vd, vg, vs, vb)
    return OperatingPoint(voltages, currents, mosfet_ops, iterations)


def _node_voltage(x: np.ndarray, node_idx: dict[str, int], node: str) -> float:
    if Circuit.is_ground(node):
        return 0.0
    return float(x[node_idx[node]])


def _gmin_stepping(circuit, x0, *, gmin_final, max_iter):
    x = x0.copy()
    total_iterations = 0
    gmin = 1e-2
    while gmin >= gmin_final:
        solution = _newton(circuit, x, gmin=gmin, source_scale=1.0, max_iter=max_iter)
        if solution is None:
            return None
        x, iters = solution
        total_iterations += iters
        if gmin == gmin_final:
            return x, total_iterations
        gmin = max(gmin / 10.0, gmin_final)
    return x, total_iterations


def _source_stepping(circuit, x0, *, gmin, max_iter):
    x = np.zeros_like(x0)
    total_iterations = 0
    for scale in (0.1, 0.25, 0.5, 0.75, 0.9, 1.0):
        solution = _newton(circuit, x, gmin=gmin, source_scale=scale, max_iter=max_iter)
        if solution is None:
            return None
        x, iters = solution
        total_iterations += iters
    return x, total_iterations


def _newton(circuit, x0, *, gmin, source_scale, max_iter):
    """Newton iteration; returns ``(x, iterations)`` or ``None`` on failure."""
    node_idx = circuit.node_index()
    branch_idx = circuit.branch_index()
    n_nodes = len(node_idx)
    # Step damping exists to keep the exponential/square-law devices inside
    # their basin of convergence; a linear circuit solves in one full step
    # (and damping would need unbounded iterations for large node voltages).
    nonlinear = bool(circuit.mosfets()) or bool(circuit.elements_of(Diode))
    x = x0.copy()
    for iteration in range(1, max_iter + 1):
        asm = assemble_dc(circuit, x, node_idx, branch_idx, gmin, source_scale)
        try:
            x_new = np.linalg.solve(asm.A, asm.z)
        except np.linalg.LinAlgError:
            raise SingularMatrixError(
                f"singular MNA matrix in {circuit.title!r} (floating node or "
                f"voltage-source loop?)"
            ) from None
        if not np.all(np.isfinite(x_new)):
            return None
        dx = x_new - x
        max_dv = float(np.max(np.abs(dx[:n_nodes]))) if n_nodes else 0.0
        if nonlinear and max_dv > MAX_STEP:
            x = x + dx * (MAX_STEP / max_dv)
        else:
            x = x_new
            if max_dv < VTOL and _residual_ok(asm, x):
                return x, iteration
    return None


def _residual_ok(asm: MnaAssembler, x: np.ndarray) -> bool:
    residual = asm.A @ x - asm.z
    return bool(np.max(np.abs(residual)) < ITOL * max(1.0, float(np.max(np.abs(x)))))


def assemble_dc(
    circuit: Circuit,
    x: np.ndarray,
    node_idx: dict[str, int],
    branch_idx: dict[str, int],
    gmin: float,
    source_scale: float,
    skip_reactive: bool = False,
) -> MnaAssembler:
    """Assemble the linearized DC MNA system at state ``x``.

    Shared with :mod:`repro.spice.transient`, which passes
    ``skip_reactive=True`` and stamps its own companion models for capacitors
    and inductors on top.
    """
    asm = MnaAssembler(circuit.n_unknowns)

    def idx(node: str) -> int:
        return -1 if Circuit.is_ground(node) else node_idx[node]

    for element in circuit.elements:
        if isinstance(element, Resistor):
            asm.conductance(idx(element.n_plus), idx(element.n_minus), element.conductance)
        elif isinstance(element, Capacitor):
            continue  # open circuit at DC; transient adds its companion
        elif isinstance(element, Inductor):
            if skip_reactive:
                continue  # transient adds the companion branch stamp
            asm.branch_impedance(
                idx(element.n_plus), idx(element.n_minus), branch_idx[element.name], 0.0
            )
        elif isinstance(element, VoltageSource):
            asm.voltage_source(
                idx(element.n_plus),
                idx(element.n_minus),
                branch_idx[element.name],
                source_scale * element.dc_value,
            )
        elif isinstance(element, CurrentSource):
            asm.current_source(
                idx(element.n_plus), idx(element.n_minus), source_scale * element.dc_value
            )
        elif isinstance(element, Vcvs):
            asm.vcvs(
                idx(element.n_plus),
                idx(element.n_minus),
                idx(element.ctrl_plus),
                idx(element.ctrl_minus),
                branch_idx[element.name],
                element.gain,
            )
        elif isinstance(element, Vccs):
            asm.vccs(
                idx(element.n_plus),
                idx(element.n_minus),
                idx(element.ctrl_plus),
                idx(element.ctrl_minus),
                element.gm,
            )
        elif isinstance(element, Mosfet):
            _stamp_mosfet(asm, element, x, idx)
        elif isinstance(element, Diode):
            _stamp_diode(asm, element, x, idx)
        else:
            raise TypeError(f"unsupported element type {type(element).__name__}")

    asm.gmin_to_ground(len(node_idx), gmin)
    return asm


def _stamp_mosfet(asm: MnaAssembler, mosfet: Mosfet, x: np.ndarray, idx) -> None:
    """Linearized companion stamp: i_d = gm vgs + gds vds + gmb vbs + ieq."""
    d, g, s, b = (idx(mosfet.drain), idx(mosfet.gate), idx(mosfet.source), idx(mosfet.bulk))

    def volt(i: int) -> float:
        return 0.0 if i < 0 else float(x[i])

    op = mosfet.evaluate(volt(d), volt(g), volt(s), volt(b))
    # gm * vgs: current d->s controlled by (g, s)
    asm.vccs(d, s, g, s, op.gm)
    # gds * vds: conductance between d and s
    asm.conductance(d, s, op.gds)
    # gmb * vbs: current d->s controlled by (b, s)
    asm.vccs(d, s, b, s, op.gmb)
    # Companion current source ieq flowing d -> s.
    asm.current_source(d, s, op.ieq)


def _stamp_diode(asm: MnaAssembler, diode: Diode, x: np.ndarray, idx) -> None:
    """Linearized companion stamp: i = gd * v + ieq, anode -> cathode."""
    a, c = idx(diode.anode), idx(diode.cathode)

    def volt(i: int) -> float:
        return 0.0 if i < 0 else float(x[i])

    op = diode.evaluate(volt(a) - volt(c))
    asm.conductance(a, c, op.gd)
    asm.current_source(a, c, op.ieq)
