"""A from-scratch analog circuit simulator (the HSPICE stand-in).

Modified nodal analysis with:

* DC operating point — Newton–Raphson with gmin and source stepping
  (:func:`dc_operating_point`);
* small-signal AC sweeps (:func:`ac_analysis`);
* trapezoidal/backward-Euler transient analysis (:func:`transient_analysis`);
* a level-1 MOSFET with Meyer capacitances (:class:`Mosfet`);
* measurement helpers for amplifier and power-amplifier metrics
  (:mod:`repro.spice.analysis`).

See DESIGN.md §2 for why this substitutes for the paper's commercial
simulator.
"""

from repro.spice.ac import AcResult, ac_analysis, logspace_frequencies
from repro.spice.analysis import (
    BodeMetrics,
    average_power,
    bode_metrics,
    fundamental_phasor,
    fundamental_power,
    harmonic_amplitudes,
    power_added_efficiency,
    total_harmonic_distortion,
)
from repro.spice.dc import OperatingPoint, dc_operating_point
from repro.spice.diode import Diode, DiodeOp, DiodeParams
from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    DcWave,
    Element,
    Inductor,
    PulseWave,
    Resistor,
    SinWave,
    Vccs,
    Vcvs,
    VoltageSource,
    Waveform,
)
from repro.spice.exceptions import (
    AnalysisError,
    ConvergenceError,
    SingularMatrixError,
    SpiceError,
    TopologyError,
)
from repro.spice.mosfet import Mosfet, MosfetOp, MosfetParams, nmos_180, pmos_180
from repro.spice.netlist import Circuit
from repro.spice.noise import NoiseResult, noise_analysis
from repro.spice.subckt import SubCircuit
from repro.spice.sweep import DcSweepResult, dc_sweep
from repro.spice.transient import TransientResult, transient_analysis
from repro.spice.units import format_eng, parse_value

__all__ = [
    "Circuit",
    "Element",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "Vcvs",
    "Vccs",
    "Waveform",
    "DcWave",
    "SinWave",
    "PulseWave",
    "Mosfet",
    "MosfetOp",
    "MosfetParams",
    "Diode",
    "DiodeOp",
    "DiodeParams",
    "SubCircuit",
    "nmos_180",
    "pmos_180",
    "OperatingPoint",
    "dc_operating_point",
    "AcResult",
    "ac_analysis",
    "logspace_frequencies",
    "TransientResult",
    "transient_analysis",
    "BodeMetrics",
    "bode_metrics",
    "fundamental_phasor",
    "fundamental_power",
    "harmonic_amplitudes",
    "total_harmonic_distortion",
    "average_power",
    "power_added_efficiency",
    "DcSweepResult",
    "dc_sweep",
    "NoiseResult",
    "noise_analysis",
    "SpiceError",
    "TopologyError",
    "ConvergenceError",
    "SingularMatrixError",
    "AnalysisError",
    "parse_value",
    "format_eng",
]
