"""Level-1 (Shichman–Hodges) MOSFET model with Meyer capacitances.

This is the nonlinear device behind both benchmark circuits.  It implements
the classic square-law model with channel-length modulation and body effect:

* cutoff     (vgs <= vth):      ids = 0
* triode     (vds < vgs - vth): ids = kp W/L (vov - vds/2) vds (1 + lambda vds)
* saturation (vds >= vgs-vth):  ids = kp W/(2L) vov^2 (1 + lambda vds)

with ``vth = vt0 + gamma (sqrt(phi - vbs) - sqrt(phi))``.  Both regions carry
the ``(1 + lambda vds)`` factor so current and conductance are continuous at
the triode/saturation boundary.  Drain/source are handled symmetrically (the
terminals swap when vds < 0), and PMOS devices evaluate the NMOS equations on
negated terminal voltages.

The default parameter sets are generic 180 nm-class values — the paper uses a
commercial 180 nm PDK we cannot ship, so these play that role (see DESIGN.md).
"""

from __future__ import annotations

import dataclasses
import math

from repro.spice.elements import Element

__all__ = ["MosfetParams", "MosfetOp", "Mosfet", "nmos_180", "pmos_180"]


@dataclasses.dataclass(frozen=True)
class MosfetParams:
    """Level-1 model card.

    Attributes
    ----------
    polarity:
        ``+1`` for NMOS, ``-1`` for PMOS.
    vt0:
        Zero-bias threshold voltage (positive for both polarities; the sign
        convention is handled by ``polarity``).
    kp:
        Transconductance parameter ``mu Cox`` in A/V^2.
    clm:
        Channel-length-modulation coefficient in volt^-1 * metre; the per-
        device lambda is ``clm / L`` so short channels show stronger CLM.
    gamma:
        Body-effect coefficient in V^0.5.
    phi:
        Surface potential ``2 phi_F`` in volts.
    cox:
        Gate-oxide capacitance per area, F/m^2.
    cov:
        Gate-drain/source overlap capacitance per width, F/m.
    cj:
        Junction capacitance per diffusion area, F/m^2 (with ``ldiff`` the
        assumed diffusion length, giving Cdb = Csb = cj * W * ldiff).
    ldiff:
        Source/drain diffusion length, m.
    kf:
        Flicker-noise coefficient for :mod:`repro.spice.noise` (simplified
        AF=1 model: ``S_id = kf * Ids / (Cox W L f)``); 0 disables 1/f noise.
    """

    polarity: int
    vt0: float
    kp: float
    clm: float
    gamma: float
    phi: float
    cox: float
    cov: float
    cj: float
    ldiff: float
    kf: float = 0.0

    def __post_init__(self):
        if self.polarity not in (+1, -1):
            raise ValueError("polarity must be +1 (NMOS) or -1 (PMOS)")
        if self.kp <= 0 or self.phi <= 0 or self.cox <= 0:
            raise ValueError("kp, phi, and cox must be positive")


def nmos_180() -> MosfetParams:
    """Generic 180 nm NMOS model card."""
    return MosfetParams(
        polarity=+1,
        vt0=0.45,
        kp=280e-6,
        clm=0.018e-6,
        gamma=0.45,
        phi=0.85,
        cox=8.6e-3,
        cov=0.35e-9,
        cj=1.0e-3,
        ldiff=0.5e-6,
    )


def pmos_180() -> MosfetParams:
    """Generic 180 nm PMOS model card."""
    return MosfetParams(
        polarity=-1,
        vt0=0.45,
        kp=70e-6,
        clm=0.025e-6,
        gamma=0.4,
        phi=0.85,
        cox=8.6e-3,
        cov=0.35e-9,
        cj=1.1e-3,
        ldiff=0.5e-6,
    )


@dataclasses.dataclass
class MosfetOp:
    """Operating-point snapshot of one device.

    ``ids`` is the current into the *drain* terminal (negative for PMOS in
    normal conduction).  ``gm``, ``gds``, ``gmb`` are the small-signal
    derivatives with respect to the *terminal* voltages (already mapped back
    through polarity and drain/source swapping), and ``ieq`` is the Newton
    companion current such that

        i_drain = gm*vgs + gds*vds + gmb*vbs + ieq

    holds exactly at the linearization point.
    """

    ids: float
    gm: float
    gds: float
    gmb: float
    vth: float
    region: str
    vgs: float
    vds: float
    vbs: float

    @property
    def ieq(self) -> float:
        return self.ids - self.gm * self.vgs - self.gds * self.vds - self.gmb * self.vbs


class Mosfet(Element):
    """A sized MOSFET instance; terminals are (drain, gate, source, bulk)."""

    def __init__(self, name, drain, gate, source, bulk, params: MosfetParams, w, l):
        super().__init__(name, (drain, gate, source, bulk))
        w = float(w)
        l = float(l)
        if w <= 0 or l <= 0:
            raise ValueError(f"{name}: W and L must be positive, got W={w}, L={l}")
        self.params = params
        self.w = w
        self.l = l

    # Terminal accessors -----------------------------------------------------
    @property
    def drain(self):
        return self.nodes[0]

    @property
    def gate(self):
        return self.nodes[1]

    @property
    def source(self):
        return self.nodes[2]

    @property
    def bulk(self):
        return self.nodes[3]

    @property
    def lam(self) -> float:
        """Channel-length-modulation lambda for this device's length."""
        return self.params.clm / self.l

    @property
    def beta(self) -> float:
        """``kp * W / L``."""
        return self.params.kp * self.w / self.l

    def describe(self) -> str:
        kind = "NMOS" if self.params.polarity > 0 else "PMOS"
        return (
            f"{self.name} {self.drain} {self.gate} {self.source} {self.bulk} "
            f"{kind} W={self.w * 1e6:.3g}u L={self.l * 1e6:.3g}u"
        )

    # Large-signal evaluation -------------------------------------------------
    def evaluate(self, vd: float, vg: float, vs: float, vb: float) -> MosfetOp:
        """Evaluate current and derivatives at the given terminal voltages."""
        pol = self.params.polarity
        # Map to equivalent NMOS voltages.
        nvd, nvg, nvs, nvb = pol * vd, pol * vg, pol * vs, pol * vb
        swapped = nvd < nvs
        if swapped:
            nvd, nvs = nvs, nvd
        vgs = nvg - nvs
        vds = nvd - nvs
        vbs = nvb - nvs

        vth, dvth_dvbs = self._threshold(vbs)
        vov = vgs - vth
        beta = self.beta
        lam = self.lam

        if vov <= 0.0:
            ids = 0.0
            gm = gds = 0.0
            region = "cutoff"
            # d ids / d vbs = -gm_core * dvth/dvbs = 0 in cutoff
            gmb = 0.0
        elif vds < vov:
            clmf = 1.0 + lam * vds
            ids = beta * (vov - 0.5 * vds) * vds * clmf
            gm = beta * vds * clmf
            gds = beta * (vov - vds) * clmf + beta * (vov - 0.5 * vds) * vds * lam
            gmb = gm * (-dvth_dvbs)
            region = "triode"
        else:
            clmf = 1.0 + lam * vds
            ids = 0.5 * beta * vov * vov * clmf
            gm = beta * vov * clmf
            gds = 0.5 * beta * vov * vov * lam
            gmb = gm * (-dvth_dvbs)
            region = "saturation"

        if swapped:
            # Swap drain/source back.  With i_phys = -f(vgs_sw, vds_sw, vbs_sw)
            # and vgs_sw = vgs_ph - vds_ph, vds_sw = -vds_ph,
            # vbs_sw = vbs_ph - vds_ph, the chain rule gives:
            gm, gds, gmb, ids = -gm, gm + gds + gmb, -gmb, -ids

        # Map back through polarity: currents and voltages both negate, so the
        # conductances are unchanged while the current flips sign for PMOS.
        ids *= pol
        vgs_term = vg - vs
        vds_term = vd - vs
        vbs_term = vb - vs
        return MosfetOp(
            ids=ids,
            gm=gm,
            gds=gds,
            gmb=gmb,
            vth=pol * vth,
            region=region,
            vgs=vgs_term,
            vds=vds_term,
            vbs=vbs_term,
        )

    def _threshold(self, vbs: float) -> tuple[float, float]:
        """Body-effect threshold and its derivative w.r.t. vbs (NMOS frame)."""
        p = self.params
        if p.gamma == 0.0:
            return p.vt0, 0.0
        arg = p.phi - vbs
        if arg < 1e-3:
            # Forward-biased bulk clamp: freeze vth to keep Newton stable.
            arg = 1e-3
            return p.vt0 + p.gamma * (math.sqrt(arg) - math.sqrt(p.phi)), 0.0
        vth = p.vt0 + p.gamma * (math.sqrt(arg) - math.sqrt(p.phi))
        dvth = -0.5 * p.gamma / math.sqrt(arg)
        return vth, dvth

    # Capacitances -----------------------------------------------------------
    def capacitances(self, op: MosfetOp) -> dict[str, float]:
        """Meyer gate capacitances plus constant junction capacitances.

        Returns a dict with keys ``cgs``, ``cgd``, ``cgb``, ``cdb``, ``csb``.
        """
        p = self.params
        c_area = p.cox * self.w * self.l
        c_ov = p.cov * self.w
        if op.region == "cutoff":
            cgs, cgd, cgb = c_ov, c_ov, c_area
        elif op.region == "triode":
            cgs = 0.5 * c_area + c_ov
            cgd = 0.5 * c_area + c_ov
            cgb = 0.0
        else:  # saturation
            cgs = (2.0 / 3.0) * c_area + c_ov
            cgd = c_ov
            cgb = 0.0
        cj = p.cj * self.w * p.ldiff
        return {"cgs": cgs, "cgd": cgd, "cgb": cgb, "cdb": cj, "csb": cj}

    def transient_capacitances(self) -> dict[str, float]:
        """Fixed effective capacitances used by the transient analysis.

        The Meyer capacitances are bias dependent; stamping them as
        region-switching values inside the Newton loop is not charge
        conserving and destabilizes switching circuits.  The transient
        engine instead uses constant effective values — the saturation-region
        gate capacitance plus overlap, a triode-weighted Miller cgd, and the
        junction capacitances — which keeps the integrator charge conserving
        while retaining the loading and feedthrough physics.
        """
        p = self.params
        c_area = p.cox * self.w * self.l
        c_ov = p.cov * self.w
        cj = p.cj * self.w * p.ldiff
        return {
            "cgs": (2.0 / 3.0) * c_area + c_ov,
            "cgd": 0.25 * c_area + c_ov,
            "cdb": cj,
            "csb": cj,
        }
