"""Modified-nodal-analysis stamping helpers.

:class:`MnaAssembler` wraps the system matrix ``A`` and right-hand side ``z``
and exposes the classic stamps.  Node index ``-1`` denotes ground; stamps
touching ground silently drop the corresponding rows/columns, which keeps the
per-element stamping code free of special cases.

The same assembler serves DC and transient (real dtype) and AC (complex).
"""

from __future__ import annotations

import numpy as np

__all__ = ["MnaAssembler"]


class MnaAssembler:
    """Dense MNA system ``A x = z`` under construction.

    Parameters
    ----------
    n_unknowns:
        Node-voltage count plus branch-current count.
    dtype:
        ``float`` for DC/transient, ``complex`` for AC.
    """

    def __init__(self, n_unknowns: int, dtype=float):
        self.n = int(n_unknowns)
        self.A = np.zeros((self.n, self.n), dtype=dtype)
        self.z = np.zeros(self.n, dtype=dtype)

    # -------------------------------------------------------------- primitives
    def add_A(self, i: int, j: int, value) -> None:
        """Add ``value`` at A[i, j], ignoring ground (-1) indices."""
        if i >= 0 and j >= 0:
            self.A[i, j] += value

    def add_z(self, i: int, value) -> None:
        """Add ``value`` at z[i], ignoring ground."""
        if i >= 0:
            self.z[i] += value

    # ------------------------------------------------------------------ stamps
    def conductance(self, n1: int, n2: int, g) -> None:
        """Two-terminal conductance ``g`` between nodes n1 and n2."""
        self.add_A(n1, n1, g)
        self.add_A(n2, n2, g)
        self.add_A(n1, n2, -g)
        self.add_A(n2, n1, -g)

    def current_source(self, n_plus: int, n_minus: int, value) -> None:
        """Independent current ``value`` flowing n_plus -> n_minus internally.

        KCL convention: the source removes ``value`` from n_plus and injects
        it into n_minus.
        """
        self.add_z(n_plus, -value)
        self.add_z(n_minus, +value)

    def vccs(self, n_plus: int, n_minus: int, c_plus: int, c_minus: int, gm) -> None:
        """Current ``gm * (v_cplus - v_cminus)`` flowing n_plus -> n_minus."""
        self.add_A(n_plus, c_plus, gm)
        self.add_A(n_plus, c_minus, -gm)
        self.add_A(n_minus, c_plus, -gm)
        self.add_A(n_minus, c_minus, gm)

    def voltage_source(self, n_plus: int, n_minus: int, branch: int, value) -> None:
        """Independent voltage source with branch-current variable ``branch``."""
        self.add_A(n_plus, branch, 1.0)
        self.add_A(n_minus, branch, -1.0)
        self.add_A(branch, n_plus, 1.0)
        self.add_A(branch, n_minus, -1.0)
        self.add_z(branch, value)

    def vcvs(
        self, n_plus: int, n_minus: int, c_plus: int, c_minus: int, branch: int, gain
    ) -> None:
        """Voltage source ``gain * (v_cplus - v_cminus)`` with branch var."""
        self.add_A(n_plus, branch, 1.0)
        self.add_A(n_minus, branch, -1.0)
        self.add_A(branch, n_plus, 1.0)
        self.add_A(branch, n_minus, -1.0)
        self.add_A(branch, c_plus, -gain)
        self.add_A(branch, c_minus, gain)

    def branch_impedance(self, n_plus: int, n_minus: int, branch: int, zval) -> None:
        """Group-2 branch with equation ``v(n+) - v(n-) - z * i = 0``.

        ``zval = 0`` gives an ideal short (DC inductor); ``zval = jwL`` gives
        the AC inductor.
        """
        self.add_A(n_plus, branch, 1.0)
        self.add_A(n_minus, branch, -1.0)
        self.add_A(branch, n_plus, 1.0)
        self.add_A(branch, n_minus, -1.0)
        self.add_A(branch, branch, -zval)

    def gmin_to_ground(self, node_count: int, gmin: float) -> None:
        """Add ``gmin`` from every node to ground (convergence aid)."""
        for i in range(node_count):
            self.A[i, i] += gmin
