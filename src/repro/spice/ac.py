"""Small-signal AC analysis.

Linearizes every nonlinear device around a DC operating point and solves the
complex MNA system ``(G + jwC) x = z`` at each requested frequency.  The AC
stimulus is the ``ac`` magnitude of the independent sources (DC-only sources
are stamped with zero AC value, i.e. shorts/opens as appropriate).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.spice.dc import OperatingPoint, dc_operating_point
from repro.spice.diode import Diode
from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.exceptions import SingularMatrixError
from repro.spice.mosfet import Mosfet
from repro.spice.netlist import Circuit
from repro.spice.stamps import MnaAssembler

__all__ = ["AcResult", "ac_analysis", "logspace_frequencies"]


def logspace_frequencies(f_start: float, f_stop: float, points_per_decade: int = 20) -> np.ndarray:
    """Logarithmically spaced analysis frequencies, SPICE ``.AC DEC`` style."""
    if f_start <= 0 or f_stop <= f_start:
        raise ValueError("need 0 < f_start < f_stop")
    decades = np.log10(f_stop / f_start)
    n = max(2, int(round(decades * points_per_decade)) + 1)
    return np.logspace(np.log10(f_start), np.log10(f_stop), n)


@dataclasses.dataclass
class AcResult:
    """Complex node voltages/branch currents across a frequency sweep."""

    freqs: np.ndarray
    node_index: dict[str, int]
    branch_index: dict[str, int]
    solution: np.ndarray  # shape (n_freqs, n_unknowns), complex
    op: OperatingPoint

    def v(self, node: str) -> np.ndarray:
        """Complex voltage phasor at ``node`` across the sweep."""
        if Circuit.is_ground(node):
            return np.zeros(len(self.freqs), dtype=complex)
        return self.solution[:, self.node_index[node]]

    def i(self, branch_element: str) -> np.ndarray:
        """Complex branch current through a group-2 element."""
        return self.solution[:, self.branch_index[branch_element]]

    def transfer(self, out_node: str, in_node: str | None = None) -> np.ndarray:
        """Voltage transfer function ``v(out)/v(in)`` (or ``v(out)`` if the
        stimulus had unit amplitude and ``in_node`` is omitted)."""
        out = self.v(out_node)
        if in_node is None:
            return out
        vin = self.v(in_node)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(np.abs(vin) > 0, out / vin, np.inf + 0j)


def ac_analysis(
    circuit: Circuit,
    freqs: np.ndarray,
    *,
    op: OperatingPoint | None = None,
    gmin: float = 1e-12,
) -> AcResult:
    """Run an AC sweep; computes the operating point first if not supplied."""
    freqs = np.asarray(freqs, dtype=float)
    if freqs.ndim != 1 or len(freqs) == 0:
        raise ValueError("freqs must be a non-empty 1-D array")
    if np.any(freqs <= 0):
        raise ValueError("AC frequencies must be positive")
    if op is None:
        op = dc_operating_point(circuit)

    node_idx = circuit.node_index()
    branch_idx = circuit.branch_index()
    n = circuit.n_unknowns
    solution = np.zeros((len(freqs), n), dtype=complex)

    def idx(node: str) -> int:
        return -1 if Circuit.is_ground(node) else node_idx[node]

    for k, freq in enumerate(freqs):
        omega = 2.0 * np.pi * freq
        asm = MnaAssembler(n, dtype=complex)
        for element in circuit.elements:
            if isinstance(element, Resistor):
                asm.conductance(idx(element.n_plus), idx(element.n_minus), element.conductance)
            elif isinstance(element, Capacitor):
                asm.conductance(
                    idx(element.n_plus), idx(element.n_minus), 1j * omega * element.capacitance
                )
            elif isinstance(element, Inductor):
                asm.branch_impedance(
                    idx(element.n_plus),
                    idx(element.n_minus),
                    branch_idx[element.name],
                    1j * omega * element.inductance,
                )
            elif isinstance(element, VoltageSource):
                asm.voltage_source(
                    idx(element.n_plus),
                    idx(element.n_minus),
                    branch_idx[element.name],
                    element.ac,
                )
            elif isinstance(element, CurrentSource):
                asm.current_source(idx(element.n_plus), idx(element.n_minus), element.ac)
            elif isinstance(element, Vcvs):
                asm.vcvs(
                    idx(element.n_plus),
                    idx(element.n_minus),
                    idx(element.ctrl_plus),
                    idx(element.ctrl_minus),
                    branch_idx[element.name],
                    element.gain,
                )
            elif isinstance(element, Vccs):
                asm.vccs(
                    idx(element.n_plus),
                    idx(element.n_minus),
                    idx(element.ctrl_plus),
                    idx(element.ctrl_minus),
                    element.gm,
                )
            elif isinstance(element, Mosfet):
                _stamp_mosfet_ac(asm, element, op, idx, omega)
            elif isinstance(element, Diode):
                a, c = idx(element.anode), idx(element.cathode)
                bias = op.v(element.anode) - op.v(element.cathode)
                small_signal = element.evaluate(bias)
                asm.conductance(a, c, small_signal.gd)
                asm.conductance(a, c, 1j * omega * element.params.cj0)
            else:
                raise TypeError(f"unsupported element type {type(element).__name__}")
        asm.gmin_to_ground(len(node_idx), gmin)
        try:
            solution[k] = np.linalg.solve(asm.A, asm.z)
        except np.linalg.LinAlgError:
            raise SingularMatrixError(
                f"singular AC MNA matrix at f={freq:g} Hz in {circuit.title!r}"
            ) from None
    return AcResult(freqs, node_idx, branch_idx, solution, op)


def _stamp_mosfet_ac(asm: MnaAssembler, mosfet: Mosfet, op: OperatingPoint, idx, omega: float):
    """Small-signal model: gm/gds/gmb plus Meyer + junction capacitances."""
    device_op = op.mosfet_ops[mosfet.name]
    d, g, s, b = (idx(mosfet.drain), idx(mosfet.gate), idx(mosfet.source), idx(mosfet.bulk))
    asm.vccs(d, s, g, s, device_op.gm)
    asm.conductance(d, s, device_op.gds)
    asm.vccs(d, s, b, s, device_op.gmb)
    caps = mosfet.capacitances(device_op)
    asm.conductance(g, s, 1j * omega * caps["cgs"])
    asm.conductance(g, d, 1j * omega * caps["cgd"])
    asm.conductance(g, b, 1j * omega * caps["cgb"])
    asm.conductance(d, b, 1j * omega * caps["cdb"])
    asm.conductance(s, b, 1j * omega * caps["csb"])
