"""DC sweep analysis — transfer and output characteristic curves.

Sweeps the DC value of one independent source across a grid, solving the
operating point at each step with warm-started Newton (the previous solution
seeds the next solve, as in SPICE's ``.DC``).  This is how device I-V and
inverter VTC curves are produced in the examples and tests.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.spice.dc import OperatingPoint, dc_operating_point
from repro.spice.elements import CurrentSource, VoltageSource
from repro.spice.netlist import Circuit

__all__ = ["DcSweepResult", "dc_sweep"]


@dataclasses.dataclass
class DcSweepResult:
    """Operating points across a swept source value."""

    source: str
    values: np.ndarray
    points: list[OperatingPoint]

    def v(self, node: str) -> np.ndarray:
        """Voltage curve at ``node`` across the sweep."""
        return np.asarray([op.v(node) for op in self.points])

    def i(self, branch_element: str) -> np.ndarray:
        """Branch-current curve through a group-2 element."""
        return np.asarray([op.i(branch_element) for op in self.points])

    def device_current(self, mosfet_name: str) -> np.ndarray:
        """Drain-current curve of a MOSFET across the sweep."""
        return np.asarray([op.mosfet_ops[mosfet_name].ids for op in self.points])


def dc_sweep(circuit: Circuit, source_name: str, values) -> DcSweepResult:
    """Sweep the DC value of ``source_name`` over ``values``.

    The source element is restored to its original value afterwards, so the
    circuit can be reused.  Raises :class:`KeyError` for unknown sources and
    :class:`TypeError` if the named element is not an independent source.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or len(values) == 0:
        raise ValueError("values must be a non-empty 1-D array")
    element = circuit.find(source_name)
    if not isinstance(element, (VoltageSource, CurrentSource)):
        raise TypeError(
            f"{source_name!r} is a {type(element).__name__}, not an "
            f"independent source"
        )
    if element.waveform is not None:
        raise TypeError(f"{source_name!r} has a waveform; DC sweep needs a DC source")

    original = element.value
    points: list[OperatingPoint] = []
    guess = None
    try:
        for value in values:
            element.value = float(value)
            op = dc_operating_point(circuit, v_guess=guess)
            points.append(op)
            node_idx = circuit.node_index()
            branch_idx = circuit.branch_index()
            guess = np.zeros(circuit.n_unknowns)
            for name, i in node_idx.items():
                guess[i] = op.node_voltages[name]
            for name, i in branch_idx.items():
                guess[i] = op.branch_currents[name]
    finally:
        element.value = original
    return DcSweepResult(source=source_name, values=values.copy(), points=points)
