"""Small-signal noise analysis.

Computes the output noise power spectral density of a circuit by injecting
each element's noise current across its terminals and accumulating the
squared transfer magnitude to the output node:

* resistors: thermal current noise ``4kT / R`` (A^2/Hz);
* MOSFETs: channel thermal noise ``4kT * gamma * gm`` with the long-channel
  ``gamma = 2/3``, plus optional ``1/f`` flicker noise
  ``KF * Ids^AF / (Cox W L f)`` when the model card's ``kf`` is set.

Per frequency the complex MNA matrix is factorized once and re-used for every
injection (one triangular solve per noise source), so the cost is
``O(n^3 + sources * n^2)`` per point.  The classic sanity check — total
integrated output noise of an RC filter equals ``kT/C`` — is in the tests.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import scipy.linalg as sla

from repro.spice.ac import ac_analysis
from repro.spice.dc import OperatingPoint, dc_operating_point
from repro.spice.diode import Diode
from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.spice.mosfet import Mosfet
from repro.spice.netlist import Circuit
from repro.spice.stamps import MnaAssembler

__all__ = ["NoiseResult", "noise_analysis", "BOLTZMANN", "TEMPERATURE"]

#: Boltzmann constant (J/K).
BOLTZMANN = 1.380649e-23

#: Analysis temperature (K) — SPICE's 27 C default.
TEMPERATURE = 300.15

#: Long-channel MOSFET thermal-noise coefficient.
MOS_GAMMA = 2.0 / 3.0

#: Elementary charge (C), for diode shot noise.
Q_ELECTRON = 1.602176634e-19


@dataclasses.dataclass
class NoiseResult:
    """Output noise PSD across a frequency sweep."""

    freqs: np.ndarray
    output_node: str
    #: Total output noise voltage PSD, V^2/Hz, per frequency.
    output_psd: np.ndarray
    #: Per-element contribution to the output PSD (same shape each).
    contributions: dict[str, np.ndarray]
    #: Squared gain |H|^2 from the input source, if one was designated.
    gain_squared: np.ndarray | None = None

    @property
    def output_rms_density(self) -> np.ndarray:
        """Output noise in V/sqrt(Hz)."""
        return np.sqrt(self.output_psd)

    @property
    def input_referred_psd(self) -> np.ndarray:
        """Input-referred noise PSD (needs ``input_source``)."""
        if self.gain_squared is None:
            raise ValueError("noise_analysis was run without input_source")
        return self.output_psd / np.maximum(self.gain_squared, 1e-300)

    def integrated_output_noise(self) -> float:
        """Total output noise power (V^2) integrated over the sweep."""
        return float(np.trapezoid(self.output_psd, self.freqs))


def noise_analysis(
    circuit: Circuit,
    freqs: np.ndarray,
    output_node: str,
    *,
    input_source: str | None = None,
    op: OperatingPoint | None = None,
    gmin: float = 1e-12,
) -> NoiseResult:
    """Output (and optionally input-referred) noise of ``circuit``."""
    freqs = np.asarray(freqs, dtype=float)
    if freqs.ndim != 1 or len(freqs) == 0:
        raise ValueError("freqs must be a non-empty 1-D array")
    if np.any(freqs <= 0):
        raise ValueError("noise frequencies must be positive")
    circuit.validate()
    if Circuit.is_ground(output_node):
        raise ValueError("output node must not be ground")
    if op is None:
        op = dc_operating_point(circuit, gmin=gmin)

    node_idx = circuit.node_index()
    branch_idx = circuit.branch_index()
    if output_node not in node_idx:
        raise KeyError(f"unknown output node {output_node!r}")
    out = node_idx[output_node]
    n = circuit.n_unknowns

    def idx(node: str) -> int:
        return -1 if Circuit.is_ground(node) else node_idx[node]

    sources = _collect_noise_sources(circuit, op, idx)
    contributions = {name: np.zeros(len(freqs)) for name, *_ in sources}
    gain_squared = np.zeros(len(freqs)) if input_source is not None else None

    if input_source is not None:
        # One ordinary AC solve gives |H|^2 for input referral.
        element = circuit.find(input_source)
        if not isinstance(element, (VoltageSource, CurrentSource)):
            raise TypeError(f"{input_source!r} is not an independent source")
        original_ac = element.ac
        element.ac = 1.0
        try:
            ac = ac_analysis(circuit, freqs, op=op, gmin=gmin)
        finally:
            element.ac = original_ac
        gain_squared = np.abs(ac.v(output_node)) ** 2

    for k, freq in enumerate(freqs):
        A = _complex_matrix(circuit, op, node_idx, branch_idx, idx, freq, gmin)
        lu = sla.lu_factor(A)
        # Adjoint trick: one solve of A^H z = e_out gives the transfer from
        # *every* injection node to the output at once.
        e_out = np.zeros(n, dtype=complex)
        e_out[out] = 1.0
        z = sla.lu_solve(lu, e_out, trans=2)  # solves A^H z = e_out
        for name, n_plus, n_minus, psd_fn in sources:
            # Current injected n_plus -> n_minus: transfer = z*[n+] - z*[n-].
            transfer = 0.0 + 0.0j
            if n_plus >= 0:
                transfer += np.conj(z[n_plus])
            if n_minus >= 0:
                transfer -= np.conj(z[n_minus])
            contributions[name][k] = float(abs(transfer) ** 2 * psd_fn(freq))

    total = np.sum(list(contributions.values()), axis=0) if contributions else np.zeros(len(freqs))
    return NoiseResult(
        freqs=freqs,
        output_node=output_node,
        output_psd=total,
        contributions=contributions,
        gain_squared=gain_squared,
    )


# ------------------------------------------------------------------ internals
def _collect_noise_sources(circuit, op, idx):
    """(name, n_plus, n_minus, psd(freq) -> A^2/Hz) for every noisy element."""
    four_kt = 4.0 * BOLTZMANN * TEMPERATURE
    sources = []
    for element in circuit.elements:
        if isinstance(element, Resistor):
            psd = four_kt / element.resistance
            sources.append(
                (element.name, idx(element.n_plus), idx(element.n_minus),
                 lambda f, _p=psd: _p)
            )
        elif isinstance(element, Mosfet):
            device_op = op.mosfet_ops[element.name]
            gm = max(device_op.gm, 0.0)
            thermal = four_kt * MOS_GAMMA * gm
            kf = getattr(element.params, "kf", 0.0)
            if kf:
                cox_area = element.params.cox * element.w * element.l
                flicker_num = kf * abs(device_op.ids)
            else:
                cox_area = 1.0
                flicker_num = 0.0

            def psd(f, _t=thermal, _fn=flicker_num, _ca=cox_area):
                return _t + (_fn / (_ca * f) if _fn else 0.0)

            sources.append(
                (element.name, idx(element.drain), idx(element.source), psd)
            )
        elif isinstance(element, Diode):
            bias = op.v(element.anode) - op.v(element.cathode)
            current = abs(element.evaluate(bias).current)
            shot = 2.0 * Q_ELECTRON * current
            sources.append(
                (element.name, idx(element.anode), idx(element.cathode),
                 lambda f, _p=shot: _p)
            )
    return sources


def _complex_matrix(circuit, op, node_idx, branch_idx, idx, freq, gmin):
    """The AC system matrix at one frequency (reuses the AC stamping)."""
    from repro.spice.ac import _stamp_mosfet_ac

    omega = 2.0 * np.pi * freq
    asm = MnaAssembler(circuit.n_unknowns, dtype=complex)
    for element in circuit.elements:
        if isinstance(element, Resistor):
            asm.conductance(idx(element.n_plus), idx(element.n_minus), element.conductance)
        elif isinstance(element, Capacitor):
            asm.conductance(
                idx(element.n_plus), idx(element.n_minus), 1j * omega * element.capacitance
            )
        elif isinstance(element, Inductor):
            asm.branch_impedance(
                idx(element.n_plus), idx(element.n_minus),
                branch_idx[element.name], 1j * omega * element.inductance,
            )
        elif isinstance(element, VoltageSource):
            asm.voltage_source(
                idx(element.n_plus), idx(element.n_minus), branch_idx[element.name], 0.0
            )
        elif isinstance(element, CurrentSource):
            continue  # open for noise purposes
        elif isinstance(element, Vcvs):
            asm.vcvs(
                idx(element.n_plus), idx(element.n_minus),
                idx(element.ctrl_plus), idx(element.ctrl_minus),
                branch_idx[element.name], element.gain,
            )
        elif isinstance(element, Vccs):
            asm.vccs(
                idx(element.n_plus), idx(element.n_minus),
                idx(element.ctrl_plus), idx(element.ctrl_minus), element.gm,
            )
        elif isinstance(element, Mosfet):
            _stamp_mosfet_ac(asm, element, op, idx, omega)
        elif isinstance(element, Diode):
            bias = op.v(element.anode) - op.v(element.cathode)
            asm.conductance(
                idx(element.anode), idx(element.cathode), element.evaluate(bias).gd
            )
            asm.conductance(
                idx(element.anode), idx(element.cathode),
                1j * omega * element.params.cj0,
            )
        else:
            raise TypeError(f"unsupported element type {type(element).__name__}")
    asm.gmin_to_ground(len(node_idx), gmin)
    return asm.A
