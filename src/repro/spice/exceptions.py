"""Exception hierarchy for the circuit simulator.

Simulation failures are expected events during optimization — a bad sizing can
make the DC solve diverge — so they get their own exception types that the
testbench layer can catch and convert into a finite FOM penalty.
"""

from __future__ import annotations

__all__ = [
    "SpiceError",
    "TopologyError",
    "ConvergenceError",
    "SingularMatrixError",
    "AnalysisError",
]


class SpiceError(Exception):
    """Base class for all simulator errors."""


class TopologyError(SpiceError):
    """The netlist is structurally invalid (floating nodes, duplicates...)."""


class ConvergenceError(SpiceError):
    """A nonlinear (Newton) solve failed to converge."""


class SingularMatrixError(SpiceError):
    """The MNA matrix is singular — usually a floating node or V-source loop."""


class AnalysisError(SpiceError):
    """A completed analysis produced unusable results (e.g. no UGF crossing)."""
