"""Junction diode with the standard SPICE exponential model.

    i(v) = IS * (exp(v / (n * Vt)) - 1)

The exponential is linearized above a critical voltage (the classic SPICE
junction limiting) so Newton iterations cannot overflow; a constant junction
capacitance loads the transient analysis.
"""

from __future__ import annotations

import dataclasses
import math

from repro.spice.elements import Element
from repro.spice.units import format_eng

__all__ = ["DiodeParams", "DiodeOp", "Diode"]

#: Thermal voltage at room temperature.
VT = 0.02585


@dataclasses.dataclass(frozen=True)
class DiodeParams:
    """Model card: saturation current, ideality factor, junction cap."""

    i_s: float = 1e-14
    n: float = 1.0
    cj0: float = 1e-12

    def __post_init__(self):
        if self.i_s <= 0 or self.n <= 0 or self.cj0 < 0:
            raise ValueError("i_s and n must be positive, cj0 non-negative")


@dataclasses.dataclass
class DiodeOp:
    """Linearization of the diode at a bias point: i = gd*v + ieq."""

    current: float
    gd: float
    v: float

    @property
    def ieq(self) -> float:
        return self.current - self.gd * self.v


class Diode(Element):
    """Two-terminal junction diode; current flows anode -> cathode."""

    def __init__(self, name, anode, cathode, params: DiodeParams | None = None):
        super().__init__(name, (anode, cathode))
        self.params = params if params is not None else DiodeParams()

    @property
    def anode(self) -> str:
        return self.nodes[0]

    @property
    def cathode(self) -> str:
        return self.nodes[1]

    @property
    def _nvt(self) -> float:
        return self.params.n * VT

    @property
    def v_crit(self) -> float:
        """Voltage above which the exponential is linearized."""
        return self._nvt * math.log(self._nvt / (math.sqrt(2.0) * self.params.i_s))

    def evaluate(self, v: float) -> DiodeOp:
        """Current and small-signal conductance at junction voltage ``v``."""
        nvt = self._nvt
        i_s = self.params.i_s
        v_crit = self.v_crit
        if v <= v_crit:
            expo = math.exp(max(v / nvt, -100.0))
            current = i_s * (expo - 1.0)
            gd = i_s * expo / nvt
        else:
            # First-order continuation beyond v_crit keeps Newton bounded.
            expo = math.exp(v_crit / nvt)
            gd = i_s * expo / nvt
            current = i_s * (expo - 1.0) + gd * (v - v_crit)
        # A minimum conductance keeps the reverse-biased branch non-singular.
        gd = max(gd, 1e-14)
        return DiodeOp(current=current, gd=gd, v=v)

    def describe(self) -> str:
        return (
            f"{self.name} {self.anode} {self.cathode} "
            f"IS={format_eng(self.params.i_s, 'A')} n={self.params.n:g}"
        )
