"""Sequential Bayesian optimization (paper §II-B baselines + EasyBO B=1).

:class:`BODriverBase` holds everything the sequential, synchronous-batch, and
asynchronous drivers share: the surrogate session, the initial design, the
evaluation pool, and result packaging.  :class:`SequentialBO` is the classic
one-point-at-a-time loop with a pluggable acquisition (EI / LCB / UCB / PI /
EasyBO's randomized-weight rule).
"""

from __future__ import annotations

import numpy as np

from repro.core.acquisition import (
    EASYBO_LAMBDA,
    ExpectedImprovement,
    ProbabilityOfImprovement,
    UpperConfidenceBound,
    WeightedAcquisition,
    sample_easybo_weight,
)
from repro.core.doe import random_design
from repro.core.faults import FailurePolicy
from repro.core.optimizers import maximize_acquisition
from repro.core.problem import Problem
from repro.core.results import RunResult
from repro.core.surrogate import SurrogateSession
from repro.sched.workers import Completion, VirtualWorkerPool
from repro.utils.rng import as_generator

__all__ = ["BODriverBase", "SequentialBO"]


class BODriverBase:
    """Shared machinery for all BO drivers.

    Parameters
    ----------
    problem:
        The black-box maximization problem.
    n_init:
        Random initial samples (the paper uses 20).
    max_evals:
        Total evaluation budget, *including* the initial design.
    rng:
        Seed or generator; the whole run is deterministic given it.
    pool_factory:
        Callable ``(problem, n_workers) -> pool``; defaults to the
        simulated-clock :class:`VirtualWorkerPool`.  Pass
        :class:`~repro.sched.executor.ThreadWorkerPool` for real concurrency.
    failure_policy:
        :class:`~repro.core.faults.FailurePolicy` shared by the pool (retry
        / timeout behaviour) and the driver (impute-or-drop of failed
        evaluations).  Defaults to no retries with pessimistic imputation.
    surrogate_update:
        ``"incremental"`` (default) reuses the surrogate's cached Cholesky
        factor between hyperparameter fits and serves the pending-point
        hallucination through a factor-sharing view; ``"full"`` rebuilds
        the factored system from scratch at every event.  Both produce the
        same posterior up to round-off (see
        ``tests/test_incremental_equivalence.py``).
    refit_every:
        Run ML-II hyperparameter fitting only every K-th surrogate refit
        (default 1 = every event, the paper's schedule).  Raising K is
        where the incremental path's O(n^3) -> O(n^2) per-event win comes
        from.
    """

    #: Subclasses set their display name (used in result rows).
    algorithm_name = "bo"

    def __init__(
        self,
        problem: Problem,
        *,
        n_init: int = 20,
        max_evals: int = 150,
        rng=None,
        pool_factory=None,
        acq_candidates: int = 2048,
        acq_restarts: int = 4,
        failure_policy: FailurePolicy | None = None,
        surrogate_update: str = "incremental",
        refit_every: int = 1,
    ):
        if n_init < 2:
            raise ValueError("n_init must be >= 2 (the GP needs data)")
        if max_evals < n_init:
            raise ValueError("max_evals must be >= n_init")
        self.problem = problem
        self.n_init = int(n_init)
        self.max_evals = int(max_evals)
        self.rng = as_generator(rng)
        self.pool_factory = pool_factory or VirtualWorkerPool
        self.failure_policy = failure_policy or FailurePolicy()
        self.acq_candidates = int(acq_candidates)
        self.acq_restarts = int(acq_restarts)
        self.session = SurrogateSession(
            problem.bounds,
            rng=self.rng,
            surrogate_update=surrogate_update,
            refit_every=refit_every,
        )

    # ------------------------------------------------------------- helpers
    def _make_pool(self, n_workers: int):
        """Build the evaluation pool, passing the failure policy through.

        Custom ``pool_factory`` callables that predate failure handling may
        only accept ``(problem, n_workers)``; fall back to that signature.
        """
        try:
            return self.pool_factory(
                self.problem, n_workers, policy=self.failure_policy
            )
        except TypeError:
            return self.pool_factory(self.problem, n_workers)

    def _initial_design(self) -> np.ndarray:
        return random_design(self.problem.bounds, self.n_init, self.rng)

    def _absorb(self, completion: Completion) -> bool:
        """Fold a finished evaluation into the surrogate dataset.

        Failed evaluations follow the failure policy: ``"impute"`` records a
        pessimistic FOM at the failed point (so the surrogate steers away
        from it without poisoning the GP), ``"drop"`` records nothing — the
        budget slot is spent and the next proposal sees an unchanged
        posterior.  Returns True when an observation was added, so
        subclasses can keep side datasets aligned with the session.
        """
        result = completion.result
        if result.ok:
            self.session.add(completion.x, result.fom)
            return True
        if (
            self.failure_policy.on_failure == "impute"
            and self.session.n_observations > 0
        ):
            self.session.add(completion.x, self._imputed_fom())
            return True
        return False

    def _imputed_fom(self) -> float:
        """Pessimistic stand-in FOM for a failed evaluation."""
        policy = self.failure_policy
        if policy.impute_value is not None:
            return float(policy.impute_value)
        y = self.session.y
        span = float(y.max() - y.min())
        return float(y.min() - policy.impute_margin * max(span, 1.0))

    def _propose(self, acquisition, model=None) -> np.ndarray:
        """Maximize an acquisition on the unit cube; return a physical point."""
        scorer = self.session.acquisition_on_unit(acquisition, model=model)
        u_best = maximize_acquisition(
            scorer,
            self.session.unit_bounds(),
            rng=self.rng,
            n_candidates=self.acq_candidates,
            n_restarts=self.acq_restarts,
        )
        return self.session.to_physical(u_best.reshape(1, -1))[0]

    def _standardized_best(self) -> float:
        """Incumbent best in the GP's standardized output scale."""
        return float(self.session.output.transform(np.array([self.session.best_y]))[0])

    def _package(self, pool) -> RunResult:
        trace = pool.trace
        trace.surrogate_stats = self.session.stats
        if trace.has_success:
            best = trace.best_record()
            best_x, best_fom = best.x.copy(), best.fom
        else:
            # Every single evaluation failed; report an empty incumbent
            # rather than crashing a run that survived to the end.
            best_x = np.full(self.problem.dim, np.nan)
            best_fom = float("-inf")
        return RunResult(
            algorithm=self.algorithm_name,
            problem=self.problem.name,
            trace=trace,
            best_x=best_x,
            best_fom=best_fom,
            n_evaluations=len(trace),
            wall_clock=trace.makespan,
            n_failures=trace.n_failures,
            n_retries=trace.n_retries,
            surrogate_stats=self.session.stats,
        )

    def run(self) -> RunResult:  # pragma: no cover - interface
        raise NotImplementedError


class SequentialBO(BODriverBase):
    """One-at-a-time BO with a pluggable acquisition rule.

    ``acquisition`` is one of:

    * ``"easybo"`` — the paper's randomized-weight rule (Eq. 8); this is
      EasyBO in sequential mode (Table I/II top blocks).
    * ``"ei"`` / ``"pi"`` — improvement-based baselines.
    * ``"lcb"`` / ``"ucb"`` — the optimistic baseline (identical here: the
      paper's LCB is the minimization spelling of UCB).
    """

    def __init__(
        self,
        problem: Problem,
        *,
        acquisition: str = "easybo",
        lam: float = EASYBO_LAMBDA,
        ucb_kappa: float = 2.0,
        ei_xi: float = 0.0,
        **kwargs,
    ):
        super().__init__(problem, **kwargs)
        acquisition = acquisition.lower()
        if acquisition not in ("easybo", "ei", "pi", "lcb", "ucb"):
            raise ValueError(f"unknown acquisition {acquisition!r}")
        self.acquisition = acquisition
        self.lam = float(lam)
        self.ucb_kappa = float(ucb_kappa)
        self.ei_xi = float(ei_xi)
        self.algorithm_name = {"easybo": "EasyBO", "ei": "EI", "pi": "PI",
                               "lcb": "LCB", "ucb": "UCB"}[acquisition]

    def _make_acquisition(self):
        if self.acquisition == "easybo":
            return WeightedAcquisition(sample_easybo_weight(self.rng, self.lam))
        if self.acquisition == "ei":
            return ExpectedImprovement(self._standardized_best(), xi=self.ei_xi)
        if self.acquisition == "pi":
            return ProbabilityOfImprovement(self._standardized_best(), xi=self.ei_xi)
        return UpperConfidenceBound(self.ucb_kappa)

    def run(self) -> RunResult:
        pool = self._make_pool(1)
        for x in self._initial_design():
            pool.submit(x)
            self._absorb(pool.wait_next())
        evaluations = self.n_init
        while evaluations < self.max_evals:
            if self.session.n_observations < 2:
                # Failures (under a "drop" policy) can leave the GP with too
                # little data; explore uniformly until it has a footing.
                x_next = random_design(self.problem.bounds, 1, self.rng)[0]
            else:
                self.session.refit()
                x_next = self._propose(self._make_acquisition())
            pool.submit(x_next)
            self._absorb(pool.wait_next())
            evaluations += 1
        return self._package(pool)
